package cppc

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (run `go test -bench=. -benchmem`), plus
// micro-benchmarks of the protection hot paths. The full-budget versions
// of the experiments are produced by cmd/repro; these benches exercise
// the identical code on a reduced instruction budget so the harness
// finishes in seconds per entry.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cppc/internal/experiments"
	"cppc/internal/fault"
	"cppc/internal/parity"
	"cppc/internal/protect"
	"cppc/internal/reliability"
	"cppc/internal/service"
	"cppc/internal/trace"

	icache "cppc/internal/cache"
	icore "cppc/internal/core"
)

// benchBudget keeps each figure-bench iteration around a hundred
// milliseconds.
func benchBudget() experiments.Budget {
	return experiments.Budget{Warmup: 20_000, Measure: 60_000, Seed: 1}
}

// benchProfiles is a representative trio: cache-friendly, store-heavy,
// miss-heavy.
func benchProfiles() []trace.Profile {
	var out []trace.Profile
	for _, name := range []string{"crafty", "vortex", "mcf"} {
		p, ok := trace.ProfileByName(name)
		if !ok {
			panic("missing profile " + name)
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkTable1Config renders the configuration table.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure10CPI regenerates the Fig. 10 CPI comparison: each
// benchmark under parity, CPPC and 2D parity.
func BenchmarkFigure10CPI(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		for _, p := range benchProfiles() {
			base := experiments.Simulate(p, experiments.Parity1D, bud)
			cp := experiments.Simulate(p, experiments.CPPC, bud)
			td := experiments.Simulate(p, experiments.TwoDim, bud)
			if cp.CPI < base.CPI*0.99 || td.CPI < base.CPI*0.99 {
				b.Fatalf("%s: CPI ordering broken: %.3f %.3f %.3f",
					p.Name, base.CPI, cp.CPI, td.CPI)
			}
		}
	}
}

// BenchmarkFigure11EnergyL1 regenerates the Fig. 11 normalized L1 energy.
func BenchmarkFigure11EnergyL1(b *testing.B) {
	benchEnergy(b, 1)
}

// BenchmarkFigure12EnergyL2 regenerates the Fig. 12 normalized L2 energy.
func BenchmarkFigure12EnergyL2(b *testing.B) {
	benchEnergy(b, 2)
}

func benchEnergy(b *testing.B, level int) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		s := &experiments.Suite{Budget: bud, Runs: map[string]map[experiments.SchemeID]experiments.Run{}}
		for _, p := range benchProfiles() {
			s.Order = append(s.Order, p.Name)
			s.Runs[p.Name] = map[experiments.SchemeID]experiments.Run{}
			for _, id := range []experiments.SchemeID{
				experiments.Parity1D, experiments.CPPC, experiments.SECDED, experiments.TwoDim,
			} {
				s.Runs[p.Name][id] = experiments.Simulate(p, id, bud)
			}
		}
		var out string
		if level == 1 {
			out = s.Figure11()
		} else {
			out = s.Figure12()
		}
		if out == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable2DirtyStats measures the dirty-fraction and Tavg
// collection of Table 2.
func BenchmarkTable2DirtyStats(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		for _, p := range benchProfiles() {
			run := experiments.Simulate(p, experiments.Parity1D, bud)
			if run.L1Gran.Dirty <= 0 {
				b.Fatalf("%s: no dirty data measured", p.Name)
			}
		}
	}
}

// BenchmarkTable3MTTF evaluates the analytical reliability models with
// the paper's Table 2 inputs.
func BenchmarkTable3MTTF(b *testing.B) {
	l1, l2 := reliability.PaperL1Params(), reliability.PaperL2Params()
	for i := 0; i < b.N; i++ {
		_ = reliability.Parity1DMTTFYears(l1)
		_ = reliability.Parity1DMTTFYears(l2)
		_ = reliability.DoubleFaultMTTFYears(l1, reliability.CPPCDomains(8, 1))
		_ = reliability.DoubleFaultMTTFYears(l2, reliability.CPPCDomains(8, 1))
		_ = reliability.DoubleFaultMTTFYears(l1, reliability.SECDEDDomains(l1, 64))
		_ = reliability.DoubleFaultMTTFYears(l2, reliability.SECDEDDomains(l2, 256))
	}
}

// BenchmarkSection47Aliasing evaluates the aliasing-MTTF sweep.
func BenchmarkSection47Aliasing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Section47() == "" {
			b.Fatal("empty section")
		}
	}
}

// BenchmarkSection48Shifter evaluates the barrel-shifter critical-path
// numbers.
func BenchmarkSection48Shifter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Section48() == "" {
			b.Fatal("empty section")
		}
	}
}

// BenchmarkSpatialCoverage runs the Secs. 4.6/4.11 Monte-Carlo coverage
// campaign for the evaluated CPPC (one 4x4 shape per iteration).
func BenchmarkSpatialCoverage(b *testing.B) {
	mk := func(c *icache.Cache) protect.Scheme {
		return protect.MustCPPC(c, icore.Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true})
	}
	for i := 0; i < b.N; i++ {
		got := fault.RunSpatialTrials(mk, 4, 4, 2, int64(i))
		if got.Corrected != got.Total() {
			b.Fatalf("4x4 coverage broken: %v", got)
		}
	}
}

// --- hot-path micro-benchmarks ---

func newBenchController() (*Controller, *Engine) {
	c := NewCache(L1DConfig())
	s, err := NewCPPC(c, DefaultL1Engine())
	if err != nil {
		panic(err)
	}
	eng, _ := EngineOf(s)
	return NewController(c, s, NewMemory(32, 200)), eng
}

// BenchmarkStoreHitCPPC measures the common-case store path (R1 fold +
// parity encode), the operation CPPC adds work to.
func BenchmarkStoreHitCPPC(b *testing.B) {
	ctrl, _ := newBenchController()
	ctrl.Store(0x40, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Store(0x40, uint64(i), uint64(i+2))
	}
}

// BenchmarkLoadHitCPPC measures the load verify path (parity check).
func BenchmarkLoadHitCPPC(b *testing.B) {
	ctrl, _ := newBenchController()
	ctrl.Store(0x40, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Load(0x40, uint64(i+2))
	}
}

// BenchmarkRecoverySingle measures the full recovery sweep for one faulty
// word over a realistically filled cache.
func BenchmarkRecoverySingle(b *testing.B) {
	ctrl, eng := newBenchController()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4096; i++ {
		ctrl.Store(uint64(rng.Intn(8192))*8, rng.Uint64(), uint64(i+1))
	}
	set, way := ctrl.C.Probe(0x40)
	if way < 0 {
		ctrl.Store(0x40, 1, 99999)
		set, way = ctrl.C.Probe(0x40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.C.FlipBits(set, way, 0, 1<<9)
		if rep := eng.RecoverDirty(set, way, 0); rep.Outcome != OutcomeCorrected {
			b.Fatalf("recovery failed: %+v", rep)
		}
	}
}

// BenchmarkSECDEDDecode measures the (72,64) decode hot path.
func BenchmarkSECDEDDecode(b *testing.B) {
	var s parity.SECDED
	w := rand.Uint64()
	check := s.Encode(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.Decode(w, check); res.Outcome != parity.SECDEDClean {
			b.Fatal("decode broke")
		}
	}
}

// BenchmarkHammingDecode256 measures the block-level SECDED decode used
// at L2.
func BenchmarkHammingDecode256(b *testing.B) {
	h := parity.MustHamming(256)
	data := []uint64{1, 2, 3, 4}
	check := h.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := h.Decode(data, check); res.Outcome != parity.SECDEDClean {
			b.Fatal("decode broke")
		}
	}
}

// BenchmarkSection7Multicore runs a short timed coherence sweep (the
// Sec. 7 multiprocessor experiment).
func BenchmarkSection7Multicore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Section7Multicore(
			experiments.Budget{Warmup: 2_000, Measure: 5_000, Seed: int64(i)})
		if err != nil || out == "" {
			b.Fatalf("empty section (err=%v)", err)
		}
	}
}

// BenchmarkShardedSuite runs one whole suite job through the daemon's
// shard scheduler, on one worker and on eight. A fresh service per
// iteration keeps the caches cold; the pair shows the sweep fan-out win
// on multi-core hosts.
func BenchmarkShardedSuite(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := service.JobSpec{Kind: "suite", Warmup: 5_000, Measure: 15_000}
			for i := 0; i < b.N; i++ {
				s := service.New(service.Config{Workers: workers})
				job, err := s.Submit(spec)
				if err != nil {
					b.Fatalf("submit: %v", err)
				}
				for {
					j, err := s.Job(job.ID)
					if err != nil {
						b.Fatalf("poll: %v", err)
					}
					if j.State == service.StateDone {
						break
					}
					if j.State == service.StateFailed || j.State == service.StateCanceled {
						b.Fatalf("job %s: %s", j.State, j.Error)
					}
					time.Sleep(time.Millisecond)
				}
				if err := s.Shutdown(context.Background()); err != nil {
					b.Fatalf("shutdown: %v", err)
				}
			}
		})
	}
}

// BenchmarkAblationSinglePort reruns the CPI comparison with merged L1
// ports (the other Sec. 7 evaluation).
func BenchmarkAblationSinglePort(b *testing.B) {
	bud := benchBudget()
	for i := 0; i < b.N; i++ {
		if out, err := experiments.SinglePortAblation(bud); err != nil || out == "" {
			b.Fatalf("empty ablation (err=%v)", err)
		}
	}
}

// BenchmarkAblationEarlyWriteback measures the early write-back sweep.
func BenchmarkAblationEarlyWriteback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, err := experiments.EarlyWritebackAblation(30_000, int64(i)); err != nil || out == "" {
			b.Fatalf("empty ablation (err=%v)", err)
		}
	}
}

// BenchmarkMonteCarloLifetime runs one accelerated-rate lifetime trial
// (the PARMA-style cross-validation).
func BenchmarkMonteCarloLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fault.MonteCarloMTTF(
			func(c *icache.Cache) protect.Scheme {
				return protect.MustCPPC(c, icore.DefaultL1Config())
			},
			2e-7, 1, 50_000, int64(i))
		if res.Trials != 1 {
			b.Fatal("trial did not run")
		}
	}
}

// BenchmarkTagRecovery measures the Sec. 7 tag-array extension's recovery
// sweep.
func BenchmarkTagRecovery(b *testing.B) {
	ccfg, err := icache.Config{
		Name: "tagbench", SizeBytes: 32 << 10, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		b.Fatal(err)
	}
	c := icache.New(ccfg)
	eng := icore.MustNewTagEngine(c, icore.DefaultL1Config())
	mem := icache.NewMemory(32, 100)
	// Fill every set.
	for i := 0; i < ccfg.Sets()*ccfg.Ways; i++ {
		addr := uint64(i * ccfg.BlockBytes)
		set, _ := c.Probe(addr)
		way := c.Victim(set)
		ln := c.Line(set, way)
		oldValid, oldTag := ln.Valid, ln.Tag
		buf := make([]uint64, ccfg.BlockWords())
		mem.FetchBlock(addr, buf, 0)
		c.Install(set, way, addr, buf)
		eng.OnInstall(set, way, oldValid, oldTag, c.Line(set, way).Tag)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.FlipTagBits(3, 0, 1<<9)
		if rep := eng.RecoverTag(3, 0); rep.Outcome != icore.OutcomeCorrected {
			b.Fatalf("tag recovery failed: %+v", rep)
		}
	}
}
