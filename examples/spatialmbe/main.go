// Spatial multi-bit errors: reproduces the paper's Sec. 4 narrative on a
// small direct-mapped cache where physical rows are easy to see:
//
//  1. a vertical 2-bit fault defeats the *basic* CPPC (Fig. 4) — the two
//     flips cancel inside R1 ^ R2;
//  2. byte shifting separates the flips and corrects them (Fig. 5);
//  3. the full Sec. 4.5 worked example: a spatial fault across bits 5-12
//     of four words in rotation classes 0-3, located by the fault
//     locator's faulty-set peeling and corrected.
package main

import (
	"fmt"
	"log"

	"cppc"
)

// smallCache: 16 direct-mapped 32-byte blocks, one block per physical
// row, per-word dirty bits — vertically adjacent rows are consecutive
// blocks.
func smallCache() cppc.CacheConfig {
	cfg, err := cppc.CacheConfig{
		Name: "demo", SizeBytes: 512, Ways: 1, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		log.Fatal(err)
	}
	return cfg
}

func build(engine cppc.EngineConfig) (*cppc.Controller, *cppc.Engine) {
	c := cppc.NewCache(smallCache())
	scheme, err := cppc.NewCPPC(c, engine)
	if err != nil {
		log.Fatal(err)
	}
	eng, _ := cppc.EngineOf(scheme)
	return cppc.NewController(c, scheme, cppc.NewMemory(32, 100)), eng
}

// rowAddr: word 0 of the block on physical row r.
func rowAddr(r int) uint64 { return uint64(r * 32) }

func main() {
	fmt.Println("=== 1. basic CPPC (no byte shifting) vs a vertical 2-bit fault ===")
	basic := cppc.EngineConfig{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false}
	ctrl, eng := build(basic)
	ctrl.Store(rowAddr(0), 0, 1)
	ctrl.Store(rowAddr(1), 0x8000_0000_0000_0000, 2)
	flip(ctrl, rowAddr(0), 1<<63)
	flip(ctrl, rowAddr(1), 1<<63)
	set, way := ctrl.C.Probe(rowAddr(0))
	rep := eng.RecoverDirty(set, way, 0)
	fmt.Printf("basic CPPC: %v via %q — the flips cancel in R1^R2 (Fig. 4)\n\n",
		rep.Outcome, rep.Method)

	fmt.Println("=== 2. byte shifting corrects the same fault (Fig. 5) ===")
	ctrl, eng = build(cppc.DefaultL1Engine())
	ctrl.Store(rowAddr(0), 0, 1)
	ctrl.Store(rowAddr(1), 0x8000_0000_0000_0000, 2)
	flip(ctrl, rowAddr(0), 1<<63)
	flip(ctrl, rowAddr(1), 1<<63)
	set, way = ctrl.C.Probe(rowAddr(0))
	rep = eng.RecoverDirty(set, way, 0)
	v0 := ctrl.Load(rowAddr(0), 3)
	v1 := ctrl.Load(rowAddr(1), 4)
	fmt.Printf("byte-shifted CPPC: %v; word0=%#x word1=%#x\n\n", rep.Outcome, v0.Value, v1.Value)

	fmt.Println("=== 3. the Sec. 4.5 worked example ===")
	ctrl, eng = build(cppc.DefaultL1Engine())
	want := make([]uint64, 4)
	for r := 0; r < 4; r++ {
		want[r] = uint64(r+1) * 0x0123_4567_89ab_cdef
		ctrl.Store(rowAddr(r), want[r], uint64(r+1))
	}
	// A spatial fault flips bits 5-12 of four vertically adjacent words
	// (classes 0-3): 3 bits in byte 0 and 5 bits in byte 1 of each.
	for r := 0; r < 4; r++ {
		flip(ctrl, rowAddr(r), 0x1FE0)
	}
	fmt.Println("injected: bits 5-12 flipped in rows 0-3 (an 8x8-contained square)")
	set, way = ctrl.C.Probe(rowAddr(0))
	rep = eng.RecoverDirty(set, way, 0)
	fmt.Printf("recovery: %v via %q, %d faulty words found\n",
		rep.Outcome, rep.Method, len(rep.Faulty))
	for r := 0; r < 4; r++ {
		res := ctrl.Load(rowAddr(r), uint64(10+r))
		status := "OK"
		if res.Value != want[r] {
			status = "WRONG"
		}
		fmt.Printf("  row %d: %#016x %s\n", r, res.Value, status)
	}
	fmt.Printf("engine events: %+v\n", eng.Events)
}

func flip(ctrl *cppc.Controller, addr uint64, mask uint64) {
	set, way := ctrl.C.Probe(addr)
	_, _, word := ctrl.C.Decompose(addr)
	ctrl.C.FlipBits(set, way, word, mask)
}
