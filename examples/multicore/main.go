// Multicore: the paper's Sec. 7 future-work scenario — CPPC L1 caches
// under a write-invalidate coherence protocol. Four cores share data;
// remote writes invalidate Modified copies (folding their dirty words into
// R2 on the way out), remote reads force owners to flush and downgrade.
// The run shows the paper's hypothesis live: the more write sharing, the
// fewer read-before-writes CPPC pays.
package main

import (
	"fmt"
	"log"

	"cppc"
)

func main() {
	l1cfg, err := cppc.CacheConfig{
		Name: "mpL1", SizeBytes: 32 << 10, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		log.Fatal(err)
	}
	l2cfg, err := cppc.CacheConfig{
		Name: "mpL2", SizeBytes: 1 << 20, Ways: 4, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		log.Fatal(err)
	}
	mkL1 := func(c *cppc.Cache) cppc.Scheme {
		s, err := cppc.NewCPPC(c, cppc.DefaultL1Engine())
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	mkL2 := func(c *cppc.Cache) cppc.Scheme {
		s, err := cppc.NewCPPC(c, cppc.DefaultL2Engine())
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	fmt.Println("4-core MSI system, CPPC at both levels; sweeping write sharing:")
	fmt.Printf("%12s %12s %14s %14s\n", "shared frac", "RBW/store", "invalidations", "owner flushes")
	for _, sf := range []float64{0, 0.2, 0.4, 0.6} {
		m := cppc.NewMultiprocessor(4, l1cfg, l2cfg, mkL1, mkL2, 200)
		runWorkload(m, sf, 120_000)
		if err := m.CheckCoherent(); err != nil {
			log.Fatal(err)
		}
		st := m.TotalL1Stats()
		fmt.Printf("%12.1f %12.3f %14d %14d\n", sf,
			float64(st.ReadBeforeWrite)/float64(st.Stores),
			m.Stats.Invalidations, m.Stats.OwnerFlushes)
	}
	fmt.Println("\ninvalidations steal dirty blocks before their owners can store over")
	fmt.Println("them again — Sec. 7's predicted read-before-write reduction.")
}

// runWorkload drives the cores with a mix of private traffic and
// contended shared data.
func runWorkload(m *cppc.Multiprocessor, sharedFrac float64, n int) {
	rng := newLCG(42)
	var now uint64
	for i := 0; i < n; i++ {
		now++
		core := i % 4
		var addr uint64
		if rng.float() < sharedFrac {
			addr = uint64(rng.intn(8192)) * 8 // shared region
		} else {
			addr = uint64(64<<10) + uint64(core)*(64<<10) + uint64(rng.intn(8192))*8
		}
		if rng.float() < 0.3 {
			m.Write(core, addr, rng.next(), now)
		} else {
			m.Read(core, addr, now)
		}
	}
}

// newLCG is a tiny deterministic generator so the example needs no seeds
// from the environment.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }
func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}
func (l *lcg) intn(n int) int { return int((l.next() >> 16) % uint64(n)) }
func (l *lcg) float() float64 { return float64(l.next()>>11) / float64(1<<53) }
