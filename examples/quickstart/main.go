// Quickstart: build the paper's L1 CPPC (32KB, 2-way, 8 interleaved
// parity bits per word, one register pair, byte shifting), write some
// dirty data, let a particle strike flip a bit, and watch parity detect
// the fault and the register pair recover it — the Sec. 3.3 scenario.
package main

import (
	"fmt"
	"log"

	"cppc"
)

func main() {
	mem := cppc.NewMemory(32, 200)
	l1 := cppc.NewCache(cppc.L1DConfig())
	scheme, err := cppc.NewCPPC(l1, cppc.DefaultL1Engine())
	if err != nil {
		log.Fatal(err)
	}
	ctrl := cppc.NewController(l1, scheme, mem)

	// The processor stores two words (they become dirty: no copy exists
	// anywhere else).
	var now uint64
	now++
	ctrl.Store(0x1000, 0x0000_0000_0000_0000, now)
	now++
	ctrl.Store(0x1008, 0x8000_0000_0000_0000, now)

	eng, _ := cppc.EngineOf(scheme)
	fmt.Printf("after two stores: R1=%#016x R2=%#016x (R1^R2 = XOR of dirty words)\n",
		eng.R1(0)[0], eng.R2(0)[0])

	// A particle strike flips the MSB of the first word, directly in the
	// SRAM array — the stored parity bits no longer match.
	set, way := l1.Probe(0x1000)
	l1.FlipBits(set, way, 0, 1<<63)
	fmt.Println("injected: MSB of the dirty word at 0x1000 flipped")

	// The next load detects the fault via parity and triggers the
	// recovery algorithm: XOR R1, R2 and every other dirty word.
	now++
	res := ctrl.Load(0x1000, now)
	fmt.Printf("load 0x1000: value=%#x fault=%v\n", res.Value, res.Fault)
	if res.Value != 0 || res.Fault != cppc.FaultCorrectedDirty {
		log.Fatalf("recovery failed: %+v", res)
	}

	if err := eng.CheckInvariant(); err != nil {
		log.Fatalf("register invariant broken after recovery: %v", err)
	}
	fmt.Printf("recovered; engine events: %+v\n", eng.Events)

	// Clean data is even cheaper: corrupt a clean word and the controller
	// simply re-fetches it from the next level (Sec. 3.2).
	mem.WriteWord(0x2000, 0x1234)
	now++
	ctrl.Load(0x2000, now) // bring it in clean
	set, way = l1.Probe(0x2000)
	l1.FlipBits(set, way, 0, 1<<5)
	now++
	res = ctrl.Load(0x2000, now)
	fmt.Printf("clean-word fault: value=%#x fault=%v (re-fetched)\n", res.Value, res.Fault)
}
