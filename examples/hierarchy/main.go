// Hierarchy: a two-level CPPC memory system exactly as evaluated in
// Sec. 6 — a 32KB L1 CPPC with word registers over a 1MB L2 CPPC with
// L1-block-sized registers (Sec. 3.5) — exercised by a synthetic
// workload, with faults injected at both levels and recovered end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cppc"
)

func main() {
	mem := cppc.NewMemory(32, 200)

	l2c := cppc.NewCache(cppc.L2Config())
	l2s, err := cppc.NewCPPC(l2c, cppc.DefaultL2Engine())
	if err != nil {
		log.Fatal(err)
	}
	l2 := cppc.NewController(l2c, l2s, mem)

	l1c := cppc.NewCache(cppc.L1DConfig())
	l1s, err := cppc.NewCPPC(l1c, cppc.DefaultL1Engine())
	if err != nil {
		log.Fatal(err)
	}
	l1 := cppc.NewController(l1c, l1s, l2)

	// Run a write-heavy workload so dirty data accumulates at both levels.
	rng := rand.New(rand.NewSource(42))
	golden := map[uint64]uint64{}
	var now uint64
	for i := 0; i < 200_000; i++ {
		now++
		addr := uint64(rng.Intn(1<<14)) * 8 // 128KB footprint
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			golden[addr] = v
			l1.Store(addr, v, now)
		} else {
			l1.Load(addr, now)
		}
	}
	fmt.Printf("L1: %d accesses, %.1f%% miss, %.1f%% dirty\n",
		l1.Stats.Accesses(), l1.Stats.MissRate()*100, l1c.DirtyFraction()*100)
	fmt.Printf("L2: %d accesses, %.1f%% miss, %.1f%% dirty\n",
		l2.Stats.Accesses(), l2.Stats.MissRate()*100, l2c.DirtyFraction()*100)

	// Inject a burst of faults into dirty L2 blocks (write-backs whose
	// only copy lives in the L2) and remember where they landed.
	injected := 0
	var struck []uint64
	l2c.ForEachDirtyGranule(func(set, way, g int, _ *cppc.Line) {
		if injected < 5 {
			l2c.FlipBits(set, way, g*4, 1<<uint(7*injected))
			struck = append(struck, l2c.BlockAddr(set, way))
			injected++
		}
	})
	fmt.Printf("injected %d single-bit faults into dirty L2 blocks\n", injected)

	// Fetch each struck block through the L2 (an L1 miss path): the L2
	// CPPC verifies parity on the way out. The first recovery's sweep
	// visits every dirty granule, so faults with disjoint parity stripes
	// are all repaired in one pass (Sec. 4.4 step 4).
	buf := make([]uint64, 4)
	for _, addr := range struck {
		now++
		l2.FetchBlock(addr, buf, now)
	}
	e2pre, _ := cppc.EngineOf(l2s)
	fmt.Printf("L2 recovery: %d runs, %d single-word + %d disjoint-set corrections\n",
		e2pre.Events.Recoveries, e2pre.Events.CorrectedSingle, e2pre.Events.CorrectedDisj)

	mismatches := 0
	for addr, want := range golden {
		now++
		if res := l1.Load(addr, now); res.Value != want {
			mismatches++
		}
	}
	fmt.Printf("golden check over %d words: %d mismatches\n", len(golden), mismatches)

	e1, _ := cppc.EngineOf(l1s)
	e2, _ := cppc.EngineOf(l2s)
	if err := e1.CheckInvariant(); err != nil {
		log.Fatalf("L1 invariant: %v", err)
	}
	if err := e2.CheckInvariant(); err != nil {
		log.Fatalf("L2 invariant: %v", err)
	}
	fmt.Println("register invariants hold at both levels")
	if mismatches != 0 || l1.Halted || l2.Halted {
		log.Fatal("end-to-end recovery failed")
	}
}
