// MTTF trade-off: sweeps the two reliability knobs the paper describes —
// parity degree (Sec. 3.4) and register-pair count (Secs. 4.6, 4.7) — and
// prints the resulting temporal-MBE MTTF and aliasing exposure for the
// evaluated L1 and L2, alongside the area cost in storage bits.
package main

import (
	"fmt"

	"cppc"
)

func main() {
	l1 := cppc.PaperL1Params()
	l2 := cppc.PaperL2Params()

	fmt.Println("Baselines (paper Table 3):")
	fmt.Printf("  parity-1d: L1 %.0f years, L2 %.0f years\n",
		cppc.Parity1DMTTFYears(l1), cppc.Parity1DMTTFYears(l2))
	fmt.Printf("  secded:    L1 %.2e years, L2 %.2e years\n\n",
		cppc.DoubleFaultMTTFYears(l1, cppc.SECDEDDomains(l1, 64)),
		cppc.DoubleFaultMTTFYears(l2, cppc.SECDEDDomains(l2, 256)))

	fmt.Println("CPPC design space: MTTF vs. parity degree and register pairs")
	fmt.Printf("%7s %6s %14s %14s %16s %13s\n",
		"degree", "pairs", "L1 MTTF (yr)", "L2 MTTF (yr)", "alias MTTF (yr)", "storage bits")
	for _, degree := range []int{1, 2, 4, 8} {
		for _, pairs := range []int{1, 2, 4, 8} {
			domains := cppc.CPPCDomains(degree, pairs)
			alias := "eliminated"
			if bits := cppc.AliasBitsForPairs(pairs); bits > 0 {
				alias = fmt.Sprintf("%.2e", cppc.AliasingMTTFYears(l2, bits))
			}
			// Storage: parity bits over the whole L1 plus two registers
			// per pair (Sec. 5.1's area argument).
			l1cfg := cppc.L1DConfig()
			words := l1cfg.SizeBytes / 8
			storage := words*degree + pairs*2*64
			fmt.Printf("%7d %6d %14.2e %14.2e %16s %13d\n",
				degree, pairs,
				cppc.DoubleFaultMTTFYears(l1, domains),
				cppc.DoubleFaultMTTFYears(l2, domains),
				alias, storage)
		}
	}
	fmt.Println("\nReading the table: doubling the domain count doubles MTTF;")
	fmt.Println("eight pairs also eliminate the Sec. 4.7 aliasing SDC hazard —")
	fmt.Println("the paper's area/reliability dial, adjustable per design.")
}
