// Package cppc is a library-level reproduction of "CPPC: Correctable
// Parity Protected Cache" (Manoochehri, Annavaram, Dubois — ISCA 2011).
//
// CPPC adds error *correction* to a parity-protected write-back cache by
// attaching one or more pairs of XOR registers: R1 accumulates every word
// written into the cache, R2 every dirty word removed from it, so R1^R2
// always equals the XOR of all dirty data. Parity detects a fault; the
// registers and the other dirty words reconstruct the lost value. Byte
// shifting and interleaved parity extend correction to spatial multi-bit
// errors inside an 8x8 square.
//
// The package exposes the full evaluation stack of the paper:
//
//   - a write-back set-associative cache model with real contents
//     (NewCache, NewMemory);
//   - the CPPC engine and the three comparison schemes — one-dimensional
//     parity, SECDED, two-dimensional parity — behind one Scheme
//     interface (NewCPPC, NewParity1D, NewSECDED, NewTwoDim);
//   - a Controller that drives a protected cache level and stacks into
//     hierarchies;
//   - fault injection (temporal and spatial) with golden-comparison
//     outcome classification;
//   - the out-of-order timing model, CACTI-like energy model, analytical
//     MTTF models and synthetic SPEC2000-like workloads behind the
//     experiment harness that regenerates every table and figure of the
//     paper (see cmd/repro).
//
// Quick start: examples/quickstart builds an L1 CPPC, injects a fault in
// dirty data, and watches the recovery algorithm restore it.
package cppc

import (
	"cppc/internal/cache"
	"cppc/internal/coherence"
	"cppc/internal/core"
	"cppc/internal/protect"
	"cppc/internal/reliability"
)

// Re-exported configuration and engine types. These are aliases, so
// values flow freely between the facade and the internal packages.
type (
	// CacheConfig describes one cache level (size, ways, block size,
	// dirty granularity, latency).
	CacheConfig = cache.Config
	// Cache is the tag+data array model.
	Cache = cache.Cache
	// Memory is the golden backing store.
	Memory = cache.Memory
	// Backing is anything a cache level can fetch from and write back to.
	Backing = cache.Backing
	// Stats counts cache and protection events.
	Stats = cache.Stats
	// Line is one cache block with its data, check bits and dirty state.
	Line = cache.Line

	// EngineConfig selects a CPPC design point: parity degree, register
	// pairs, byte shifting.
	EngineConfig = core.Config
	// Engine is the CPPC protection engine (registers, recovery, fault
	// locator).
	Engine = core.Engine
	// RecoveryReport describes one recovery run.
	RecoveryReport = core.Report

	// Scheme is a cache-protection policy.
	Scheme = protect.Scheme
	// Controller drives one protected cache level.
	Controller = protect.Controller
	// FaultStatus classifies what a load encountered.
	FaultStatus = protect.FaultStatus
	// AccessResult reports one load or store.
	AccessResult = protect.AccessResult
)

// Fault statuses.
const (
	FaultNone           = protect.FaultNone
	FaultCorrectedClean = protect.FaultCorrectedClean
	FaultCorrectedDirty = protect.FaultCorrectedDirty
	FaultDUE            = protect.FaultDUE
)

// Recovery outcomes.
const (
	OutcomeCorrected = core.OutcomeCorrected
	OutcomeDUE       = core.OutcomeDUE
)

// Standard cache configurations from the paper's Table 1.
func L1DConfig() CacheConfig { return cache.L1DConfig() }
func L2Config() CacheConfig  { return cache.L2Config() }

// Standard CPPC design points.
func DefaultL1Engine() EngineConfig      { return core.DefaultL1Config() }
func DefaultL2Engine() EngineConfig      { return core.DefaultL2Config() }
func FullCorrectionEngine() EngineConfig { return core.FullCorrectionConfig() }

// NewCache builds an empty cache from a validated config.
func NewCache(cfg CacheConfig) *Cache { return cache.New(cfg) }

// NewMemory builds a golden backing memory serving blocks of the given
// size with the given fetch latency in cycles.
func NewMemory(blockBytes, latencyCycles int) *Memory {
	return cache.NewMemory(blockBytes, latencyCycles)
}

// NewCPPC attaches a CPPC engine to a cache and returns it as a Scheme.
func NewCPPC(c *Cache, cfg EngineConfig) (Scheme, error) { return protect.NewCPPC(c, cfg) }

// NewParity1D attaches detection-only interleaved parity.
func NewParity1D(c *Cache, degree int) Scheme { return protect.NewParity1D(c, degree) }

// NewSECDED attaches an extended-Hamming SECDED code sized to the cache's
// dirty granule; interleaved selects 8-way physical bit interleaving.
func NewSECDED(c *Cache, interleaved bool) Scheme { return protect.NewSECDED(c, interleaved) }

// NewTwoDim attaches two-dimensional parity (horizontal interleaved
// parity plus one vertical parity row).
func NewTwoDim(c *Cache, degree int) Scheme { return protect.NewTwoDim(c, degree) }

// NewController wires a cache, a scheme and the next level together.
func NewController(c *Cache, s Scheme, next Backing) *Controller {
	return protect.NewController(c, s, next)
}

// EngineOf returns the CPPC engine behind a Scheme created by NewCPPC,
// for register inspection, invariant checks and direct recovery calls; ok
// is false for non-CPPC schemes.
func EngineOf(s Scheme) (*Engine, bool) {
	cs, ok := s.(*protect.CPPCScheme)
	if !ok {
		return nil, false
	}
	return cs.Engine, true
}

// Multiprocessor types (the Sec. 7 extension): N private L1 caches under
// write-invalidate MSI coherence over a shared L2.
type (
	// Multiprocessor is the coherent multi-core system.
	Multiprocessor = coherence.Multiprocessor
	// CoherenceStats counts protocol events.
	CoherenceStats = coherence.Stats
)

// NewMultiprocessor builds an n-core coherent system; mkL1/mkL2 build each
// level's protection scheme.
func NewMultiprocessor(n int, l1cfg, l2cfg CacheConfig,
	mkL1, mkL2 func(*Cache) Scheme, memLatency int) *Multiprocessor {
	return coherence.New(n, l1cfg, l2cfg, mkL1, mkL2, memLatency)
}

// TagEngine is the Sec. 7 tag-array extension: XOR registers over the tag
// array, with no read-before-write (tags are read-only until replaced).
type TagEngine = core.TagEngine

// NewTagEngine attaches tag protection to a cache.
func NewTagEngine(c *Cache, cfg EngineConfig) (*TagEngine, error) {
	return core.NewTagEngine(c, cfg)
}

// ReliabilityParams feeds the analytical MTTF models of Sec. 6.3.
type ReliabilityParams = reliability.Params

// Reliability model entry points (Table 3 and Sec. 4.7).
var (
	// Parity1DMTTFYears: detection-only parity fails on the first dirty
	// fault.
	Parity1DMTTFYears = reliability.Parity1DMTTFYears
	// DoubleFaultMTTFYears: CPPC/SECDED double-fault-in-interval model.
	DoubleFaultMTTFYears = reliability.DoubleFaultMTTFYears
	// AliasingMTTFYears: the Sec. 4.7 temporal-aliasing SDC hazard.
	AliasingMTTFYears = reliability.AliasingMTTFYears
	// CPPCDomains: protection domains for a CPPC design point.
	CPPCDomains = reliability.CPPCDomains
	// SECDEDDomains: protection domains for per-granule SECDED.
	SECDEDDomains = reliability.SECDEDDomains
	// AliasBitsForPairs: aliasing-vulnerable positions per pair count.
	AliasBitsForPairs = reliability.AliasBitsForPairs
	// PaperL1Params and PaperL2Params: Table 2's published inputs.
	PaperL1Params = reliability.PaperL1Params
	PaperL2Params = reliability.PaperL2Params
)
