module cppc

go 1.22
