// Command cppcsim runs one benchmark on one protection scheme through the
// Table 1 processor and memory hierarchy, printing CPI, cache statistics
// and dynamic energy:
//
//	cppcsim -bench mcf -scheme cppc
//	cppcsim -bench gzip -scheme parity-2d -n 2000000
//	cppcsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"cppc/internal/cache"
	"cppc/internal/energy"
	"cppc/internal/experiments"
	"cppc/internal/tables"
	"cppc/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "gzip", "benchmark profile name")
		scheme = flag.String("scheme", "cppc", "protection: parity-1d, cppc, secded, parity-2d")
		n      = flag.Int("n", 1_500_000, "instructions to measure")
		warmup = flag.Int("warmup", 500_000, "instructions to warm the caches")
		seed   = flag.Int64("seed", 1, "workload seed")
		list   = flag.Bool("list", false, "list benchmark profiles and exit")
		record = flag.String("record", "", "write the benchmark's instruction trace to this file and exit")
		replay = flag.String("tracefile", "", "replay a recorded trace instead of a synthetic benchmark")
	)
	flag.Parse()

	if *record != "" {
		prof, ok := trace.ProfileByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *bench)
			os.Exit(1)
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteTrace(f, prof.NewGen(*seed), *warmup+*n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", *warmup+*n, *bench, *record)
		return
	}

	if *list {
		t := tables.New("benchmark profiles", "name", "loads", "stores", "working set", "note")
		for _, p := range trace.Profiles() {
			note := ""
			switch p.Name {
			case "mcf":
				note = "miss-heavy (paper: ~80% L2 miss rate)"
			case "swim", "mgrid", "applu":
				note = "FP streaming"
			}
			t.Addf(p.Name, p.LoadFrac, p.StoreFrac,
				fmt.Sprintf("%dKB", p.WorkingSetBytes/1024), note)
		}
		fmt.Print(t.String())
		return
	}

	var id experiments.SchemeID
	switch *scheme {
	case "parity-1d":
		id = experiments.Parity1D
	case "cppc":
		id = experiments.CPPC
	case "secded":
		id = experiments.SECDED
	case "parity-2d":
		id = experiments.TwoDim
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(1)
	}
	budget := experiments.Budget{Warmup: *warmup, Measure: *n, Seed: *seed}

	var run experiments.Run
	workload := *bench
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src, perr := trace.ParseTrace(f)
		f.Close()
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			os.Exit(1)
		}
		workload = *replay
		run = experiments.SimulateSource(workload, src, id, budget)
	} else {
		prof, ok := trace.ProfileByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *bench)
			os.Exit(1)
		}
		run = experiments.Simulate(prof, id, budget)
	}

	t := tables.New(fmt.Sprintf("%s on %s (%d instructions)", *scheme, workload, *n),
		"metric", "L1", "L2")
	t.Addf("CPI", fmt.Sprintf("%.3f", run.CPI), "")
	t.Addf("accesses", run.L1.Accesses(), run.L2.Accesses())
	t.Addf("miss rate", tables.Pct(run.L1.MissRate()), tables.Pct(run.L2.MissRate()))
	t.Addf("read-before-writes", run.L1.ReadBeforeWrite, run.L2.ReadBeforeWrite)
	t.Addf("write-backs", run.L1.WriteBack, run.L2.WriteBack)
	t.Addf("dirty fraction", tables.Pct(run.L1Gran.Dirty), tables.Pct(run.L2Gran.Dirty))
	t.Addf("Tavg (cycles)", fmt.Sprintf("%.0f", run.L1Gran.Tavg), fmt.Sprintf("%.0f", run.L2Gran.Tavg))

	l1m := energy.New(cache.L1DConfig(), 8, 1)
	l2m := energy.New(cache.L2Config(), 8, 1)
	e1 := energy.Count(run.L1, l1m, 1, run.Folds.L1)
	e2 := energy.Count(run.L2, l2m, 4, run.Folds.L2)
	t.Addf("dynamic energy (uJ)",
		fmt.Sprintf("%.2f", e1.Total()/1e6), fmt.Sprintf("%.2f", e2.Total()/1e6))
	fmt.Print(t.String())
}
