// Command bench is the repository's benchmark-regression harness. It
// measures the figure pipelines and protection hot paths with
// testing.Benchmark, compares the results against the newest committed
// BENCH_<n>.json, and fails (exit 1) when any entry regresses beyond the
// tolerance — in ns/op, or at all in allocs/op for the allocation-free
// paths. With -write it records a new BENCH_<n+1>.json to become the next
// baseline.
//
//	go run ./cmd/bench                 # compare against the latest BENCH_<n>.json
//	go run ./cmd/bench -tolerance 0.5  # looser gate (noisy CI runners)
//	go run ./cmd/bench -write          # record BENCH_<n+1>.json
//
// Numbers depend on the host; regenerate the baseline on the machine that
// will compare against it, or keep the tolerance generous.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"time"

	"cppc/internal/bitops"
	"cppc/internal/cache"
	"cppc/internal/cellstore"
	"cppc/internal/core"
	"cppc/internal/experiments"
	"cppc/internal/parity"
	"cppc/internal/protect"
	"cppc/internal/service"
	"cppc/internal/trace"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// File is the BENCH_<n>.json schema.
type File struct {
	Schema  int               `json:"schema"`
	Go      string            `json:"go"`
	Arch    string            `json:"arch"`
	Results map[string]Result `json:"results"`
}

func benchBudget() experiments.Budget {
	return experiments.Budget{Warmup: 20_000, Measure: 60_000, Seed: 1}
}

func benchProfiles() []trace.Profile {
	var out []trace.Profile
	for _, name := range []string{"crafty", "vortex", "mcf"} {
		p, ok := trace.ProfileByName(name)
		if !ok {
			panic("missing profile " + name)
		}
		out = append(out, p)
	}
	return out
}

// benchDisk builds a throwaway disk cell store; the caller removes dir.
func benchDisk() (*cellstore.Disk, string) {
	dir, err := os.MkdirTemp("", "cppc-bench-disk-*")
	if err != nil {
		panic(fmt.Sprintf("disk store tempdir: %v", err))
	}
	d, err := cellstore.NewDisk(dir, 0)
	if err != nil {
		os.RemoveAll(dir)
		panic(fmt.Sprintf("disk store: %v", err))
	}
	return d, dir
}

// benchCellPayload is a typical encoded cell: a few KB of JSON-ish bytes.
func benchCellPayload() []byte {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte('a' + i%26)
	}
	return data
}

func newHotController() *protect.Controller {
	c := cache.New(cache.L1DConfig())
	s := protect.MustCPPC(c, core.DefaultL1Config())
	return protect.NewController(c, s, cache.NewMemory(32, 200))
}

// entries lists the gated benchmarks: the end-to-end figure pipeline the
// tentpole optimized, the two allocation-free hot paths, and the decode
// kernels. Order is the report order.
var entries = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"Figure10CPI", func(b *testing.B) {
		b.ReportAllocs()
		bud := benchBudget()
		for i := 0; i < b.N; i++ {
			for _, p := range benchProfiles() {
				base := experiments.Simulate(p, experiments.Parity1D, bud)
				cp := experiments.Simulate(p, experiments.CPPC, bud)
				td := experiments.Simulate(p, experiments.TwoDim, bud)
				if cp.CPI < base.CPI*0.99 || td.CPI < base.CPI*0.99 {
					panic("CPI ordering broken")
				}
			}
		}
	}},
	{"LoadHitCPPC", func(b *testing.B) {
		b.ReportAllocs()
		ctrl := newHotController()
		ctrl.Store(0x40, 1, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctrl.Load(0x40, uint64(i+2))
		}
	}},
	{"StoreHitCPPC", func(b *testing.B) {
		b.ReportAllocs()
		ctrl := newHotController()
		ctrl.Store(0x40, 1, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctrl.Store(0x40, uint64(i), uint64(i+2))
		}
	}},
	{"FoldLine", func(b *testing.B) {
		b.ReportAllocs()
		// A full 8-word (64-byte) line: the multi-accumulator kernel's
		// widest committed shape, tracked independently of the CPI
		// benchmarks that amortize it.
		line := make([]uint64, 8)
		for i := range line {
			line[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
		}
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= bitops.FoldLine(line)
		}
		if sink == 42 {
			panic("fold sink")
		}
	}},
	{"GranuleParity", func(b *testing.B) {
		b.ReportAllocs()
		eng, err := core.New(cache.New(cache.L1DConfig()), core.DefaultL1Config())
		if err != nil {
			panic(err)
		}
		data := []uint64{0xdeadbeefcafebabe}
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink ^= eng.GranuleParity(data)
		}
		if sink == 1<<63 {
			panic("parity sink")
		}
	}},
	{"SECDEDDecode", func(b *testing.B) {
		b.ReportAllocs()
		var s parity.SECDED
		w := uint64(0xdeadbeefcafebabe)
		check := s.Encode(w)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := s.Decode(w, check); res.Outcome != parity.SECDEDClean {
				panic("decode broke")
			}
		}
	}},
	{"HammingDecode256", func(b *testing.B) {
		b.ReportAllocs()
		h := parity.MustHamming(256)
		data := []uint64{1, 2, 3, 4}
		check := h.Encode(data)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := h.Decode(data, check); res.Outcome != parity.SECDEDClean {
				panic("decode broke")
			}
		}
	}},
	{"CellStoreDiskPut", func(b *testing.B) {
		b.ReportAllocs()
		d, dir := benchDisk()
		defer os.RemoveAll(dir)
		data := benchCellPayload()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Put(fmt.Sprintf("%064x", i), data)
		}
	}},
	{"CellStoreDiskGet", func(b *testing.B) {
		b.ReportAllocs()
		d, dir := benchDisk()
		defer os.RemoveAll(dir)
		data := benchCellPayload()
		const entries = 256
		for i := 0; i < entries; i++ {
			d.Put(fmt.Sprintf("%064x", i), data)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := d.Get(fmt.Sprintf("%064x", i%entries)); !ok {
				panic("disk store lost a cell")
			}
		}
	}},
	{"ShardedSuite1", func(b *testing.B) { runShardedSuite(b, 1) }},
	{"ShardedSuite8", func(b *testing.B) { runShardedSuite(b, 8) }},
	{"MulticoreCPI", func(b *testing.B) {
		b.ReportAllocs()
		p, ok := trace.ProfileByName("gzip")
		if !ok {
			panic("missing profile gzip")
		}
		bud := experiments.Budget{Warmup: 5_000, Measure: 15_000, Seed: 1}
		for i := 0; i < b.N; i++ {
			run, err := experiments.MulticoreCell(p, 2, 0.3, false, bud)
			if err != nil || run.CPI <= 0 {
				panic(fmt.Sprintf("multicore cell broke: cpi=%v err=%v", run.CPI, err))
			}
		}
	}},
	{"MulticoreEnergy", func(b *testing.B) {
		b.ReportAllocs()
		// The silent-store variant of the multicore cell: same timing, but
		// the energy accounting path (per-engine fold/elision counts, three
		// energy reports, bus model) is exercised end to end. Guards the
		// cost of the elision compare on the store path and of the
		// post-measure energy accounting.
		p, ok := trace.ProfileByName("gzip")
		if !ok {
			panic("missing profile gzip")
		}
		bud := experiments.Budget{Warmup: 5_000, Measure: 15_000, Seed: 1}
		for i := 0; i < b.N; i++ {
			run, err := experiments.MulticoreCell(p, 2, 0.3, true, bud)
			if err != nil || run.TotalEnergyPJ() <= 0 {
				panic(fmt.Sprintf("multicore energy cell broke: e=%v err=%v", run.TotalEnergyPJ(), err))
			}
		}
	}},
	{"FieldMC", func(b *testing.B) {
		b.ReportAllocs()
		// One field-mix grid cell (populate + exercise + probe per
		// trial): the persistence hook's end-to-end cost, gated so the
		// fault-plane consult stays off the floor of the read path.
		pt := experiments.FieldPoint{Footprint: "word", Lifetime: "stuck", Rate: "x1"}
		for i := 0; i < b.N; i++ {
			cell, err := experiments.FieldMCCellCtx(context.Background(), "cppc", pt, 4, 1)
			if err != nil || cell.Counts.Total() != 4 {
				panic(fmt.Sprintf("fieldmc cell broke: %+v err=%v", cell, err))
			}
		}
	}},
	{"MonteCarloMTTF", func(b *testing.B) {
		b.ReportAllocs()
		// One accelerated-rate lifetime cell (the montecarlo job kind's
		// unit of work): gates the arena-reuse cost of the trial executor
		// on the longest-running campaign type.
		for i := 0; i < b.N; i++ {
			cell, err := experiments.MonteCarloCellCtx(context.Background(), "parity-1d", 4, 1)
			if err != nil || cell.Res.Trials != 4 {
				panic(fmt.Sprintf("montecarlo cell broke: %+v err=%v", cell, err))
			}
		}
	}},
	{"FieldMCParallel8", func(b *testing.B) {
		b.ReportAllocs()
		// The FieldMC cell with an 8-worker trial budget: wall clock of
		// the fan-out path, including executor overhead. On one core this
		// tracks FieldMC (same trials, plus goroutine bookkeeping); with
		// the cores present it shows the parallel win.
		ctx := experiments.WithCellWorkers(context.Background(), 8)
		pt := experiments.FieldPoint{Footprint: "word", Lifetime: "stuck", Rate: "x1"}
		for i := 0; i < b.N; i++ {
			cell, err := experiments.FieldMCCellCtx(ctx, "cppc", pt, 16, 1)
			if err != nil || cell.Counts.Total() != 16 {
				panic(fmt.Sprintf("fieldmc parallel cell broke: %+v err=%v", cell, err))
			}
		}
	}},
	{"L3CPI", func(b *testing.B) {
		b.ReportAllocs()
		p, ok := trace.ProfileByName("mcf")
		if !ok {
			panic("missing profile mcf")
		}
		bud := experiments.Budget{Warmup: 5_000, Measure: 15_000, Seed: 1}
		for i := 0; i < b.N; i++ {
			run, err := experiments.L3Cell(context.Background(), p, bud)
			if err != nil || run.ParityCPI <= 0 {
				panic(fmt.Sprintf("L3 cell broke: cpi=%v err=%v", run.ParityCPI, err))
			}
		}
	}},
}

// runShardedSuite measures the wall clock of one whole suite job through
// the daemon's shard scheduler. A fresh Service per iteration keeps both
// caches cold, so the number is scheduling plus simulation rather than
// cache lookups; the 8-vs-1 worker pair shows the fan-out win on
// machines that have the cores.
func runShardedSuite(b *testing.B, workers int) {
	b.ReportAllocs()
	spec := service.JobSpec{Kind: "suite", Warmup: 5_000, Measure: 15_000}
	for i := 0; i < b.N; i++ {
		s := service.New(service.Config{Workers: workers})
		job, err := s.Submit(spec)
		if err != nil {
			panic(fmt.Sprintf("sharded suite submit: %v", err))
		}
		for {
			j, err := s.Job(job.ID)
			if err != nil {
				panic(fmt.Sprintf("sharded suite poll: %v", err))
			}
			if j.State == service.StateDone {
				break
			}
			if j.State == service.StateFailed || j.State == service.StateCanceled {
				panic(fmt.Sprintf("sharded suite job %s: %s", j.State, j.Error))
			}
			time.Sleep(time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := s.Shutdown(ctx); err != nil {
			panic(fmt.Sprintf("sharded suite shutdown: %v", err))
		}
		cancel()
	}
}

var benchRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latest returns the highest-numbered BENCH_<n>.json in dir and its n,
// or n == 0 if none exists.
func latest(dir string) (string, int, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	best := 0
	bestName := ""
	for _, e := range names {
		m := benchRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > best {
			best, bestName = n, e.Name()
		}
	}
	return bestName, best, nil
}

func measure() map[string]Result {
	out := make(map[string]Result, len(entries))
	for _, e := range entries {
		fmt.Printf("running %-20s ... ", e.name)
		r := testing.Benchmark(e.fn)
		res := Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		fmt.Printf("%12.1f ns/op  %6d allocs/op\n", res.NsPerOp, res.AllocsPerOp)
		out[e.name] = res
	}
	return out
}

// compare reports every regression of cur vs base beyond tol (fractional,
// e.g. 0.25 = +25%). Alloc counts are gated with the same rule, which for
// a zero-alloc baseline means any allocation at all fails.
func compare(base, cur map[string]Result, tol float64) []string {
	var bad []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: present in baseline but not measured", name))
			continue
		}
		if c.NsPerOp > b.NsPerOp*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (+%.0f%%, tolerance %.0f%%)",
				name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*tol))
		}
		if float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op vs baseline %d",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return bad
}

// deltaTable renders every baseline benchmark's baseline/current numbers
// side by side, so a failing comparison shows the whole picture — which
// entries regressed, by how much, and what stayed put — instead of only
// the offenders.
func deltaTable(base, cur map[string]Result) string {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	out := fmt.Sprintf("  %-20s %14s %14s %8s %16s\n",
		"benchmark", "base ns/op", "cur ns/op", "delta", "allocs base/cur")
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			out += fmt.Sprintf("  %-20s %14.1f %14s %8s %16s\n",
				name, b.NsPerOp, "-", "-", "-")
			continue
		}
		out += fmt.Sprintf("  %-20s %14.1f %14.1f %+7.1f%% %10d/%d\n",
			name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1),
			b.AllocsPerOp, c.AllocsPerOp)
	}
	return out
}

func main() {
	var (
		dir   = flag.String("dir", ".", "directory holding BENCH_<n>.json baselines")
		tol   = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression before failing")
		write = flag.Bool("write", false, "record the measurements as the next BENCH_<n>.json")
	)
	flag.Parse()

	baseName, n, err := latest(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}

	cur := measure()

	if baseName != "" {
		raw, err := os.ReadFile(filepath.Join(*dir, baseName))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		var base File
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", baseName, err)
			os.Exit(2)
		}
		if bad := compare(base.Results, cur, *tol); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "bench: regressions vs %s:\n", baseName)
			for _, m := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", m)
			}
			fmt.Fprintf(os.Stderr, "bench: full comparison vs %s:\n%s", baseName, deltaTable(base.Results, cur))
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", baseName, 100**tol)
	} else {
		fmt.Println("no BENCH_<n>.json baseline found; nothing to compare")
	}

	if *write {
		out := File{Schema: 1, Go: runtime.Version(), Arch: runtime.GOOS + "/" + runtime.GOARCH, Results: cur}
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		name := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", n+1))
		if err := os.WriteFile(name, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", name)
	}
}
