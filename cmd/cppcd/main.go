// Command cppcd serves the simulator as a long-running HTTP daemon:
// submit simulation jobs (the paper's figure/table matrix, single-cell
// simulations, Monte-Carlo fault campaigns), poll or stream their
// progress, and fetch cached results for free on resubmission.
//
//	cppcd                          # listen on :8322
//	cppcd -addr :9000 -workers 4   # bounded worker pool
//
//	curl -s localhost:8322/jobs -d '{"kind":"suite","budget":"quick","figures":["fig10"]}'
//	curl -s localhost:8322/jobs/job-1
//	curl -s localhost:8322/jobs/job-1/result
//	curl -s localhost:8322/metrics
//
// SIGINT/SIGTERM stop the listener and drain in-flight jobs (bounded by
// -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cppc/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8322", "listen address")
		workers   = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "queued jobs beyond the running ones")
		cacheSz   = flag.Int("cache", 256, "retained results in the content-addressed cache")
		drain     = flag.Duration("drain", 2*time.Minute, "max time to drain in-flight jobs on shutdown")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	svc := service.New(service.Config{Workers: *workers, QueueSize: *queue, CacheSize: *cacheSz})
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(svc).Handler()}

	if *pprofAddr != "" {
		// Profiling stays off the job-facing listener so exposing the
		// service never exposes the profiler; bind -pprof to localhost.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("cppcd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("cppcd: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("cppcd: listening on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queue, *cacheSz)

	select {
	case err := <-errc:
		log.Fatalf("cppcd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("cppcd: shutting down, draining jobs (up to %v)...", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the pool.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("cppcd: http shutdown: %v", err)
		_ = srv.Close()
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("cppcd: drain deadline hit, canceled remaining jobs")
		} else {
			log.Printf("cppcd: drain: %v", err)
		}
	}
	log.Printf("cppcd: bye")
}
