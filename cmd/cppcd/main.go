// Command cppcd serves the simulator as a long-running HTTP daemon:
// submit simulation jobs (the paper's figure/table matrix, single-cell
// simulations, Monte-Carlo fault campaigns), poll or stream their
// progress, and fetch cached results for free on resubmission.
//
//	cppcd                          # listen on :8322
//	cppcd -addr :9000 -workers 4   # bounded worker pool
//	cppcd -data-dir /var/lib/cppc  # cell results survive restarts
//	cppcd -peers http://b:8322     # share the cell cache with daemon b
//	cppcd -peers ... -fleet-token s3cret   # require the secret on /fleet/*
//
//	curl -s localhost:8322/jobs -d '{"kind":"suite","budget":"quick","figures":["fig10"]}'
//	curl -s localhost:8322/jobs/job-1
//	curl -s localhost:8322/jobs/job-1/result
//	curl -s localhost:8322/metrics
//
// SIGINT/SIGTERM stop the listener and drain in-flight jobs (bounded by
// -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cppc/internal/cellstore"
	"cppc/internal/fleet"
	"cppc/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8322", "listen address")
		workers   = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "queued jobs beyond the running ones")
		cacheSz   = flag.Int("cache", 256, "retained results in the content-addressed cache")
		drain     = flag.Duration("drain", 2*time.Minute, "max time to drain in-flight jobs on shutdown")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		dataDir     = flag.String("data-dir", "", "directory for the disk cell store; empty keeps cells in memory only")
		dataMax     = flag.Int64("data-max", cellstore.DefaultDiskMaxBytes, "disk cell store size bound in bytes")
		peersFlag   = flag.String("peers", "", "comma-separated peer base URLs (e.g. http://b:8322,http://c:8322); empty disables fleet mode")
		peerTimeout = flag.Duration("peer-timeout", 5*time.Second, "budget to wait on a peer before falling back to local execution")
		fleetID     = flag.String("fleet-id", "", "node ID for fleet claim tie-breaks (default hostname+addr)")
		fleetToken  = flag.String("fleet-token", "", "shared secret required on /fleet/* requests; every daemon in the fleet must use the same value (empty disables auth)")
	)
	flag.Parse()

	// Cell store tiers: memory in front, disk behind it when -data-dir is
	// set, so a restarted daemon serves yesterday's cells as cache hits.
	var store cellstore.Store = cellstore.NewMemory(0)
	if *dataDir != "" {
		disk, err := cellstore.NewDisk(*dataDir, *dataMax)
		if err != nil {
			log.Fatalf("cppcd: disk store at %s: %v", *dataDir, err)
		}
		store = cellstore.NewTiered(store, disk)
		log.Printf("cppcd: disk cell store at %s (bound %d bytes)", *dataDir, *dataMax)
	}

	svc := service.New(service.Config{Workers: *workers, QueueSize: *queue, CacheSize: *cacheSz, Store: store})

	mux := http.NewServeMux()
	mux.Handle("/", service.NewServer(svc).Handler())

	// Fleet mode: mount the peer protocol next to the job API and hand
	// the service its coordinator before traffic arrives.
	var node *fleet.Node
	if *peersFlag != "" {
		var peers []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, strings.TrimSuffix(p, "/"))
			}
		}
		self := *fleetID
		if self == "" {
			host, _ := os.Hostname()
			self = host + *addr
		}
		node = fleet.New(fleet.Config{
			Self:        self,
			Peers:       peers,
			Local:       store,
			Exec:        svc,
			PeerTimeout: *peerTimeout,
			Token:       *fleetToken,
			Logf:        log.Printf,
		})
		svc.SetCoordinator(node)
		mux.Handle("/fleet/", node.Handler())
		log.Printf("cppcd: fleet mode as %q with %d peers (peer timeout %v)", self, len(peers), *peerTimeout)
	}

	srv := &http.Server{Addr: *addr, Handler: mux}

	if *pprofAddr != "" {
		// Profiling stays off the job-facing listener so exposing the
		// service never exposes the profiler; bind -pprof to localhost.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("cppcd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("cppcd: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if node != nil {
		// Only poll peers once our own /fleet/ routes are being served.
		node.Start()
	}
	log.Printf("cppcd: listening on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queue, *cacheSz)

	select {
	case err := <-errc:
		log.Fatalf("cppcd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("cppcd: shutting down, draining jobs (up to %v)...", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if node != nil {
		// Stop stealing before the drain so no new cells land here.
		node.Close()
	}
	// Stop the listener first so no new jobs arrive, then drain the pool.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("cppcd: http shutdown: %v", err)
		_ = srv.Close()
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("cppcd: drain deadline hit, canceled remaining jobs")
		} else {
			log.Printf("cppcd: drain: %v", err)
		}
	}
	if err := store.Close(); err != nil {
		log.Printf("cppcd: store close: %v", err)
	}
	log.Printf("cppcd: bye")
}
