// Command repro regenerates every table and figure of the paper's
// evaluation section plus the quantitative claims of Secs. 4.6-4.8:
//
//	repro                  # everything, default budget
//	repro -quick           # smaller instruction budget
//	repro -table1 -fig10   # selected experiments only
//
// Output is textual tables; EXPERIMENTS.md records a reference run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"cppc/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use the reduced instruction budget")
		seed     = flag.Int64("seed", 1, "workload seed")
		trials   = flag.Int("trials", 20, "Monte-Carlo trials per fault shape")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations in the suite and trial workers per fault campaign")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		table1   = flag.Bool("table1", false, "print Table 1 (configuration)")
		fig10    = flag.Bool("fig10", false, "reproduce Figure 10 (CPI)")
		fig11    = flag.Bool("fig11", false, "reproduce Figure 11 (L1 energy)")
		fig12    = flag.Bool("fig12", false, "reproduce Figure 12 (L2 energy)")
		table2   = flag.Bool("table2", false, "reproduce Table 2 (dirty data)")
		table3   = flag.Bool("table3", false, "reproduce Table 3 (MTTF)")
		sec47    = flag.Bool("sec47", false, "reproduce Sec. 4.7 (aliasing MTTF)")
		sec48    = flag.Bool("sec48", false, "reproduce Sec. 4.8 (barrel shifter)")
		sec7     = flag.Bool("sec7", false, "Sec. 7 multiprocessor extension (coherence vs. RBW)")
		sec51    = flag.Bool("sec51", false, "Sec. 5.1 area comparison")
		mc       = flag.Bool("montecarlo", false, "PARMA-style Monte-Carlo validation of the MTTF models")
		fieldmc  = flag.Bool("fieldmc", false, "field-mix fault campaign: footprint x lifetime x rate grid (opt-in, not part of the default run)")
		l3       = flag.Bool("l3", false, "Sec. 7 L3 CPPC study")
		csv      = flag.Bool("csv", false, "emit the figures as CSV instead of text tables")
		coverage = flag.Bool("coverage", false, "spatial coverage matrices (Secs. 4.6/4.11)")
		ablate   = flag.Bool("ablate", false, "register-pair and parity-degree ablations")
	)
	flag.Parse()

	// SIGINT/SIGTERM (and -timeout) cancel the context; the simulation
	// loops poll it, so an interrupted run exits cleanly mid-suite
	// instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "repro: interrupted: %v\n", err)
		os.Exit(1)
	}
	checkCtx := func() {
		if err := ctx.Err(); err != nil {
			fail(err)
		}
	}
	all := !(*table1 || *fig10 || *fig11 || *fig12 || *table2 || *table3 ||
		*sec47 || *sec48 || *sec7 || *sec51 || *mc || *fieldmc || *l3 || *coverage || *ablate)

	budget := experiments.DefaultBudget()
	if *quick {
		budget = experiments.QuickBudget()
	}
	budget.Seed = *seed

	if all || *table1 {
		fmt.Println(experiments.Table1())
	}

	needSuite := all || *fig10 || *fig11 || *fig12 || *table2 || *table3
	var suite *experiments.Suite
	if needSuite {
		fmt.Fprintf(os.Stderr, "simulating %d benchmarks x 4 schemes (%d+%d instructions each, %d-way parallel)...\n",
			15, budget.Warmup, budget.Measure, *parallel)
		var err error
		suite, err = experiments.RunSuiteCtx(ctx, budget, experiments.SuiteOptions{Parallel: *parallel})
		if err != nil {
			fail(err)
		}
	}
	if all || *fig10 {
		if *csv {
			fmt.Println(suite.Figure10CSV())
		} else {
			fmt.Println(suite.Figure10())
		}
	}
	if all || *fig11 {
		if *csv {
			fmt.Println(suite.Figure11CSV())
		} else {
			fmt.Println(suite.Figure11())
		}
	}
	if all || *fig12 {
		if *csv {
			fmt.Println(suite.Figure12CSV())
		} else {
			fmt.Println(suite.Figure12())
		}
	}
	if all || *table2 {
		fmt.Println(suite.Table2String())
	}
	if all || *table3 {
		fmt.Println(suite.Table3())
	}
	if all || *sec47 {
		fmt.Println(experiments.Section47())
	}
	if all || *sec48 {
		fmt.Println(experiments.Section48())
	}
	if all || *sec7 {
		checkCtx()
		fmt.Fprintln(os.Stderr, "running the timed Sec. 7 multiprocessor sweep...")
		out, err := experiments.Section7MulticoreCtx(ctx, budget)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	if all || *sec51 {
		fmt.Println(experiments.Section51Area(1))
	}
	// Fault campaigns fan their trials across -parallel workers; the
	// tables are bit-identical whatever the count (the trial executor
	// replays its reduction in trial order — DESIGN.md, "Deterministic
	// trial parallelism").
	campCtx := experiments.WithCellWorkers(ctx, *parallel)
	if all || *mc {
		checkCtx()
		fmt.Fprintln(os.Stderr, "running Monte-Carlo lifetime campaigns...")
		out, err := experiments.MonteCarloValidationCtx(campCtx, *trials, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	// The field-mix grid is opt-in (not part of `all`): it is the one
	// campaign whose trials run a full exercise window each, and keeping
	// it out of the default run keeps repro_output.txt stable.
	if *fieldmc {
		checkCtx()
		fmt.Fprintf(os.Stderr, "running field-mix fault campaigns (%d trials/cell)...\n", *trials)
		out, err := experiments.FieldMCCtx(campCtx, *trials, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	if all || *l3 {
		checkCtx()
		fmt.Fprintln(os.Stderr, "running the L3 study...")
		out, err := experiments.SectionL3Ctx(ctx, budget)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	if all || *coverage {
		checkCtx()
		fmt.Fprintf(os.Stderr, "running spatial coverage campaigns (%d trials/shape)...\n", *trials)
		out, err := experiments.SpatialCoverageCtx(campCtx, *trials, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	if all || *ablate {
		checkCtx()
		for _, run := range []func() (string, error){
			func() (string, error) { return experiments.PairAblationCtx(campCtx, *trials, *seed) },
			func() (string, error) { return experiments.ParityAblationCtx(campCtx, *trials, *seed) },
		} {
			out, err := run()
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		}
		for _, run := range []func() (string, error){
			func() (string, error) { return experiments.SinglePortAblation(budget) },
			func() (string, error) { return experiments.EarlyWritebackAblation(200_000, *seed) },
			func() (string, error) { return experiments.ICacheAblation(budget) },
			func() (string, error) { return experiments.SilentStoreAblation(budget) },
		} {
			out, err := run()
			if err != nil {
				fail(err)
			}
			fmt.Println(out)
		}
	}
}
