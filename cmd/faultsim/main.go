// Command faultsim runs fault-injection campaigns against the protection
// schemes and prints outcome counts:
//
//	faultsim -scheme cppc -spatial 8x8 -trials 100
//	faultsim -scheme parity-1d -temporal 1
//	faultsim -matrix -scheme cppc -pairs 2
//	faultsim -field -scheme parity-1d
//
// SIGINT/SIGTERM (and -timeout) cancel a run cleanly between trials.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/fault"
	"cppc/internal/par"
	"cppc/internal/protect"
)

func main() {
	var (
		scheme     = flag.String("scheme", "cppc", "parity-1d, cppc, secded, parity-2d")
		pairs      = flag.Int("pairs", 1, "CPPC register pairs (1,2,4,8)")
		degree     = flag.Int("degree", 8, "parity degree")
		shifting   = flag.Bool("shifting", true, "CPPC byte shifting")
		spatial    = flag.String("spatial", "", "spatial fault shape HxW, e.g. 8x8")
		temporal   = flag.Int("temporal", 0, "temporal fault bits per trial")
		matrix     = flag.Bool("matrix", false, "full 1x1..8x8 coverage matrix")
		interleave = flag.Bool("interleaved", false, "use the 8-way bit-interleaved physical layout (SECDED's)")
		mc         = flag.Bool("montecarlo", false, "accelerated-rate lifetime campaign")
		field      = flag.Bool("field", false, "field-mix grid: footprint x lifetime x rate under this scheme")
		lambda     = flag.Float64("lambda", 2e-7, "Monte-Carlo fault rate per bit per access")
		trials     = flag.Int("trials", 50, "trials per shape")
		seed       = flag.Int64("seed", 1, "rng seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "trial workers per campaign (results are bit-identical at any count)")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	flag.Parse()

	// SIGINT/SIGTERM (and -timeout) cancel the context; the campaign
	// loops poll it between trials, so a long matrix run exits cleanly
	// instead of having to be killed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The worker hint fans each campaign's trials across goroutines;
	// outputs are bit-identical whatever the count (see DESIGN.md,
	// "Deterministic trial parallelism").
	ctx = par.WithWorkers(ctx, *parallel)
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "faultsim: interrupted: %v\n", err)
		os.Exit(1)
	}

	var mk fault.SchemeFactory
	switch *scheme {
	case "parity-1d":
		mk = func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, *degree) }
	case "cppc":
		cfg := core.Config{ParityDegree: *degree, RegisterPairs: *pairs, ByteShifting: *shifting}
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mk = func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, cfg) }
	case "secded":
		mk = func(c *cache.Cache) protect.Scheme { return protect.NewSECDED(c, true) }
	case "parity-2d":
		mk = func(c *cache.Cache) protect.Scheme { return protect.NewTwoDim(c, *degree) }
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(1)
	}

	ccfg := fault.CampaignCacheConfig()

	switch {
	case *mc:
		res, err := fault.MonteCarloMTTFCtx(ctx, mk, *lambda, *trials, 300_000, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: lambda=%.1e, %d trials: mean life %.0f accesses, DUE=%d SDC=%d censored=%d, lethality=%.3f\n",
			*scheme, *lambda, res.Trials, res.MeanAccessesToFailure,
			res.DUEs, res.SDCs, res.Censored, res.MeasuredLethality())
	case *field:
		fmt.Printf("%s: field-mix campaign (corrected/DUE/SDC of %d trials per fault class)\n",
			*scheme, *trials)
		for _, foot := range []fault.Footprint{fault.FootWord, fault.FootColumn, fault.FootRow, fault.FootBank} {
			for _, life := range []fault.Lifetime{fault.Transient, fault.Intermittent, fault.StuckAt} {
				for _, faults := range []int{1, 4} {
					m := fault.Model{Foot: foot, Life: life}
					got, err := fault.RunModelTrialsCtx(ctx, ccfg, mk, m, faults, *trials, *seed)
					if err != nil {
						fail(err)
					}
					fmt.Printf("%-28s x%d  %d/%d/%d\n", m, faults, got.Corrected, got.DUE, got.SDC)
				}
			}
		}
	case *matrix:
		fmt.Printf("%s: spatial coverage (correction rate per HxW square, %d trials each)\n",
			*scheme, *trials)
		if *interleave {
			ccfg = fault.InterleavedCampaignConfig()
		}
		m, err := fault.CoverageMatrixCfgCtx(ctx, ccfg, mk, 8, *trials, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(fault.FormatMatrix(m))
	case *spatial != "":
		var h, w int
		if _, err := fmt.Sscanf(strings.ToLower(*spatial), "%dx%d", &h, &w); err != nil || h < 1 || w < 1 {
			fmt.Fprintf(os.Stderr, "bad -spatial %q (want HxW)\n", *spatial)
			os.Exit(1)
		}
		got, err := fault.RunSpatialTrialsCfgCtx(ctx, ccfg, mk, h, w, *trials, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %dx%d spatial faults, %d trials: %s (coverage %.1f%%)\n",
			*scheme, h, w, *trials, got, got.CoverageRate()*100)
	case *temporal > 0:
		got, err := fault.RunTemporalTrialsCtx(ctx, mk, *temporal, *trials, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d-bit temporal faults, %d trials: %s (coverage %.1f%%)\n",
			*scheme, *temporal, *trials, got, got.CoverageRate()*100)
	default:
		fmt.Fprintln(os.Stderr, "choose one of -spatial, -temporal, -matrix, -montecarlo or -field")
		os.Exit(1)
	}
}
