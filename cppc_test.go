package cppc

import "testing"

// TestFacadeEndToEnd drives the public API exactly as the README's
// quickstart does: build an L1 CPPC, store, corrupt, load, recover.
func TestFacadeEndToEnd(t *testing.T) {
	mem := NewMemory(32, 200)
	c := NewCache(L1DConfig())
	scheme, err := NewCPPC(c, DefaultL1Engine())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(c, scheme, mem)

	ctrl.Store(0x1000, 0xdeadbeef, 1)
	set, way := c.Probe(0x1000)
	c.FlipBits(set, way, 0, 1<<17)

	res := ctrl.Load(0x1000, 2)
	if res.Fault != FaultCorrectedDirty {
		t.Fatalf("fault status = %v", res.Fault)
	}
	if res.Value != 0xdeadbeef {
		t.Fatalf("value = %#x", res.Value)
	}

	eng, ok := EngineOf(scheme)
	if !ok {
		t.Fatal("EngineOf failed on a CPPC scheme")
	}
	if err := eng.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if eng.Events.CorrectedSingle != 1 {
		t.Fatalf("events = %+v", eng.Events)
	}
}

func TestFacadeOtherSchemes(t *testing.T) {
	for _, mk := range []func(*Cache) Scheme{
		func(c *Cache) Scheme { return NewParity1D(c, 8) },
		func(c *Cache) Scheme { return NewSECDED(c, true) },
		func(c *Cache) Scheme { return NewTwoDim(c, 8) },
	} {
		mem := NewMemory(32, 200)
		c := NewCache(L1DConfig())
		s := mk(c)
		if _, ok := EngineOf(s); ok {
			t.Errorf("%s: EngineOf should fail", s.Name())
		}
		ctrl := NewController(c, s, mem)
		ctrl.Store(0x40, 7, 1)
		if res := ctrl.Load(0x40, 2); res.Value != 7 || res.Fault != FaultNone {
			t.Errorf("%s: round trip failed: %+v", s.Name(), res)
		}
	}
}

func TestFacadeConfigs(t *testing.T) {
	if L1DConfig().SizeBytes != 32<<10 || L2Config().SizeBytes != 1<<20 {
		t.Error("Table 1 configs wrong")
	}
	if !DefaultL1Engine().ByteShifting {
		t.Error("default L1 engine should byte-shift")
	}
	if FullCorrectionEngine().RegisterPairs != 8 {
		t.Error("full-correction engine should have 8 pairs")
	}
	if err := NewCache(L2Config()).Cfg.Validate; err == nil {
		_ = err
	}
	if _, err := NewCPPC(NewCache(L1DConfig()), EngineConfig{ParityDegree: 3}); err == nil {
		t.Error("invalid engine config accepted")
	}
}

func TestFacadeMultiprocessor(t *testing.T) {
	l1cfg, err := CacheConfig{
		Name: "fmpL1", SizeBytes: 4096, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	l2cfg, err := CacheConfig{
		Name: "fmpL2", SizeBytes: 64 << 10, Ways: 4, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cfg EngineConfig) func(*Cache) Scheme {
		return func(c *Cache) Scheme {
			s, err := NewCPPC(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	m := NewMultiprocessor(2, l1cfg, l2cfg, mk(DefaultL1Engine()), mk(DefaultL2Engine()), 100)
	m.Write(0, 0x100, 7, 1)
	if res := m.Read(1, 0x100, 2); res.Value != 7 {
		t.Fatalf("cross-core read = %#x", res.Value)
	}
	if err := m.CheckCoherent(); err != nil {
		t.Fatal(err)
	}
	st := m.TotalL1Stats()
	if st.Accesses() == 0 {
		t.Fatal("no L1 accesses recorded")
	}
}

func TestFacadeTagEngine(t *testing.T) {
	c := NewCache(L1DConfig())
	eng, err := NewTagEngine(c, DefaultL1Engine())
	if err != nil {
		t.Fatal(err)
	}
	// Install two blocks through the tag hooks.
	mem := NewMemory(32, 100)
	for _, addr := range []uint64{0x40, 0x80} {
		set, _ := c.Probe(addr)
		way := c.Victim(set)
		ln := c.Line(set, way)
		oldValid, oldTag := ln.Valid, ln.Tag
		buf := make([]uint64, 4)
		mem.FetchBlock(addr, buf, 0)
		c.Install(set, way, addr, buf)
		eng.OnInstall(set, way, oldValid, oldTag, c.Line(set, way).Tag)
	}
	set, way := c.Probe(0x40)
	want := c.Line(set, way).Tag
	eng.FlipTagBits(set, way, 1<<4)
	if rep := eng.RecoverTag(set, way); rep.Outcome != OutcomeCorrected {
		t.Fatalf("tag recovery: %+v", rep)
	}
	if c.Line(set, way).Tag != want {
		t.Fatal("tag not restored")
	}
	if _, err := NewTagEngine(c, EngineConfig{ParityDegree: 7}); err == nil {
		t.Fatal("invalid tag engine config accepted")
	}
}

func TestFacadeStoreSub(t *testing.T) {
	mem := NewMemory(32, 100)
	c := NewCache(L1DConfig())
	s, _ := NewCPPC(c, DefaultL1Engine())
	ctrl := NewController(c, s, mem)
	ctrl.Store(0x40, 0, 1)
	ctrl.StoreSub(0x42, 0xAB, 1, 2)
	if got := ctrl.Load(0x40, 3).Value; got != 0xAB0000 {
		t.Fatalf("byte store merged to %#x", got)
	}
	eng, _ := EngineOf(s)
	if err := eng.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWriteThroughAndScrub(t *testing.T) {
	mem := NewMemory(32, 100)
	c := NewCache(L1DConfig())
	ctrl := NewController(c, NewParity1D(c, 8), mem)
	ctrl.SetWriteThrough(true)
	ctrl.Store(0x40, 9, 1)
	if c.DirtyGranuleCount() != 0 {
		t.Fatal("write-through left dirty data")
	}
	ctrl.SetScrubbing(1, 8)
	for i := 0; i < 10; i++ {
		ctrl.Load(0x80, uint64(2+i)) // each access lets the scrubber sweep 8 granules
	}
	if ctrl.ScrubsPerformed == 0 {
		t.Fatal("scrubber idle")
	}
	ctrl.SetEarlyWriteback(1, 4)
	ctrl.Store(0x100, 1, 3)
	ctrl.Load(0x140, 4)
	_ = ctrl.EarlyWriteBacks // write-through keeps everything clean; just exercise the path
}
