// Package par carries the cross-layer intra-cell parallelism hint: how
// many goroutines a single unit of work (a sweep cell, a fault
// campaign) may fan its internal independent pieces across.
//
// The hint rides on the context rather than on budgets or cell
// parameters because it is a wall-clock knob, never part of a result's
// identity: cell results — and therefore the content-addressed cell
// cache keys derived from the parameters — are bit-identical whatever
// the hint says. The daemon's scheduler sizes it from transient facts
// like idle pool workers; the standalone drivers size it from
// -parallel flags.
//
// It lives in its own leaf package so both consumers of the hint — the
// timed cluster (via internal/experiments) and the fault campaigns
// (internal/fault) — can read the same key without an import cycle.
package par

import "context"

type workersKey struct{}

// WithWorkers returns a context carrying a parallelism hint of n
// goroutines. n < 2 carries nothing (serial).
func WithWorkers(ctx context.Context, n int) context.Context {
	if n < 2 {
		return ctx
	}
	return context.WithValue(ctx, workersKey{}, n)
}

// Workers returns the parallelism hint carried by ctx, or 1 when the
// context carries none.
func Workers(ctx context.Context) int {
	if n, ok := ctx.Value(workersKey{}).(int); ok && n > 1 {
		return n
	}
	return 1
}
