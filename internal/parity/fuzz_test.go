package parity

import "testing"

// FuzzSECDEDDecode: decoding any (word, check) pair must never panic and
// must classify consistently: re-decoding the corrected output is clean.
func FuzzSECDEDDecode(f *testing.F) {
	var s SECDED
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0xff))
	f.Add(uint64(0xdeadbeef), s.Encode(0xdeadbeef))
	f.Fuzz(func(t *testing.T, w, check uint64) {
		res := s.Decode(w, check&0xff)
		switch res.Outcome {
		case SECDEDCorrectedData:
			// The corrected word with freshly encoded check bits is clean.
			if again := s.Decode(res.Corrected, s.Encode(res.Corrected)); again.Outcome != SECDEDClean {
				t.Fatalf("corrected output not clean: %v", again.Outcome)
			}
			if res.DataBit < 0 || res.DataBit > 63 {
				t.Fatalf("DataBit %d out of range", res.DataBit)
			}
		case SECDEDClean:
			if res.Corrected != w {
				t.Fatal("clean decode altered the data")
			}
		}
	})
}

// FuzzHamming256Decode: the block-level code at any received state.
func FuzzHamming256Decode(f *testing.F) {
	h := MustHamming(256)
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), uint64(0))
	f.Fuzz(func(t *testing.T, a, b, c, d, check uint64) {
		data := []uint64{a, b, c, d}
		res := h.Decode(data, check&0x3ff)
		if res.Outcome == SECDEDCorrectedData && (res.DataBit < 0 || res.DataBit > 255) {
			t.Fatalf("DataBit %d out of range", res.DataBit)
		}
	})
}
