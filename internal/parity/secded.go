package parity

import "math/bits"

// SECDED is a (72,64) extended Hamming code: single-error correction,
// double-error detection. Check bits occupy codeword positions 1, 2, 4, 8,
// 16, 32 and 64; position 0 holds the overall parity bit that upgrades the
// Hamming code from SEC to SECDED. Data bits fill the remaining 64
// positions in ascending order.
//
// The 12.5% storage overhead (8 check bits per 64-bit word) and the
// multi-level XOR-tree decode latency of this code are exactly the costs
// the paper's introduction holds against SECDED for L1 caches.
type SECDED struct{}

const (
	secdedCodeBits  = 72
	secdedCheckBits = 8
	overallPos      = 0 // position of the overall (extended) parity bit
)

// dataPos[i] is the codeword position of data bit i; checkPos[c] is the
// position of Hamming check bit c. Built once at package init.
var (
	dataPos  [64]int
	checkPos [7]int
	// checkMask[c] is the mask of data bits covered by Hamming check bit c.
	checkMask [7]uint64
)

func init() {
	for c := 0; c < 7; c++ {
		checkPos[c] = 1 << uint(c)
	}
	i := 0
	for pos := 1; pos < secdedCodeBits; pos++ {
		if pos&(pos-1) == 0 { // power of two: a check-bit position
			continue
		}
		dataPos[i] = pos
		i++
	}
	for c := 0; c < 7; c++ {
		for i := 0; i < 64; i++ {
			if dataPos[i]&checkPos[c] != 0 {
				checkMask[c] |= 1 << uint(i)
			}
		}
	}
}

func (SECDED) Name() string   { return "secded-72-64" }
func (SECDED) CheckBits() int { return secdedCheckBits }

// Encode returns the 8 check bits for w: bits 0..6 are the Hamming check
// bits, bit 7 is the overall parity over the full 72-bit codeword.
func (SECDED) Encode(w uint64) uint64 {
	var check uint64
	for c := 0; c < 7; c++ {
		check |= uint64(bits.OnesCount64(w&checkMask[c])&1) << uint(c)
	}
	// Overall parity makes the whole 72-bit codeword have even parity.
	overall := uint(bits.OnesCount64(w)+bits.OnesCount64(check)) & 1
	return check | uint64(overall)<<7
}

func (s SECDED) Detects(w, check uint64) bool {
	res := s.Decode(w, check)
	return res.Outcome != SECDEDClean
}

// SECDEDOutcome classifies a decode.
type SECDEDOutcome int

const (
	// SECDEDClean means no error was detected.
	SECDEDClean SECDEDOutcome = iota
	// SECDEDCorrectedData means a single-bit error in a data bit was
	// corrected; Corrected holds the repaired word and DataBit the index.
	SECDEDCorrectedData
	// SECDEDCorrectedCheck means a single-bit error hit a check bit; the
	// data word is intact.
	SECDEDCorrectedCheck
	// SECDEDDoubleError means an (even-weight) multi-bit error was detected
	// but cannot be corrected: a DUE.
	SECDEDDoubleError
)

func (o SECDEDOutcome) String() string {
	switch o {
	case SECDEDClean:
		return "clean"
	case SECDEDCorrectedData:
		return "corrected-data"
	case SECDEDCorrectedCheck:
		return "corrected-check"
	case SECDEDDoubleError:
		return "double-error"
	}
	return "unknown"
}

// SECDEDResult is the outcome of decoding a received (word, check) pair.
type SECDEDResult struct {
	Outcome   SECDEDOutcome
	Corrected uint64 // repaired data word (equal to input when no data bit flipped)
	DataBit   int    // index of the corrected data bit, or -1
}

// Decode checks a received word against its received check bits, correcting
// a single-bit error anywhere in the 72-bit codeword and detecting
// double-bit errors.
func (s SECDED) Decode(w, check uint64) SECDEDResult {
	expected := s.Encode(w)
	diff := (check ^ expected) & 0x7f

	// Syndrome: XOR of the positions of all flipped codeword bits. Because
	// Encode recomputes check bits from the received data, a flipped data
	// bit shows up as differences in exactly the check bits covering it, so
	// the position arithmetic below is equivalent to the textbook decoder.
	var syndrome int
	for c := 0; c < 7; c++ {
		if diff&(1<<uint(c)) != 0 {
			syndrome ^= checkPos[c]
		}
	}
	// The extended-parity check runs over all 72 received bits; the
	// codeword was encoded to even total parity, so odd parity here means
	// an odd number of flips.
	overallMismatch := (bits.OnesCount64(w)+bits.OnesCount64(check&0xff))&1 != 0

	switch {
	case syndrome == 0 && !overallMismatch:
		return SECDEDResult{Outcome: SECDEDClean, Corrected: w, DataBit: -1}
	case overallMismatch:
		// Odd number of flips: assume one, at position `syndrome`.
		if syndrome == 0 {
			// The overall parity bit itself flipped.
			return SECDEDResult{Outcome: SECDEDCorrectedCheck, Corrected: w, DataBit: -1}
		}
		if syndrome&(syndrome-1) == 0 && syndrome < secdedCodeBits {
			// A Hamming check bit flipped; data intact.
			return SECDEDResult{Outcome: SECDEDCorrectedCheck, Corrected: w, DataBit: -1}
		}
		if bit, ok := posToDataBit(syndrome); ok {
			return SECDEDResult{
				Outcome:   SECDEDCorrectedData,
				Corrected: w ^ (1 << uint(bit)),
				DataBit:   bit,
			}
		}
		// Syndrome points outside the codeword: at least three flips.
		return SECDEDResult{Outcome: SECDEDDoubleError, Corrected: w, DataBit: -1}
	default:
		// Even number of flips (>=2): detectable, not correctable.
		return SECDEDResult{Outcome: SECDEDDoubleError, Corrected: w, DataBit: -1}
	}
}

// posToDataBit maps a codeword position back to its data bit index.
func posToDataBit(pos int) (int, bool) {
	if pos <= 0 || pos >= secdedCodeBits || pos&(pos-1) == 0 {
		return 0, false
	}
	// Count non-power-of-two positions below pos, starting from 1.
	n := 0
	for p := 1; p < pos; p++ {
		if p&(p-1) != 0 {
			n++
		}
	}
	return n, true
}
