package parity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleavedRoundTrip(t *testing.T) {
	for _, degree := range []int{1, 2, 4, 8} {
		c := NewInterleaved(degree)
		f := func(w uint64) bool {
			return !c.Detects(w, c.Encode(w))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("degree %d: %v", degree, err)
		}
	}
}

func TestInterleavedDetectsOdd(t *testing.T) {
	c := NewInterleaved(8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		w := rng.Uint64()
		check := c.Encode(w)
		// Flip an odd number of bits all in distinct stripes.
		n := 1 + 2*rng.Intn(4) // 1, 3, 5, 7
		stripes := rng.Perm(8)[:n]
		var mask uint64
		for _, s := range stripes {
			mask |= 1 << uint(s+8*rng.Intn(8))
		}
		if !c.Detects(w^mask, check) {
			t.Fatalf("odd flips in distinct stripes undetected: mask %#x", mask)
		}
		got := c.FaultyStripes(w^mask, check)
		if len(got) != n {
			t.Fatalf("expected %d faulty stripes, got %v", n, got)
		}
	}
}

func TestInterleavedNamesAndSizes(t *testing.T) {
	c := NewInterleaved(8)
	if c.Name() != "parity-8way" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.CheckBits() != 8 {
		t.Errorf("CheckBits = %d", c.CheckBits())
	}
	if NewInterleaved(1).CheckBits() != 1 {
		t.Error("degree-1 CheckBits wrong")
	}
}

func TestNewInterleavedPanics(t *testing.T) {
	for _, degree := range []int{0, 3, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInterleaved(%d) did not panic", degree)
				}
			}()
			NewInterleaved(degree)
		}()
	}
}

func TestSECDEDCleanRoundTrip(t *testing.T) {
	var s SECDED
	f := func(w uint64) bool {
		res := s.Decode(w, s.Encode(w))
		return res.Outcome == SECDEDClean && res.Corrected == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSECDEDCorrectsEveryDataBit(t *testing.T) {
	var s SECDED
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		w := rng.Uint64()
		check := s.Encode(w)
		for bit := 0; bit < 64; bit++ {
			res := s.Decode(w^(1<<uint(bit)), check)
			if res.Outcome != SECDEDCorrectedData {
				t.Fatalf("bit %d: outcome %v", bit, res.Outcome)
			}
			if res.Corrected != w {
				t.Fatalf("bit %d: corrected %#x, want %#x", bit, res.Corrected, w)
			}
			if res.DataBit != bit {
				t.Fatalf("bit %d: reported DataBit %d", bit, res.DataBit)
			}
		}
	}
}

func TestSECDEDCorrectsEveryCheckBit(t *testing.T) {
	var s SECDED
	w := uint64(0xfeedfacecafef00d)
	check := s.Encode(w)
	for bit := 0; bit < 8; bit++ {
		res := s.Decode(w, check^(1<<uint(bit)))
		if res.Outcome != SECDEDCorrectedCheck {
			t.Fatalf("check bit %d: outcome %v", bit, res.Outcome)
		}
		if res.Corrected != w {
			t.Fatalf("check bit %d corrupted data", bit)
		}
	}
}

func TestSECDEDDetectsDoubleErrors(t *testing.T) {
	var s SECDED
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		w := rng.Uint64()
		check := s.Encode(w)
		// Flip two distinct codeword bits: choose among 72 positions
		// (64 data + 8 check).
		a, b := rng.Intn(72), rng.Intn(72)
		for b == a {
			b = rng.Intn(72)
		}
		w2, check2 := w, check
		for _, p := range []int{a, b} {
			if p < 64 {
				w2 ^= 1 << uint(p)
			} else {
				check2 ^= 1 << uint(p-64)
			}
		}
		res := s.Decode(w2, check2)
		if res.Outcome != SECDEDDoubleError {
			t.Fatalf("double flip (%d,%d): outcome %v", a, b, res.Outcome)
		}
	}
}

func TestSECDEDOutcomeStrings(t *testing.T) {
	want := map[SECDEDOutcome]string{
		SECDEDClean:          "clean",
		SECDEDCorrectedData:  "corrected-data",
		SECDEDCorrectedCheck: "corrected-check",
		SECDEDDoubleError:    "double-error",
		SECDEDOutcome(99):    "unknown",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
}

func TestSECDEDInterface(t *testing.T) {
	var c Code = SECDED{}
	if c.Name() != "secded-72-64" || c.CheckBits() != 8 {
		t.Error("SECDED Code metadata wrong")
	}
	w := uint64(42)
	if c.Detects(w, c.Encode(w)) {
		t.Error("clean word flagged")
	}
	if !c.Detects(w^1, c.Encode(w)) {
		t.Error("flipped word not flagged")
	}
}

func TestVerticalParityReconstruct(t *testing.T) {
	var v Vertical
	words := []uint64{0x1111, 0x2222, 0x4444, 0x8888}
	for _, w := range words {
		v.Insert(w)
	}
	// Corrupt words[2]; reconstruct from the others.
	var others uint64
	for i, w := range words {
		if i != 2 {
			others ^= w
		}
	}
	if got := v.Reconstruct(others); got != words[2] {
		t.Fatalf("Reconstruct = %#x, want %#x", got, words[2])
	}
}

func TestVerticalParityWriteRemove(t *testing.T) {
	var v Vertical
	rng := rand.New(rand.NewSource(13))
	live := make([]uint64, 16)
	for i := range live {
		live[i] = rng.Uint64()
		v.Insert(live[i])
	}
	// Random updates via read-before-write.
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(len(live))
		nw := rng.Uint64()
		v.Write(live[i], nw)
		live[i] = nw
	}
	// Remove half.
	for i := 0; i < 8; i++ {
		v.Remove(live[i])
		live[i] = 0
	}
	var all uint64
	for _, w := range live {
		all ^= w
	}
	if !v.Verify(all) {
		t.Fatal("vertical row inconsistent after updates")
	}
	v.Reset()
	if v.Row() != 0 {
		t.Fatal("Reset did not clear row")
	}
}
