// Package parity implements the error-detection and error-correction codes
// that the paper compares: k-way interleaved parity (the detection code used
// by CPPC and by the one- and two-dimensional parity caches), a real (72,64)
// Hamming SECDED code, and the vertical-parity arithmetic of two-dimensional
// parity caches.
package parity

import (
	"fmt"

	"cppc/internal/bitops"
)

// Code computes and checks per-word check bits. Implementations are
// stateless; the caller stores the check bits alongside the word.
type Code interface {
	// Name identifies the code in reports.
	Name() string
	// CheckBits is the number of check bits the code stores per 64-bit word.
	CheckBits() int
	// Encode computes the check bits for w.
	Encode(w uint64) uint64
	// Detects reports whether the code flags an error for the received
	// word/check pair.
	Detects(w, check uint64) bool
}

// Interleaved is a k-way interleaved parity code over a 64-bit word: parity
// stripe p is the XOR of bits p, p+k, p+2k, ... (Sec. 3.6). Degree 1 is
// plain one-parity-bit-per-word; degree 8 is the one-parity-bit-per-byte
// configuration evaluated in Sec. 6.
type Interleaved struct {
	Degree int
}

// NewInterleaved returns a k-way interleaved parity code. Degree must divide
// 64.
func NewInterleaved(degree int) Interleaved {
	if degree <= 0 || degree > 64 || 64%degree != 0 {
		panic(fmt.Sprintf("parity: invalid interleave degree %d", degree))
	}
	return Interleaved{Degree: degree}
}

func (c Interleaved) Name() string   { return fmt.Sprintf("parity-%dway", c.Degree) }
func (c Interleaved) CheckBits() int { return c.Degree }

// Encode packs the Degree parity stripes into the low bits of the result.
func (c Interleaved) Encode(w uint64) uint64 { return bitops.Parity(w, c.Degree) }

// Detects reports whether any stripe disagrees.
func (c Interleaved) Detects(w, check uint64) bool { return c.Syndrome(w, check) != 0 }

// Syndrome returns the set of disagreeing stripes as a bitmask (bit p set
// means parity stripe p flagged an error).
func (c Interleaved) Syndrome(w, check uint64) uint64 {
	return bitops.Syndrome(check, c.Encode(w))
}

// FaultyStripes expands the syndrome for a received word into the list of
// parity stripe indices that detected a fault.
func (c Interleaved) FaultyStripes(w, check uint64) []int {
	return bitops.FaultyStripes(c.Syndrome(w, check), c.Degree)
}

// MaxDetectableSpatial is the widest horizontal burst the code is guaranteed
// to detect: any spatial MBE flipping Degree or fewer adjacent bits in one
// word flips at most one bit per stripe.
func (c Interleaved) MaxDetectableSpatial() int { return c.Degree }
