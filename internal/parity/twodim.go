package parity

import "cppc/internal/bitops"

// Vertical maintains the vertical parity row of a two-dimensional parity
// cache (Kim et al., MICRO-40 [12], the comparison scheme of Sec. 2 and
// Sec. 6). The horizontal dimension is an Interleaved code per word; the
// vertical dimension is the column-wise XOR of every word in the protected
// region, kept in a single parity row as in the paper's evaluated
// configuration ("only one vertical parity row is implemented for the
// entire cache").
//
// Keeping the row current is what forces the scheme's expensive
// read-before-write: every Store and every miss fill must first read the
// old contents so the old value can be XORed out of the row.
type Vertical struct {
	row uint64
}

// Row returns the current vertical parity row.
func (v *Vertical) Row() uint64 { return v.row }

// Write folds a word update into the row: old is the previous contents of
// the slot (obtained by the read-before-write), new_ the value being
// written.
func (v *Vertical) Write(old, new_ uint64) { v.row ^= old ^ new_ }

// Insert folds a newly valid word (a miss fill into a previously invalid
// slot) into the row.
func (v *Vertical) Insert(w uint64) { v.row ^= w }

// Remove folds an evicted or invalidated word out of the row.
func (v *Vertical) Remove(w uint64) { v.row ^= w }

// Reconstruct recovers a faulty word given the XOR of every *other* valid
// word in the protected region: faulty = row ^ xorOthers. The caller is
// responsible for sweeping the array; with a single vertical row the sweep
// covers the entire cache.
func (v *Vertical) Reconstruct(xorOthers uint64) uint64 { return v.row ^ xorOthers }

// Verify reports whether the row is consistent with the XOR of all valid
// words (used by tests and scrubbing).
func (v *Vertical) Verify(xorAll uint64) bool { return v.row == xorAll }

// Reset clears the row (cache flush).
func (v *Vertical) Reset() { v.row = 0 }

var _ = bitops.WordBits // keep the import symmetrical with sibling files
