package parity

import (
	"math/rand"
	"testing"
)

func TestNewHammingValidation(t *testing.T) {
	for _, bits := range []int{0, -64, 63, 100, 2048} {
		if _, err := NewHamming(bits); err == nil {
			t.Errorf("NewHamming(%d) accepted", bits)
		}
	}
	h := MustHamming(256)
	if h.CheckBits() != 10 { // 9 Hamming bits + overall parity for 256 data bits
		t.Errorf("CheckBits(256) = %d, want 10", h.CheckBits())
	}
	if MustHamming(64).CheckBits() != 8 {
		t.Error("Hamming(64) should need 8 check bits, matching SECDED (72,64)")
	}
	if h.Name() != "secded-266-256" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestMustHammingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHamming(63) did not panic")
		}
	}()
	MustHamming(63)
}

func TestHammingCleanRoundTrip(t *testing.T) {
	for _, dataBits := range []int{64, 128, 256, 512} {
		h := MustHamming(dataBits)
		rng := rand.New(rand.NewSource(int64(dataBits)))
		for trial := 0; trial < 50; trial++ {
			data := make([]uint64, dataBits/64)
			for i := range data {
				data[i] = rng.Uint64()
			}
			res := h.Decode(data, h.Encode(data))
			if res.Outcome != SECDEDClean {
				t.Fatalf("Hamming(%d): clean decode = %v", dataBits, res.Outcome)
			}
		}
	}
}

func TestHammingCorrectsEveryDataBit(t *testing.T) {
	h := MustHamming(256)
	rng := rand.New(rand.NewSource(21))
	data := make([]uint64, 4)
	for i := range data {
		data[i] = rng.Uint64()
	}
	check := h.Encode(data)
	for bit := 0; bit < 256; bit++ {
		data[bit/64] ^= 1 << uint(bit%64)
		res := h.Decode(data, check)
		if res.Outcome != SECDEDCorrectedData || res.DataBit != bit {
			t.Fatalf("bit %d: outcome %v, DataBit %d", bit, res.Outcome, res.DataBit)
		}
		data[bit/64] ^= 1 << uint(bit%64)
	}
}

func TestHammingCorrectsCheckBits(t *testing.T) {
	h := MustHamming(256)
	data := []uint64{1, 2, 3, 4}
	check := h.Encode(data)
	for bit := 0; bit < h.CheckBits(); bit++ {
		res := h.Decode(data, check^(1<<uint(bit)))
		if res.Outcome != SECDEDCorrectedCheck {
			t.Fatalf("check bit %d: outcome %v", bit, res.Outcome)
		}
	}
}

func TestHammingDetectsDoubleErrors(t *testing.T) {
	h := MustHamming(256)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		data := make([]uint64, 4)
		for i := range data {
			data[i] = rng.Uint64()
		}
		check := h.Encode(data)
		a, b := rng.Intn(256), rng.Intn(256)
		for b == a {
			b = rng.Intn(256)
		}
		data[a/64] ^= 1 << uint(a%64)
		data[b/64] ^= 1 << uint(b%64)
		if res := h.Decode(data, check); res.Outcome != SECDEDDoubleError {
			t.Fatalf("double flip (%d,%d): %v", a, b, res.Outcome)
		}
	}
}

func TestHammingAgreesWithSECDED64OnOutcomes(t *testing.T) {
	// The generic code at width 64 must classify exactly like the
	// specialized (72,64) implementation for data-bit errors.
	h := MustHamming(64)
	var s SECDED
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		w := rng.Uint64()
		nflips := 1 + rng.Intn(2)
		mask := uint64(0)
		for len(positions(mask)) < nflips {
			mask |= 1 << uint(rng.Intn(64))
		}
		gotG := h.Decode([]uint64{w ^ mask}, h.Encode([]uint64{w}))
		gotS := s.Decode(w^mask, s.Encode(w))
		if gotG.Outcome != gotS.Outcome {
			t.Fatalf("mask %#x: generic %v, specialized %v", mask, gotG.Outcome, gotS.Outcome)
		}
	}
}

func positions(w uint64) []int {
	var out []int
	for i := 0; i < 64; i++ {
		if w&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}
