package parity

import (
	"fmt"
	"math/bits"
)

// Hamming is an extended Hamming SECDED code over an arbitrary number of
// data bits (up to 1024), used for the paper's block-level SECDED L2
// configuration ("as an L2 cache, a SECDED is attached to a block instead
// of each word", Sec. 6). The 64-bit SECDED type is the fixed-size special
// case kept for the hot per-word path.
type Hamming struct {
	dataBits  int
	checkBits int   // Hamming check bits (excluding the overall parity bit)
	posOf     []int // codeword position of each data bit
	dataAt    []int // inverse: data bit at codeword position, or -1
}

// NewHamming builds a SECDED code over dataBits bits of data, which must
// be a positive multiple of 64 (data is passed as []uint64).
func NewHamming(dataBits int) (*Hamming, error) {
	if dataBits <= 0 || dataBits > 1024 || dataBits%64 != 0 {
		return nil, fmt.Errorf("parity: unsupported Hamming data width %d", dataBits)
	}
	r := 0
	for (1 << uint(r)) < dataBits+r+1 {
		r++
	}
	n := dataBits + r // highest codeword position (positions 1..n)
	h := &Hamming{
		dataBits:  dataBits,
		checkBits: r,
		posOf:     make([]int, dataBits),
		dataAt:    make([]int, n+1),
	}
	for i := range h.dataAt {
		h.dataAt[i] = -1
	}
	i := 0
	for pos := 1; pos <= n && i < dataBits; pos++ {
		if pos&(pos-1) == 0 {
			continue
		}
		h.posOf[i] = pos
		h.dataAt[pos] = i
		i++
	}
	if i != dataBits {
		return nil, fmt.Errorf("parity: internal error sizing Hamming(%d)", dataBits)
	}
	return h, nil
}

// MustHamming is NewHamming that panics on error.
func MustHamming(dataBits int) *Hamming {
	h, err := NewHamming(dataBits)
	if err != nil {
		panic(err)
	}
	return h
}

// CheckBits is the total stored check bits: Hamming bits plus the overall
// parity bit. (10 for a 256-bit block.)
func (h *Hamming) CheckBits() int { return h.checkBits + 1 }

// Name identifies the code.
func (h *Hamming) Name() string {
	return fmt.Sprintf("secded-%d-%d", h.dataBits+h.CheckBits(), h.dataBits)
}

func dataBit(data []uint64, i int) uint64 { return (data[i/64] >> uint(i%64)) & 1 }

// Encode computes the check bits for data: bits 0..r-1 are the Hamming
// check bits, bit r the overall parity over the whole codeword.
func (h *Hamming) Encode(data []uint64) uint64 {
	var check uint64
	for i := 0; i < h.dataBits; i++ {
		if dataBit(data, i) != 0 {
			check ^= uint64(h.posOf[i])
		}
	}
	// check now holds, in bit c, the parity of data bits covered by check
	// bit c (the XOR of positions trick).
	check &= (1 << uint(h.checkBits)) - 1
	var total uint64
	for _, w := range data {
		total ^= uint64(bits.OnesCount64(w) & 1)
	}
	total ^= uint64(bits.OnesCount64(check) & 1)
	return check | total<<uint(h.checkBits)
}

// HammingResult reports a decode: the outcome reuses the SECDED
// classifications; DataBit is the corrected data bit index (or -1).
type HammingResult struct {
	Outcome SECDEDOutcome
	DataBit int
}

// Decode checks received data against received check bits. On
// SECDEDCorrectedData the caller must flip DataBit of the data.
func (h *Hamming) Decode(data []uint64, check uint64) HammingResult {
	expected := h.Encode(data)
	mask := uint64(1<<uint(h.checkBits)) - 1
	syndrome := int((check ^ expected) & mask)
	var total uint64
	for _, w := range data {
		total ^= uint64(bits.OnesCount64(w) & 1)
	}
	total ^= uint64(bits.OnesCount64(check&(mask|1<<uint(h.checkBits))) & 1)
	overallMismatch := total != 0

	switch {
	case syndrome == 0 && !overallMismatch:
		return HammingResult{Outcome: SECDEDClean, DataBit: -1}
	case overallMismatch:
		if syndrome == 0 || (syndrome&(syndrome-1)) == 0 {
			return HammingResult{Outcome: SECDEDCorrectedCheck, DataBit: -1}
		}
		if syndrome < len(h.dataAt) && h.dataAt[syndrome] >= 0 {
			return HammingResult{Outcome: SECDEDCorrectedData, DataBit: h.dataAt[syndrome]}
		}
		return HammingResult{Outcome: SECDEDDoubleError, DataBit: -1}
	default:
		return HammingResult{Outcome: SECDEDDoubleError, DataBit: -1}
	}
}
