package experiments

import (
	"context"
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/fault"
	"cppc/internal/protect"
	"cppc/internal/tables"
)

// MonteCarloValidation cross-checks the Table 3 analytical models with
// accelerated-rate lifetime testing (the PARMA methodology [22] the
// paper's Sec. 6.3 model derives from): faults arrive as a Poisson
// process over a live cache, and the measured mean time to failure is
// compared with the analytical prediction evaluated at the same rate and
// the campaign's own measured dirty population and Tavg.
func MonteCarloValidation(trials int, seed int64) string {
	s, _ := MonteCarloValidationCtx(context.Background(), trials, seed)
	return s
}

// MonteCarloValidationCtx is MonteCarloValidation with cooperative
// cancellation plumbed into the per-trial campaign loops.
func MonteCarloValidationCtx(ctx context.Context, trials int, seed int64) (string, error) {
	const (
		lambda  = 2e-7 // faults per bit per access, accelerated
		horizon = 200_000
	)
	t := tables.New(
		fmt.Sprintf("PARMA-style Monte-Carlo validation (lambda=%.0e/bit/access, %d trials)", lambda, trials),
		"scheme", "measured MTTF", "analytic MTTF", "ratio", "DUE", "SDC", "censored", "lethality")

	add := func(name string, mk fault.SchemeFactory, analytic func(fault.MCResult) float64) error {
		res, err := fault.MonteCarloMTTFCtx(ctx, mk, lambda, trials, horizon, seed)
		if err != nil {
			return err
		}
		an := analytic(res)
		ratio := res.MeanAccessesToFailure / an
		t.Addf(name,
			fmt.Sprintf("%.0f", res.MeanAccessesToFailure),
			fmt.Sprintf("%.0f", an),
			fmt.Sprintf("%.2f", ratio),
			res.DUEs, res.SDCs, res.Censored,
			fmt.Sprintf("%.3f", res.MeasuredLethality()))
		return nil
	}

	if err := add("parity-1d",
		func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) },
		func(r fault.MCResult) float64 {
			return fault.AnalyticParityMTTFAccesses(lambda, r.MeanDirtyBits)
		}); err != nil {
		return "", err
	}
	if err := add("cppc (8 stripes, 1 pair)",
		func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL1Config()) },
		func(r fault.MCResult) float64 {
			return fault.AnalyticDoubleFaultMTTFAccesses(lambda, r.MeanDirtyBits, r.MeanTavgAccesses, 8)
		}); err != nil {
		return "", err
	}

	return t.String() +
		"ratios near 1 validate the Sec. 6.3 mathematics end to end; censored trials\n" +
		"outlived the horizon (their lifetime is an underestimate)\n", nil
}
