package experiments

import (
	"context"
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/fault"
	"cppc/internal/protect"
	"cppc/internal/tables"
)

// MonteCarloValidation cross-checks the Table 3 analytical models with
// accelerated-rate lifetime testing (the PARMA methodology [22] the
// paper's Sec. 6.3 model derives from): faults arrive as a Poisson
// process over a live cache, and the measured mean time to failure is
// compared with the analytical prediction evaluated at the same rate and
// the campaign's own measured dirty population and Tavg.
func MonteCarloValidation(trials int, seed int64) string {
	s, _ := MonteCarloValidationCtx(context.Background(), trials, seed)
	return s
}

// Accelerated-rate campaign parameters shared by every Monte-Carlo cell.
const (
	mcLambda  = 2e-7 // faults per bit per access, accelerated
	mcHorizon = 200_000
)

// MonteCarloSchemes returns the canonical scheme list of the validation,
// in row order. The names are the cell identifiers the daemon's shard
// planner uses; MonteCarloTable maps them to display labels.
func MonteCarloSchemes() []string { return []string{"parity-1d", "cppc"} }

// MonteCarloCell is one scheme's campaign result plus its analytic
// prediction evaluated at the campaign's own measured inputs.
type MonteCarloCell struct {
	Scheme   string
	Res      fault.MCResult
	Analytic float64
}

// MonteCarloCellCtx runs one scheme's accelerated-rate campaign. scheme
// must be one of MonteCarloSchemes.
func MonteCarloCellCtx(ctx context.Context, scheme string, trials int, seed int64) (MonteCarloCell, error) {
	var mk fault.SchemeFactory
	var analytic func(fault.MCResult) float64
	switch scheme {
	case "parity-1d":
		mk = func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) }
		analytic = func(r fault.MCResult) float64 {
			return fault.AnalyticParityMTTFAccesses(mcLambda, r.MeanDirtyBits)
		}
	case "cppc":
		mk = func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL1Config()) }
		analytic = func(r fault.MCResult) float64 {
			return fault.AnalyticDoubleFaultMTTFAccesses(mcLambda, r.MeanDirtyBits, r.MeanTavgAccesses, 8)
		}
	default:
		return MonteCarloCell{}, fmt.Errorf("montecarlo: unknown scheme %q", scheme)
	}
	res, err := fault.MonteCarloMTTFCtx(ctx, mk, mcLambda, trials, mcHorizon, seed)
	if err != nil {
		return MonteCarloCell{}, err
	}
	return MonteCarloCell{Scheme: scheme, Res: res, Analytic: analytic(res)}, nil
}

// MonteCarloTable renders the validation from per-scheme cells, which
// must be in MonteCarloSchemes order. The output is byte-identical to
// the sequential run's.
func MonteCarloTable(trials int, cells []MonteCarloCell) string {
	t := tables.New(
		fmt.Sprintf("PARMA-style Monte-Carlo validation (lambda=%.0e/bit/access, %d trials)", mcLambda, trials),
		"scheme", "measured MTTF", "analytic MTTF", "ratio", "DUE", "SDC", "censored", "lethality")
	label := map[string]string{"parity-1d": "parity-1d", "cppc": "cppc (8 stripes, 1 pair)"}
	for _, c := range cells {
		name := label[c.Scheme]
		if name == "" {
			name = c.Scheme
		}
		t.Addf(name,
			fmt.Sprintf("%.0f", c.Res.MeanAccessesToFailure),
			fmt.Sprintf("%.0f", c.Analytic),
			fmt.Sprintf("%.2f", c.Res.MeanAccessesToFailure/c.Analytic),
			c.Res.DUEs, c.Res.SDCs, c.Res.Censored,
			fmt.Sprintf("%.3f", c.Res.MeasuredLethality()))
	}
	return t.String() +
		"ratios near 1 validate the Sec. 6.3 mathematics end to end; censored trials\n" +
		"outlived the horizon (their lifetime is an underestimate)\n"
}

// MonteCarloValidationCtx is MonteCarloValidation with cooperative
// cancellation plumbed into the per-trial campaign loops.
func MonteCarloValidationCtx(ctx context.Context, trials int, seed int64) (string, error) {
	cells := make([]MonteCarloCell, 0, len(MonteCarloSchemes()))
	for _, scheme := range MonteCarloSchemes() {
		c, err := MonteCarloCellCtx(ctx, scheme, trials, seed)
		if err != nil {
			return "", err
		}
		cells = append(cells, c)
	}
	return MonteCarloTable(trials, cells), nil
}
