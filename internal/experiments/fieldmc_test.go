package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestFieldMCCellDeterminism is the cell-cache gate: a fieldmc cell is
// keyed only by (scheme, point, trials, seed), so the same key must be
// bit-identical wherever it runs, and a disjoint seed window must give
// a different campaign.
func TestFieldMCCellDeterminism(t *testing.T) {
	ctx := context.Background()
	pt := FieldPoint{Footprint: "word", Lifetime: "stuck", Rate: "x1"}
	a, err := FieldMCCellCtx(ctx, "parity-1d", pt, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FieldMCCellCtx(ctx, "parity-1d", pt, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := FieldMCCellCtx(ctx, "parity-1d", pt, 10, 905)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts == c.Counts {
		t.Errorf("seeds 5 and 905 produced identical counts %v", a.Counts)
	}
	if a.Counts.Total() != 10 {
		t.Errorf("cell total %d, want 10", a.Counts.Total())
	}
}

// TestFieldMCCellRejectsJunk pins the cell-spec validation surface the
// job API leans on.
func TestFieldMCCellRejectsJunk(t *testing.T) {
	ctx := context.Background()
	good := FieldPoint{Footprint: "word", Lifetime: "transient", Rate: "x1"}
	for _, tc := range []struct {
		scheme string
		pt     FieldPoint
	}{
		{"no-such-scheme", good},
		{"cppc", FieldPoint{Footprint: "blob", Lifetime: "transient", Rate: "x1"}},
		{"cppc", FieldPoint{Footprint: "word", Lifetime: "forever", Rate: "x1"}},
		{"cppc", FieldPoint{Footprint: "word", Lifetime: "transient", Rate: "x9"}},
	} {
		if _, err := FieldMCCellCtx(ctx, tc.scheme, tc.pt, 1, 1); err == nil {
			t.Errorf("scheme %q point %v accepted, want error", tc.scheme, tc.pt)
		}
	}
}

// TestFieldMCTableRender checks the grid renderer consumes cells in the
// canonical point-major, scheme-minor order and emits one row per point.
func TestFieldMCTableRender(t *testing.T) {
	pts := FieldMCPoints()
	schemes := FieldMCSchemes()
	if len(pts) != 24 {
		t.Fatalf("grid has %d points, want 24", len(pts))
	}
	var cells []FieldMCCell
	for _, pt := range pts {
		for _, s := range schemes {
			cells = append(cells, FieldMCCell{Scheme: s, Point: pt})
		}
	}
	out := FieldMCTable(7, cells)
	for _, want := range append([]string{"word/stuck/x1", "bank/intermittent/x4", "7 trials"}, schemes...) {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if got := strings.Count(out, "0/0/0"); got != len(cells) {
		t.Errorf("%d zero cells rendered, want %d", got, len(cells))
	}
}
