package experiments

import "testing"

func TestRunSuiteParallelRace(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel suite")
	}
	s := RunSuite(Budget{Warmup: 5_000, Measure: 10_000, Seed: 2})
	if len(s.Order) != 15 {
		t.Fatalf("suite ran %d benchmarks", len(s.Order))
	}
	for _, b := range s.Order {
		if len(s.Runs[b]) != 4 {
			t.Fatalf("%s: %d schemes", b, len(s.Runs[b]))
		}
	}
	// Determinism: a second run matches exactly.
	s2 := RunSuite(Budget{Warmup: 5_000, Measure: 10_000, Seed: 2})
	for _, b := range s.Order {
		for id, run := range s.Runs[b] {
			if run.CPI != s2.Runs[b][id].CPI {
				t.Fatalf("%s/%v nondeterministic: %v vs %v", b, id, run.CPI, s2.Runs[b][id].CPI)
			}
		}
	}
}
