package experiments

import (
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/tables"
)

// Section51Area renders the Sec. 5.1 area comparison: the storage and
// logic each scheme adds to the Table 1 caches. CPPC's pitch is that
// correction costs only two registers and two barrel shifters on top of
// the parity a write-back L1 carries anyway.
func Section51Area(pairs int) string {
	t := tables.New(fmt.Sprintf("Sec. 5.1: added storage and logic (CPPC with %d register pair(s))", pairs),
		"scheme", "L1 check bits", "L1 overhead", "L2 check bits", "L2 overhead", "extra logic")

	l1, l2 := cache.L1DConfig(), cache.L2Config()
	l1words := l1.SizeBytes / 8
	l2blocks := l2.SizeBytes / l2.BlockBytes
	l1bits := float64(l1.TotalBits())
	l2bits := float64(l2.TotalBits())

	row := func(name string, l1check, l2check, extra int, logic string) {
		t.Addf(name,
			l1check, tables.Pct(float64(l1check+extra)/l1bits),
			l2check, tables.Pct(float64(l2check+extra)/l2bits),
			logic)
	}

	// One-dimensional parity: 8 interleaved bits per word (L1) / block (L2).
	row("parity-1d", l1words*8, l2blocks*8, 0, "parity trees")
	// CPPC: the same parity plus `pairs` register pairs (word-sized at L1,
	// L1-block-sized at L2), two byte-granular barrel shifters, and finer
	// dirty bits: one per word at L1 instead of one per line (Sec. 3), one
	// per L1-block at L2 (Sec. 3.5; equal block sizes make that free).
	l1regs := pairs * 2 * 64
	l2regs := pairs * 2 * 256
	l1lines := l1.SizeBytes / l1.BlockBytes
	l1DirtyExtra := l1words - l1lines // word-granular vs. line-granular dirty bits
	t.Addf("cppc",
		fmt.Sprintf("%d (+%d reg, +%d dirty)", l1words*8, l1regs, l1DirtyExtra),
		tables.Pct(float64(l1words*8+l1regs+l1DirtyExtra)/l1bits),
		fmt.Sprintf("%d (+%d reg)", l2blocks*8, l2regs),
		tables.Pct(float64(l2blocks*8+l2regs)/l2bits),
		"parity trees + 2 barrel shifters (24 muxes/word) + recovery FSM or RAE handler")
	// SECDED: 8 bits per 64-bit word at L1, 10 per 256-bit block at L2.
	row("secded", l1words*8, l2blocks*10, 0, "72-bit encode/decode XOR trees + corrector")
	// Two-dimensional parity: horizontal parity plus one vertical row.
	row("parity-2d", l1words*8, l2blocks*8, 64, "parity trees + vertical row update path")

	return t.String() +
		"CPPC adds correction to a parity cache for two registers and two shifters —\n" +
		"the Sec. 5.1 argument; SECDED's percentage equals parity here because the\n" +
		"evaluated parity configuration already spends 8 bits per word for detection\n"
}
