package experiments

import (
	"context"
	"strings"
	"testing"

	"cppc/internal/trace"
)

// tiny budget keeps the test suite fast while still exercising the full
// pipeline end to end.
func tinyBudget() Budget { return Budget{Warmup: 40_000, Measure: 80_000, Seed: 1} }

func tinySuite(t *testing.T) *Suite {
	t.Helper()
	// Three representative benchmarks: cache-friendly, store-heavy,
	// miss-heavy.
	b := tinyBudget()
	s := &Suite{Budget: b, Runs: map[string]map[SchemeID]Run{}}
	for _, name := range []string{"crafty", "vortex", "mcf"} {
		p, ok := trace.ProfileByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		s.Order = append(s.Order, name)
		s.Runs[name] = map[SchemeID]Run{}
		for _, id := range []SchemeID{Parity1D, CPPC, SECDED, TwoDim} {
			s.Runs[name][id] = Simulate(p, id, b)
		}
	}
	return s
}

func TestSchemeIDStrings(t *testing.T) {
	want := []string{"parity-1d", "cppc", "secded", "parity-2d"}
	for i, w := range want {
		if SchemeID(i).String() != w {
			t.Errorf("SchemeID(%d) = %q", i, SchemeID(i).String())
		}
	}
}

func TestTable1Static(t *testing.T) {
	s := Table1()
	for _, want := range []string{"32KB", "1MB", "4 int ALU", "3 GHz", "32nm", "16KB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestSuiteFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	s := tinySuite(t)

	// Figure 10: CPPC within a percent of baseline, 2D above it.
	for _, b := range s.Order {
		base := s.Runs[b][Parity1D].CPI
		if c := s.Runs[b][CPPC].CPI; c < base*0.999 || c > base*1.03 {
			t.Errorf("%s: CPPC CPI ratio %.4f out of range", b, c/base)
		}
		if d := s.Runs[b][TwoDim].CPI; d < base {
			t.Errorf("%s: 2D CPI below baseline", b)
		}
	}
	fig10 := s.Figure10()
	if !strings.Contains(fig10, "average") {
		t.Error("Figure 10 missing average row")
	}

	// Figures 11/12: energy ordering parity < cppc < secded, 2d highest
	// or near-highest.
	for _, b := range s.Order {
		v1 := s.energyRow(b, 1)
		if !(v1[0] == 1.0) {
			t.Errorf("%s: baseline not normalized: %v", b, v1)
		}
		if v1[1] <= 1.0 {
			t.Errorf("%s: CPPC L1 energy %.3f not above baseline", b, v1[1])
		}
		if v1[2] <= v1[1] {
			t.Errorf("%s: SECDED L1 energy %.3f not above CPPC %.3f", b, v1[2], v1[1])
		}
		if v1[3] <= v1[1] {
			t.Errorf("%s: 2D L1 energy %.3f not above CPPC %.3f", b, v1[3], v1[1])
		}
		v2 := s.energyRow(b, 2)
		if v2[1] >= v1[1] {
			t.Errorf("%s: CPPC overhead should shrink at L2: L1 %.3f L2 %.3f", b, v1[1], v2[1])
		}
	}

	// Table 2: measured values in plausible ranges.
	v := s.Table2()
	if v.L1Dirty < 0.03 || v.L1Dirty > 0.5 {
		t.Errorf("L1 dirty fraction %.3f implausible", v.L1Dirty)
	}
	if v.L1Tavg <= 0 || v.L2Tavg <= 0 {
		t.Errorf("Tavg not measured: %+v", v)
	}

	// Rendering should not panic and should include every benchmark.
	for _, out := range []string{s.Figure11(), s.Figure12(), s.Table2String(), s.Table3()} {
		for _, b := range s.Order {
			if !strings.Contains(out, b) && !strings.Contains(out, "Table") {
				t.Errorf("output missing benchmark %s", b)
			}
		}
	}
}

func TestSection47And48(t *testing.T) {
	s47 := Section47()
	if !strings.Contains(s47, "eliminated") {
		t.Error("Sec 4.7 table should mark 8 pairs as eliminated")
	}
	s48 := Section48()
	if !strings.Contains(s48, "ns") || !strings.Contains(s48, "pJ") {
		t.Error("Sec 4.8 table missing units")
	}
}

func TestSpatialCoverageReport(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo campaign")
	}
	out := SpatialCoverage(3, 5)
	for _, want := range []string{"cppc 1 pair", "cppc 8 pairs", "secded", "parity-1d"} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage report missing %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo campaign")
	}
	pa := PairAblation(4, 7)
	if !strings.Contains(pa, "8") {
		t.Error("pair ablation missing rows")
	}
	pd := ParityAblation(4, 7)
	if !strings.Contains(pd, "degree") {
		t.Error("parity ablation missing header")
	}
}

func TestSection7MulticoreReport(t *testing.T) {
	if testing.Short() {
		t.Skip("coherence sweep")
	}
	out, err := Section7Multicore(Budget{Warmup: 5_000, Measure: 10_000, Seed: 3})
	if err != nil {
		t.Fatalf("Section7Multicore: %v", err)
	}
	for _, want := range []string{"cores", "CPI", "slowdown", "RBW/store", "invalidations"} {
		if !strings.Contains(out, want) {
			t.Errorf("Sec. 7 report missing %q", want)
		}
	}
}

func TestMulticoreCellDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("timed multicore simulation")
	}
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	b := Budget{Warmup: 5_000, Measure: 15_000, Seed: 9}
	r1, err := MulticoreCell(p, 2, 0.5, false, b)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := MulticoreCell(p, 2, 0.5, false, b)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if r1 != r2 {
		t.Errorf("same seed produced different multicore stats:\n%+v\n%+v", r1, r2)
	}
	if r1.Instructions != 2*15_000 {
		t.Errorf("expected %d measured instructions, got %d", 2*15_000, r1.Instructions)
	}
	if r1.CPI <= 0 || r1.Cycles == 0 {
		t.Errorf("degenerate timing result: %+v", r1)
	}
}

func TestSinglePortAblationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timing ablation")
	}
	out, err := SinglePortAblation(tinyBudget())
	if err != nil {
		t.Fatalf("SinglePortAblation: %v", err)
	}
	for _, want := range []string{"cppc split", "2d single", "crafty"} {
		if !strings.Contains(out, want) {
			t.Errorf("single-port ablation missing %q", want)
		}
	}
}

func TestEarlyWritebackAblationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("policy ablation")
	}
	out, err := EarlyWritebackAblation(30_000, 3)
	if err != nil {
		t.Fatalf("EarlyWritebackAblation: %v", err)
	}
	if !strings.Contains(out, "off") || !strings.Contains(out, "MTTF") {
		t.Errorf("early-writeback ablation malformed:\n%s", out)
	}
}

func TestSection51AreaReport(t *testing.T) {
	out := Section51Area(1)
	for _, want := range []string{"parity-1d", "cppc", "secded", "parity-2d", "barrel shifters", "12.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("area table missing %q", want)
		}
	}
	// More pairs cost more register bits.
	out8 := Section51Area(8)
	if !strings.Contains(out8, "+1024 reg") {
		t.Errorf("8-pair register storage not reflected:\n%s", out8)
	}
}

func TestMonteCarloValidationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo lifetimes")
	}
	out := MonteCarloValidation(4, 5)
	for _, want := range []string{"parity-1d", "cppc", "ratio", "lethality"} {
		if !strings.Contains(out, want) {
			t.Errorf("MC validation report missing %q", want)
		}
	}
}

func TestSectionL3Report(t *testing.T) {
	if testing.Short() {
		t.Skip("three-level simulation")
	}
	out, err := SectionL3(Budget{Warmup: 30_000, Measure: 60_000, Seed: 1})
	if err != nil {
		t.Fatalf("SectionL3: %v", err)
	}
	for _, want := range []string{"mcf", "RBW/store L3", "cppc/parity L3 energy",
		"parity CPI", "cppc@L3 CPI", "cppc@L2 CPI"} {
		if !strings.Contains(out, want) {
			t.Errorf("L3 report missing %q", want)
		}
	}
}

func TestL3CellDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three-level simulation")
	}
	p, ok := trace.ProfileByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	b := Budget{Warmup: 5_000, Measure: 15_000, Seed: 9}
	r1, err := L3Cell(context.Background(), p, b)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := L3Cell(context.Background(), p, b)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if r1 != r2 {
		t.Errorf("same seed produced different L3 cells:\n%+v\n%+v", r1, r2)
	}
	if r1.ParityCPI <= 0 || r1.CPPCL3CPI <= 0 || r1.CPPCL2CPI <= 0 {
		t.Errorf("timed L3 cell missing CPI columns: %+v", r1)
	}
}
