package experiments

import (
	"context"
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/fault"
	"cppc/internal/protect"
	"cppc/internal/tables"
)

// FieldMC is the HARP-style field-mix profiler: Monte-Carlo campaigns
// over a footprint × lifetime × rate grid (the fault classes the DDR4
// field study reports, see PAPERS.md), classifying per scheme which
// classes end Corrected / DUE / SDC. Unlike the transient-only spatial
// study, persistent faults re-assert through the cache's fault plane on
// every array consult — so the grid is where lifetimes visibly change
// the scheme ranking: a stuck-at bit that parity-1d turns into a DUE
// the moment a store dirties it is corrected by CPPC on every access.
//
// Every cell draws its workload and placements from the same seed, so
// schemes face identical fault sequences (a paired comparison, like the
// Monte-Carlo validation) and cells are byte-identical wherever they
// run — the property the daemon's cell cache and the fleet rely on.

// FieldPoint is one grid point: a fault class and an arrival rate.
type FieldPoint struct {
	Footprint string // word | col | row | bank (fault.ParseFootprint)
	Lifetime  string // transient | intermittent | stuck (fault.ParseLifetime)
	Rate      string // x1 | x4: fault instances per trial window
}

func (p FieldPoint) String() string {
	return p.Footprint + "/" + p.Lifetime + "/" + p.Rate
}

// FieldMCSchemes is the canonical scheme list (column order): the
// paper's four schemes plus the CPPC byte-shift and pair-count
// ablations, whose coverage the footprint classes separate.
func FieldMCSchemes() []string {
	return []string{"parity-1d", "parity-2d", "secded", "cppc", "cppc-noshift", "cppc-2pair"}
}

// FieldMCPoints is the canonical grid (row order): footprint-major,
// then lifetime, then rate.
func FieldMCPoints() []FieldPoint {
	var pts []FieldPoint
	for _, f := range []string{"word", "col", "row", "bank"} {
		for _, l := range []string{"transient", "intermittent", "stuck"} {
			for _, r := range []string{"x1", "x4"} {
				pts = append(pts, FieldPoint{Footprint: f, Lifetime: l, Rate: r})
			}
		}
	}
	return pts
}

// FieldMCCell is one (scheme, grid point) campaign result.
type FieldMCCell struct {
	Scheme string
	Point  FieldPoint
	Counts fault.Counts
}

// fieldFactory maps a FieldMCSchemes name to its scheme constructor.
func fieldFactory(scheme string) (fault.SchemeFactory, error) {
	switch scheme {
	case "parity-1d":
		return func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) }, nil
	case "parity-2d":
		return func(c *cache.Cache) protect.Scheme { return protect.NewTwoDim(c, 8) }, nil
	case "secded":
		return func(c *cache.Cache) protect.Scheme { return protect.NewSECDED(c, true) }, nil
	case "cppc":
		return func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL1Config()) }, nil
	case "cppc-noshift":
		return func(c *cache.Cache) protect.Scheme {
			return protect.MustCPPC(c, core.Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false})
		}, nil
	case "cppc-2pair":
		return func(c *cache.Cache) protect.Scheme {
			return protect.MustCPPC(c, core.Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true})
		}, nil
	}
	return nil, fmt.Errorf("fieldmc: unknown scheme %q", scheme)
}

// fieldModel translates a grid point into the fault model seam's terms.
func fieldModel(pt FieldPoint) (fault.Model, int, error) {
	foot, err := fault.ParseFootprint(pt.Footprint)
	if err != nil {
		return fault.Model{}, 0, err
	}
	life, err := fault.ParseLifetime(pt.Lifetime)
	if err != nil {
		return fault.Model{}, 0, err
	}
	var faults int
	switch pt.Rate {
	case "x1":
		faults = 1
	case "x4":
		faults = 4
	default:
		return fault.Model{}, 0, fmt.Errorf("fieldmc: unknown rate %q", pt.Rate)
	}
	return fault.Model{Foot: foot, Life: life}, faults, nil
}

// FieldMCCellCtx runs one grid cell: `trials` populate → exercise →
// probe lifetimes of the point's fault model under the named scheme.
func FieldMCCellCtx(ctx context.Context, scheme string, pt FieldPoint, trials int, seed int64) (FieldMCCell, error) {
	mk, err := fieldFactory(scheme)
	if err != nil {
		return FieldMCCell{}, err
	}
	m, faults, err := fieldModel(pt)
	if err != nil {
		return FieldMCCell{}, err
	}
	counts, err := fault.RunModelTrialsCtx(ctx, fault.CampaignCacheConfig(), mk, m, faults, trials, seed)
	if err != nil {
		return FieldMCCell{}, err
	}
	return FieldMCCell{Scheme: scheme, Point: pt, Counts: counts}, nil
}

// FieldMCTable renders the field-mix grid from per-cell results, which
// must be in point-major, FieldMCSchemes-minor order (the order
// FieldMCCtx and the daemon's shard planner both produce). The output
// is byte-identical to the sequential run's.
func FieldMCTable(trials int, cells []FieldMCCell) string {
	schemes := FieldMCSchemes()
	cols := append([]string{"fault class"}, schemes...)
	t := tables.New(
		fmt.Sprintf("field-mix fault campaign: corrected/DUE/SDC of %d trials", trials),
		cols...)
	for i := 0; i < len(cells); i += len(schemes) {
		row := make([]any, 0, len(cols))
		row = append(row, cells[i].Point.String())
		for j, s := range schemes {
			c := cells[i+j]
			if c.Scheme != s {
				row = append(row, "?")
				continue
			}
			row = append(row, fmt.Sprintf("%d/%d/%d", c.Counts.Corrected, c.Counts.DUE, c.Counts.SDC))
		}
		t.Addf(row...)
	}
	return t.String() +
		"footprints: word = single bit, col = full bit column, row = full wordline,\n" +
		"bank = 8x8 region; lifetimes: transient = flip once, intermittent = flicker\n" +
		"(p=0.2/consult), stuck = cell pinned at a level, re-asserted on every array\n" +
		"consult; rate = fault instances per trial window. Persistent faults defeat\n" +
		"one-shot repair: only schemes that correct on every access keep running.\n"
}

// FieldMCCtx is the sequential driver: every grid cell in canonical
// order, rendered through FieldMCTable. The daemon's sharded fieldmc
// job kind aggregates to byte-identical output.
func FieldMCCtx(ctx context.Context, trials int, seed int64) (string, error) {
	schemes := FieldMCSchemes()
	cells := make([]FieldMCCell, 0, len(FieldMCPoints())*len(schemes))
	for _, pt := range FieldMCPoints() {
		for _, s := range schemes {
			c, err := FieldMCCellCtx(ctx, s, pt, trials, seed)
			if err != nil {
				return "", err
			}
			cells = append(cells, c)
		}
	}
	return FieldMCTable(trials, cells), nil
}

// FieldMC is FieldMCCtx without cancellation.
func FieldMC(trials int, seed int64) string {
	s, _ := FieldMCCtx(context.Background(), trials, seed)
	return s
}
