package experiments

import (
	"context"
	"strings"
	"testing"

	"cppc/internal/cache"
	"cppc/internal/coherence"
	"cppc/internal/core"
	"cppc/internal/cpu"
	"cppc/internal/protect"
	"cppc/internal/trace"
)

// multicoreFolds sums the CPPC fold counters across every engine of the
// shared hierarchy.
func multicoreFolds(m *coherence.Multiprocessor) uint64 {
	var n uint64
	for _, l1 := range m.L1s {
		n += l1.Scheme.(*protect.CPPCScheme).Engine.Events.Folds
	}
	return n + m.L2.Scheme.(*protect.CPPCScheme).Engine.Events.Folds
}

// TestMulticoreWarmupFoldInvariance: the fold counts a multicore cell
// reports must cover the measurement window only. An uninterrupted run
// of the same deterministic streams gives the total folds across both
// windows; the cell's counts must equal that total minus the folds the
// warmup produced. (The bug: Multiprocessor.ResetStats cleared the
// cache stats at the warmup boundary but not the engines' event
// counters, so warmup folds leaked into every multicore energy figure.)
func TestMulticoreWarmupFoldInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("timed multicore simulation")
	}
	const cores, sf = 2, 0.3
	const warm, meas = 5_000, 15_000
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	l1cfg, l2cfg, err := mpConfigs()
	if err != nil {
		t.Fatal(err)
	}
	mkL1 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL1Config()) }
	mkL2 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL2Config()) }
	m := coherence.New(cores, l1cfg, l2cfg, mkL1, mkL2, 200)
	defer m.Release()
	m.Timing = coherence.DefaultTiming()
	ports := make([]cpu.MemoryPort, cores)
	srcs := make([]trace.Source, cores)
	for i, g := range p.NewCoreGens(cores, sf, 1) {
		ports[i] = m.CorePort(i)
		srcs[i] = g
	}
	cl, err := cpu.NewCluster(cpu.Table1Config(), ports, srcs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Release()
	// No ResetStats between the windows: folds accumulate across both.
	if _, err := cl.RunCtx(context.Background(), warm, 0); err != nil {
		t.Fatal(err)
	}
	warmFolds := multicoreFolds(m)
	if _, err := cl.RunCtx(context.Background(), meas, 0); err != nil {
		t.Fatal(err)
	}
	allFolds := multicoreFolds(m)
	if warmFolds == 0 {
		t.Fatal("warmup produced no folds; the invariance check is vacuous")
	}

	run, err := MulticoreCell(p, cores, sf, false, Budget{Warmup: warm, Measure: meas, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := run.FoldsL1+run.FoldsL2, allFolds-warmFolds; got != want {
		t.Errorf("cell reported %d folds, want measure-window-only %d (total %d, warmup %d)",
			got, want, allFolds, warmFolds)
	}
}

// TestSection7TableGuardsDegenerateRuns: a halted or zero-budget cell
// has no stores and no energy; the renderer must print zeros, never NaN
// or Inf.
func TestSection7TableGuardsDegenerateRuns(t *testing.T) {
	out := Section7Table([]MulticoreRun{
		{Bench: "gzip", Cores: 1, SharedFrac: 0},
		{Bench: "gzip", Cores: 2, SharedFrac: 0.3},
	})
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("degenerate runs rendered %s:\n%s", bad, out)
		}
	}
	for _, want := range []string{"energy (nJ)", "energy vs 1 core"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q column", want)
		}
	}
}

// TestMulticoreSilentElision: at the same sweep point the cppc-silent
// hierarchy must be timing- and detection-identical to plain CPPC —
// same CPI, cycles, cache and coherence stats — while eliding a
// non-zero number of silent stores and spending strictly less write and
// fold energy.
func TestMulticoreSilentElision(t *testing.T) {
	if testing.Short() {
		t.Skip("timed multicore simulation")
	}
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	b := Budget{Warmup: 5_000, Measure: 15_000, Seed: 3}
	plain, err := MulticoreCell(p, 2, 0.3, false, b)
	if err != nil {
		t.Fatal(err)
	}
	silent, err := MulticoreCell(p, 2, 0.3, true, b)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CPI != silent.CPI || plain.Cycles != silent.Cycles {
		t.Errorf("elision changed timing: plain CPI %v / %d cycles, silent %v / %d",
			plain.CPI, plain.Cycles, silent.CPI, silent.Cycles)
	}
	if plain.L1 != silent.L1 || plain.L2 != silent.L2 || plain.Coherence != silent.Coherence {
		t.Error("elision changed cache or coherence statistics")
	}
	if silent.ElidedL1 == 0 {
		t.Fatal("no silent stores elided; assertions below are vacuous")
	}
	if got, want := plain.FoldsL1-silent.FoldsL1, 2*silent.ElidedL1; got != want {
		t.Errorf("L1 fold savings = %d, want 2*elided = %d", got, want)
	}
	pw := plain.EnergyL1.WritePJ + plain.EnergyL1.FoldPJ + plain.EnergyL2.WritePJ + plain.EnergyL2.FoldPJ
	sw := silent.EnergyL1.WritePJ + silent.EnergyL1.FoldPJ + silent.EnergyL2.WritePJ + silent.EnergyL2.FoldPJ
	if sw >= pw {
		t.Errorf("silent write+fold energy %v not below plain %v", sw, pw)
	}
	if silent.TotalEnergyPJ() >= plain.TotalEnergyPJ() {
		t.Errorf("silent total energy %v not below plain %v", silent.TotalEnergyPJ(), plain.TotalEnergyPJ())
	}
	// The non-saved components are untouched.
	if plain.EnergyL1.ReadPJ != silent.EnergyL1.ReadPJ || plain.EnergyL1.RBWPJ != silent.EnergyL1.RBWPJ {
		t.Error("elision changed read or RBW energy")
	}
	if plain.EnergyBus != silent.EnergyBus {
		t.Error("elision changed bus energy")
	}
}

// TestMulticoreSilentDeterminism: the silent knob keeps the cell
// deterministic — two runs with the same seed are equal field for
// field.
func TestMulticoreSilentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("timed multicore simulation")
	}
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	b := Budget{Warmup: 5_000, Measure: 15_000, Seed: 9}
	r1, err := MulticoreCell(p, 2, 0.5, true, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MulticoreCell(p, 2, 0.5, true, b)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("same seed produced different silent runs:\n%+v\n%+v", r1, r2)
	}
	if !r1.Silent {
		t.Error("run does not record its silent variant")
	}
}

// TestSimulateSilentBitIdentical: on the single-core system, the
// cppc-silent scheme must reproduce plain CPPC's timing and cache
// behavior exactly while recording a non-zero elision count.
func TestSimulateSilentBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("timed simulation")
	}
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	b := Budget{Warmup: 5_000, Measure: 15_000, Seed: 1}
	plain, err := SimulateCtx(context.Background(), p, CPPC, b)
	if err != nil {
		t.Fatal(err)
	}
	silent, err := SimulateCtx(context.Background(), p, CPPCSilent, b)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CPI != silent.CPI {
		t.Errorf("elision changed CPI: %v vs %v", plain.CPI, silent.CPI)
	}
	if plain.L1 != silent.L1 || plain.L2 != silent.L2 {
		t.Error("elision changed cache statistics")
	}
	if silent.Elided.L1 == 0 {
		t.Fatal("no L1 stores elided; the comparison is vacuous")
	}
	if got, want := plain.Folds.L1-silent.Folds.L1, 2*silent.Elided.L1; got != want {
		t.Errorf("L1 fold savings = %d, want 2*elided = %d", got, want)
	}
	if plain.Elided.L1 != 0 || plain.Elided.L2 != 0 {
		t.Error("plain CPPC recorded elisions")
	}
}

// TestSilentStoreAblationReport smoke-tests the Fig. 11/12-style
// ablation table: the cppc-silent columns render, nothing degenerates
// to NaN, and the timing-neutrality column is present.
func TestSilentStoreAblationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timed ablation")
	}
	out, err := SilentStoreAblation(Budget{Warmup: 5_000, Measure: 15_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cppc-silent", "elided/store", "CPI silent/cppc"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("ablation report rendered NaN:\n%s", out)
	}
}
