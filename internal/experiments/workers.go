package experiments

import (
	"context"

	"cppc/internal/par"
)

// The intra-cell parallelism hint rides on the context rather than on
// Budget or the cell parameters: it is a wall-clock knob, never part of
// a cell's identity. Cell results (and therefore the content-addressed
// cell cache keys derived from the parameters) are bit-identical
// whatever the hint says — the scheduler sizes it from transient facts
// like idle pool workers.
//
// The key itself lives in internal/par so the fault campaigns (which
// this package drives, and which cannot import it back) read the same
// hint: one worker budget flows from the scheduler or a -parallel flag
// down to both the timed cluster and the trial executor.

// WithCellWorkers returns a context carrying an intra-cell parallelism
// hint of n goroutines. n < 2 carries nothing (serial).
func WithCellWorkers(ctx context.Context, n int) context.Context {
	return par.WithWorkers(ctx, n)
}

// CellWorkers returns the intra-cell parallelism hint carried by ctx,
// or 1 when the context carries none.
func CellWorkers(ctx context.Context) int {
	return par.Workers(ctx)
}
