package experiments

import "context"

// The intra-cell parallelism hint rides on the context rather than on
// Budget or the cell parameters: it is a wall-clock knob, never part of
// a cell's identity. Cell results (and therefore the content-addressed
// cell cache keys derived from the parameters) are bit-identical
// whatever the hint says — the scheduler sizes it from transient facts
// like idle pool workers.

type cellWorkersKey struct{}

// WithCellWorkers returns a context carrying an intra-cell parallelism
// hint of n goroutines. n < 2 carries nothing (serial).
func WithCellWorkers(ctx context.Context, n int) context.Context {
	if n < 2 {
		return ctx
	}
	return context.WithValue(ctx, cellWorkersKey{}, n)
}

// CellWorkers returns the intra-cell parallelism hint carried by ctx,
// or 1 when the context carries none.
func CellWorkers(ctx context.Context) int {
	if n, ok := ctx.Value(cellWorkersKey{}).(int); ok && n > 1 {
		return n
	}
	return 1
}
