package experiments

import (
	"context"
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/cpu"
	"cppc/internal/energy"
	"cppc/internal/protect"
	"cppc/internal/reliability"
	"cppc/internal/tables"
	"cppc/internal/trace"
)

// SinglePortAblation evaluates the Sec. 7 future-work question — "we will
// also evaluate single-ported caches and their impact on the
// read-before-write operations" — by re-running the Fig. 10 CPI
// comparison with the L1 read and write ports merged.
func SinglePortAblation(b Budget) (string, error) {
	t := tables.New("Sec. 7 ablation: single-ported L1 vs. split ports (CPI overhead over parity-1d)",
		"benchmark", "cppc split", "cppc single", "2d split", "2d single")
	run := func(p trace.Profile, mk cpu.SchemeFactory, single bool) float64 {
		sys := cpu.NewSystem(mk, cpu.Parity1DFactory())
		defer sys.Release()
		cfg := cpu.Table1Config()
		cfg.SinglePorted = single
		c := cpu.NewCoreWithPort(cfg, sys.Port())
		gen := p.NewMemoGen(b.Seed)
		w := c.Run(gen, b.Warmup)
		m := c.Run(gen, b.Measure)
		return float64(m.Cycles-w.Cycles) / float64(m.Instructions)
	}
	for _, name := range []string{"crafty", "vortex", "swim"} {
		p, ok := trace.ProfileByName(name)
		if !ok {
			return "", fmt.Errorf("single-port ablation: profile %q not found", name)
		}
		var over [4]float64
		for i, cfg := range []struct {
			mk     cpu.SchemeFactory
			single bool
		}{
			{cpu.CPPCFactory(core.DefaultL1Config()), false},
			{cpu.CPPCFactory(core.DefaultL1Config()), true},
			{cpu.TwoDimFactory(), false},
			{cpu.TwoDimFactory(), true},
		} {
			base := run(p, cpu.Parity1DFactory(), cfg.single)
			over[i] = run(p, cfg.mk, cfg.single)/base - 1
		}
		t.Addf(name,
			tables.Pct(over[0]), tables.Pct(over[1]),
			tables.Pct(over[2]), tables.Pct(over[3]))
	}
	return t.String() +
		"merging the ports raises every scheme's absolute CPI; the baseline becomes\n" +
		"port-bound, so 2D parity's relative overhead shrinks while CPPC's stolen\n" +
		"reads remain negligible in both designs\n", nil
}

// EarlyWritebackAblation quantifies the related-work technique of [2, 15]
// (Sec. 2): periodically cleaning dirty blocks trades write-back energy
// for a smaller vulnerable population — which directly scales the
// baseline parity MTTF and shortens CPPC's exposure windows.
func EarlyWritebackAblation(accesses int, seed int64) (string, error) {
	t := tables.New("Ablation: early write-back interval vs. dirty population",
		"interval", "dirty L1", "write-backs", "early WBs", "parity-1d MTTF (yr)")
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		return "", fmt.Errorf("early-writeback ablation: profile %q not found", "gzip")
	}
	for _, interval := range []uint64{0, 512, 128, 32} {
		ccfg := cache.L1DConfig()
		c := cache.New(ccfg)
		mem := cache.NewMemory(32, 200)
		ct := protect.NewController(c, protect.MustCPPC(c, core.DefaultL1Config()), mem)
		ct.SetSampleInterval(64)
		ct.SetEarlyWriteback(interval, 8)

		gen := p.NewMemoGen(seed)
		var now uint64
		for i := 0; i < accesses; {
			in := gen.Next()
			switch in.Op {
			case trace.OpLoad:
				now++
				i++
				ct.Load(in.Addr, now)
			case trace.OpStore:
				now++
				i++
				ct.Store(in.Addr, in.Addr, now)
			}
		}
		params := reliability.Params{
			FITPerBit: 0.001, AVF: 0.7, FreqHz: 3e9,
			TotalBits: ccfg.TotalBits(), DirtyFraction: c.DirtyFraction(),
			TavgCycles: 1828,
		}
		label := "off"
		if interval > 0 {
			label = fmt.Sprintf("%d", interval)
		}
		t.Addf(label, tables.Pct(c.DirtyFraction()), ct.Stats.WriteBack,
			ct.EarlyWriteBacks, fmt.Sprintf("%.0f", reliability.Parity1DMTTFYears(params)))
	}
	return t.String(), nil
}

// SilentStoreAblation renders the Fig. 11/12-style energy comparison for
// the cppc-silent scheme: both CPPC variants' L1 and L2 dynamic energy
// normalized to parity-1d, next to the fraction of stores elided. The
// elision is timing-neutral by construction (the compare rides the
// read-before-write the incremental check-bit path already performs), so
// the CPI ratio column must read 1.000 — the whole benefit is the
// skipped array writes and register folds.
func SilentStoreAblation(b Budget) (string, error) {
	t := tables.New("Fig. 11/12 ablation: silent-store elision (dynamic energy normalized to parity-1d)",
		"benchmark", "L1 cppc", "L1 cppc-silent", "L2 cppc", "L2 cppc-silent", "elided/store", "CPI silent/cppc")
	levelEnergy := func(r Run, id SchemeID, level int) float64 {
		var folds, elided uint64
		if isCPPC(id) {
			if level == 1 {
				folds, elided = r.Folds.L1, r.Elided.L1
			} else {
				folds, elided = r.Folds.L2, r.Elided.L2
			}
		}
		if level == 1 {
			return energy.CountElided(r.L1, l1EnergyModel(id), 1, folds, elided).Total()
		}
		return energy.CountElided(r.L2, l2EnergyModel(id), 4, folds, elided).Total()
	}
	for _, name := range []string{"gzip", "gcc", "mcf", "vpr"} {
		p, ok := trace.ProfileByName(name)
		if !ok {
			return "", fmt.Errorf("silent-store ablation: profile %q not found", name)
		}
		runs := map[SchemeID]Run{}
		for _, id := range []SchemeID{Parity1D, CPPC, CPPCSilent} {
			r, err := SimulateCtx(context.Background(), p, id, b)
			if err != nil {
				return "", fmt.Errorf("silent-store ablation %s/%s: %w", name, id, err)
			}
			runs[id] = r
		}
		baseL1 := levelEnergy(runs[Parity1D], Parity1D, 1)
		baseL2 := levelEnergy(runs[Parity1D], Parity1D, 2)
		norm := func(e, base float64) float64 {
			if base == 0 {
				return 0
			}
			return e / base
		}
		elidedFrac := 0.0
		if st := runs[CPPCSilent].L1.Stores; st > 0 {
			elidedFrac = float64(runs[CPPCSilent].Elided.L1) / float64(st)
		}
		cpiRatio := 0.0
		if runs[CPPC].CPI > 0 {
			cpiRatio = runs[CPPCSilent].CPI / runs[CPPC].CPI
		}
		t.Addf(name,
			norm(levelEnergy(runs[CPPC], CPPC, 1), baseL1),
			norm(levelEnergy(runs[CPPCSilent], CPPCSilent, 1), baseL1),
			norm(levelEnergy(runs[CPPC], CPPC, 2), baseL2),
			norm(levelEnergy(runs[CPPCSilent], CPPCSilent, 2), baseL2),
			tables.Pct(elidedFrac), cpiRatio)
	}
	return t.String() +
		"elision skips the data-array write and both register folds when the stored\n" +
		"value equals the resident one; detection outcomes are bit-identical because\n" +
		"equal R1/R2 contributions cancel in R1^R2\n", nil
}

// ICacheAblation quantifies the front-end model: Fig. 10's CPIs with the
// Table 1 L1I attached (instruction fetch through a 16KB direct-mapped
// parity-protected cache sharing the unified L2). Instructions are
// read-only, so parity alone fully protects them — the reason the paper's
// machinery targets the data side.
func ICacheAblation(b Budget) (string, error) {
	t := tables.New("Ablation: instruction-cache modeling (parity-1d data cache)",
		"benchmark", "CPI no L1I", "CPI with L1I", "L1I miss rate")
	for _, name := range []string{"gzip", "gcc", "swim"} {
		p, ok := trace.ProfileByName(name)
		if !ok {
			return "", fmt.Errorf("icache ablation: profile %q not found", name)
		}
		run := func(withIC bool) (float64, float64) {
			sys := cpu.NewSystem(cpu.Parity1DFactory(), cpu.Parity1DFactory())
			defer sys.Release()
			c := cpu.NewCoreWithPort(cpu.Table1Config(), sys.Port())
			if withIC {
				c.SetICache(sys.L1I, 64<<10)
			}
			gen := p.NewMemoGen(b.Seed)
			w := c.Run(gen, b.Warmup)
			m := c.Run(gen, b.Measure)
			return float64(m.Cycles-w.Cycles) / float64(m.Instructions), sys.L1I.Stats.MissRate()
		}
		base, _ := run(false)
		with, mr := run(true)
		t.Addf(name, base, with, tables.Pct(mr))
	}
	return t.String(), nil
}
