package experiments

import (
	"context"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/fault"
	"cppc/internal/protect"
	"cppc/internal/tables"
)

// SpatialCoverage runs the Monte-Carlo cross-check of Secs. 4.6 and 4.11:
// spatial-MBE correction rates for square faults from 1x1 to 8x8, per
// CPPC configuration, with the baselines alongside.
func SpatialCoverage(trials int, seed int64) string {
	s, _ := SpatialCoverageCtx(context.Background(), trials, seed)
	return s
}

// SpatialCoverageCtx is SpatialCoverage with cooperative cancellation;
// each shape's trials fan across the context's worker hint
// (WithCellWorkers) with bit-identical rates at any count.
func SpatialCoverageCtx(ctx context.Context, trials int, seed int64) (string, error) {
	configs := []struct {
		name string
		mk   fault.SchemeFactory
	}{
		{"cppc 1 pair + shifting", cppcF(core.Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: true})},
		{"cppc 2 pairs + shifting", cppcF(core.Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true})},
		{"cppc 8 pairs, no shifting", cppcF(core.FullCorrectionConfig())},
		{"cppc basic (no shifting)", cppcF(core.Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false})},
		{"parity-1d", func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) }},
	}
	out := "Secs. 4.6/4.11: spatial-MBE correction rate by square size (rows = height, cols = width)\n"
	for _, cfg := range configs {
		m, err := fault.CoverageMatrixCfgCtx(ctx, fault.CampaignCacheConfig(), cfg.mk, 8, trials, seed)
		if err != nil {
			return "", err
		}
		out += "\n" + cfg.name + ":\n" + fault.FormatMatrix(m)
	}
	// SECDED lives on its physically bit-interleaved layout (8 words per
	// row, adjacent cells from different words): an 8-wide burst becomes
	// eight single-bit errors, each correctable per codeword.
	m, err := fault.CoverageMatrixCfgCtx(ctx, fault.InterleavedCampaignConfig(),
		func(c *cache.Cache) protect.Scheme { return protect.NewSECDED(c, true) },
		8, trials, seed)
	if err != nil {
		return "", err
	}
	out += "\nsecded + 8-way physical bit interleaving:\n" + fault.FormatMatrix(m)
	return out, nil
}

func cppcF(cfg core.Config) fault.SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, cfg) }
}

// PairAblation summarizes the area/reliability trade-off of Secs. 3.4 and
// 4.6: correction rate of 8x8 faults and aliasing exposure per register
// pair count.
func PairAblation(trials int, seed int64) string {
	s, _ := PairAblationCtx(context.Background(), trials, seed)
	return s
}

// PairAblationCtx is PairAblation with cooperative cancellation and
// trial fan-out up to the context's worker hint.
func PairAblationCtx(ctx context.Context, trials int, seed int64) (string, error) {
	t := tables.New("Ablation: register pairs vs. 8x8 spatial coverage",
		"pairs", "corrected", "DUE", "SDC")
	for _, pairs := range []int{1, 2, 4, 8} {
		cfg := core.Config{ParityDegree: 8, RegisterPairs: pairs, ByteShifting: pairs < 8}
		got, err := fault.RunSpatialTrialsCfgCtx(ctx, fault.CampaignCacheConfig(), cppcF(cfg), 8, 8, trials, seed)
		if err != nil {
			return "", err
		}
		t.Addf(pairs, got.Corrected, got.DUE, got.SDC)
	}
	return t.String(), nil
}

// ParityAblation sweeps the parity degree (Sec. 3.4's first scaling knob)
// against temporal two-bit faults.
func ParityAblation(trials int, seed int64) string {
	s, _ := ParityAblationCtx(context.Background(), trials, seed)
	return s
}

// ParityAblationCtx is ParityAblation with cooperative cancellation and
// trial fan-out up to the context's worker hint.
func ParityAblationCtx(ctx context.Context, trials int, seed int64) (string, error) {
	t := tables.New("Ablation: parity degree vs. temporal 2-bit faults",
		"degree", "corrected", "DUE", "SDC")
	for _, degree := range []int{1, 2, 4, 8} {
		cfg := core.Config{ParityDegree: degree, RegisterPairs: 1, ByteShifting: true}
		got, err := fault.RunTemporalTrialsCtx(ctx, cppcF(cfg), 2, trials, seed)
		if err != nil {
			return "", err
		}
		t.Addf(degree, got.Corrected, got.DUE, got.SDC)
	}
	return t.String(), nil
}
