package experiments

import (
	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/fault"
	"cppc/internal/protect"
	"cppc/internal/tables"
)

// SpatialCoverage runs the Monte-Carlo cross-check of Secs. 4.6 and 4.11:
// spatial-MBE correction rates for square faults from 1x1 to 8x8, per
// CPPC configuration, with the baselines alongside.
func SpatialCoverage(trials int, seed int64) string {
	configs := []struct {
		name string
		mk   fault.SchemeFactory
	}{
		{"cppc 1 pair + shifting", cppcF(core.Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: true})},
		{"cppc 2 pairs + shifting", cppcF(core.Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true})},
		{"cppc 8 pairs, no shifting", cppcF(core.FullCorrectionConfig())},
		{"cppc basic (no shifting)", cppcF(core.Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false})},
		{"parity-1d", func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) }},
	}
	out := "Secs. 4.6/4.11: spatial-MBE correction rate by square size (rows = height, cols = width)\n"
	for _, cfg := range configs {
		m := fault.CoverageMatrix(cfg.mk, 8, trials, seed)
		out += "\n" + cfg.name + ":\n" + fault.FormatMatrix(m)
	}
	// SECDED lives on its physically bit-interleaved layout (8 words per
	// row, adjacent cells from different words): an 8-wide burst becomes
	// eight single-bit errors, each correctable per codeword.
	m := fault.CoverageMatrixInterleaved(
		func(c *cache.Cache) protect.Scheme { return protect.NewSECDED(c, true) },
		8, trials, seed)
	out += "\nsecded + 8-way physical bit interleaving:\n" + fault.FormatMatrix(m)
	return out
}

func cppcF(cfg core.Config) fault.SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, cfg) }
}

// PairAblation summarizes the area/reliability trade-off of Secs. 3.4 and
// 4.6: correction rate of 8x8 faults and aliasing exposure per register
// pair count.
func PairAblation(trials int, seed int64) string {
	t := tables.New("Ablation: register pairs vs. 8x8 spatial coverage",
		"pairs", "corrected", "DUE", "SDC")
	for _, pairs := range []int{1, 2, 4, 8} {
		cfg := core.Config{ParityDegree: 8, RegisterPairs: pairs, ByteShifting: pairs < 8}
		got := fault.RunSpatialTrials(cppcF(cfg), 8, 8, trials, seed)
		t.Addf(pairs, got.Corrected, got.DUE, got.SDC)
	}
	return t.String()
}

// ParityAblation sweeps the parity degree (Sec. 3.4's first scaling knob)
// against temporal two-bit faults.
func ParityAblation(trials int, seed int64) string {
	t := tables.New("Ablation: parity degree vs. temporal 2-bit faults",
		"degree", "corrected", "DUE", "SDC")
	for _, degree := range []int{1, 2, 4, 8} {
		cfg := core.Config{ParityDegree: degree, RegisterPairs: 1, ByteShifting: true}
		got := fault.RunTemporalTrials(cppcF(cfg), 2, trials, seed)
		t.Addf(degree, got.Corrected, got.DUE, got.SDC)
	}
	return t.String()
}
