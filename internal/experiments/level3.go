package experiments

import (
	"context"
	"fmt"
	"sync"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/cpu"
	"cppc/internal/energy"
	"cppc/internal/protect"
	"cppc/internal/tables"
	"cppc/internal/trace"
)

// L3Run is one benchmark's timed Sec. 7 L3 cell. All fields are
// comparable, so same-seed determinism can be asserted with ==.
type L3Run struct {
	Bench string

	// CPI of the timed three-level stack under each protection placement:
	// all-parity baseline, CPPC at the L3 under test, CPPC at the L2.
	ParityCPI float64
	CPPCL3CPI float64
	CPPCL2CPI float64

	// L3 behaviour in the CPPC-at-L3 configuration (measure window only).
	L3Accesses uint64
	L3MissRate float64

	// Read-before-writes per store at the CPPC level, for the paper's
	// conjecture that the L3 pays fewer of them than the L2.
	RBWPerStoreL2 float64
	RBWPerStoreL3 float64

	// L3 dynamic energy, CPPC over parity, counted over the measure
	// window only (warmup folds excluded).
	EnergyRatio float64
}

// L3Cell runs one benchmark through the Sec. 7 three-level hierarchy
// (parity L1 over an L2 and the 8MB L3 under test, 300-cycle memory)
// three times — all-parity, CPPC at L3, CPPC at L2 — on the timed Table 1
// core, and reports CPI alongside the RBW and energy ratios the paper's
// conjecture is about.
func L3Cell(ctx context.Context, p trace.Profile, b Budget) (L3Run, error) {
	type out struct {
		res    cpu.Result
		l2, l3 cache.Stats
		folds  uint64
	}
	// where selects the CPPC level: 0 = none (all parity), 2 or 3.
	run := func(where int) (out, error) {
		l2f, l3f := cpu.Parity1DFactory(), cpu.Parity1DFactory()
		switch where {
		case 2:
			l2f = cpu.CPPCFactory(core.DefaultL2Config())
		case 3:
			l3f = cpu.CPPCFactory(core.DefaultL2Config())
		}
		sys := cpu.NewStack(cache.NewMemory(32, 300),
			cpu.Level{Cfg: cache.L1DConfig(), Scheme: cpu.Parity1DFactory()},
			cpu.Level{Cfg: cache.L2Config(), Scheme: l2f},
			cpu.Level{Cfg: cache.L3Config(), Scheme: l3f},
		)
		defer sys.Release()
		res, err := cpu.RunSourceWarmCtx(ctx, p.NewMemoGen(b.Seed), b.Warmup, b.Measure, sys)
		if err != nil {
			return out{}, err
		}
		o := out{res: res, l2: sys.Levels[1].Stats, l3: sys.Levels[2].Stats}
		if where == 3 {
			// Measure-window folds only: RunSourceWarmCtx reset the engine
			// events at the warmup boundary along with the cache stats.
			o.folds = sys.Levels[2].Scheme.(*protect.CPPCScheme).Engine.Events.Folds
		}
		return o, nil
	}

	// The three placements are fully independent simulations (own stack,
	// own generator from the same seed), so with idle pool workers they
	// fan out; results are merged in the fixed (parity, L3, L2) order
	// either way, keeping the cell bit-identical to the serial path.
	outs := make([]out, 3)
	errs := make([]error, 3)
	wheres := [3]int{0, 3, 2}
	if workers := CellWorkers(ctx); workers >= 2 {
		var wg sync.WaitGroup
		for i, where := range wheres {
			wg.Add(1)
			go func() {
				defer wg.Done()
				outs[i], errs[i] = run(where)
			}()
		}
		wg.Wait()
	} else {
		for i, where := range wheres {
			outs[i], errs[i] = run(where)
			if errs[i] != nil {
				break
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return L3Run{}, err
		}
	}
	par, cp3, cp2 := outs[0], outs[1], outs[2]

	model := energy.New(cache.L3Config(), 8, 1)
	ePar := energy.Count(par.l3, model, 4, 0)
	eCpp := energy.Count(cp3.l3, model, 4, cp3.folds)

	r := L3Run{
		Bench:      p.Name,
		ParityCPI:  par.res.CPI,
		CPPCL3CPI:  cp3.res.CPI,
		CPPCL2CPI:  cp2.res.CPI,
		L3Accesses: cp3.l3.Accesses(),
		L3MissRate: cp3.l3.MissRate(),
	}
	// Tiny budgets can leave the L3 with no counted activity; keep the
	// field comparable (a NaN would break the == determinism checks).
	if ePar.Total() > 0 {
		r.EnergyRatio = eCpp.Ratio(ePar)
	}
	if cp2.l2.Stores > 0 {
		r.RBWPerStoreL2 = float64(cp2.l2.ReadBeforeWrite) / float64(cp2.l2.Stores)
	}
	if cp3.l3.Stores > 0 {
		r.RBWPerStoreL3 = float64(cp3.l3.ReadBeforeWrite) / float64(cp3.l3.Stores)
	}
	return r, nil
}

// SectionL3Ctx runs the paper's first named future-work item (Sec. 7): an
// L3 CPPC under large-footprint workloads. The prediction — "we believe
// the number of read-before-write operations is smaller in L3 caches",
// hence even lower energy overhead than the L2's ~7% — is tested by
// building a three-level hierarchy (parity L1 and L2 over the L3 under
// test) on the timed Table 1 core and comparing both CPI and the L3's
// dynamic energy under CPPC and parity.
func SectionL3Ctx(ctx context.Context, b Budget) (string, error) {
	runs := make([]L3Run, 0, len(L3Benches()))
	for _, name := range L3Benches() {
		p, ok := trace.ProfileByName(name)
		if !ok {
			return "", fmt.Errorf("L3 experiment: profile %q not found", name)
		}
		r, err := L3Cell(ctx, p, b)
		if err != nil {
			return "", err
		}
		runs = append(runs, r)
	}
	return L3Table(runs), nil
}

// L3Benches returns the canonical benchmark list of the Sec. 7 L3 study:
// the large-footprint workloads the paper's conjecture is about. Both
// the in-process sweep and the daemon's shard planner expand through
// here.
func L3Benches() []string { return []string{"mcf", "swim", "applu", "bzip2"} }

// L3Table renders the Sec. 7 L3 study from per-cell results, which must
// be in L3Benches order. The output is byte-identical to the sequential
// sweep's.
func L3Table(runs []L3Run) string {
	t := tables.New("Sec. 7: L3 CPPC under large-footprint workloads (timed)",
		"benchmark", "parity CPI", "cppc@L3 CPI", "cppc@L2 CPI",
		"L3 accesses", "L3 miss", "RBW/store L2", "RBW/store L3", "cppc/parity L3 energy")
	for _, r := range runs {
		t.Addf(r.Bench, r.ParityCPI, r.CPPCL3CPI, r.CPPCL2CPI,
			r.L3Accesses, tables.Pct(r.L3MissRate),
			fmt.Sprintf("%.3f", r.RBWPerStoreL2), fmt.Sprintf("%.3f", r.RBWPerStoreL3),
			fmt.Sprintf("%.3f", r.EnergyRatio))
	}
	return t.String() +
		"a nuanced verdict on the paper's conjecture: when the write working set's reuse\n" +
		"distance exceeds the L3 (bzip2 here), write-backs land on clean or absent blocks\n" +
		"and the overhead vanishes as predicted; cyclic write footprints that *fit* in a\n" +
		"large L3 keep rewriting still-dirty blocks and pay more read-before-writes than\n" +
		"at the L2 — the L3 advantage is a property of the workload's write reuse, not of\n" +
		"the level itself. The CPI columns show the timing side: an L3 hit is already 30\n" +
		"cycles, so CPPC's stolen read-before-write slots are invisible at either level\n"
}

// SectionL3 is SectionL3Ctx without cancellation.
func SectionL3(b Budget) (string, error) {
	return SectionL3Ctx(context.Background(), b)
}
