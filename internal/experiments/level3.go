package experiments

import (
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/cpu"
	"cppc/internal/energy"
	"cppc/internal/protect"
	"cppc/internal/tables"
	"cppc/internal/trace"
)

// SectionL3 runs the paper's first named future-work item (Sec. 7): an
// L3 CPPC under large-footprint workloads. The prediction — "we believe
// the number of read-before-write operations is smaller in L3 caches",
// hence even lower energy overhead than the L2's ~7% — is tested by
// building a three-level hierarchy (parity L1 and L2 over the L3 under
// test) and comparing the L3's dynamic energy under CPPC and parity.
func SectionL3(b Budget) (string, error) {
	t := tables.New("Sec. 7: L3 CPPC under large-footprint workloads",
		"benchmark", "L3 accesses", "L3 miss", "RBW/store L2", "RBW/store L3", "cppc/parity L3 energy")

	for _, name := range []string{"mcf", "swim", "applu", "bzip2"} {
		p, ok := trace.ProfileByName(name)
		if !ok {
			return "", fmt.Errorf("L3 experiment: profile %q not found", name)
		}
		type out struct {
			l3, l2 cache.Stats
			folds  uint64
		}
		// where selects the CPPC level: 0 = none (all parity), 2 or 3.
		run := func(where int) out {
			mem := cache.NewMemory(32, 300)
			l3c := cache.New(cache.L3Config())
			var l3s protect.Scheme = protect.NewParity1D(l3c, 8)
			if where == 3 {
				l3s = protect.MustCPPC(l3c, core.DefaultL2Config())
			}
			l3 := protect.NewController(l3c, l3s, mem)
			l2c := cache.New(cache.L2Config())
			var l2s protect.Scheme = protect.NewParity1D(l2c, 8)
			if where == 2 {
				l2s = protect.MustCPPC(l2c, core.DefaultL2Config())
			}
			l2 := protect.NewController(l2c, l2s, l3)
			l1c := cache.New(cache.L1DConfig())
			l1 := protect.NewController(l1c, protect.NewParity1D(l1c, 8), l2)

			c := cpu.NewCore(cpu.Table1Config(), l1)
			gen := p.NewGen(b.Seed)
			c.Run(gen, b.Warmup)
			l2.Stats, l3.Stats = cache.Stats{}, cache.Stats{}
			c.Run(gen, b.Measure)
			o := out{l3: l3.Stats, l2: l2.Stats}
			if where == 3 {
				o.folds = l3s.(*protect.CPPCScheme).Engine.Events.Folds
			}
			return o
		}
		par := run(0)
		cp3 := run(3)
		cp2 := run(2)

		model := energy.New(cache.L3Config(), 8, 1)
		ePar := energy.Count(par.l3, model, 4, 0).Total()
		eCpp := energy.Count(cp3.l3, model, 4, cp3.folds).Total()
		ratio := eCpp / ePar

		rbwL2 := 0.0
		if cp2.l2.Stores > 0 {
			rbwL2 = float64(cp2.l2.ReadBeforeWrite) / float64(cp2.l2.Stores)
		}
		rbwL3 := 0.0
		if cp3.l3.Stores > 0 {
			rbwL3 = float64(cp3.l3.ReadBeforeWrite) / float64(cp3.l3.Stores)
		}
		t.Addf(name, cp3.l3.Accesses(), tables.Pct(cp3.l3.MissRate()),
			fmt.Sprintf("%.3f", rbwL2), fmt.Sprintf("%.3f", rbwL3),
			fmt.Sprintf("%.3f", ratio))
	}
	return t.String() +
		"a nuanced verdict on the paper's conjecture: when the write working set's reuse\n" +
		"distance exceeds the L3 (bzip2 here), write-backs land on clean or absent blocks\n" +
		"and the overhead vanishes as predicted; cyclic write footprints that *fit* in a\n" +
		"large L3 keep rewriting still-dirty blocks and pay more read-before-writes than\n" +
		"at the L2 — the L3 advantage is a property of the workload's write reuse, not of\n" +
		"the level itself\n", nil
}
