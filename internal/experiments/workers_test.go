package experiments

import (
	"context"
	"testing"

	"cppc/internal/trace"
)

// TestMulticoreCellWorkersBitIdentical checks the shared-hierarchy side
// of the parallel cluster: a coherence cell run with an intra-cell
// worker hint must produce exactly the serial result (the hint may only
// move trace generation off the execution goroutine; every coherence and
// bus interaction stays in core order).
func TestMulticoreCellWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("timed multicore simulation")
	}
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	b := Budget{Warmup: 5_000, Measure: 15_000, Seed: 9}
	for _, cores := range []int{1, 2, 4} {
		serial, err := MulticoreCellCtx(context.Background(), p, cores, 0.5, false, b)
		if err != nil {
			t.Fatalf("cores=%d serial: %v", cores, err)
		}
		for _, workers := range []int{2, 4} {
			ctx := WithCellWorkers(context.Background(), workers)
			par, err := MulticoreCellCtx(ctx, p, cores, 0.5, false, b)
			if err != nil {
				t.Fatalf("cores=%d workers=%d: %v", cores, workers, err)
			}
			if par != serial {
				t.Errorf("cores=%d workers=%d diverged\nserial:   %+v\nparallel: %+v",
					cores, workers, serial, par)
			}
		}
	}
}

// TestL3CellWorkersBitIdentical checks the l3 cell's three-placement
// fan-out against the serial path.
func TestL3CellWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("timed l3 simulation")
	}
	p, ok := trace.ProfileByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	b := Budget{Warmup: 3_000, Measure: 8_000, Seed: 5}
	serial, err := L3Cell(context.Background(), p, b)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par, err := L3Cell(WithCellWorkers(context.Background(), 3), p, b)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if par != serial {
		t.Errorf("l3 cell diverged\nserial:   %+v\nparallel: %+v", serial, par)
	}
}
