// Package experiments regenerates every table and figure in the paper's
// evaluation (Sec. 6) plus the quantitative claims of Secs. 4.6-4.8. It
// is the single source shared by cmd/repro, the benchmark harness and the
// test suite, so all three report identical numbers for a given
// instruction budget and seed.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/cpu"
	"cppc/internal/energy"
	"cppc/internal/protect"
	"cppc/internal/reliability"
	"cppc/internal/tables"
	"cppc/internal/trace"
)

// Budget scales every simulation-based experiment.
type Budget struct {
	Warmup  int // instructions to warm the hierarchy before measuring
	Measure int // instructions measured
	Seed    int64
}

// DefaultBudget is the cmd/repro default: big enough for stable CPI and
// dirty-occupancy numbers, small enough to run all experiments in a few
// minutes.
func DefaultBudget() Budget { return Budget{Warmup: 500_000, Measure: 1_500_000, Seed: 1} }

// QuickBudget keeps test and benchmark runtime low.
func QuickBudget() Budget { return Budget{Warmup: 150_000, Measure: 300_000, Seed: 1} }

// SchemeID names the evaluated protections: the paper's four, plus the
// silent-store-elision CPPC variant (an ablation outside the committed
// figure matrix — SuiteCells stays at the paper's four schemes).
type SchemeID int

const (
	Parity1D SchemeID = iota
	CPPC
	SECDED
	TwoDim
	CPPCSilent
)

func (s SchemeID) String() string {
	return [...]string{"parity-1d", "cppc", "secded", "parity-2d", "cppc-silent"}[s]
}

// schemeFactories returns the (L1, L2) factories for one scheme, in the
// evaluated configurations of Sec. 6.
func schemeFactories(id SchemeID) (l1, l2 cpu.SchemeFactory) {
	switch id {
	case Parity1D:
		return cpu.Parity1DFactory(), cpu.Parity1DFactory()
	case CPPC:
		return cpu.CPPCFactory(core.DefaultL1Config()), cpu.CPPCFactory(core.DefaultL2Config())
	case SECDED:
		return cpu.SECDEDFactory(true), cpu.SECDEDFactory(true)
	case TwoDim:
		return cpu.TwoDimFactory(), cpu.TwoDimFactory()
	case CPPCSilent:
		return cpu.CPPCFactory(core.SilentL1Config()), cpu.CPPCFactory(core.SilentL2Config())
	}
	panic("unknown scheme")
}

// isCPPC reports whether a scheme carries a CPPC engine whose event
// counters (folds, elided stores) feed the energy model.
func isCPPC(id SchemeID) bool { return id == CPPC || id == CPPCSilent }

// Run is one benchmark simulated under one scheme at both levels.
type Run struct {
	Bench  string
	Scheme SchemeID
	CPI    float64
	L1     cache.Stats
	L2     cache.Stats
	L1Gran struct{ Dirty, Tavg float64 }
	L2Gran struct{ Dirty, Tavg float64 }
	Folds  struct{ L1, L2 uint64 } // CPPC register updates
	Elided struct{ L1, L2 uint64 } // silent stores elided (cppc-silent)
}

// Simulate runs one benchmark under one scheme and collects everything
// the figures need.
func Simulate(prof trace.Profile, id SchemeID, b Budget) Run {
	r, _ := SimulateCtx(context.Background(), prof, id, b)
	return r
}

// SimulateCtx is Simulate with cooperative cancellation: the context is
// polled inside the instruction loop, so even a multi-million-instruction
// cell aborts promptly.
func SimulateCtx(ctx context.Context, prof trace.Profile, id SchemeID, b Budget) (Run, error) {
	return SimulateSourceCtx(ctx, prof.Name, prof.NewMemoGen(b.Seed), id, b)
}

// SimulateSource is Simulate over any instruction source, e.g. a recorded
// trace file.
func SimulateSource(name string, src trace.Source, id SchemeID, b Budget) Run {
	r, _ := SimulateSourceCtx(context.Background(), name, src, id, b)
	return r
}

// SimulateSourceCtx is SimulateSource with cooperative cancellation.
func SimulateSourceCtx(ctx context.Context, name string, src trace.Source, id SchemeID, b Budget) (Run, error) {
	l1f, l2f := schemeFactories(id)
	sys := cpu.NewSystem(l1f, l2f)
	defer sys.Release()
	res, err := cpu.RunSourceWarmCtx(ctx, src, b.Warmup, b.Measure, sys)
	if err != nil {
		return Run{}, err
	}
	r := Run{Bench: name, Scheme: id, CPI: res.CPI, L1: sys.L1().Stats, L2: sys.L2().Stats}
	r.L1Gran.Dirty = sys.L1().C.DirtyFraction()
	r.L1Gran.Tavg = sys.L1().C.Tavg()
	r.L2Gran.Dirty = sys.L2().C.DirtyFraction()
	r.L2Gran.Tavg = sys.L2().C.Tavg()
	if isCPPC(id) {
		// Measure-window folds only: RunSourceWarmCtx reset the engine
		// events together with the cache stats at the warmup boundary.
		l1e := sys.L1().Scheme.(*protect.CPPCScheme).Engine.Events
		l2e := sys.L2().Scheme.(*protect.CPPCScheme).Engine.Events
		r.Folds.L1, r.Folds.L2 = l1e.Folds, l2e.Folds
		r.Elided.L1, r.Elided.L2 = l1e.SilentStoresElided, l2e.SilentStoresElided
	}
	return r, nil
}

// Suite holds one Run per (benchmark, scheme).
type Suite struct {
	Budget Budget
	Runs   map[string]map[SchemeID]Run // bench -> scheme -> run
	Order  []string                    // benchmark order
}

// SuiteCell names one cell of the suite matrix: one benchmark under one
// scheme. It is the shared unit of work between the in-process
// RunSuiteCtx path and the daemon's shard planner — both expand the
// matrix through SuiteCells, so there is exactly one definition of what
// the suite computes.
type SuiteCell struct {
	Bench  string
	Scheme SchemeID
}

// SuiteCells returns the full (benchmark, scheme) matrix in canonical
// order: benchmarks in trace.Profiles() order, schemes in SchemeID order.
func SuiteCells() []SuiteCell {
	profiles := trace.Profiles()
	ids := []SchemeID{Parity1D, CPPC, SECDED, TwoDim}
	cells := make([]SuiteCell, 0, len(profiles)*len(ids))
	for _, p := range profiles {
		for _, id := range ids {
			cells = append(cells, SuiteCell{Bench: p.Name, Scheme: id})
		}
	}
	return cells
}

// NewSuite returns an empty suite with the benchmark order prefilled, so
// cells can be added in any completion order and the rendered figures
// stay byte-identical to a sequential run.
func NewSuite(b Budget) *Suite {
	s := &Suite{Budget: b, Runs: map[string]map[SchemeID]Run{}}
	for _, p := range trace.Profiles() {
		s.Order = append(s.Order, p.Name)
		s.Runs[p.Name] = map[SchemeID]Run{}
	}
	return s
}

// Add records one completed cell.
func (s *Suite) Add(run Run) { s.Runs[run.Bench][run.Scheme] = run }

// SuiteOptions tunes how RunSuiteCtx schedules the experiment matrix.
type SuiteOptions struct {
	// Parallel bounds how many (benchmark, scheme) cells simulate
	// concurrently; values <= 0 mean runtime.GOMAXPROCS(0).
	Parallel int
	// OnProgress, when non-nil, is called after each completed cell with
	// the number of finished cells and the matrix size. Calls are
	// serialized under an internal lock, so the callback must be quick
	// and must not call back into the suite.
	OnProgress func(done, total int)
}

// RunSuite simulates every benchmark under every scheme. The 60
// (benchmark, scheme) runs are independent, so they execute in parallel;
// results are deterministic for a given budget and seed.
func RunSuite(b Budget) *Suite {
	s, _ := RunSuiteCtx(context.Background(), b, SuiteOptions{})
	return s
}

// RunSuiteCtx is RunSuite with cooperative cancellation and bounded
// fan-out: a counting semaphore caps concurrent cells at opt.Parallel.
// On cancellation the partial suite is discarded and the first error
// (always the context's) is returned.
func RunSuiteCtx(ctx context.Context, b Budget, opt SuiteOptions) (*Suite, error) {
	cells := SuiteCells()
	s := NewSuite(b)

	par := opt.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	total := len(cells)
	sem := make(chan struct{}, par)
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		done     int
		firstErr error
	)
	for _, cell := range cells {
		p, ok := trace.ProfileByName(cell.Bench)
		if !ok {
			return nil, fmt.Errorf("suite: profile %q not found", cell.Bench)
		}
		wg.Add(1)
		go func(p trace.Profile, id SchemeID) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				mu.Lock()
				if firstErr == nil {
					firstErr = ctx.Err()
				}
				mu.Unlock()
				return
			}
			defer func() { <-sem }()
			run, err := SimulateCtx(ctx, p, id, b)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			s.Add(run)
			done++
			if opt.OnProgress != nil {
				opt.OnProgress(done, total)
			}
		}(p, cell.Scheme)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// Table1 renders the evaluation parameters (the paper's Table 1).
func Table1() string {
	t := tables.New("Table 1: evaluation parameters", "parameter", "value")
	cfg := cpu.Table1Config()
	t.Addf("functional units", fmt.Sprintf("%d int ALU, %d int mul/div, %d FP ALU, %d FP mul/div",
		cfg.IntALU, cfg.IntMul, cfg.FPALU, cfg.FPMul))
	t.Addf("LSQ / RUU size", fmt.Sprintf("%d / %d instructions", cfg.LSQSize, cfg.RUUSize))
	t.Addf("issue width", fmt.Sprintf("%d instructions/cycle", cfg.IssueWidth))
	t.Addf("frequency", fmt.Sprintf("%.0f GHz", cfg.FreqHz/1e9))
	l1 := cache.L1DConfig()
	t.Addf("L1 data cache", fmt.Sprintf("%dKB, %d-way, %dB lines, %d cycles",
		l1.SizeBytes/1024, l1.Ways, l1.BlockBytes, l1.HitLatencyCycles))
	l2 := cache.L2Config()
	t.Addf("L2 cache", fmt.Sprintf("%dMB unified, %d-way, %dB lines, %d cycles",
		l2.SizeBytes>>20, l2.Ways, l2.BlockBytes, l2.HitLatencyCycles))
	li := cache.L1IConfig()
	t.Addf("L1 instruction cache", fmt.Sprintf("%dKB, %d-way, %dB lines, %d cycle",
		li.SizeBytes/1024, li.Ways, li.BlockBytes, li.HitLatencyCycles))
	t.Addf("feature size", "32nm")
	return t.String()
}

// Figure10 renders CPIs normalized to the one-dimensional-parity
// baseline (the paper's Fig. 10: CPPC ~+0.3% average, 2D parity ~+1.7%
// average and up to 6.9%).
func (s *Suite) Figure10() string { return s.figure10Table().String() }

// Figure10CSV is Figure10 as comma-separated values for plotting.
func (s *Suite) Figure10CSV() string { return s.figure10Table().CSV() }

func (s *Suite) figure10Table() *tables.Table {
	t := tables.New("Figure 10: normalized CPI of L1 protection schemes (baseline = parity-1d)",
		"benchmark", "parity-1d", "cppc", "parity-2d")
	var sumC, sumT float64
	for _, b := range s.Order {
		base := s.Runs[b][Parity1D].CPI
		c := s.Runs[b][CPPC].CPI / base
		d := s.Runs[b][TwoDim].CPI / base
		sumC += c
		sumT += d
		t.Addf(b, 1.0, c, d)
	}
	n := float64(len(s.Order))
	t.Addf("average", 1.0, sumC/n, sumT/n)
	return t
}

// l1EnergyModel builds the per-scheme L1 energy model.
func l1EnergyModel(id SchemeID) *energy.Model {
	cfg := cache.L1DConfig()
	switch id {
	case SECDED:
		return energy.New(cfg, 8, 8) // (72,64) code, 8-way bit interleaving
	default:
		return energy.New(cfg, 8, 1) // 8 interleaved parity bits per word
	}
}

// l2EnergyModel builds the per-scheme L2 energy model (block granules).
func l2EnergyModel(id SchemeID) *energy.Model {
	cfg := cache.L2Config()
	switch id {
	case SECDED:
		return energy.New(cfg, 10, 8) // (266,256) block code, interleaved
	default:
		return energy.New(cfg, 8, 1) // 8 interleaved parity bits per block
	}
}

// energyRow computes one benchmark's normalized energies at one level.
func (s *Suite) energyRow(bench string, level int) (vals [4]float64) {
	for i, id := range []SchemeID{Parity1D, CPPC, SECDED, TwoDim} {
		run := s.Runs[bench][id]
		var rep energy.Report
		if level == 1 {
			folds := uint64(0)
			if id == CPPC {
				folds = run.Folds.L1
			}
			rep = energy.Count(run.L1, l1EnergyModel(id), 1, folds)
		} else {
			folds := uint64(0)
			if id == CPPC {
				folds = run.Folds.L2
			}
			rep = energy.Count(run.L2, l2EnergyModel(id), 4, folds)
		}
		vals[i] = rep.Total()
	}
	base := vals[0]
	for i := range vals {
		vals[i] /= base
	}
	return vals
}

// Figure11 renders normalized L1 dynamic energy (paper: CPPC ~1.14,
// SECDED ~1.42, 2D ~1.70).
func (s *Suite) Figure11() string { return s.energyFigure(1, "Figure 11", "L1").String() }

// Figure12 renders normalized L2 dynamic energy (paper: CPPC ~1.07,
// SECDED ~1.68, 2D ~1.75, with mcf blowing up under 2D).
func (s *Suite) Figure12() string { return s.energyFigure(2, "Figure 12", "L2").String() }

// Figure11CSV and Figure12CSV export the energy series for plotting.
func (s *Suite) Figure11CSV() string { return s.energyFigure(1, "Figure 11", "L1").CSV() }
func (s *Suite) Figure12CSV() string { return s.energyFigure(2, "Figure 12", "L2").CSV() }

func (s *Suite) energyFigure(level int, fig, lvl string) *tables.Table {
	t := tables.New(fmt.Sprintf("%s: normalized %s dynamic energy (baseline = parity-1d)", fig, lvl),
		"benchmark", "parity-1d", "cppc", "secded", "parity-2d")
	var sum [4]float64
	for _, b := range s.Order {
		v := s.energyRow(b, level)
		for i := range sum {
			sum[i] += v[i]
		}
		t.Addf(b, v[0], v[1], v[2], v[3])
	}
	n := float64(len(s.Order))
	t.Addf("average", sum[0]/n, sum[1]/n, sum[2]/n, sum[3]/n)
	return t
}

// Table2Values aggregates the measured dirty fractions and Tavg across
// benchmarks (the paper's Table 2: L1 16% / 1828 cycles, L2 35% / 378997
// cycles).
type Table2Values struct {
	L1Dirty, L2Dirty float64
	L1Tavg, L2Tavg   float64
}

// Table2 computes the measured averages from the parity baseline runs.
func (s *Suite) Table2() Table2Values {
	var v Table2Values
	n := float64(len(s.Order))
	for _, b := range s.Order {
		run := s.Runs[b][Parity1D]
		v.L1Dirty += run.L1Gran.Dirty / n
		v.L2Dirty += run.L2Gran.Dirty / n
		v.L1Tavg += run.L1Gran.Tavg / n
		v.L2Tavg += run.L2Gran.Tavg / n
	}
	return v
}

// Table2String renders measured-vs-paper Table 2.
func (s *Suite) Table2String() string {
	v := s.Table2()
	t := tables.New("Table 2: dirty-data parameters (measured vs. paper)",
		"parameter", "measured", "paper")
	t.Addf("L1 dirty fraction", tables.Pct(v.L1Dirty), "16%")
	t.Addf("L2 dirty fraction", tables.Pct(v.L2Dirty), "35%")
	t.Addf("L1 Tavg (cycles)", fmt.Sprintf("%.0f", v.L1Tavg), "1828")
	t.Addf("L2 Tavg (cycles)", fmt.Sprintf("%.0f", v.L2Tavg), "378997")
	return t.String()
}

// Table3 renders the MTTF comparison, both with the paper's Table 2
// inputs and with this run's measured inputs.
func (s *Suite) Table3() string {
	meas := s.Table2()
	mkParams := func(total int, dirty, tavg float64) reliability.Params {
		return reliability.Params{
			FITPerBit: 0.001, AVF: 0.7, FreqHz: 3e9,
			TotalBits: total, DirtyFraction: dirty, TavgCycles: tavg,
		}
	}
	paperL1, paperL2 := reliability.PaperL1Params(), reliability.PaperL2Params()
	measL1 := mkParams(32*1024*8, meas.L1Dirty, meas.L1Tavg)
	measL2 := mkParams(1024*1024*8, meas.L2Dirty, meas.L2Tavg)

	t := tables.New("Table 3: MTTF against temporal multi-bit errors (years)",
		"cache", "L1 (paper inputs)", "L1 (measured)", "L2 (paper inputs)", "L2 (measured)")
	t.Addf("parity-1d",
		tables.Sci(reliability.Parity1DMTTFYears(paperL1)),
		tables.Sci(reliability.Parity1DMTTFYears(measL1)),
		tables.Sci(reliability.Parity1DMTTFYears(paperL2)),
		tables.Sci(reliability.Parity1DMTTFYears(measL2)))
	cd := reliability.CPPCDomains(8, 1)
	t.Addf("cppc",
		tables.Sci(reliability.DoubleFaultMTTFYears(paperL1, cd)),
		tables.Sci(reliability.DoubleFaultMTTFYears(measL1, cd)),
		tables.Sci(reliability.DoubleFaultMTTFYears(paperL2, cd)),
		tables.Sci(reliability.DoubleFaultMTTFYears(measL2, cd)))
	t.Addf("secded",
		tables.Sci(reliability.DoubleFaultMTTFYears(paperL1, reliability.SECDEDDomains(paperL1, 64))),
		tables.Sci(reliability.DoubleFaultMTTFYears(measL1, reliability.SECDEDDomains(measL1, 64))),
		tables.Sci(reliability.DoubleFaultMTTFYears(paperL2, reliability.SECDEDDomains(paperL2, 256))),
		tables.Sci(reliability.DoubleFaultMTTFYears(measL2, reliability.SECDEDDomains(measL2, 256))))
	return t.String() +
		"paper reports: parity 4490 / 64 years; CPPC 8.02e21 / 8.07e15; SECDED 6.2e23 / 1.1e19\n"
}

// Section47 renders the temporal-aliasing MTTF versus register pairs
// (paper: 4.19e20 years for the evaluated L2 with one pair).
func Section47() string {
	t := tables.New("Sec. 4.7: temporal-aliasing SDC MTTF vs. register pairs (evaluated L2)",
		"pairs", "alias bits", "MTTF (years)")
	p := reliability.PaperL2Params()
	for _, pairs := range []int{1, 2, 4, 8} {
		bits := reliability.AliasBitsForPairs(pairs)
		if bits == 0 {
			t.Addf(pairs, bits, "eliminated")
			continue
		}
		t.Addf(pairs, bits, tables.Sci(reliability.AliasingMTTFYears(p, bits)))
	}
	return t.String() + "paper reports 4.19e20 years with one pair\n"
}

// Section48 renders the barrel-shifter critical-path argument, plus the
// Sec. 3.2/5 argument that the recovery procedure's cost is ignorable:
// a full recovery sweep reads every cache row once, which takes
// microseconds, and it happens once per MTTF.
func Section48() string {
	t := tables.New("Sec. 4.8: barrel shifter vs. cache access", "quantity", "value")
	l1 := energy.New(cache.L1DConfig(), 8, 1)
	t.Addf("barrel shifter delay", fmt.Sprintf("%.3f ns", energy.BarrelShifterDelayNs()))
	t.Addf("L1 access time", fmt.Sprintf("%.3f ns", l1.AccessTimeNs()))
	t.Addf("fold energy (word)", fmt.Sprintf("%.2f pJ", energy.FoldEnergy(1)))
	t.Addf("L1 read energy", fmt.Sprintf("%.1f pJ", l1.Read(1)))

	// Recovery cost: pipelined row reads of the whole array plus the XOR
	// folding, at the Table 1 clock.
	cfg := cpu.Table1Config()
	sweep := func(c cache.Config) (cycles uint64, us float64, perYear float64, mttf float64) {
		rows := uint64(c.Layout().Rows())
		cycles = rows + uint64(c.HitLatencyCycles)
		us = float64(cycles) / cfg.FreqHz * 1e6
		var p reliability.Params
		if c.SizeBytes >= 1<<20 {
			p = reliability.PaperL2Params()
		} else {
			p = reliability.PaperL1Params()
		}
		// Recoveries fire roughly once per detected fault: the parity-MTTF
		// rate bounds it from above.
		mttf = reliability.Parity1DMTTFYears(p)
		perYear = 1 / mttf
		return
	}
	for _, c := range []cache.Config{cache.L1DConfig(), cache.L2Config()} {
		cycles, us, perYear, _ := sweep(c)
		t.Addf(fmt.Sprintf("%s recovery sweep", c.Name),
			fmt.Sprintf("%d cycles (%.2f us), expected %.2e sweeps/year", cycles, us, perYear))
	}
	return t.String() +
		"a microsecond sweep a few times per millennium: recovery cost is ignorable (Sec. 3.2)\n"
}
