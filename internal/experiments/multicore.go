package experiments

import (
	"context"
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/coherence"
	"cppc/internal/core"
	"cppc/internal/cpu"
	"cppc/internal/energy"
	"cppc/internal/protect"
	"cppc/internal/tables"
	"cppc/internal/trace"
)

// mpConfigs returns the multiprocessor cache geometry: per-core 32KB L1s
// over a shared 1MB L2, both CPPC-protected.
func mpConfigs() (l1, l2 cache.Config, err error) {
	l1, err = cache.Config{
		Name: "mpL1", SizeBytes: 32 << 10, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		return l1, l2, fmt.Errorf("multicore L1 config: %w", err)
	}
	l2, err = cache.Config{
		Name: "mpL2", SizeBytes: 1 << 20, Ways: 4, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		return l1, l2, fmt.Errorf("multicore L2 config: %w", err)
	}
	return l1, l2, nil
}

// MulticoreRun is one timed multicore cell: N OoO cores in lock step over
// the coherent CPPC hierarchy. The struct stays comparable with == so
// determinism tests can assert run equality directly.
type MulticoreRun struct {
	Bench        string
	Cores        int
	SharedFrac   float64
	Silent       bool    // silent-store elision enabled in both levels
	CPI          float64 // wall-clock cycles over instructions per core
	Cycles       uint64  // measured wall-clock cycles
	Instructions uint64  // measured instructions, summed across cores
	L1           cache.Stats
	L2           cache.Stats
	Coherence    coherence.Stats
	DirtyL1      float64 // dirty fraction averaged across L1s
	FoldsL1      uint64  // register folds summed across L1 engines
	FoldsL2      uint64
	ElidedL1     uint64 // silent stores elided, summed across L1 engines
	ElidedL2     uint64
	EnergyL1     energy.Report // all private L1s summed
	EnergyL2     energy.Report
	EnergyBus    energy.Report
	Halted       bool
}

// TotalEnergyPJ sums the hierarchy's dynamic energy over the measurement
// window: private L1s, shared L2 and the bus/directory.
func (r MulticoreRun) TotalEnergyPJ() float64 {
	return r.EnergyL1.Total() + r.EnergyL2.Total() + r.EnergyBus.Total()
}

// MulticoreCell runs one (profile, cores, sharedFrac) cell; silent
// selects the cppc-silent variant in both cache levels.
func MulticoreCell(prof trace.Profile, cores int, sharedFrac float64, silent bool, b Budget) (MulticoreRun, error) {
	return MulticoreCellCtx(context.Background(), prof, cores, sharedFrac, silent, b)
}

// MulticoreCellCtx is MulticoreCell with cooperative cancellation. The
// run is deterministic for a given (profile, cores, sharedFrac, silent,
// budget): per-core trace seeds derive from b.Seed and the lock-step
// order is fixed.
func MulticoreCellCtx(ctx context.Context, prof trace.Profile, cores int, sharedFrac float64, silent bool, b Budget) (MulticoreRun, error) {
	if cores <= 0 || cores > 64 {
		return MulticoreRun{}, fmt.Errorf("multicore: cores must be in [1,64], got %d", cores)
	}
	if sharedFrac < 0 || sharedFrac > 1 {
		return MulticoreRun{}, fmt.Errorf("multicore: shared fraction %v outside [0,1]", sharedFrac)
	}
	l1cfg, l2cfg, err := mpConfigs()
	if err != nil {
		return MulticoreRun{}, err
	}
	l1conf, l2conf := core.DefaultL1Config(), core.DefaultL2Config()
	if silent {
		l1conf, l2conf = core.SilentL1Config(), core.SilentL2Config()
	}
	mkL1 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, l1conf) }
	mkL2 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, l2conf) }
	m := coherence.New(cores, l1cfg, l2cfg, mkL1, mkL2, 200)
	defer m.Release()
	m.Timing = coherence.DefaultTiming()

	ports := make([]cpu.MemoryPort, cores)
	srcs := make([]trace.Source, cores)
	for i, g := range prof.NewCoreGens(cores, sharedFrac, b.Seed) {
		ports[i] = m.CorePort(i)
		srcs[i] = g
	}
	cl, err := cpu.NewCluster(cpu.Table1Config(), ports, srcs)
	if err != nil {
		return MulticoreRun{}, err
	}
	defer cl.Release()
	// Idle-pool-worker hint: per-core trace generation fans out, coherence
	// stays serialized in core order; results are bit-identical either way.
	cl.SetWorkers(CellWorkers(ctx))
	warm, err := cl.RunCtx(ctx, b.Warmup, 0)
	if err != nil {
		return MulticoreRun{}, err
	}
	m.ResetStats()
	meas, err := cl.RunCtx(ctx, b.Measure, 0)
	if err != nil {
		return MulticoreRun{}, err
	}
	r := MulticoreRun{
		Bench: prof.Name, Cores: cores, SharedFrac: sharedFrac, Silent: silent,
		Cycles:       meas.Cycles - warm.Cycles,
		Instructions: meas.Instructions,
		L1:           m.TotalL1Stats(),
		L2:           m.L2.Stats,
		Coherence:    m.Stats,
		Halted:       meas.Halted,
	}
	if per := meas.Instructions / uint64(cores); per > 0 {
		r.CPI = float64(r.Cycles) / float64(per)
	}
	// Energy over the measurement window only: ResetStats zeroed the cache
	// stats AND every engine's event counters at the warmup boundary, so
	// the fold and elision counts below match the stats' window.
	l1s := m.L1s[0].Scheme.(*protect.CPPCScheme)
	l2s := m.L2.Scheme.(*protect.CPPCScheme)
	l1Model := energy.New(l1cfg, l1s.CheckBitsPerGranule(), l1s.BitlineFactor())
	l2Model := energy.New(l2cfg, l2s.CheckBitsPerGranule(), l2s.BitlineFactor())
	for _, l1 := range m.L1s {
		ev := l1.Scheme.(*protect.CPPCScheme).Engine.Events
		r.FoldsL1 += ev.Folds
		r.ElidedL1 += ev.SilentStoresElided
		r.EnergyL1.Add(energy.CountElided(l1.Stats, l1Model, 1, ev.Folds, ev.SilentStoresElided))
		r.DirtyL1 += l1.C.DirtyFraction() / float64(cores)
	}
	l2ev := l2s.Engine.Events
	r.FoldsL2, r.ElidedL2 = l2ev.Folds, l2ev.SilentStoresElided
	r.EnergyL2 = energy.CountElided(m.L2.Stats, l2Model, l1cfg.BlockWords(), l2ev.Folds, l2ev.SilentStoresElided)
	r.EnergyBus = energy.CountCoherence(m.Stats, energy.NewBus(l1cfg.BlockWords()))
	return r, nil
}

// Section7Multicore evaluates the paper's Sec. 7 multiprocessor
// hypothesis on the timed machine: write-invalidate coherence steals
// dirty blocks from their owners, so the read-before-write ratio — and
// with it CPPC's energy overhead — drops as write sharing rises, while
// the CPI column shows what bus occupancy and invalidation traffic cost.
func Section7Multicore(b Budget) (string, error) {
	return Section7MulticoreCtx(context.Background(), b)
}

// MulticorePoint is one (cores, sharedFrac) cell of the Sec. 7 sweep.
type MulticorePoint struct {
	Cores      int
	SharedFrac float64
}

// Section7Points returns the canonical Sec. 7 sweep matrix in row order:
// cores {1,2,4,8} by shared fraction {0, 0.3, 0.6}, with the redundant
// 1-core shared points dropped (a single core has nobody to share with).
// The first point (1 core, private) is the slowdown baseline. Both the
// in-process sweep and the daemon's shard planner expand through here.
func Section7Points() []MulticorePoint {
	var pts []MulticorePoint
	for _, cores := range []int{1, 2, 4, 8} {
		for _, sf := range []float64{0, 0.3, 0.6} {
			if cores == 1 && sf > 0 {
				continue
			}
			pts = append(pts, MulticorePoint{Cores: cores, SharedFrac: sf})
		}
	}
	return pts
}

// Section7Table renders the Sec. 7 sweep from per-cell results, which
// must be in Section7Points order (runs[0] is the slowdown and energy
// baseline). The output is byte-identical to the sequential sweep's. The
// energy columns price L1s+L2+bus over the measurement window; "energy
// vs 1 core" normalizes against the private single-core cell.
func Section7Table(runs []MulticoreRun) string {
	title := "Sec. 7: timed write-invalidate coherence vs. CPPC read-before-writes"
	if len(runs) > 0 && runs[0].Silent {
		title += " (silent-store elision)"
	}
	t := tables.New(title,
		"cores", "shared frac", "CPI", "slowdown", "RBW/store", "invalidations", "owner flushes", "dirty L1 avg",
		"energy (nJ)", "energy vs 1 core")
	var baseCPI, baseEnergy float64
	if len(runs) > 0 {
		baseCPI = runs[0].CPI
		baseEnergy = runs[0].TotalEnergyPJ()
	}
	for _, r := range runs {
		slowdown := 0.0
		if baseCPI > 0 {
			slowdown = r.CPI / baseCPI
		}
		// Guard the ratios: a halted or zero-budget cell has no stores and
		// no energy, and a NaN here would poison the rendered sweep.
		rbw := 0.0
		if r.L1.Stores > 0 {
			rbw = float64(r.L1.ReadBeforeWrite) / float64(r.L1.Stores)
		}
		eRatio := 0.0
		if baseEnergy > 0 {
			eRatio = r.TotalEnergyPJ() / baseEnergy
		}
		t.Addf(r.Cores, fmt.Sprintf("%.1f", r.SharedFrac),
			r.CPI, slowdown, rbw,
			r.Coherence.Invalidations, r.Coherence.OwnerFlushes,
			tables.Pct(r.DirtyL1),
			r.TotalEnergyPJ()/1e3, eRatio)
	}
	return t.String() +
		"the paper's hypothesis: invalidations remove dirty blocks, so RBW/store falls with sharing\n"
}

// Section7MulticoreCtx is Section7Multicore with cooperative
// cancellation. It renders the plain-CPPC sweep followed by the
// cppc-silent sweep, so the saved write+fold energy of elision is
// visible cell by cell at identical CPI.
func Section7MulticoreCtx(ctx context.Context, b Budget) (string, error) {
	prof, ok := trace.ProfileByName("gzip")
	if !ok {
		return "", fmt.Errorf("multicore: profile %q not found", "gzip")
	}
	var out string
	for _, silent := range []bool{false, true} {
		pts := Section7Points()
		runs := make([]MulticoreRun, 0, len(pts))
		for _, pt := range pts {
			r, err := MulticoreCellCtx(ctx, prof, pt.Cores, pt.SharedFrac, silent, b)
			if err != nil {
				return "", err
			}
			runs = append(runs, r)
		}
		if silent {
			out += "\n"
		}
		out += Section7Table(runs)
	}
	return out, nil
}
