package experiments

import (
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/coherence"
	"cppc/internal/core"
	"cppc/internal/protect"
	"cppc/internal/tables"
)

// Section7Multicore evaluates the paper's Sec. 7 multiprocessor
// hypothesis over the MSI substrate: write-invalidate coherence steals
// dirty blocks from their owners, so the read-before-write ratio — and
// with it CPPC's energy overhead — drops as write sharing rises.
func Section7Multicore(accesses int, seed int64) string {
	l1cfg, err := cache.Config{
		Name: "mpL1", SizeBytes: 32 << 10, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		panic(err)
	}
	l2cfg, err := cache.Config{
		Name: "mpL2", SizeBytes: 1 << 20, Ways: 4, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		panic(err)
	}
	mkL1 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL1Config()) }
	mkL2 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL2Config()) }

	t := tables.New("Sec. 7: write-invalidate coherence vs. CPPC read-before-writes",
		"cores", "shared frac", "RBW/store", "invalidations", "owner flushes", "dirty L1 avg")
	for _, cores := range []int{1, 2, 4, 8} {
		for _, sf := range []float64{0, 0.3, 0.6} {
			if cores == 1 && sf > 0 {
				continue
			}
			m := coherence.New(cores, l1cfg, l2cfg, mkL1, mkL2, 200)
			w := coherence.DefaultWorkload(cores)
			w.SharedFrac = sf
			w.Run(m, accesses, seed)
			st := m.TotalL1Stats()
			var dirty float64
			for _, l1 := range m.L1s {
				dirty += l1.C.DirtyFraction() / float64(cores)
			}
			t.Addf(cores, fmt.Sprintf("%.1f", sf),
				float64(st.ReadBeforeWrite)/float64(st.Stores),
				m.Stats.Invalidations, m.Stats.OwnerFlushes,
				tables.Pct(dirty))
		}
	}
	return t.String() +
		"the paper's hypothesis: invalidations remove dirty blocks, so RBW/store falls with sharing\n"
}
