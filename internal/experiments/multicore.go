package experiments

import (
	"context"
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/coherence"
	"cppc/internal/core"
	"cppc/internal/cpu"
	"cppc/internal/protect"
	"cppc/internal/tables"
	"cppc/internal/trace"
)

// mpConfigs returns the multiprocessor cache geometry: per-core 32KB L1s
// over a shared 1MB L2, both CPPC-protected.
func mpConfigs() (l1, l2 cache.Config, err error) {
	l1, err = cache.Config{
		Name: "mpL1", SizeBytes: 32 << 10, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		return l1, l2, fmt.Errorf("multicore L1 config: %w", err)
	}
	l2, err = cache.Config{
		Name: "mpL2", SizeBytes: 1 << 20, Ways: 4, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		return l1, l2, fmt.Errorf("multicore L2 config: %w", err)
	}
	return l1, l2, nil
}

// MulticoreRun is one timed multicore cell: N OoO cores in lock step over
// the coherent CPPC hierarchy.
type MulticoreRun struct {
	Bench        string
	Cores        int
	SharedFrac   float64
	CPI          float64 // wall-clock cycles over instructions per core
	Cycles       uint64  // measured wall-clock cycles
	Instructions uint64  // measured instructions, summed across cores
	L1           cache.Stats
	Coherence    coherence.Stats
	DirtyL1      float64 // dirty fraction averaged across L1s
	Halted       bool
}

// MulticoreCell runs one (profile, cores, sharedFrac) cell.
func MulticoreCell(prof trace.Profile, cores int, sharedFrac float64, b Budget) (MulticoreRun, error) {
	return MulticoreCellCtx(context.Background(), prof, cores, sharedFrac, b)
}

// MulticoreCellCtx is MulticoreCell with cooperative cancellation. The
// run is deterministic for a given (profile, cores, sharedFrac, budget):
// per-core trace seeds derive from b.Seed and the lock-step order is
// fixed.
func MulticoreCellCtx(ctx context.Context, prof trace.Profile, cores int, sharedFrac float64, b Budget) (MulticoreRun, error) {
	if cores <= 0 || cores > 64 {
		return MulticoreRun{}, fmt.Errorf("multicore: cores must be in [1,64], got %d", cores)
	}
	if sharedFrac < 0 || sharedFrac > 1 {
		return MulticoreRun{}, fmt.Errorf("multicore: shared fraction %v outside [0,1]", sharedFrac)
	}
	l1cfg, l2cfg, err := mpConfigs()
	if err != nil {
		return MulticoreRun{}, err
	}
	mkL1 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL1Config()) }
	mkL2 := func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL2Config()) }
	m := coherence.New(cores, l1cfg, l2cfg, mkL1, mkL2, 200)
	defer m.Release()
	m.Timing = coherence.DefaultTiming()

	ports := make([]cpu.MemoryPort, cores)
	srcs := make([]trace.Source, cores)
	for i, g := range prof.NewCoreGens(cores, sharedFrac, b.Seed) {
		ports[i] = m.CorePort(i)
		srcs[i] = g
	}
	cl, err := cpu.NewCluster(cpu.Table1Config(), ports, srcs)
	if err != nil {
		return MulticoreRun{}, err
	}
	defer cl.Release()
	// Idle-pool-worker hint: per-core trace generation fans out, coherence
	// stays serialized in core order; results are bit-identical either way.
	cl.SetWorkers(CellWorkers(ctx))
	warm, err := cl.RunCtx(ctx, b.Warmup, 0)
	if err != nil {
		return MulticoreRun{}, err
	}
	m.ResetStats()
	meas, err := cl.RunCtx(ctx, b.Measure, 0)
	if err != nil {
		return MulticoreRun{}, err
	}
	r := MulticoreRun{
		Bench: prof.Name, Cores: cores, SharedFrac: sharedFrac,
		Cycles:       meas.Cycles - warm.Cycles,
		Instructions: meas.Instructions,
		L1:           m.TotalL1Stats(),
		Coherence:    m.Stats,
		Halted:       meas.Halted,
	}
	if per := meas.Instructions / uint64(cores); per > 0 {
		r.CPI = float64(r.Cycles) / float64(per)
	}
	for _, l1 := range m.L1s {
		r.DirtyL1 += l1.C.DirtyFraction() / float64(cores)
	}
	return r, nil
}

// Section7Multicore evaluates the paper's Sec. 7 multiprocessor
// hypothesis on the timed machine: write-invalidate coherence steals
// dirty blocks from their owners, so the read-before-write ratio — and
// with it CPPC's energy overhead — drops as write sharing rises, while
// the CPI column shows what bus occupancy and invalidation traffic cost.
func Section7Multicore(b Budget) (string, error) {
	return Section7MulticoreCtx(context.Background(), b)
}

// MulticorePoint is one (cores, sharedFrac) cell of the Sec. 7 sweep.
type MulticorePoint struct {
	Cores      int
	SharedFrac float64
}

// Section7Points returns the canonical Sec. 7 sweep matrix in row order:
// cores {1,2,4,8} by shared fraction {0, 0.3, 0.6}, with the redundant
// 1-core shared points dropped (a single core has nobody to share with).
// The first point (1 core, private) is the slowdown baseline. Both the
// in-process sweep and the daemon's shard planner expand through here.
func Section7Points() []MulticorePoint {
	var pts []MulticorePoint
	for _, cores := range []int{1, 2, 4, 8} {
		for _, sf := range []float64{0, 0.3, 0.6} {
			if cores == 1 && sf > 0 {
				continue
			}
			pts = append(pts, MulticorePoint{Cores: cores, SharedFrac: sf})
		}
	}
	return pts
}

// Section7Table renders the Sec. 7 sweep from per-cell results, which
// must be in Section7Points order (runs[0] is the slowdown baseline).
// The output is byte-identical to the sequential sweep's.
func Section7Table(runs []MulticoreRun) string {
	t := tables.New("Sec. 7: timed write-invalidate coherence vs. CPPC read-before-writes",
		"cores", "shared frac", "CPI", "slowdown", "RBW/store", "invalidations", "owner flushes", "dirty L1 avg")
	var baseCPI float64
	if len(runs) > 0 {
		baseCPI = runs[0].CPI
	}
	for _, r := range runs {
		slowdown := 0.0
		if baseCPI > 0 {
			slowdown = r.CPI / baseCPI
		}
		t.Addf(r.Cores, fmt.Sprintf("%.1f", r.SharedFrac),
			r.CPI, slowdown,
			float64(r.L1.ReadBeforeWrite)/float64(r.L1.Stores),
			r.Coherence.Invalidations, r.Coherence.OwnerFlushes,
			tables.Pct(r.DirtyL1))
	}
	return t.String() +
		"the paper's hypothesis: invalidations remove dirty blocks, so RBW/store falls with sharing\n"
}

// Section7MulticoreCtx is Section7Multicore with cooperative
// cancellation.
func Section7MulticoreCtx(ctx context.Context, b Budget) (string, error) {
	prof, ok := trace.ProfileByName("gzip")
	if !ok {
		return "", fmt.Errorf("multicore: profile %q not found", "gzip")
	}
	pts := Section7Points()
	runs := make([]MulticoreRun, 0, len(pts))
	for _, pt := range pts {
		r, err := MulticoreCellCtx(ctx, prof, pt.Cores, pt.SharedFrac, b)
		if err != nil {
			return "", err
		}
		runs = append(runs, r)
	}
	return Section7Table(runs), nil
}
