// Package cpu is the timing substrate standing in for SimpleScalar's
// sim-outorder (Sec. 6, Table 1): a timestamp-based out-of-order core
// model with a 4-wide front end, a 64-entry RUU, a 16-entry LSQ, the
// Table 1 functional-unit pool, and — the part the paper's Fig. 10 hinges
// on — an L1 data cache with one read port and one write port whose
// contention is modeled cycle-accurately:
//
//   - loads occupy the read port;
//   - stores occupy the write port;
//   - a CPPC store to a dirty word *steals* a read-port cycle for its
//     read-before-write: the store does not wait for it (Sec. 3.1's
//     store-buffer/scheduler coordination), but later loads see the port
//     busy;
//   - a two-dimensional-parity store must *complete* its read-before-write
//     before writing, and a miss fill must first read the whole victim
//     line through the read port (Sec. 2) — both delay the pipeline.
//
// Instruction timestamps are computed in program order with in-order
// commit pressure from the RUU and LSQ, which reproduces the first-order
// behaviour of an event-driven OoO pipeline at a fraction of the cost.
package cpu

import (
	"context"
	"sync"

	"cppc/internal/protect"
	"cppc/internal/trace"
)

// Config mirrors the paper's Table 1 processor.
type Config struct {
	IssueWidth int // instructions per cycle
	RUUSize    int
	LSQSize    int

	IntALU, IntMul, FPALU, FPMul int

	BranchMissPenalty int // front-end flush cycles

	// SinglePorted merges the L1 read and write ports (the Sec. 7
	// future-work evaluation): every load, store, fill and
	// read-before-write contends for one port.
	SinglePorted bool

	FreqHz float64
}

// Table1Config returns the evaluated processor: 4-wide, RUU 64, LSQ 16,
// 4 int ALUs + 1 int mul, 4 FP ALUs + 1 FP mul, 3 GHz.
func Table1Config() Config {
	return Config{
		IssueWidth: 4, RUUSize: 64, LSQSize: 16,
		IntALU: 4, IntMul: 1, FPALU: 4, FPMul: 1,
		BranchMissPenalty: 12,
		FreqHz:            3e9,
	}
}

// latencies per op class (execute stage), in cycles.
func opLatency(op trace.Op) int {
	switch op {
	case trace.OpInt, trace.OpBranch:
		return 1
	case trace.OpIntMul:
		return 3
	case trace.OpFP:
		return 2
	case trace.OpFPMul:
		return 4
	default:
		return 1
	}
}

// fuPool models k identical units by tracking each unit's next-free cycle.
// The free list is a fixed inline array so the pools sit on the Core's own
// hot cache lines instead of the ring arena (Table 1's largest pool is 4
// units; fuPoolMax leaves headroom for ablations).
type fuPool struct {
	free [fuPoolMax]uint64
	n    int
}

const fuPoolMax = 8

// acquire reserves the earliest-available unit at or after t for d cycles,
// returning the start cycle.
func (p *fuPool) acquire(t uint64, d int) uint64 {
	best := 0
	for i := 1; i < p.n; i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start := t
	if p.free[best] > start {
		start = p.free[best]
	}
	p.free[best] = start + uint64(d)
	return start
}

// port models a single cache port as a next-free-cycle counter with a
// cycle-stealing side channel. Demand traffic (loads, 2D-parity
// read-before-writes) reserves slots and waits; CPPC's read-before-write
// *steals* slots: stolen work accumulates as debt that drains in the
// port's idle gaps (the Sec. 3.1 store-buffer/scheduler coordination) and
// only delays demand traffic once the store buffer backs up.
type port struct {
	free uint64 // next cycle free for demand traffic
	debt uint64 // pending stolen cycles
	cap  uint64 // store-buffer depth before stolen work stalls demand
}

// reserve takes the port at or after t for d cycles, returning the start.
// Idle gaps first drain stolen debt; overflowing debt stalls the demand
// access.
func (p *port) reserve(t uint64, d int) uint64 {
	if t > p.free {
		gap := t - p.free
		if p.debt <= gap {
			p.debt = 0
		} else {
			p.debt -= gap
		}
	}
	start := t
	if p.free > start {
		start = p.free
	}
	if p.cap > 0 && p.debt > p.cap {
		start += p.debt - p.cap
		p.debt = p.cap
	}
	p.free = start + uint64(d)
	return start
}

// steal queues d cycles of background work on the port without waiting.
func (p *port) steal(d int) { p.debt += uint64(d) }

// Result summarizes one run.
type Result struct {
	Instructions uint64
	Cycles       uint64
	CPI          float64
	Loads        uint64
	Stores       uint64
	Halted       bool // a DUE occurred
}

// Core runs instruction streams against a memory hierarchy behind a
// MemoryPort (a single-core controller stack or one core's view of a
// timed multiprocessor).
type Core struct {
	Cfg Config
	Mem MemoryPort // data-side hierarchy

	hitLat              int // cached Mem.HitLatency()
	readPort, writePort *port
	intALU, intMul      fuPool
	fpALU, fpMul        fuPool

	// The port state lives in the core (readPort/writePort alias these, or
	// both alias rp when SinglePorted) so a core costs one allocation.
	rp, wp port

	// arena is the pooled scratch the ring buffers and functional-unit
	// free lists are carved from; Release returns it (see coreArenas).
	arena *coreArena

	// completion times of recent instructions, for dependencies (ring).
	done []uint64
	// Index masks for the rings when their length is a power of two (the
	// Table 1 sizes all are); 0 selects the modulo fallback. The ring
	// lengths are not compile-time constants, so i%len would be a real
	// division on every instruction.
	doneMask, lsqMask uint64
	lsqRing           []uint64
	memIdx            uint64 // count of memory instructions (LSQ ring index)

	fetchReady uint64 // earliest fetch cycle for the next instruction
	slot       int    // issue slots used in the current fetch cycle

	// Scratch access result reused across instructions: passing a pointer
	// to a stack local through the MemoryPort interface would force a heap
	// allocation per memory instruction.
	acc protect.AccessResult

	// Optional instruction-side model (Table 1's 16KB L1I): the front end
	// fetches 4-byte instructions; crossing into a new 32-byte block costs
	// an I-cache access, and an I-miss stalls fetch.
	ic         *protect.Controller
	codeBytes  uint64
	pc         uint64
	regionBase uint64 // current hot function's entry
	lastIBlock uint64
	lcg        uint64 // deterministic branch-target scrambler
	icAccess   bool   // this instruction touched the I-cache (new block)

	// Batched instruction consumption (see RunCtx): the buffer lives on the
	// core so instructions drawn but not executed (a run that halts
	// mid-batch) are consumed by the next run instead of being lost, keeping
	// the source's draw sequence identical to unbatched operation.
	srcBuf         []trace.Instr
	srcBufSrc      trace.Source
	srcPos, srcLen int
}

// NewCore wires a core to a single-core data-cache controller stack.
func NewCore(cfg Config, d *protect.Controller) *Core {
	return NewCoreWithPort(cfg, ControllerPort{Ctrl: d})
}

// doneRingMin is the floor for the dependency-tracking ring. Producer
// distances are bounded well below it: trace generation draws Dep1 ≤
// DepDistance and Dep2 ≤ 2·DepDistance, and the largest profile
// DepDistance is 16, so no dependency reaches past 33 instructions. 128
// entries (1KB) keep the ring resident in the host L1 cache, where the
// previous 4096-entry ring (32KB per core) thrashed it.
const doneRingMin = 128

// doneRingLen sizes the done ring: a power of two strictly larger than
// RUUSize, so the RUU occupancy check can read instruction i-RUUSize's
// completion time straight out of the done ring (entry not yet
// overwritten) and the core needs no separate RUU ring.
func doneRingLen(cfg Config) int {
	n := doneRingMin
	for n <= cfg.RUUSize {
		n <<= 1
	}
	return n
}

// coreArena is one core's pooled scratch: a single uint64 backing array
// carved into the rings and functional-unit free lists, plus the trace
// refill buffer. Arenas are recycled per Config (coreArenas) so a sweep
// of same-shaped cells pays the ~40KB of ring allocations once.
type coreArena struct {
	words  []uint64
	srcBuf []trace.Instr
}

var coreArenas sync.Map // Config -> *sync.Pool of *coreArena

func arenaWords(cfg Config) int {
	return doneRingLen(cfg) + cfg.LSQSize
}

// NewCoreWithPort wires a core to any MemoryPort implementation.
func NewCoreWithPort(cfg Config, mem MemoryPort) *Core {
	ringMask := func(n int) uint64 {
		if n > 0 && n&(n-1) == 0 {
			return uint64(n - 1)
		}
		return 0
	}
	c := &Core{
		Cfg: cfg, Mem: mem, hitLat: mem.HitLatency(),
		doneMask: ringMask(doneRingLen(cfg)), lsqMask: ringMask(cfg.LSQSize),
		rp: port{cap: 2}, // a small store buffer absorbs stolen reads
		wp: port{cap: 8},
	}
	c.readPort, c.writePort = &c.rp, &c.wp
	if cfg.SinglePorted {
		c.writePort = &c.rp // all traffic through one port
	}
	var a *coreArena
	if p, ok := coreArenas.Load(cfg); ok {
		a, _ = p.(*sync.Pool).Get().(*coreArena)
	}
	if a == nil {
		a = &coreArena{words: make([]uint64, arenaWords(cfg)), srcBuf: make([]trace.Instr, 256)}
	} else {
		// A zeroed arena is indistinguishable from a fresh one: the rings
		// are only read at indices already written this run, but the
		// functional-unit free lists hold absolute cycles and must reset.
		clear(a.words)
	}
	w := a.words
	carve := func(n int) []uint64 {
		s := w[:n:n]
		w = w[n:]
		return s
	}
	c.done = carve(doneRingLen(cfg))
	c.lsqRing = carve(cfg.LSQSize)
	for _, p := range []struct {
		pool *fuPool
		n    int
	}{{&c.intALU, cfg.IntALU}, {&c.intMul, cfg.IntMul}, {&c.fpALU, cfg.FPALU}, {&c.fpMul, cfg.FPMul}} {
		if p.n > fuPoolMax {
			panic("cpu: functional-unit pool exceeds fuPoolMax")
		}
		p.pool.n = p.n
	}
	c.arena = a
	c.srcBuf = a.srcBuf
	return c
}

// Release returns the core's scratch arena to the per-Config pool for
// reuse by a future NewCoreWithPort. The core must not run afterwards.
func (c *Core) Release() {
	if c.arena == nil {
		return
	}
	p, _ := coreArenas.LoadOrStore(c.Cfg, new(sync.Pool))
	p.(*sync.Pool).Put(c.arena)
	c.arena, c.srcBuf = nil, nil
	c.done, c.lsqRing = nil, nil
}

// Run executes n instructions from src (a synthetic generator or a
// recorded trace) and returns timing results.
func (c *Core) Run(src trace.Source, n int) Result {
	res, _ := c.RunCtx(context.Background(), src, n)
	return res
}

// Ring index helpers: a mask when the ring length is a power of two, a
// division otherwise.
func (c *Core) doneIdx(i uint64) uint64 {
	if c.doneMask != 0 {
		return i & c.doneMask
	}
	return i % uint64(len(c.done))
}

func (c *Core) lsqIdx(i uint64) uint64 {
	if c.lsqMask != 0 {
		return i & c.lsqMask
	}
	return i % uint64(len(c.lsqRing))
}

// cancelPollInstrs is how often RunCtx polls its context: rarely enough
// that the check costs nothing against the per-instruction model, often
// enough that multi-million-instruction runs abort within microseconds.
const cancelPollInstrs = 4096

// RunCtx is Run with cooperative cancellation: the context is polled
// every few thousand instructions, and on cancellation the partial
// result accumulated so far is returned alongside the context's error.
func (c *Core) RunCtx(ctx context.Context, src trace.Source, n int) (Result, error) {
	var res Result
	var lastDone uint64
	var err error
	// Batch-capable sources are consumed through the core's refill buffer,
	// replacing one interface call per instruction with one per 256. Refills
	// never draw past the n requested here, and leftovers (a halt mid-batch)
	// carry over to the next run on this core, so the source sees exactly
	// the demand-driven draw sequence.
	bs, _ := src.(trace.BatchSource)
	if src != c.srcBufSrc {
		c.srcBufSrc = src
		c.srcPos, c.srcLen = 0, 0
	}
	executed := uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		if i%cancelPollInstrs == 0 {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
				executed = i
				break
			}
		}
		var in *trace.Instr
		if bs != nil {
			if c.srcPos == c.srcLen {
				want := uint64(len(c.srcBuf))
				if rem := uint64(n) - i; rem < want {
					want = rem
				}
				c.srcLen = bs.NextBatch(c.srcBuf[:want])
				c.srcPos = 0
			}
			in = &c.srcBuf[c.srcPos]
			c.srcPos++
		} else {
			c.srcBuf[0] = src.Next()
			in = &c.srcBuf[0]
		}
		c.icAccess = false
		t := c.dispatch(i, in)
		done := c.execute(i, in, t, &res)
		c.done[c.doneIdx(i)] = done
		if done > lastDone {
			lastDone = done
		}
		// Halted can only flip inside a memory interaction — LoadInto,
		// StoreInto, or an I-cache refill (the planning probes never run
		// the fault checker) — so after a pure ALU/branch instruction the
		// poll would re-read the state already checked at the previous
		// memory instruction. Skipping it there breaks at the exact same
		// instruction the per-instruction poll would.
		if (in.Op == trace.OpLoad || in.Op == trace.OpStore || c.icAccess) && c.Mem.Halted() {
			// The halting instruction itself executed (it raised the DUE);
			// everything after it did not. Leaving executed at n here would
			// overstate instructions and understate CPI in every
			// fault-injection run that halts.
			res.Halted = true
			executed = i + 1
			break
		}
	}
	res.Instructions = executed
	res.Cycles = lastDone
	if res.Instructions > 0 {
		res.CPI = float64(res.Cycles) / float64(res.Instructions)
	}
	return res, err
}

// prefill draws into the refill buffer exactly the instructions the next
// RunCtx(src, n) call on this core would draw, so the generator work can
// run on another goroutine before a lock-step quantum while execution
// stays serialized. It replicates RunCtx's demand: a changed source
// resets the buffer, leftovers are compacted to the front and kept, and
// only the missing tail is drawn. Cases the buffer cannot cover (a
// non-batch source, or n beyond the buffer) are left for RunCtx to draw
// inline as before. Either way the source observes the same demand-driven
// draw sequence, so results are bit-identical.
func (c *Core) prefill(src trace.Source, n int) {
	bs, ok := src.(trace.BatchSource)
	if !ok || n > len(c.srcBuf) {
		return
	}
	if src != c.srcBufSrc {
		c.srcBufSrc = src
		c.srcPos, c.srcLen = 0, 0
	}
	left := c.srcLen - c.srcPos
	if left >= n {
		return
	}
	if left > 0 && c.srcPos > 0 {
		copy(c.srcBuf, c.srcBuf[c.srcPos:c.srcLen])
	}
	c.srcPos, c.srcLen = 0, left
	c.srcLen += bs.NextBatch(c.srcBuf[left:n])
}

// SetICache attaches an instruction cache to the front end. codeBytes is
// the static code footprint branch targets scatter over.
func (c *Core) SetICache(ic *protect.Controller, codeBytes int) {
	c.ic = ic
	c.codeBytes = uint64(codeBytes)
	c.lastIBlock = ^uint64(0)
	c.lcg = 0x9e3779b97f4a7c15
}

// fetchInstruction models the instruction-side access for one dynamic
// instruction and charges any I-miss latency to the front end.
func (c *Core) fetchInstruction(in *trace.Instr) {
	if c.ic == nil {
		return
	}
	const hotFnBytes = 1024 // hot-function size: near branches stay inside
	c.pc += 4
	if in.Op == trace.OpBranch {
		// Roughly half of branches are taken. Most taken branches are
		// loops within the current hot function; a few are far calls to
		// another hot function. Deterministic (no wall-clock randomness).
		c.lcg = c.lcg*6364136223846793005 + 1442695040888963407
		if c.lcg&1 == 0 {
			if (c.lcg>>1)&0xf != 0 {
				// Loop: anywhere inside the current function.
				c.pc = c.regionBase + ((c.lcg>>16)%hotFnBytes)&^3
			} else {
				// Far call: one of 8 hot functions, staggered so they do
				// not alias at power-of-two strides in a direct-mapped
				// I-cache.
				region := (c.lcg >> 8) % 8
				c.regionBase = (region*(c.codeBytes/8) + region*2056) % c.codeBytes
				c.pc = c.regionBase
			}
		}
	}
	if c.pc >= c.codeBytes {
		c.pc = c.regionBase
	}
	iblock := c.pc &^ 31
	if iblock == c.lastIBlock {
		return
	}
	c.lastIBlock = iblock
	c.icAccess = true
	res := c.ic.Load(iblock, c.fetchReady)
	if !res.Hit {
		// The front end stalls for the refill.
		c.fetchReady += uint64(res.Latency)
		c.slot = 0
	}
}

// dispatch computes the cycle at which instruction i can begin execution,
// honoring fetch width, RUU/LSQ occupancy and data dependencies.
func (c *Core) dispatch(i uint64, in *trace.Instr) uint64 {
	c.fetchInstruction(in)
	// Fetch-width constraint: IssueWidth instructions per cycle.
	if c.slot == c.Cfg.IssueWidth {
		c.fetchReady++
		c.slot = 0
	}
	c.slot++
	t := c.fetchReady

	// RUU occupancy: instruction i-RUUSize must have drained. Its
	// completion time is still live in the done ring (the ring is sized
	// strictly larger than RUUSize), so no separate RUU ring is needed.
	if ruu := uint64(c.Cfg.RUUSize); i >= ruu {
		if d := c.done[c.doneIdx(i-ruu)]; d > t {
			t = d
		}
	}
	// LSQ occupancy for memory ops.
	if in.Op == trace.OpLoad || in.Op == trace.OpStore {
		if c.memIdx >= uint64(len(c.lsqRing)) {
			if d := c.lsqRing[c.lsqIdx(c.memIdx)]; d > t {
				t = d
			}
		}
	}
	// Data dependencies.
	if dep := in.Dep1; dep > 0 && uint64(dep) <= i {
		if d := c.done[c.doneIdx(i-uint64(dep))]; d > t {
			t = d
		}
	}
	if dep := in.Dep2; dep > 0 && uint64(dep) <= i {
		if d := c.done[c.doneIdx(i-uint64(dep))]; d > t {
			t = d
		}
	}
	return t
}

// execute models the execute/memory stage and returns completion time.
func (c *Core) execute(i uint64, in *trace.Instr, t uint64, res *Result) uint64 {
	var done uint64
	switch in.Op {
	case trace.OpLoad:
		res.Loads++
		// A 2D-parity miss must read the victim line out through the read
		// port before the fill (Sec. 2).
		start := c.readPort.reserve(t, 1+c.Mem.PlanLoadMiss(in.Addr))
		c.acc = protect.AccessResult{}
		r := &c.acc
		c.Mem.LoadInto(in.Addr, start, r)
		if !r.Hit {
			// The refill occupies the write port once it returns.
			c.writePort.steal(1)
		}
		done = start + uint64(r.Latency)
		c.lsqRing[c.lsqIdx(c.memIdx)] = done
		c.memIdx++
	case trace.OpStore:
		res.Stores++
		// Stores drain from the store buffer after commit: their port
		// activity does not lengthen the instruction's completion, but it
		// does occupy the ports (delaying loads) and the LSQ entry stays
		// allocated until the store drains (backpressure).
		drain := t
		needsWait, rbwWords := c.Mem.PlanStore(in.Addr)
		if rbwWords > 0 {
			if needsWait {
				// Two-dimensional parity: the write cannot start until
				// its read-before-write completes on the read port.
				drain = c.readPort.reserve(drain, rbwWords) + uint64(rbwWords)
			} else {
				// CPPC: cycle stealing — queue the read, don't wait.
				c.readPort.steal(rbwWords)
			}
		}
		drain = c.writePort.reserve(drain, 1)
		c.acc = protect.AccessResult{}
		r := &c.acc
		// The stored value is arbitrary for timing, but its temporal
		// locality matters to the silent-store literature: real programs
		// rewrite the resident value on a large fraction of stores. An
		// address-keyed value that only advances every 64 instructions
		// makes quick re-stores of the same location silent (the
		// store-rehit traffic), while leaving every timing, fold and CPI
		// statistic untouched — no counted event depends on data values.
		c.Mem.StoreInto(in.Addr, in.Addr^(i>>6), drain, r)
		done = t + 1
		c.lsqRing[c.lsqIdx(c.memIdx)] = drain + uint64(r.Latency-c.hitLat) + 1
		c.memIdx++
	case trace.OpBranch:
		start := c.intALU.acquire(t, 1)
		done = start + 1
		if in.Mispredict {
			// Flush: the front end restarts after the penalty.
			if nf := done + uint64(c.Cfg.BranchMissPenalty); nf > c.fetchReady {
				c.fetchReady = nf
				c.slot = 0
			}
		}
	case trace.OpInt:
		start := c.intALU.acquire(t, 1)
		done = start + uint64(opLatency(in.Op))
	case trace.OpIntMul:
		start := c.intMul.acquire(t, opLatency(in.Op))
		done = start + uint64(opLatency(in.Op))
	case trace.OpFP:
		start := c.fpALU.acquire(t, 1)
		done = start + uint64(opLatency(in.Op))
	case trace.OpFPMul:
		start := c.fpMul.acquire(t, opLatency(in.Op))
		done = start + uint64(opLatency(in.Op))
	}
	return done
}

// The store/load port-usage planning (read-before-write word counts,
// victim-line reads) lives with the protection controller — see
// protect.Controller.PlanStoreRBW and PlanLoadVictimRead — so that every
// MemoryPort implementation shares one definition.
