package cpu

import (
	"cppc/internal/protect"
)

// MemoryPort is the seam between the timing core and the memory
// hierarchy: everything the pipeline needs from the data side. A port
// serves loads and stores at a given cycle (filling an AccessResult whose
// Latency feeds the pipeline), predicts a store's read-before-write port
// usage before the store executes (the Fig. 10 contention model), and
// reports whether the hierarchy has halted on a DUE.
//
// Two implementations exist: ControllerPort wraps the single-core
// protect.Controller stack (the Table 1 hierarchy, bit-identical to the
// pre-interface core), and coherence.CorePort gives each core of a timed
// Multiprocessor its own view of the shared MSI hierarchy.
type MemoryPort interface {
	// LoadInto performs a word load at addr issued at cycle now. *res
	// must be zeroed.
	LoadInto(addr, now uint64, res *protect.AccessResult)
	// StoreInto performs a word store at addr issued at cycle now. *res
	// must be zeroed.
	StoreInto(addr, val, now uint64, res *protect.AccessResult)
	// PlanStore predicts the store's read-before-write behaviour: whether
	// the store must wait for the read (2D parity) and how many read-port
	// word-slots it books (CPPC steals them without waiting).
	PlanStore(addr uint64) (wait bool, rbwWords int)
	// PlanLoadMiss returns extra read-port cycles a load needs before its
	// access (the 2D-parity whole-line victim read on a miss).
	PlanLoadMiss(addr uint64) int
	// HitLatency is the L1 hit latency in cycles.
	HitLatency() int
	// Halted reports whether an unrecoverable fault stopped the machine.
	Halted() bool
}

// ControllerPort adapts a single-core protect.Controller stack (L1 over
// L2 over memory) to the MemoryPort seam.
type ControllerPort struct {
	Ctrl *protect.Controller
}

func (p ControllerPort) LoadInto(addr, now uint64, res *protect.AccessResult) {
	p.Ctrl.LoadInto(addr, now, res)
}

func (p ControllerPort) StoreInto(addr, val, now uint64, res *protect.AccessResult) {
	p.Ctrl.StoreInto(addr, val, now, res)
}

func (p ControllerPort) PlanStore(addr uint64) (bool, int) { return p.Ctrl.PlanStoreRBW(addr) }
func (p ControllerPort) PlanLoadMiss(addr uint64) int      { return p.Ctrl.PlanLoadVictimRead(addr) }
func (p ControllerPort) HitLatency() int                   { return p.Ctrl.C.Cfg.HitLatencyCycles }
func (p ControllerPort) Halted() bool                      { return p.Ctrl.Halted }

// StackPort adapts a single-core level-list hierarchy (System.Levels) to
// the MemoryPort seam. Demand accesses and the pre-execution port
// planning go to Levels[0] — the level the core touches directly, which
// recurses down the stack itself — so its timing is call-for-call
// identical to ControllerPort over the same top controller. Halted is
// the aggregate it exists for: a DUE raised deep in the stack (during a
// write-back verify at the L2 or L3, say) sets that level's flag, not
// the L1's, and must still stop the machine.
type StackPort struct {
	Levels []*protect.Controller
}

func (p StackPort) LoadInto(addr, now uint64, res *protect.AccessResult) {
	p.Levels[0].LoadInto(addr, now, res)
}

func (p StackPort) StoreInto(addr, val, now uint64, res *protect.AccessResult) {
	p.Levels[0].StoreInto(addr, val, now, res)
}

func (p StackPort) PlanStore(addr uint64) (bool, int) { return p.Levels[0].PlanStoreRBW(addr) }
func (p StackPort) PlanLoadMiss(addr uint64) int      { return p.Levels[0].PlanLoadVictimRead(addr) }
func (p StackPort) HitLatency() int                   { return p.Levels[0].C.Cfg.HitLatencyCycles }

func (p StackPort) Halted() bool {
	for _, l := range p.Levels {
		if l.Halted {
			return true
		}
	}
	return false
}
