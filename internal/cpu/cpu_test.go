package cpu

import (
	"testing"

	"cppc/internal/core"
	"cppc/internal/protect"
	"cppc/internal/trace"
)

func gzipProfile() trace.Profile {
	p, ok := trace.ProfileByName("gzip")
	if !ok {
		panic("gzip profile missing")
	}
	return p
}

func TestTable1Config(t *testing.T) {
	cfg := Table1Config()
	if cfg.IssueWidth != 4 || cfg.RUUSize != 64 || cfg.LSQSize != 16 {
		t.Errorf("core geometry: %+v", cfg)
	}
	if cfg.IntALU != 4 || cfg.IntMul != 1 || cfg.FPALU != 4 || cfg.FPMul != 1 {
		t.Errorf("FU pool: %+v", cfg)
	}
	if cfg.FreqHz != 3e9 {
		t.Errorf("frequency: %v", cfg.FreqHz)
	}
}

func TestFuPoolSerializesOnSingleUnit(t *testing.T) {
	p := fuPool{n: 1}
	a := p.acquire(0, 3)
	b := p.acquire(0, 3)
	if a != 0 || b != 3 {
		t.Errorf("single unit: a=%d b=%d", a, b)
	}
	p2 := fuPool{n: 2}
	a2 := p2.acquire(0, 3)
	b2 := p2.acquire(0, 3)
	if a2 != 0 || b2 != 0 {
		t.Errorf("two units should run in parallel: a=%d b=%d", a2, b2)
	}
}

func TestPortReserveAndSteal(t *testing.T) {
	p := port{cap: 2}
	if got := p.reserve(5, 1); got != 5 {
		t.Errorf("reserve = %d", got)
	}
	if got := p.reserve(5, 1); got != 6 {
		t.Errorf("second reserve = %d", got)
	}
	// Stolen cycles within the buffer capacity do not delay demand.
	p.steal(2)
	if got := p.reserve(7, 1); got != 7 {
		t.Errorf("reserve with small debt = %d", got)
	}
	// Overflowing debt stalls demand by the excess.
	p.steal(5) // debt 7, cap 2 -> 5 cycles of stall
	if got := p.reserve(8, 1); got != 13 {
		t.Errorf("reserve with overflowing debt = %d", got)
	}
	// A long idle gap drains the remaining debt for free.
	if got := p.reserve(100, 1); got != 100 {
		t.Errorf("reserve after idle gap = %d", got)
	}
}

func TestCPIGreaterThanIdeal(t *testing.T) {
	sys := NewSystem(Parity1DFactory(), Parity1DFactory())
	res := RunBenchmark(gzipProfile(), 100000, 1, sys)
	if res.Instructions != 100000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	// A 4-wide machine cannot beat 0.25 CPI, and a real workload with
	// memory stalls should be well above it but far below pathological.
	if res.CPI < 0.25 || res.CPI > 10 {
		t.Fatalf("CPI = %v out of plausible range", res.CPI)
	}
	if res.Halted {
		t.Fatal("halted without faults")
	}
}

func TestCPIDeterministic(t *testing.T) {
	a := RunBenchmark(gzipProfile(), 50000, 1, NewSystem(Parity1DFactory(), Parity1DFactory()))
	b := RunBenchmark(gzipProfile(), 50000, 1, NewSystem(Parity1DFactory(), Parity1DFactory()))
	if a.CPI != b.CPI || a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestFigure10Ordering is the shape of Fig. 10 in miniature: CPPC's CPI
// overhead over one-dimensional parity is small, and two-dimensional
// parity costs at least as much as CPPC.
func TestFigure10Ordering(t *testing.T) {
	const n = 300000
	base := RunBenchmark(gzipProfile(), n, 1, NewSystem(Parity1DFactory(), Parity1DFactory()))
	cppc := RunBenchmark(gzipProfile(), n, 1, NewSystem(CPPCFactory(core.DefaultL1Config()), Parity1DFactory()))
	twod := RunBenchmark(gzipProfile(), n, 1, NewSystem(TwoDimFactory(), Parity1DFactory()))

	if cppc.CPI < base.CPI*0.999 {
		t.Errorf("CPPC CPI %.4f below parity baseline %.4f", cppc.CPI, base.CPI)
	}
	if twod.CPI < cppc.CPI*0.999 {
		t.Errorf("2D CPI %.4f below CPPC %.4f", twod.CPI, cppc.CPI)
	}
	// CPPC's overhead should stay small (paper: <=1% across benchmarks;
	// allow slack for the synthetic workload).
	if over := cppc.CPI/base.CPI - 1; over > 0.05 {
		t.Errorf("CPPC CPI overhead %.2f%% implausibly high", over*100)
	}
}

func TestL2SeesTraffic(t *testing.T) {
	sys := NewSystem(Parity1DFactory(), Parity1DFactory())
	RunBenchmark(gzipProfile(), 100000, 1, sys)
	if sys.L2().Stats.Accesses() == 0 {
		t.Fatal("no L2 traffic")
	}
	if sys.L1().Stats.MissRate() <= 0 || sys.L1().Stats.MissRate() > 0.5 {
		t.Fatalf("implausible L1 miss rate %.3f", sys.L1().Stats.MissRate())
	}
}

func TestMcfMissesHard(t *testing.T) {
	mcf, _ := trace.ProfileByName("mcf")
	sys := NewSystem(Parity1DFactory(), Parity1DFactory())
	RunBenchmark(mcf, 200000, 1, sys)
	easy := NewSystem(Parity1DFactory(), Parity1DFactory())
	eon, _ := trace.ProfileByName("eon")
	RunBenchmark(eon, 200000, 1, easy)
	if sys.L1().Stats.MissRate() <= easy.L1().Stats.MissRate() {
		t.Errorf("mcf L1 miss rate %.3f not above eon %.3f",
			sys.L1().Stats.MissRate(), easy.L1().Stats.MissRate())
	}
	// mcf's L2 should miss most of the time (paper: ~80%).
	if mr := sys.L2().Stats.MissRate(); mr < 0.5 {
		t.Errorf("mcf L2 miss rate %.3f, want high (paper ~0.8)", mr)
	}
}

func TestBranchPenaltySlowsDown(t *testing.T) {
	p := gzipProfile()
	p.BranchMispredictRate = 0
	fast := RunBenchmark(p, 100000, 1, NewSystem(Parity1DFactory(), Parity1DFactory()))
	p.BranchMispredictRate = 0.3
	slow := RunBenchmark(p, 100000, 1, NewSystem(Parity1DFactory(), Parity1DFactory()))
	if slow.CPI <= fast.CPI {
		t.Errorf("mispredictions did not slow the core: %.3f vs %.3f", slow.CPI, fast.CPI)
	}
}

func TestOpLatencies(t *testing.T) {
	if opLatency(trace.OpInt) != 1 || opLatency(trace.OpIntMul) != 3 ||
		opLatency(trace.OpFP) != 2 || opLatency(trace.OpFPMul) != 4 {
		t.Error("unexpected FU latencies")
	}
	if opLatency(trace.OpLoad) != 1 {
		t.Error("default latency should be 1")
	}
}

func TestICacheModeling(t *testing.T) {
	p := gzipProfile()
	// Without the I-cache.
	sysA := NewSystem(Parity1DFactory(), Parity1DFactory())
	coreA := NewCore(Table1Config(), sysA.L1())
	base := coreA.Run(p.NewGen(1), 100000)

	// With a 16KB L1I over a 64KB code footprint: extra front-end stalls.
	sysB := NewSystem(Parity1DFactory(), Parity1DFactory())
	coreB := NewCore(Table1Config(), sysB.L1())
	coreB.SetICache(sysB.L1I, 64<<10)
	with := coreB.Run(p.NewGen(1), 100000)

	if sysB.L1I.Stats.Accesses() == 0 {
		t.Fatal("L1I never accessed")
	}
	if with.CPI <= base.CPI {
		t.Errorf("I-cache modeling did not add front-end stalls: %.3f vs %.3f",
			with.CPI, base.CPI)
	}
	if mr := sysB.L1I.Stats.MissRate(); mr <= 0 || mr > 0.2 {
		t.Errorf("implausible L1I miss rate %.3f", mr)
	}
}

// TestHaltTruncatesInstructionCount: a run cut short by a DUE must report
// the instructions actually executed — the halting instruction counts,
// nothing after it does. (The bug: Result.Instructions stayed at the
// requested n, overstating work and understating CPI in every
// fault-injection run that halts.)
func TestHaltTruncatesInstructionCount(t *testing.T) {
	sys := NewSystem(Parity1DFactory(), Parity1DFactory())
	defer sys.Release()
	core := NewCore(Table1Config(), sys.L1())
	p := gzipProfile()
	core.Run(p.NewGen(1), 50000) // dirty a working set

	// Corrupt every resident dirty word: under parity-1d a dirty fault is
	// uncorrectable, so the first load to any of them raises a DUE.
	c := sys.L1().C
	flipped := 0
	for set := 0; set < c.Cfg.Sets(); set++ {
		for way := 0; way < c.Cfg.Ways; way++ {
			ln := c.Line(set, way)
			if !ln.Valid {
				continue
			}
			for g, d := range ln.Dirty {
				if d {
					c.FlipBits(set, way, g, 1<<13)
					flipped++
				}
			}
		}
	}
	if flipped == 0 {
		t.Fatal("warmup left no dirty words to corrupt")
	}

	const n = 200000
	res := core.Run(p.NewGen(2), n)
	if !res.Halted {
		t.Fatal("machine did not halt on an uncorrectable dirty fault")
	}
	if res.Instructions == 0 || res.Instructions >= n {
		t.Fatalf("halted run reports %d instructions, want 0 < i < %d", res.Instructions, n)
	}
	if want := float64(res.Cycles) / float64(res.Instructions); res.CPI != want {
		t.Errorf("CPI %v inconsistent with Cycles/Instructions = %v", res.CPI, want)
	}
}

// TestStackPortMatchesControllerPort: the generalized StackPort over the
// Table 1 two-level stack must reproduce the single-controller port
// bit-for-bit — same timing, same per-level cache statistics — so the
// Fig. 10 results are unchanged by the level-list refactor.
func TestStackPortMatchesControllerPort(t *testing.T) {
	p, ok := trace.ProfileByName("crafty")
	if !ok {
		t.Fatal("crafty profile missing")
	}
	const n = 150000
	mk := func() *System {
		return NewSystem(CPPCFactory(core.DefaultL1Config()), Parity1DFactory())
	}

	sysA := mk()
	defer sysA.Release()
	resA := NewCore(Table1Config(), sysA.L1()).Run(p.NewGen(7), n)

	sysB := mk()
	defer sysB.Release()
	resB := NewCoreWithPort(Table1Config(), sysB.Port()).Run(p.NewGen(7), n)

	if resA != resB {
		t.Errorf("timing diverged:\n controller: %+v\n stack:      %+v", resA, resB)
	}
	if sysA.L1().Stats != sysB.L1().Stats {
		t.Errorf("L1 stats diverged:\n controller: %+v\n stack:      %+v", sysA.L1().Stats, sysB.L1().Stats)
	}
	if sysA.L2().Stats != sysB.L2().Stats {
		t.Errorf("L2 stats diverged:\n controller: %+v\n stack:      %+v", sysA.L2().Stats, sysB.L2().Stats)
	}
}

// TestWarmupFoldInvariance: fold counts reported after a warmed run must
// cover the measure window only. Running warmup+measure in one shot and
// running the same post-warmup stream with the warmup discarded by the
// reset must report identical fold counts. (The bug: cache stats were
// reset at the warmup boundary but CPPC's engine events were not, so
// warmup folds inflated every energy ratio.)
func TestWarmupFoldInvariance(t *testing.T) {
	const warm, meas = 40000, 80000
	folds := func(sys *System) uint64 {
		var n uint64
		for _, l := range sys.Levels {
			if s, ok := l.Scheme.(*protect.CPPCScheme); ok {
				n += s.Engine.Events.Folds
			}
		}
		return n
	}
	mk := func() *System {
		return NewSystem(CPPCFactory(core.DefaultL1Config()), CPPCFactory(core.DefaultL2Config()))
	}
	p := gzipProfile()

	sysA := mk()
	defer sysA.Release()
	RunSourceWarm(p.NewGen(1), warm, meas, sysA)
	foldsA := folds(sysA)

	// Same stream, warmup played as a throwaway measurement: the second
	// RunSourceWarm resets at its (empty) warmup boundary and measures the
	// identical post-warmup instructions.
	sysB := mk()
	defer sysB.Release()
	gen := p.NewGen(1)
	RunSourceWarm(gen, 0, warm, sysB)
	RunSourceWarm(gen, 0, meas, sysB)
	foldsB := folds(sysB)

	if foldsA == 0 {
		t.Fatal("no folds measured")
	}
	if foldsA != foldsB {
		t.Fatalf("warmup skews fold counts: %d with warmup, %d without", foldsA, foldsB)
	}
}

func TestICacheFaultsAlwaysRecoverable(t *testing.T) {
	// Instructions are read-only: every L1I word is clean, so parity plus
	// refetch recovers any fault — the reason the paper's correction
	// machinery targets the data side.
	sys := NewSystem(Parity1DFactory(), Parity1DFactory())
	core := NewCore(Table1Config(), sys.L1())
	core.SetICache(sys.L1I, 64<<10)
	core.Run(gzipProfile().NewGen(2), 50000)

	// Strike a few resident instruction words directly.
	n := 0
	for set := 0; set < sys.L1I.C.Cfg.Sets() && n < 10; set++ {
		if sys.L1I.C.Line(set, 0).Valid {
			sys.L1I.C.FlipBits(set, 0, 0, 1<<7)
			n++
		}
	}
	core.Run(gzipProfile().NewGen(3), 50000)
	if sys.L1I.Halted {
		t.Fatal("instruction cache fault was fatal")
	}
	if sys.L1I.Stats.UnrecoverableDUE != 0 {
		t.Fatalf("L1I DUEs: %+v", sys.L1I.Stats)
	}
}
