package cpu

import (
	"context"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/protect"
	"cppc/internal/trace"
)

// SchemeFactory builds a protection scheme for a cache.
type SchemeFactory func(c *cache.Cache) protect.Scheme

// Standard factories for the four evaluated schemes, at both levels.
func Parity1DFactory() SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) }
}
func SECDEDFactory(interleaved bool) SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewSECDED(c, interleaved) }
}
func TwoDimFactory() SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewTwoDim(c, 8) }
}
func CPPCFactory(cfg core.Config) SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, cfg) }
}

// Level describes one cache level of a stack: its geometry and the
// protection scheme attached to it.
type Level struct {
	Cfg    cache.Config
	Scheme SchemeFactory
}

// System is a single-core memory stack of any depth: Levels[0] faces the
// core, each level backs the one above it, and the last level sits on
// memory. The Table 1 two-level hierarchy is the common case (NewSystem);
// the Sec. 7 L3 study stacks three levels through the same machinery.
type System struct {
	Levels []*protect.Controller
	L1I    *protect.Controller // optional parity-protected instruction cache
	Mem    *cache.Memory
}

// NewStack builds a hierarchy of arbitrary depth over mem. levels[0] is
// the level closest to the core.
func NewStack(mem *cache.Memory, levels ...Level) *System {
	if len(levels) == 0 {
		panic("cpu: a stack needs at least one cache level")
	}
	sys := &System{Levels: make([]*protect.Controller, len(levels)), Mem: mem}
	var next cache.Backing = mem
	for i := len(levels) - 1; i >= 0; i-- {
		c := cache.New(levels[i].Cfg)
		ct := protect.NewController(c, levels[i].Scheme(c), next)
		sys.Levels[i] = ct
		next = ct
	}
	return sys
}

// NewSystem builds the Table 1 hierarchy with the given schemes: L1D (and
// an L1I) on a unified L2 on memory. Memory latency is ~200 cycles at
// 3 GHz. The L1I shares the unified L2; instructions are read-only, so
// plain parity fully protects them — it is wired into the front end only
// when a Core opts in via SetICache.
func NewSystem(mkL1, mkL2 SchemeFactory) *System {
	sys := NewStack(cache.NewMemory(32, 200),
		Level{Cfg: cache.L1DConfig(), Scheme: mkL1},
		Level{Cfg: cache.L2Config(), Scheme: mkL2},
	)
	lic := cache.New(cache.L1IConfig())
	sys.L1I = protect.NewController(lic, protect.NewParity1D(lic, 8), sys.Levels[1])
	return sys
}

// L1 returns the data-cache level closest to the core, L2 the level below
// it. They exist for the Table 1 two-level stack; deeper stacks index
// Levels directly.
func (sys *System) L1() *protect.Controller { return sys.Levels[0] }
func (sys *System) L2() *protect.Controller { return sys.Levels[1] }

// Port returns the system's MemoryPort: demand traffic enters at
// Levels[0], and halt state aggregates over the whole stack.
func (sys *System) Port() StackPort { return StackPort{Levels: sys.Levels} }

// Release returns every level's cache arrays to the construction pool so
// the next NewStack/NewSystem skips their allocation. The system —
// including its controllers and caches — must not be used afterwards.
func (sys *System) Release() {
	for _, l := range sys.Levels {
		l.C.Release()
	}
	if sys.L1I != nil {
		sys.L1I.C.Release()
	}
	if sys.Mem != nil {
		sys.Mem.Release()
	}
}

// ResetStats zeroes every level's cache statistics, occupancy sampling
// and scheme event counters (CPPC fold/recovery counts). It marks a
// measurement boundary: everything read afterwards covers exactly the
// instructions run afterwards. The event reset matters as much as the
// stats reset — fold counts that keep their warmup contribution inflate
// every CPPC energy ratio computed against post-warmup cache stats.
func (sys *System) ResetStats() {
	for _, l := range sys.Levels {
		l.Stats = cache.Stats{}
		l.C.ResetSampling()
		if r, ok := l.Scheme.(protect.EventResetter); ok {
			r.ResetEvents()
		}
	}
}

// RunBenchmark executes n instructions of a benchmark profile on the
// Table 1 processor with the given memory system, returning the timing
// result. The system's controllers accumulate cache statistics for the
// energy and reliability models.
func RunBenchmark(prof trace.Profile, n int, seed int64, sys *System) Result {
	core := NewCoreWithPort(Table1Config(), sys.Port())
	defer core.Release()
	return core.Run(prof.NewGen(seed), n)
}

// RunBenchmarkWarm runs `warmup` instructions to fill the caches (the
// SimPoint warm-up the paper's methodology implies), resets all statistics,
// then measures `measure` instructions.
func RunBenchmarkWarm(prof trace.Profile, warmup, measure int, seed int64, sys *System) Result {
	return RunSourceWarm(prof.NewGen(seed), warmup, measure, sys)
}

// RunSourceWarm is RunBenchmarkWarm over any instruction source (e.g. a
// recorded trace file).
func RunSourceWarm(src trace.Source, warmup, measure int, sys *System) Result {
	res, _ := RunSourceWarmCtx(context.Background(), src, warmup, measure, sys)
	return res
}

// RunSourceWarmCtx is RunSourceWarm with cooperative cancellation. On
// cancellation the partial measurement is discarded and the context's
// error returned.
func RunSourceWarmCtx(ctx context.Context, src trace.Source, warmup, measure int, sys *System) (Result, error) {
	core := NewCoreWithPort(Table1Config(), sys.Port())
	defer core.Release()
	w, err := core.RunCtx(ctx, src, warmup)
	if err != nil {
		return Result{}, err
	}
	sys.ResetStats()
	m, err := core.RunCtx(ctx, src, measure)
	if err != nil {
		return Result{}, err
	}
	// core.Run returns cumulative cycles; subtract the warm-up portion.
	m.Cycles -= w.Cycles
	m.CPI = float64(m.Cycles) / float64(m.Instructions)
	return m, nil
}
