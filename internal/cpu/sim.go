package cpu

import (
	"context"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/protect"
	"cppc/internal/trace"
)

// SchemeFactory builds a protection scheme for a cache.
type SchemeFactory func(c *cache.Cache) protect.Scheme

// Standard factories for the four evaluated schemes, at both levels.
func Parity1DFactory() SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) }
}
func SECDEDFactory(interleaved bool) SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewSECDED(c, interleaved) }
}
func TwoDimFactory() SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewTwoDim(c, 8) }
}
func CPPCFactory(cfg core.Config) SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, cfg) }
}

// System is the Table 1 memory system: L1D (and optionally L1I) on a
// unified L2 on memory, each level behind its own protection controller.
type System struct {
	L1  *protect.Controller
	L1I *protect.Controller // parity-protected instruction cache
	L2  *protect.Controller
	Mem *cache.Memory
}

// NewSystem builds the Table 1 hierarchy with the given schemes. Memory
// latency is ~200 cycles at 3 GHz. The L1I shares the unified L2;
// instructions are read-only, so plain parity fully protects them — it is
// wired into the front end only when a Core opts in via SetICache.
func NewSystem(mkL1, mkL2 SchemeFactory) *System {
	mem := cache.NewMemory(32, 200)
	l2c := cache.New(cache.L2Config())
	l2 := protect.NewController(l2c, mkL2(l2c), mem)
	l1c := cache.New(cache.L1DConfig())
	l1 := protect.NewController(l1c, mkL1(l1c), l2)
	lic := cache.New(cache.L1IConfig())
	li := protect.NewController(lic, protect.NewParity1D(lic, 8), l2)
	return &System{L1: l1, L1I: li, L2: l2, Mem: mem}
}

// Release returns the system's cache arrays to the construction pool so
// the next NewSystem skips their allocation. The system — including its
// controllers and caches — must not be used afterwards.
func (sys *System) Release() {
	sys.L1.C.Release()
	sys.L1I.C.Release()
	sys.L2.C.Release()
}

// RunBenchmark executes n instructions of a benchmark profile on the
// Table 1 processor with the given memory system, returning the timing
// result. The system's controllers accumulate cache statistics for the
// energy and reliability models.
func RunBenchmark(prof trace.Profile, n int, seed int64, sys *System) Result {
	core := NewCore(Table1Config(), sys.L1)
	return core.Run(prof.NewGen(seed), n)
}

// RunBenchmarkWarm runs `warmup` instructions to fill the caches (the
// SimPoint warm-up the paper's methodology implies), resets all statistics,
// then measures `measure` instructions.
func RunBenchmarkWarm(prof trace.Profile, warmup, measure int, seed int64, sys *System) Result {
	return RunSourceWarm(prof.NewGen(seed), warmup, measure, sys)
}

// RunSourceWarm is RunBenchmarkWarm over any instruction source (e.g. a
// recorded trace file).
func RunSourceWarm(src trace.Source, warmup, measure int, sys *System) Result {
	res, _ := RunSourceWarmCtx(context.Background(), src, warmup, measure, sys)
	return res
}

// RunSourceWarmCtx is RunSourceWarm with cooperative cancellation. On
// cancellation the partial measurement is discarded and the context's
// error returned.
func RunSourceWarmCtx(ctx context.Context, src trace.Source, warmup, measure int, sys *System) (Result, error) {
	core := NewCore(Table1Config(), sys.L1)
	w, err := core.RunCtx(ctx, src, warmup)
	if err != nil {
		return Result{}, err
	}
	sys.L1.Stats = cache.Stats{}
	sys.L2.Stats = cache.Stats{}
	sys.L1.C.ResetSampling()
	sys.L2.C.ResetSampling()
	m, err := core.RunCtx(ctx, src, measure)
	if err != nil {
		return Result{}, err
	}
	// core.Run returns cumulative cycles; subtract the warm-up portion.
	m.Cycles -= w.Cycles
	m.CPI = float64(m.Cycles) / float64(m.Instructions)
	return m, nil
}
