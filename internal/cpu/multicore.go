package cpu

import (
	"context"
	"errors"

	"cppc/internal/trace"
)

// DefaultQuantum is the lock-step scheduling quantum: how many
// instructions each core advances before the next core gets the machine.
// It matches the trace refill batch, and keeping it small bounds how far
// one core's view of the shared hierarchy can run ahead of another's.
const DefaultQuantum = 256

// Cluster drives N OoO cores in lock step, one trace stream per core.
// The cores share whatever hierarchy their MemoryPorts expose (for the
// Sec. 7 experiments, per-core views of a timed coherence.Multiprocessor);
// the round-robin order is fixed, so a run is deterministic for a given
// set of (port, source) pairs.
type Cluster struct {
	Cores []*Core
	srcs  []trace.Source
}

// NewCluster builds one core per (port, source) pair, all with the same
// pipeline configuration.
func NewCluster(cfg Config, ports []MemoryPort, srcs []trace.Source) (*Cluster, error) {
	if len(ports) == 0 || len(ports) != len(srcs) {
		return nil, errors.New("cpu: cluster needs exactly one trace source per memory port")
	}
	cl := &Cluster{srcs: srcs}
	for _, p := range ports {
		cl.Cores = append(cl.Cores, NewCoreWithPort(cfg, p))
	}
	return cl, nil
}

// Release returns every core's scratch arena to the construction pool
// (see Core.Release). The cluster must not run afterwards.
func (cl *Cluster) Release() {
	for _, c := range cl.Cores {
		c.Release()
	}
}

// MulticoreResult aggregates a lock-step run.
type MulticoreResult struct {
	PerCore      []Result
	Instructions uint64  // summed across cores
	Cycles       uint64  // wall clock: max completion cycle over cores
	CPI          float64 // Cycles over instructions-per-core
	Halted       bool    // a DUE stopped some core (the cluster stops with it)
}

// Run is RunCtx without cancellation.
func (cl *Cluster) Run(n, quantum int) MulticoreResult {
	res, _ := cl.RunCtx(context.Background(), n, quantum)
	return res
}

// RunCtx runs n instructions on every core, advancing round-robin in
// quanta (quantum <= 0 selects DefaultQuantum). Cycle timestamps are
// absolute and carry across calls, so warm-up and measurement phases can
// be separate calls with the cycle delta taken by the caller. If any core
// halts on an unrecoverable fault the whole cluster stops.
func (cl *Cluster) RunCtx(ctx context.Context, n, quantum int) (MulticoreResult, error) {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	res := MulticoreResult{PerCore: make([]Result, len(cl.Cores))}
	var err error
	remaining := n
outer:
	for remaining > 0 && !res.Halted {
		step := quantum
		if remaining < step {
			step = remaining
		}
		for i, c := range cl.Cores {
			r, rerr := c.RunCtx(ctx, cl.srcs[i], step)
			pc := &res.PerCore[i]
			pc.Instructions += r.Instructions
			if r.Cycles > pc.Cycles {
				pc.Cycles = r.Cycles
			}
			pc.Loads += r.Loads
			pc.Stores += r.Stores
			if r.Halted {
				pc.Halted = true
				res.Halted = true
			}
			if rerr != nil {
				err = rerr
				break outer
			}
		}
		remaining -= step
	}
	for i := range res.PerCore {
		pc := &res.PerCore[i]
		if pc.Instructions > 0 {
			pc.CPI = float64(pc.Cycles) / float64(pc.Instructions)
		}
		res.Instructions += pc.Instructions
		if pc.Cycles > res.Cycles {
			res.Cycles = pc.Cycles
		}
	}
	if perCore := res.Instructions / uint64(len(cl.Cores)); perCore > 0 {
		res.CPI = float64(res.Cycles) / float64(perCore)
	}
	return res, err
}
