package cpu

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"cppc/internal/trace"
)

// DefaultQuantum is the lock-step scheduling quantum: how many
// instructions each core advances before the next core gets the machine.
// It matches the trace refill batch, and keeping it small bounds how far
// one core's view of the shared hierarchy can run ahead of another's.
const DefaultQuantum = 256

// PrivateMemory is an optional MemoryPort refinement. A port returning
// true promises that its mutable state (and everything reachable from
// it) is touched by exactly one core, so whole scheduling quanta for
// different cores can execute concurrently without observing each
// other. Ports that share state across cores — a coherence directory, a
// shared bus — must not implement it (or must return false): for those,
// the parallel cluster only moves trace generation off the execution
// goroutine and keeps all memory interactions in core order.
type PrivateMemory interface {
	PrivateHierarchy() bool
}

// PrivateHierarchy: a ControllerPort wraps one core's own stack.
func (p ControllerPort) PrivateHierarchy() bool { return true }

// PrivateHierarchy: a StackPort wraps one core's own level list.
func (p StackPort) PrivateHierarchy() bool { return true }

// Cluster drives N OoO cores in lock step, one trace stream per core.
// The cores share whatever hierarchy their MemoryPorts expose (for the
// Sec. 7 experiments, per-core views of a timed coherence.Multiprocessor);
// the round-robin order is fixed, so a run is deterministic for a given
// set of (port, source) pairs — with or without workers (SetWorkers).
type Cluster struct {
	Cores []*Core
	srcs  []trace.Source

	workers int
}

// NewCluster builds one core per (port, source) pair, all with the same
// pipeline configuration.
func NewCluster(cfg Config, ports []MemoryPort, srcs []trace.Source) (*Cluster, error) {
	if len(ports) == 0 || len(ports) != len(srcs) {
		return nil, errors.New("cpu: cluster needs exactly one trace source per memory port")
	}
	cl := &Cluster{srcs: srcs}
	for _, p := range ports {
		cl.Cores = append(cl.Cores, NewCoreWithPort(cfg, p))
	}
	return cl, nil
}

// SetWorkers bounds the goroutine fan-out of subsequent runs: up to n
// goroutines cooperate on each scheduling quantum. n <= 1 (the default)
// selects the serial path. Results are bit-identical for every n — the
// knob trades wall clock, never output — so callers may size it from
// transient facts (idle pool workers) without perturbing cached results.
func (cl *Cluster) SetWorkers(n int) { cl.workers = n }

// Release returns every core's scratch arena to the construction pool
// (see Core.Release). The cluster must not run afterwards.
func (cl *Cluster) Release() {
	for _, c := range cl.Cores {
		c.Release()
	}
}

// MulticoreResult aggregates a lock-step run.
type MulticoreResult struct {
	PerCore      []Result
	Instructions uint64  // summed across cores
	Cycles       uint64  // wall clock: max completion cycle over cores
	CPI          float64 // Cycles over instructions-per-core
	Halted       bool    // a DUE stopped some core (the cluster stops with it)
}

// Run is RunCtx without cancellation.
func (cl *Cluster) Run(n, quantum int) MulticoreResult {
	res, _ := cl.RunCtx(context.Background(), n, quantum)
	return res
}

// privateHierarchy reports whether every core's port declares its
// hierarchy core-private (see PrivateMemory). Absence of the marker
// means shared — the conservative default.
func (cl *Cluster) privateHierarchy() bool {
	for _, c := range cl.Cores {
		p, ok := c.Mem.(PrivateMemory)
		if !ok || !p.PrivateHierarchy() {
			return false
		}
	}
	return true
}

// forEachCore runs fn(i) for every core index across at most workers
// goroutines (one of them the caller's) and waits for all of them — the
// per-quantum barrier.
func (cl *Cluster) forEachCore(workers int, fn func(i int)) {
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(cl.Cores) {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// RunCtx runs n instructions on every core, advancing round-robin in
// quanta (quantum <= 0 selects DefaultQuantum). Cycle timestamps are
// absolute and carry across calls, so warm-up and measurement phases can
// be separate calls with the cycle delta taken by the caller. If any core
// halts on an unrecoverable fault the whole cluster stops.
//
// With SetWorkers(>= 2) the per-quantum core loop fans out across a
// bounded goroutine set with a deterministic barrier per quantum:
//
//   - every core's hierarchy private: whole quanta execute concurrently
//     (no core can observe another), and per-core results are merged in
//     core order at the barrier;
//   - shared hierarchy (coherence/bus): each core's quantum of trace is
//     drawn concurrently — the per-core generators are independent —
//     then the cores execute in core order, so every coherence and bus
//     interaction happens in exactly the serial path's order.
//
// Either way the output is bit-identical to the serial path.
func (cl *Cluster) RunCtx(ctx context.Context, n, quantum int) (MulticoreResult, error) {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	workers := cl.workers
	if workers > len(cl.Cores) {
		workers = len(cl.Cores)
	}
	if workers < 2 {
		return cl.runSerial(ctx, n, quantum)
	}
	return cl.runParallel(ctx, n, quantum, workers)
}

// runSerial is the workerless quantum loop — the reference path the
// parallel one is held bit-identical to, and the one that allocates
// nothing beyond the result.
func (cl *Cluster) runSerial(ctx context.Context, n, quantum int) (MulticoreResult, error) {
	res := MulticoreResult{PerCore: make([]Result, len(cl.Cores))}
	var err error
	remaining := n
outer:
	for remaining > 0 && !res.Halted {
		step := quantum
		if remaining < step {
			step = remaining
		}
		for i, c := range cl.Cores {
			r, rerr := c.RunCtx(ctx, cl.srcs[i], step)
			mergeCore(&res, i, r)
			if rerr != nil {
				err = rerr
				break outer
			}
		}
		remaining -= step
	}
	finalize(&res, len(cl.Cores))
	return res, err
}

// runParallel fans each quantum across the worker set (see RunCtx).
func (cl *Cluster) runParallel(ctx context.Context, n, quantum, workers int) (MulticoreResult, error) {
	private := cl.privateHierarchy()
	res := MulticoreResult{PerCore: make([]Result, len(cl.Cores))}
	var err error
	// Per-round scratch, reset entry-by-entry at the merge so a partial
	// round (an error stopped the core loop early) merges zeros for the
	// cores that did not run.
	rs := make([]Result, len(cl.Cores))
	errs := make([]error, len(cl.Cores))
	remaining := n
outer:
	for remaining > 0 && !res.Halted {
		step := quantum
		if remaining < step {
			step = remaining
		}
		if private {
			cl.forEachCore(workers, func(i int) {
				rs[i], errs[i] = cl.Cores[i].RunCtx(ctx, cl.srcs[i], step)
			})
		} else {
			cl.forEachCore(workers, func(i int) {
				cl.Cores[i].prefill(cl.srcs[i], step)
			})
			for i, c := range cl.Cores {
				rs[i], errs[i] = c.RunCtx(ctx, cl.srcs[i], step)
				if errs[i] != nil {
					break
				}
			}
		}
		// Merge barrier: per-core results land in core order regardless of
		// which goroutine produced them.
		for i := range cl.Cores {
			r, rerr := rs[i], errs[i]
			rs[i], errs[i] = Result{}, nil
			mergeCore(&res, i, r)
			if rerr != nil {
				err = rerr
				break outer
			}
		}
		remaining -= step
	}
	finalize(&res, len(cl.Cores))
	return res, err
}

// mergeCore folds one core's quantum result into the aggregate; called
// in core order on both paths.
func mergeCore(res *MulticoreResult, i int, r Result) {
	pc := &res.PerCore[i]
	pc.Instructions += r.Instructions
	if r.Cycles > pc.Cycles {
		pc.Cycles = r.Cycles
	}
	pc.Loads += r.Loads
	pc.Stores += r.Stores
	if r.Halted {
		pc.Halted = true
		res.Halted = true
	}
}

// finalize derives the per-core and aggregate CPI columns.
func finalize(res *MulticoreResult, cores int) {
	for i := range res.PerCore {
		pc := &res.PerCore[i]
		if pc.Instructions > 0 {
			pc.CPI = float64(pc.Cycles) / float64(pc.Instructions)
		}
		res.Instructions += pc.Instructions
		if pc.Cycles > res.Cycles {
			res.Cycles = pc.Cycles
		}
	}
	if perCore := res.Instructions / uint64(cores); perCore > 0 {
		res.CPI = float64(res.Cycles) / float64(perCore)
	}
}
