package cpu

import (
	"reflect"
	"testing"

	"cppc/internal/core"
	"cppc/internal/trace"
)

// buildPrivateCluster assembles n cores, each over its own Table 1
// stack (a private hierarchy: the parallel path may execute whole
// quanta concurrently), with per-core deterministic trace streams.
func buildPrivateCluster(t *testing.T, n int) (*Cluster, []*System) {
	t.Helper()
	prof := gzipProfile()
	ports := make([]MemoryPort, n)
	srcs := make([]trace.Source, n)
	systems := make([]*System, n)
	for i := 0; i < n; i++ {
		sys := NewSystem(CPPCFactory(core.DefaultL1Config()), Parity1DFactory())
		systems[i] = sys
		ports[i] = sys.Port()
		srcs[i] = prof.NewGen(7 + int64(i))
	}
	cl, err := NewCluster(Table1Config(), ports, srcs)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl, systems
}

// TestClusterParallelBitIdentical is the race-job determinism gate: a
// parallel Cluster run must be bit-identical to the serial path — same
// MulticoreResult, same final hierarchy state — for N ∈ {1, 2, 4} cores
// and several worker counts. CI runs this under -race with GOMAXPROCS 1
// (serial fallback scheduling) and 4 (true concurrency).
func TestClusterParallelBitIdentical(t *testing.T) {
	const instrs, quantum = 6_000, 0
	for _, n := range []int{1, 2, 4} {
		serial, serialSys := buildPrivateCluster(t, n)
		serialRes := serial.Run(instrs, quantum)
		serialStats := make([]interface{}, n)
		for i, sys := range serialSys {
			serialStats[i] = sys.L1().Stats
		}

		for _, workers := range []int{2, 4, 7} {
			par, parSys := buildPrivateCluster(t, n)
			par.SetWorkers(workers)
			parRes := par.Run(instrs, quantum)
			if !reflect.DeepEqual(serialRes, parRes) {
				t.Errorf("cores=%d workers=%d: parallel result diverged\nserial:   %+v\nparallel: %+v",
					n, workers, serialRes, parRes)
			}
			for i, sys := range parSys {
				if !reflect.DeepEqual(serialStats[i], sys.L1().Stats) {
					t.Errorf("cores=%d workers=%d: core %d L1 stats diverged\nserial:   %+v\nparallel: %+v",
						n, workers, i, serialStats[i], sys.L1().Stats)
				}
				sys.Release()
			}
			par.Release()
		}
		for _, sys := range serialSys {
			sys.Release()
		}
		serial.Release()
	}
}

// TestClusterPrefillExactDemand pins the prefill contract on its edge
// cases: leftovers in the refill buffer (a halted run), a changed
// source, and a demand beyond the buffer must all leave the core's draw
// sequence identical to the unprefilled path.
func TestClusterPrefillExactDemand(t *testing.T) {
	prof := gzipProfile()

	// Reference: draw 600 instructions straight off a fresh generator.
	ref := make([]trace.Instr, 600)
	g := prof.NewGen(3)
	for i := range ref {
		ref[i] = g.Next()
	}

	sys := NewSystem(Parity1DFactory(), Parity1DFactory())
	defer sys.Release()
	c := NewCoreWithPort(Table1Config(), sys.Port())
	defer c.Release()
	src := prof.NewGen(3)

	check := func(stage string, want []trace.Instr) {
		got := c.srcBuf[c.srcPos:c.srcLen]
		if len(got) != len(want) {
			t.Fatalf("%s: buffered %d instrs, want %d", stage, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: buffered instr %d = %+v, want %+v", stage, i, got[i], want[i])
			}
		}
	}

	// Fresh source: prefill(256) draws exactly the first quantum.
	c.prefill(src, 256)
	check("fresh", ref[:256])

	// Re-prefill with the buffer already full: no further draws.
	c.prefill(src, 256)
	check("idempotent", ref[:256])

	// Consume 200 by hand (simulating a partial run), then prefill a full
	// quantum: leftovers compact, only the missing tail is drawn.
	c.srcPos += 200
	c.prefill(src, 256)
	check("leftovers", ref[200:456])

	// Demand beyond the buffer: prefill declines, buffer untouched.
	c.prefill(src, 1024)
	check("oversized", ref[200:456])

	// A changed source resets the buffer and draws from the new stream.
	src2 := prof.NewGen(3)
	c.prefill(src2, 100)
	check("new source", ref[:100])
}

// TestClusterFaultPlaneParallel is the fault-plane concurrency gate: CI
// runs it under -race. Each core's private L1 carries an armed fault
// plane with stuck-at and intermittent cells that re-assert on every
// array consult while the Cluster executes whole quanta concurrently.
// The run must be bit-identical to the serial path (plane coin draws
// are per-cache, so per-core streams stay deterministic) and the faults
// must actually fire (detections observed on every core).
func TestClusterFaultPlaneParallel(t *testing.T) {
	const instrs, quantum = 6_000, 0
	const cores = 4

	arm := func(systems []*System) {
		for i, sys := range systems {
			c := sys.L1().C
			c.ArmPlane(1234 + int64(i))
			words := c.BlockWords()
			for s := 0; s < c.Sets(); s += 5 {
				bit := uint(s % 64)
				c.AddStuckFault(s, s%c.Ways(), s%words, 1<<bit, 1<<bit)
				c.AddIntermittentFault(s, (s+1)%c.Ways(), (s+1)%words, 1<<((bit*7)%64), 0.2)
			}
		}
	}

	serial, serialSys := buildPrivateCluster(t, cores)
	arm(serialSys)
	serialRes := serial.Run(instrs, quantum)
	serialStats := make([]interface{}, cores)
	for i, sys := range serialSys {
		serialStats[i] = sys.L1().Stats
		if sys.L1().Stats.FaultsDetected == 0 {
			t.Errorf("core %d: armed plane produced no detections — faults never re-asserted", i)
		}
	}

	par, parSys := buildPrivateCluster(t, cores)
	arm(parSys)
	par.SetWorkers(cores)
	parRes := par.Run(instrs, quantum)
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Errorf("parallel run with armed fault planes diverged\nserial:   %+v\nparallel: %+v",
			serialRes, parRes)
	}
	for i, sys := range parSys {
		if !reflect.DeepEqual(serialStats[i], sys.L1().Stats) {
			t.Errorf("core %d: L1 stats diverged under armed plane\nserial:   %+v\nparallel: %+v",
				i, serialStats[i], sys.L1().Stats)
		}
		sys.Release()
	}
	par.Release()
	for _, sys := range serialSys {
		sys.Release()
	}
	serial.Release()
}
