package energy

import (
	"math"
	"testing"

	"cppc/internal/cache"
	"cppc/internal/coherence"
)

func l1Model(check int, blf float64) *Model { return New(cache.L1DConfig(), check, blf) }
func l2Model(check int, blf float64) *Model { return New(cache.L2Config(), check, blf) }

func TestEnergyPositiveAndOrdered(t *testing.T) {
	m := l1Model(8, 1)
	if m.Read(1) <= 0 || m.Write(1) <= 0 {
		t.Fatal("non-positive energy")
	}
	if m.Write(1) <= m.Read(1) {
		t.Error("writes should cost more than reads")
	}
	if m.Read(4) <= m.Read(1) {
		t.Error("line reads should cost more than word reads")
	}
}

func TestSECDEDInterleavingFactor(t *testing.T) {
	// Physically interleaved SECDED multiplies bitline energy by 8
	// (Sec. 6.2); the paper reports ~42% total overhead at L1.
	parity := l1Model(8, 1)
	secded := l1Model(8, 8)
	over := secded.Read(1)/parity.Read(1) - 1
	if over < 0.25 || over > 0.60 {
		t.Errorf("interleaved SECDED L1 read overhead = %.2f, want ~0.42", over)
	}
}

func TestBitlineShareGrowsWithSize(t *testing.T) {
	// The reason SECDED's relative cost is higher at L2 (+68%) than at L1
	// (+42%): bitlines are a bigger share of a bigger cache's access.
	l1p, l1s := l1Model(8, 1), l1Model(8, 8)
	l2p, l2s := l2Model(8, 1), l2Model(10, 8)
	l1over := l1s.Read(1)/l1p.Read(1) - 1
	l2over := l2s.Read(4)/l2p.Read(4) - 1
	if l2over <= l1over {
		t.Errorf("L2 SECDED overhead %.2f not above L1 %.2f", l2over, l1over)
	}
	if l2over < 0.4 || l2over > 1.0 {
		t.Errorf("L2 SECDED overhead = %.2f, want ~0.68", l2over)
	}
}

func TestCheckBitsCostEnergy(t *testing.T) {
	bare := l1Model(0, 1)
	parity := l1Model(8, 1)
	if parity.Read(1) <= bare.Read(1) {
		t.Error("check bits should add bitline energy")
	}
	// But the overhead must be small (8 bits out of 72).
	if parity.Read(1)/bare.Read(1) > 1.02 {
		t.Error("parity overhead implausibly large")
	}
}

func TestFoldEnergyNegligible(t *testing.T) {
	// Sec. 4.8: the barrel shifter consumes ~1.5 pJ versus hundreds of pJ
	// per cache access — CPPC's register updates are noise.
	m := l1Model(8, 1)
	if FoldEnergy(1) > 0.05*m.Read(1) {
		t.Errorf("fold energy %.2f pJ not negligible vs access %.2f pJ",
			FoldEnergy(1), m.Read(1))
	}
	if FoldEnergy(4) <= FoldEnergy(1) {
		t.Error("block-wide folds should cost more than word folds")
	}
}

func TestBarrelShifterOffCriticalPath(t *testing.T) {
	// Sec. 4.8: shifter delay must be well under the cache access time.
	m := l1Model(8, 1)
	if BarrelShifterDelayNs() >= m.AccessTimeNs() {
		t.Errorf("shifter %.3fns not under access time %.3fns",
			BarrelShifterDelayNs(), m.AccessTimeNs())
	}
	l2 := l2Model(8, 1)
	if l2.AccessTimeNs() <= m.AccessTimeNs() {
		t.Error("L2 should be slower than L1")
	}
}

func TestCountReport(t *testing.T) {
	m := l1Model(8, 1)
	st := cache.Stats{LoadHits: 100, StoreHits: 50, ReadBeforeWrite: 20, RBWOnMissLines: 5}
	r := Count(st, m, 1, 10)
	if r.ReadPJ != 100*m.Read(1) {
		t.Errorf("ReadPJ = %v", r.ReadPJ)
	}
	if r.WritePJ != 50*m.Write(1) {
		t.Errorf("WritePJ = %v", r.WritePJ)
	}
	want := 15*m.Read(1) + 5*m.Read(4)
	if r.RBWPJ != want {
		t.Errorf("RBWPJ = %v, want %v", r.RBWPJ, want)
	}
	if r.FoldPJ != 10*FoldEnergy(1) {
		t.Errorf("FoldPJ = %v", r.FoldPJ)
	}
	if r.Total() != r.ReadPJ+r.WritePJ+r.RBWPJ+r.FoldPJ {
		t.Error("Total mismatch")
	}
}

func TestDefaultBitlineFactor(t *testing.T) {
	m := New(cache.L1DConfig(), 8, 0) // 0 coerced to 1
	if m.BitlineFactor != 1 {
		t.Errorf("BitlineFactor = %v", m.BitlineFactor)
	}
}

func TestRatioNaNOnEmptyBase(t *testing.T) {
	full := Report{ReadPJ: 10}
	if r := full.Ratio(Report{}); !math.IsNaN(r) {
		t.Errorf("ratio over empty base = %v, want NaN", r)
	}
	if r := (Report{}).Ratio(Report{}); !math.IsNaN(r) {
		t.Errorf("empty/empty ratio = %v, want NaN", r)
	}
	if r := full.Ratio(Report{ReadPJ: 5}); r != 2 {
		t.Errorf("ratio = %v, want 2", r)
	}
}

func TestCountElidedSavesWriteEnergyOnly(t *testing.T) {
	m := l1Model(8, 1)
	st := cache.Stats{LoadHits: 100, StoreHits: 50, ReadBeforeWrite: 20, RBWOnMissLines: 5}
	plain := Count(st, m, 1, 10)
	elided := CountElided(st, m, 1, 10, 30)
	if elided.WritePJ != 20*m.Write(1) {
		t.Errorf("WritePJ = %v, want %v", elided.WritePJ, 20*m.Write(1))
	}
	// Elided stores keep their read-before-write (the silence was
	// detected on that read); only the array write is saved.
	if elided.ReadPJ != plain.ReadPJ || elided.RBWPJ != plain.RBWPJ || elided.FoldPJ != plain.FoldPJ {
		t.Errorf("elision changed non-write components: %+v vs %+v", elided, plain)
	}
	if elided.Total() >= plain.Total() {
		t.Error("elision did not lower total energy")
	}
	// Counter clamp: elided beyond store hits zeroes rather than going
	// negative.
	if r := CountElided(st, m, 1, 0, 1000); r.WritePJ != 0 {
		t.Errorf("clamped WritePJ = %v, want 0", r.WritePJ)
	}
}

func TestCountCoherenceRoleMapping(t *testing.T) {
	bm := NewBus(4)
	st := coherence.Stats{
		BusReads: 10, BusReadX: 7, Invalidations: 5,
		OwnerFlushes: 3, OwnerWritebackInvalidations: 2,
	}
	r := CountCoherence(st, bm)
	if want := 10 * (bm.Transaction() + bm.Transfer()); r.ReadPJ != want {
		t.Errorf("ReadPJ = %v, want %v", r.ReadPJ, want)
	}
	if want := 7*bm.Transaction() + 5*bm.Invalidate(); r.WritePJ != want {
		t.Errorf("WritePJ = %v, want %v", r.WritePJ, want)
	}
	if want := 5 * (bm.Transaction() + bm.Transfer()); r.RBWPJ != want {
		t.Errorf("RBWPJ = %v, want %v", r.RBWPJ, want)
	}
	if r.FoldPJ != 0 {
		t.Errorf("FoldPJ = %v, want 0 (registers live in the cache models)", r.FoldPJ)
	}
	if z := CountCoherence(coherence.Stats{}, bm); z.Total() != 0 {
		t.Errorf("idle bus burned %v pJ", z.Total())
	}
	if NewBus(0).BlockWords != 1 {
		t.Error("NewBus did not clamp block words to 1")
	}
}

func TestReportAdd(t *testing.T) {
	a := Report{ReadPJ: 1, WritePJ: 2, RBWPJ: 3, FoldPJ: 4}
	a.Add(Report{ReadPJ: 10, WritePJ: 20, RBWPJ: 30, FoldPJ: 40})
	if a != (Report{ReadPJ: 11, WritePJ: 22, RBWPJ: 33, FoldPJ: 44}) {
		t.Errorf("Add = %+v", a)
	}
}
