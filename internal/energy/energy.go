// Package energy is the analytical cache-energy model standing in for
// CACTI 5.3 (Sec. 6.2). It decomposes a cache access into a fixed part
// (decoder, wordlines, sense amps, tag match, H-tree) and a bitline part
// that scales with the number of bits accessed and the subarray height.
// The ratios that drive Figs. 11 and 12 — check-bit overhead, the 8x
// bitline factor of physically interleaved SECDED, line-wide versus
// word-wide operations, and the growing bitline share in larger caches —
// all fall out of the decomposition.
//
// Absolute values are picojoules at 32nm (Table 1) calibrated against the
// CACTI data points the paper quotes (240 pJ per access for a 32KB 2-way
// cache at 90nm, Sec. 4.8, scaled to 32nm); the figures normalize away
// the absolute scale.
package energy

import (
	"math"

	"cppc/internal/cache"
)

// Technology constants (32nm, nominal voltage).
const (
	// fixedBasePJ is the decoder+wordline+senseamp+tag energy of a 32KB
	// reference cache.
	fixedBasePJ = 47.0
	// fixedSizeExp grows the fixed component with capacity (more banks,
	// longer H-tree); calibrated so the bitline share matches the paper's
	// SECDED overheads at both levels (+42% L1, +68% L2).
	fixedSizeExp = 0.65
	// bitlinePJPerBit256 is the read/write energy of one bitline pair in a
	// 256-row subarray.
	bitlinePJPerBit256 = 0.042
	// writeFactor scales write energy relative to read (full-swing write
	// drivers versus sense-amp reads).
	writeFactor = 1.15
	// xorGatePJ is one 2-input XOR at 32nm, for register folds.
	xorGatePJ = 0.002
	// barrelShiftPJPerWord is the Sec. 4.8 barrel-shifter energy, scaled
	// from the cited 1.5 pJ / 32 bits at 90nm to a 64-bit word at 32nm.
	barrelShiftPJPerWord = 1.1
)

// Model computes per-operation dynamic energies for one protected cache.
type Model struct {
	Cfg cache.Config

	// CheckBits is the stored check bits per dirty granule (read and
	// written alongside the data).
	CheckBits int

	// BitlineFactor multiplies the bitline component: 8 for physically
	// bit-interleaved SECDED (Sec. 6.2), 1 otherwise.
	BitlineFactor float64
}

// New builds a model for a cache with the given check-bit overhead and
// bitline factor.
func New(cfg cache.Config, checkBits int, bitlineFactor float64) *Model {
	if bitlineFactor <= 0 {
		bitlineFactor = 1
	}
	return &Model{Cfg: cfg, CheckBits: checkBits, BitlineFactor: bitlineFactor}
}

// subarrayRows models banking: bigger caches use taller subarrays (longer
// bitlines), which is why the bitline share of access energy grows with
// capacity — the effect behind SECDED's larger relative overhead at L2.
func (m *Model) subarrayRows() float64 {
	sizeKB := float64(m.Cfg.SizeBytes) / 1024
	rows := 256 * math.Sqrt(sizeKB/32)
	return math.Min(math.Max(rows, 128), 1024)
}

// fixed is the size-dependent non-bitline energy per access.
func (m *Model) fixed() float64 {
	sizeKB := float64(m.Cfg.SizeBytes) / 1024
	return fixedBasePJ * math.Pow(sizeKB/32, fixedSizeExp)
}

// perBit is the bitline energy per accessed bit.
func (m *Model) perBit() float64 {
	return bitlinePJPerBit256 * m.subarrayRows() / 256
}

// accessBits is the data+check width of one access of `words` 64-bit
// words.
func (m *Model) accessBits(words int) float64 {
	granules := float64(words) / float64(m.Cfg.DirtyGranuleWords)
	if granules < 1 {
		granules = 1
	}
	return float64(words*64) + granules*float64(m.CheckBits)
}

// Read returns the energy of reading `words` words (plus their check
// bits).
func (m *Model) Read(words int) float64 {
	return m.fixed() + m.accessBits(words)*m.perBit()*m.BitlineFactor
}

// Write returns the energy of writing `words` words.
func (m *Model) Write(words int) float64 {
	return (m.fixed() + m.accessBits(words)*m.perBit()*m.BitlineFactor) * writeFactor
}

// FoldEnergy is the CPPC register-update cost per fold: a barrel shift
// plus a word-wide XOR into R1 or R2 (Secs. 4.8-4.9). granuleWords is the
// register width.
func FoldEnergy(granuleWords int) float64 {
	return float64(granuleWords) * (barrelShiftPJPerWord + 64*xorGatePJ)
}

// AccessTimeNs estimates the array access time, for the Sec. 4.8
// critical-path argument. CACTI 5.3 reports 0.78ns for an 8KB
// direct-mapped cache at 90nm; scaled to 32nm and grown with capacity.
func (m *Model) AccessTimeNs() float64 {
	sizeKB := float64(m.Cfg.SizeBytes) / 1024
	base := 0.78 * 32 / 90 // 8KB at 32nm
	return base * (1 + 0.25*math.Log2(sizeKB/8+1))
}

// BarrelShifterDelayNs is the Sec. 4.8 rotate delay: under 0.4ns for 32
// bits at 90nm; a byte-granular 64-bit rotator at 32nm is faster still
// (3 mux stages instead of 6).
func BarrelShifterDelayNs() float64 { return 0.4 * 32 / 90 * 0.5 * 2 }

// Report is the counted dynamic energy of one run (the Fig. 11/12
// methodology: read hits, write hits and read-before-write operations;
// write-backs are not counted).
type Report struct {
	ReadPJ  float64
	WritePJ float64
	RBWPJ   float64
	FoldPJ  float64
}

// Total sums the components.
func (r Report) Total() float64 { return r.ReadPJ + r.WritePJ + r.RBWPJ + r.FoldPJ }

// Add accumulates another report component-wise (summing the per-L1
// reports of a multiprocessor into one L1-level total).
func (r *Report) Add(o Report) {
	r.ReadPJ += o.ReadPJ
	r.WritePJ += o.WritePJ
	r.RBWPJ += o.RBWPJ
	r.FoldPJ += o.FoldPJ
}

// Ratio is the figure normalization: this report's total over base's
// (e.g. CPPC over parity-1d). Both reports must be counted over the same
// measurement window; NaN when base is empty — an empty base means the
// window counted nothing to normalize against, and +Inf would silently
// survive into averages where NaN visibly poisons them.
func (r Report) Ratio(base Report) float64 {
	if base.Total() == 0 {
		return math.NaN()
	}
	return r.Total() / base.Total()
}

// Count applies the model to a run's cache statistics. accessWords is the
// width of a demand access in words (1 for an L1 fed by a processor,
// block words for an L2 fed by cache traffic); folds is the CPPC register
// update count (0 for other schemes). stats and folds must cover the same
// measurement window — resetting one at a warmup boundary but not the
// other skews every ratio built from the report.
func Count(st cache.Stats, m *Model, accessWords int, folds uint64) Report {
	return CountElided(st, m, accessWords, folds, 0)
}

// CountElided is Count for schemes that elide silent stores: elided is
// the number of store hits whose data-array write was skipped because the
// stored value equaled the resident one (detected for free on the
// incremental check-bit path). Each elided store keeps its
// read-before-write energy — the old value was still read to detect the
// silence — but pays no array write, and its skipped folds are already
// absent from the folds counter.
func CountElided(st cache.Stats, m *Model, accessWords int, folds, elided uint64) Report {
	var r Report
	if elided > st.StoreHits {
		elided = st.StoreHits // counters from mismatched windows; don't go negative
	}
	r.ReadPJ = float64(st.LoadHits) * m.Read(accessWords)
	r.WritePJ = float64(st.StoreHits-elided) * m.Write(accessWords)
	// Read-before-writes: word-wide except the whole-line victim reads
	// two-dimensional parity performs on miss fills.
	wordRBW := st.ReadBeforeWrite - st.RBWOnMissLines
	r.RBWPJ = float64(wordRBW)*m.Read(accessWords) +
		float64(st.RBWOnMissLines)*m.Read(m.Cfg.BlockWords())
	r.FoldPJ = float64(folds) * FoldEnergy(m.Cfg.DirtyGranuleWords)
	return r
}
