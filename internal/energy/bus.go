package energy

// This file prices the Sec. 7 multiprocessor's bus/directory: the
// analytical counterpart of the per-cache Model, so the multicore sweeps
// can report total energy rather than proxying it through the
// read-before-write ratio. The decomposition follows the same style as
// the cache model: a fixed per-transaction part (arbitration, address
// phase, directory lookup) plus a data part that scales with the words
// moved over the bus segment.

import "cppc/internal/coherence"

// Technology constants (32nm, same calibration base as the cache model).
const (
	// busDirLookupPJ is one bus transaction's fixed cost: arbitration,
	// driving the address phase, and the directory/tag lookup next to the
	// shared L2 — sized like a small tag array access.
	busDirLookupPJ = 6.0
	// busWirePJPerWord is one 64-bit word driven over the bus segment
	// between an L1 and the shared L2. Long wires at full swing cost more
	// than a bitline pair; calibrated so moving a 4-word block (~7 pJ)
	// sits between an L1 access and an L2 access.
	busWirePJPerWord = 1.8
	// busInvalidatePJ is the per-copy cost of killing a remote sharer: a
	// snoop tag lookup in the victim L1 plus the acknowledgement wire.
	busInvalidatePJ = 1.2
)

// BusModel prices the protocol events of the bus/directory.
type BusModel struct {
	// BlockWords is the 64-bit words moved by one data transfer (an L1
	// block: a fill toward the requester or an owner-flush write-back).
	BlockWords int
}

// NewBus builds the bus model for a hierarchy with the given L1 block
// size in words.
func NewBus(blockWords int) *BusModel {
	if blockWords < 1 {
		blockWords = 1
	}
	return &BusModel{BlockWords: blockWords}
}

// Transaction is the fixed cost of one address-phase transaction
// (BusRead or BusReadX).
func (bm *BusModel) Transaction() float64 { return busDirLookupPJ }

// Transfer is the cost of moving one block of data over the bus.
func (bm *BusModel) Transfer() float64 { return float64(bm.BlockWords) * busWirePJPerWord }

// Invalidate is the per-copy cost of killing a remote sharer.
func (bm *BusModel) Invalidate() float64 { return busInvalidatePJ }

// CountCoherence applies the bus model to a run's protocol statistics.
// The Report's fields are used by role:
//
//   - ReadPJ: BusReads — address phase plus the block transfer toward
//     the requester;
//   - WritePJ: BusReadX address phases plus the per-copy invalidation
//     acks (ownership claims move no data themselves; the requester's
//     fill is counted by its own BusRead or L2 access);
//   - RBWPJ: owner flushes and owner-writeback invalidations — the
//     block-sized write-back transfers a remote Modified copy performs
//     before the requester may proceed (the bus fabric's analogue of a
//     read-before-write);
//   - FoldPJ: zero (registers live in the cache models).
//
// stats must cover the same measurement window as the cache reports the
// total is summed with.
func CountCoherence(st coherence.Stats, bm *BusModel) Report {
	var r Report
	r.ReadPJ = float64(st.BusReads) * (bm.Transaction() + bm.Transfer())
	r.WritePJ = float64(st.BusReadX)*bm.Transaction() +
		float64(st.Invalidations)*bm.Invalidate()
	r.RBWPJ = float64(st.OwnerFlushes+st.OwnerWritebackInvalidations) *
		(bm.Transaction() + bm.Transfer())
	return r
}
