package fault

import (
	"context"

	"cppc/internal/cache"
	"cppc/internal/protect"
)

// Monte-Carlo lifetime testing, in the spirit of the PARMA methodology
// [22] the paper's Sec. 6.3 model comes from: faults arrive as a Poisson
// process over the valid bits of a running cache (at an accelerated rate,
// so failures happen in simulable time), and the time to the first DUE or
// SDC is measured. Comparing the measured mean against the analytical
// double-fault model evaluated at the same accelerated rate validates the
// Table 3 mathematics end to end — detection-on-access, the Tavg
// vulnerability window, domain partitioning and all.

// MCResult summarizes a lifetime campaign. Times are in accesses (the
// simulation's clock).
type MCResult struct {
	Trials   int
	DUEs     int
	SDCs     int
	Censored int // trials that outlived the horizon

	// FaultsInjected counts every bit actually flipped across all trials;
	// with the failure counts it yields a measured per-fault lethality —
	// the empirical counterpart of the AVF the paper assumes (70%).
	FaultsInjected int

	MeanAccessesToFailure float64
	MeanDirtyBits         float64
	MeanTavgAccesses      float64
}

// MeasuredLethality is the fraction of injected faults that ended a
// trial: failures / faults. For detection-only parity this estimates the
// probability that a random strike lands in live dirty data — the paper's
// AVF knob, measured instead of assumed.
func (r MCResult) MeasuredLethality() float64 {
	if r.FaultsInjected == 0 {
		return 0
	}
	return float64(r.DUEs+r.SDCs) / float64(r.FaultsInjected)
}

// MonteCarloMTTF runs `trials` independent lifetimes under fault rate
// lambda (faults per bit per access) with a horizon of maxAccesses.
func MonteCarloMTTF(mk SchemeFactory, lambda float64, trials, maxAccesses int, seed int64) MCResult {
	res, _ := MonteCarloMTTFCtx(context.Background(), mk, lambda, trials, maxAccesses, seed)
	return res
}

// cancelPollAccesses is how often the trial loop polls its context.
const cancelPollAccesses = 8192

// mcTrial is one lifetime's contribution to the campaign reduction:
// what the trial-order replay in MonteCarloMTTFCtx accumulates.
type mcTrial struct {
	due, sdc, censored bool
	faultsInjected     int
	life               int
	dirtyBits          float64
	tavg               float64
}

// MonteCarloMTTFCtx is MonteCarloMTTF with cooperative cancellation (the
// context is polled between trials and every few thousand accesses
// inside a trial, so long campaigns abort promptly; on cancellation the
// partial campaign is discarded and the context's error returned) and
// trial parallelism up to the context's worker hint. Trial i draws from
// stream seed+i whatever the worker count, and the lifetime/dirty/Tavg
// float accumulators replay in trial order after the barrier, so the
// result is bit-identical to the sequential loop's.
func MonteCarloMTTFCtx(ctx context.Context, mk SchemeFactory, lambda float64, trials, maxAccesses int, seed int64) (MCResult, error) {
	perTrial, err := runTrials(ctx, trials, func(tctx context.Context, a *Arena, trial int) (mcTrial, error) {
		return a.mcTrial(tctx, mk, lambda, maxAccesses, seed+int64(trial))
	})
	if err != nil {
		return MCResult{}, err
	}
	var res MCResult
	res.Trials = trials
	var totalLife, totalDirty, totalTavg float64
	for _, t := range perTrial {
		switch {
		case t.due:
			res.DUEs++
		case t.sdc:
			res.SDCs++
		case t.censored:
			res.Censored++
		}
		res.FaultsInjected += t.faultsInjected
		totalLife += float64(t.life)
		totalDirty += t.dirtyBits
		totalTavg += t.tavg
	}
	res.MeanAccessesToFailure = totalLife / float64(trials)
	res.MeanDirtyBits = totalDirty / float64(trials)
	res.MeanTavgAccesses = totalTavg / float64(trials)
	return res, nil
}

// mcTrial runs one accelerated-rate lifetime on the arena: the rng is
// reseeded in place and the golden map cleared rather than reallocated,
// while the cache and controller are built fresh (from the pooled
// construction arrays) exactly as the sequential code built them.
func (a *Arena) mcTrial(ctx context.Context, mk SchemeFactory, lambda float64, maxAccesses int, seed int64) (mcTrial, error) {
	a.rng.Seed(seed)
	rng := &a.rng
	ccfg := campaignCacheConfig()
	c := cache.New(ccfg)
	defer c.Release()
	if a.mem == nil {
		a.mem = cache.NewMemory(32, 100)
	} else {
		a.mem.Reset()
	}
	ct := protect.NewController(c, mk(c), a.mem)
	ct.SetSampleInterval(64)
	if a.golden == nil {
		a.golden = make(map[uint64]uint64)
	} else {
		clear(a.golden)
	}
	golden := a.golden

	totalBits := float64(ccfg.TotalBits())
	pFault := lambda * totalBits // expected faults per access (kept << 1)

	var t mcTrial
	t.life = maxAccesses
	var now uint64
	failed := false
	for i := 0; i < maxAccesses && !failed; i++ {
		if i%cancelPollAccesses == 0 {
			if err := ctx.Err(); err != nil {
				return mcTrial{}, err
			}
		}
		now++
		// Fault arrivals.
		for pFault > 0 && rng.Float64() < pFault {
			addr := uint64(rng.Intn(8192/8)) * 8
			if set, way := c.Probe(addr); way >= 0 {
				_, _, word := c.Decompose(addr)
				c.FlipBits(set, way, word, 1<<uint(rng.Intn(64)))
				t.faultsInjected++
			}
			break // at most one per access at these rates
		}
		// Workload.
		addr := uint64(rng.Intn(8192/8)) * 8
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			golden[addr] = v
			ct.Store(addr, v, now)
		} else {
			r := ct.Load(addr, now)
			if want, ok := golden[addr]; ok && r.Value != want && !ct.Halted {
				t.sdc = true
				t.life = i
				failed = true
			}
		}
		if ct.Halted {
			t.due = true
			t.life = i
			failed = true
		}
	}
	t.censored = !failed
	t.dirtyBits = float64(c.DirtyGranuleCount()) * 64
	t.tavg = c.Tavg()
	return t, nil
}

// AnalyticParityMTTFAccesses is the first-fault model in access units:
// 1 / (lambda * dirtyBits), with AVF = 1 (the campaign counts every
// failure).
func AnalyticParityMTTFAccesses(lambda, dirtyBits float64) float64 {
	return 1 / (lambda * dirtyBits)
}

// AnalyticDoubleFaultMTTFAccesses is the Table 3 double-fault model in
// access units: per interval Tavg, each of `domains` domains fails with
// probability (lambda*Nd*Tavg)^2/2.
func AnalyticDoubleFaultMTTFAccesses(lambda, dirtyBits, tavg float64, domains int) float64 {
	nd := dirtyBits / float64(domains)
	mu := lambda * nd * tavg
	p := float64(domains) * mu * mu / 2
	return tavg / p
}
