package fault

import (
	"context"

	"cppc/internal/cache"
	"cppc/internal/lfrng"
	"cppc/internal/protect"
)

// Monte-Carlo lifetime testing, in the spirit of the PARMA methodology
// [22] the paper's Sec. 6.3 model comes from: faults arrive as a Poisson
// process over the valid bits of a running cache (at an accelerated rate,
// so failures happen in simulable time), and the time to the first DUE or
// SDC is measured. Comparing the measured mean against the analytical
// double-fault model evaluated at the same accelerated rate validates the
// Table 3 mathematics end to end — detection-on-access, the Tavg
// vulnerability window, domain partitioning and all.

// MCResult summarizes a lifetime campaign. Times are in accesses (the
// simulation's clock).
type MCResult struct {
	Trials   int
	DUEs     int
	SDCs     int
	Censored int // trials that outlived the horizon

	// FaultsInjected counts every bit actually flipped across all trials;
	// with the failure counts it yields a measured per-fault lethality —
	// the empirical counterpart of the AVF the paper assumes (70%).
	FaultsInjected int

	MeanAccessesToFailure float64
	MeanDirtyBits         float64
	MeanTavgAccesses      float64
}

// MeasuredLethality is the fraction of injected faults that ended a
// trial: failures / faults. For detection-only parity this estimates the
// probability that a random strike lands in live dirty data — the paper's
// AVF knob, measured instead of assumed.
func (r MCResult) MeasuredLethality() float64 {
	if r.FaultsInjected == 0 {
		return 0
	}
	return float64(r.DUEs+r.SDCs) / float64(r.FaultsInjected)
}

// MonteCarloMTTF runs `trials` independent lifetimes under fault rate
// lambda (faults per bit per access) with a horizon of maxAccesses.
func MonteCarloMTTF(mk SchemeFactory, lambda float64, trials, maxAccesses int, seed int64) MCResult {
	res, _ := MonteCarloMTTFCtx(context.Background(), mk, lambda, trials, maxAccesses, seed)
	return res
}

// cancelPollAccesses is how often the trial loop polls its context.
const cancelPollAccesses = 8192

// MonteCarloMTTFCtx is MonteCarloMTTF with cooperative cancellation: the
// context is polled between trials and every few thousand accesses inside
// a trial, so long campaigns abort promptly. On cancellation the partial
// campaign is discarded and the context's error returned.
func MonteCarloMTTFCtx(ctx context.Context, mk SchemeFactory, lambda float64, trials, maxAccesses int, seed int64) (MCResult, error) {
	var res MCResult
	res.Trials = trials
	var totalLife, totalDirty, totalTavg float64
	for trial := 0; trial < trials; trial++ {
		if err := ctx.Err(); err != nil {
			return MCResult{}, err
		}
		rng := lfrng.New(seed + int64(trial))
		ccfg := campaignCacheConfig()
		c := cache.New(ccfg)
		mem := cache.NewMemory(32, 100)
		ct := protect.NewController(c, mk(c), mem)
		ct.SetSampleInterval(64)
		golden := map[uint64]uint64{}

		totalBits := float64(ccfg.TotalBits())
		pFault := lambda * totalBits // expected faults per access (kept << 1)

		life := maxAccesses
		var now uint64
		failed := false
		for i := 0; i < maxAccesses && !failed; i++ {
			if i%cancelPollAccesses == 0 {
				if err := ctx.Err(); err != nil {
					return MCResult{}, err
				}
			}
			now++
			// Fault arrivals.
			for pFault > 0 && rng.Float64() < pFault {
				addr := uint64(rng.Intn(8192/8)) * 8
				if set, way := c.Probe(addr); way >= 0 {
					_, _, word := c.Decompose(addr)
					c.FlipBits(set, way, word, 1<<uint(rng.Intn(64)))
					res.FaultsInjected++
				}
				break // at most one per access at these rates
			}
			// Workload.
			addr := uint64(rng.Intn(8192/8)) * 8
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				golden[addr] = v
				ct.Store(addr, v, now)
			} else {
				r := ct.Load(addr, now)
				if want, ok := golden[addr]; ok && r.Value != want && !ct.Halted {
					res.SDCs++
					life = i
					failed = true
				}
			}
			if ct.Halted {
				res.DUEs++
				life = i
				failed = true
			}
		}
		if !failed {
			res.Censored++
		}
		totalLife += float64(life)
		totalDirty += float64(c.DirtyGranuleCount()) * 64
		totalTavg += c.Tavg()
	}
	res.MeanAccessesToFailure = totalLife / float64(trials)
	res.MeanDirtyBits = totalDirty / float64(trials)
	res.MeanTavgAccesses = totalTavg / float64(trials)
	return res, nil
}

// AnalyticParityMTTFAccesses is the first-fault model in access units:
// 1 / (lambda * dirtyBits), with AVF = 1 (the campaign counts every
// failure).
func AnalyticParityMTTFAccesses(lambda, dirtyBits float64) float64 {
	return 1 / (lambda * dirtyBits)
}

// AnalyticDoubleFaultMTTFAccesses is the Table 3 double-fault model in
// access units: per interval Tavg, each of `domains` domains fails with
// probability (lambda*Nd*Tavg)^2/2.
func AnalyticDoubleFaultMTTFAccesses(lambda, dirtyBits, tavg float64, domains int) float64 {
	nd := dirtyBits / float64(domains)
	mu := lambda * nd * tavg
	p := float64(domains) * mu * mu / 2
	return tavg / p
}
