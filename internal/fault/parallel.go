package fault

// The deterministic trial executor. Every campaign runner in this
// package — spatial, temporal, fault-model and Monte-Carlo MTTF — is a
// loop of embarrassingly parallel trials: trial i draws every random
// decision from its own lagged-Fibonacci stream seeded seed+i, so
// trials share no state whatsoever. The executor exploits exactly that
// and nothing more:
//
//   - workers pull trial indices off a shared atomic counter;
//   - each trial runs on its own stream exactly as the sequential loop
//     ran it, inside a per-worker reusable simulator *arena*;
//   - per-trial results land in an index-addressed slice;
//   - the caller replays its reduction (additive Counts, the MTTF
//     float accumulators) in trial order after the barrier.
//
// Because assignment of trials to workers affects neither a trial's
// stream nor the reduction order, a campaign's output is bit-identical
// at any worker count — workers ∈ {1, N} are pinned against each other
// and against the pre-executor sequential code by the parallel_test.go
// matrix, the same way TestShardedSuiteByteIdentical pins the daemon's
// sharding.
//
// The worker budget rides on the context (internal/par): the daemon's
// scheduler sizes it from idle pool workers — the same transient facts
// that size Cluster.SetWorkers — and the standalone drivers size it
// from their -parallel flags. It is a wall-clock knob only, never part
// of a cell's identity or cache key.

import (
	"context"
	"sync"
	"sync/atomic"

	"cppc/internal/cache"
	"cppc/internal/lfrng"
	"cppc/internal/par"
	"cppc/internal/protect"
)

// Arena is one worker's reusable simulator: the campaign shell (rng,
// shadow map, probe scratch), the golden backing memory, and the
// Monte-Carlo trial state. Each trial still constructs its cache and
// controller fresh — cache.New recycles backing arrays through the
// Release() pool, so construction is cheap and the state-carrying parts
// (scheme registers, check bits, the fault plane) can never leak
// between trials — while everything that is safe to reuse is reset in
// place rather than reallocated.
type Arena struct {
	camp   Campaign
	mem    *cache.Memory
	rng    lfrng.Rand        // Monte-Carlo trial stream (reseeded per trial)
	golden map[uint64]uint64 // Monte-Carlo golden values (cleared per trial)
}

// arenaPool recycles arenas across campaigns, so repeated short cells
// (the fieldmc grid runs 144 of them) reuse the same maps and rng state
// blocks instead of growing fresh ones per cell.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// newCampaign builds one trial's protected cache on the arena and
// resets the campaign shell around it. The (32, 100) memory geometry is
// the one every campaign in this package uses.
func (a *Arena) newCampaign(ccfg cache.Config, mk SchemeFactory, seed int64) *Campaign {
	c := cache.New(ccfg)
	if a.mem == nil {
		a.mem = cache.NewMemory(32, 100)
	} else {
		a.mem.Reset()
	}
	ct := protect.NewController(c, mk(c), a.mem)
	a.camp.Reset(ct, a.mem, seed)
	return &a.camp
}

// endTrial recycles the trial's cache arrays (and its armed fault
// plane, if any) back into the construction pools.
func (a *Arena) endTrial() {
	if a.camp.Ct != nil {
		a.camp.Ct.C.Release()
		a.camp.Ct = nil
	}
}

// Campaign fan-out observability (surfaced as /metrics gauges next to
// the cells_* family): trialsExecuted counts every completed campaign
// trial in the process, trialWorkers the currently active executor
// workers (a sequential campaign counts one).
var (
	trialsExecuted atomic.Int64
	trialWorkers   atomic.Int64
)

// TrialsExecuted is the process-wide number of campaign trials
// completed since startup.
func TrialsExecuted() int64 { return trialsExecuted.Load() }

// TrialWorkers is the number of currently active campaign trial
// workers.
func TrialWorkers() int64 { return trialWorkers.Load() }

// runTrials executes trials 0..trials-1 through `run`, fanning across
// up to par.Workers(ctx) goroutines, and returns the index-addressed
// results. Each worker owns one pooled Arena for the life of the
// campaign. Cancellation is polled between trials here and inside long
// trials by `run` itself (the Monte-Carlo loop polls every
// cancelPollAccesses accesses); the first error cancels the remaining
// workers, the barrier waits for them to drain, and that first error is
// returned.
func runTrials[T any](ctx context.Context, trials int, run func(ctx context.Context, a *Arena, trial int) (T, error)) ([]T, error) {
	workers := par.Workers(ctx)
	if workers > trials {
		workers = trials
	}
	out := make([]T, trials)
	if workers <= 1 {
		a := arenaPool.Get().(*Arena)
		defer arenaPool.Put(a)
		trialWorkers.Add(1)
		defer trialWorkers.Add(-1)
		for i := 0; i < trials; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := run(ctx, a, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
			trialsExecuted.Add(1)
		}
		return out, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	trialWorkers.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer trialWorkers.Add(-1)
			a := arenaPool.Get().(*Arena)
			defer arenaPool.Put(a)
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				if err := wctx.Err(); err != nil {
					fail(err)
					return
				}
				v, err := run(wctx, a, i)
				if err != nil {
					fail(err)
					return
				}
				out[i] = v
				trialsExecuted.Add(1)
			}
		}()
	}
	wg.Wait() // the barrier: no worker outlives the campaign
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// note accumulates one trial outcome; campaigns replay it in trial
// order over the executor's index-addressed results (the additive
// reduction is order-free, but replaying in order keeps the rule
// uniform with the float accumulators of the MTTF campaign).
func (c *Counts) note(o Outcome) {
	switch o {
	case Corrected:
		c.Corrected++
	case DUE:
		c.DUE++
	case SDC:
		c.SDC++
	}
}
