package fault

import (
	"context"
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/geometry"
)

// The FaultModel seam. The original campaigns modelled every fault the
// same way: flip bits once, probe once — a transient SEU. The DDR4
// field study and HARP (PAPERS.md) show fielded parts are dominated by
// permanent and intermittent faults with row/column/bank-correlated
// footprints, so a fault here is a *footprint* (where the bits land on
// the physical array) crossed with a *lifetime* (what the cells do
// afterwards):
//
//	Transient:    the classic SEU — stored bits flip once.
//	Intermittent: the cells flicker — every time the array is consulted
//	              they flip again with probability Reassert.
//	StuckAt:      the cells are dead — they read back a fixed value no
//	              matter what correction or refetch wrote over them.
//
// Persistent lifetimes are armed on the cache's fault plane
// (cache/plane.go), which the protect controller consults on every
// read path. That is what separates the schemes: a correction that
// succeeds once is not enough — the plane re-asserts the fault on the
// next access, so only schemes that correct on every consult keep a
// workload running over a stuck cell.

// Lifetime classifies what a fault's cells do after the initial upset.
type Lifetime int

const (
	// Transient: flip once; the stored value is wrong until repaired.
	Transient Lifetime = iota
	// Intermittent: flip again on each array consult with probability
	// Model.Reassert.
	Intermittent
	// StuckAt: the cells read back a fixed value on every consult.
	StuckAt
)

func (l Lifetime) String() string {
	switch l {
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	case StuckAt:
		return "stuck"
	}
	return "unknown"
}

// ParseLifetime is the inverse of Lifetime.String.
func ParseLifetime(s string) (Lifetime, error) {
	switch s {
	case "transient":
		return Transient, nil
	case "intermittent":
		return Intermittent, nil
	case "stuck":
		return StuckAt, nil
	}
	return 0, fmt.Errorf("fault: unknown lifetime %q", s)
}

// Footprint classifies where a fault's bits land on the physical array,
// following the field-study correlation classes.
type Footprint int

const (
	// FootWord: a single bit — the uncorrelated baseline.
	FootWord Footprint = iota
	// FootRow: a horizontal burst along one physical row (a failing
	// wordline); the default span is the whole row.
	FootRow
	// FootColumn: a vertical run of single bits down one bit column (a
	// failing bitline); the default span is the whole column.
	FootColumn
	// FootBank: a square region — bank-correlated damage; the default
	// span is 8x8, the largest square the paper's spatial study covers.
	FootBank
)

func (f Footprint) String() string {
	switch f {
	case FootWord:
		return "word"
	case FootRow:
		return "row"
	case FootColumn:
		return "col"
	case FootBank:
		return "bank"
	}
	return "unknown"
}

// ParseFootprint is the inverse of Footprint.String.
func ParseFootprint(s string) (Footprint, error) {
	switch s {
	case "word":
		return FootWord, nil
	case "row":
		return FootRow, nil
	case "col":
		return FootColumn, nil
	case "bank":
		return FootBank, nil
	}
	return 0, fmt.Errorf("fault: unknown footprint %q", s)
}

// Model is one fault class: a spatial footprint plus a lifetime.
type Model struct {
	Foot Footprint
	Life Lifetime

	// Reassert is the per-consult flip probability of Intermittent
	// faults; ignored for the other lifetimes. Zero selects the default.
	Reassert float64

	// Span overrides the footprint extent: bits along the row for
	// FootRow, rows for FootColumn, the square side for FootBank.
	// Zero selects the class default. Ignored for FootWord.
	Span int
}

// DefaultReassert is the intermittent flip probability when
// Model.Reassert is zero: high enough that a flickering cell asserts
// several times over a campaign's exercise window.
const DefaultReassert = 0.2

func (m Model) String() string {
	if m.Life == Intermittent {
		return fmt.Sprintf("%s/%s(p=%g)", m.Foot, m.Life, m.reassert())
	}
	return fmt.Sprintf("%s/%s", m.Foot, m.Life)
}

func (m Model) reassert() float64 {
	if m.Reassert > 0 {
		return m.Reassert
	}
	return DefaultReassert
}

// shape is the footprint's extent on a concrete array geometry.
func (m Model) shape(geom geometry.Layout) (h, w int) {
	switch m.Foot {
	case FootRow:
		w = geom.RowBits()
		if m.Span > 0 && m.Span < w {
			w = m.Span
		}
		return 1, w
	case FootColumn:
		h = geom.Rows()
		if m.Span > 0 && m.Span < h {
			h = m.Span
		}
		return h, 1
	case FootBank:
		side := 8
		if m.Span > 0 {
			side = m.Span
		}
		if side > geom.Rows() {
			side = geom.Rows()
		}
		if side > geom.RowBits() {
			side = geom.RowBits()
		}
		return side, side
	default: // FootWord
		return 1, 1
	}
}

// InjectModel places one instance of the model at a random anchor.
// Transient instances flip stored bits and are done; Intermittent and
// StuckAt instances additionally arm the cache's fault plane so the
// fault re-asserts on later array consults (arming the plane lazily on
// first use). The return value counts the bits flipped by the initial
// assert — persistent instances are live even when it is zero.
func (c *Campaign) InjectModel(m Model) int {
	geom := c.Ct.C.Geom
	h, w := m.shape(geom)
	f := geometry.SpatialFault{
		Row:    c.rng.Intn(geom.Rows() - h + 1),
		BitCol: c.rng.Intn(geom.RowBits() - w + 1),
		Height: h,
		Width:  w,
	}
	if m.Life == Transient {
		return c.InjectSpatialAt(f)
	}
	if !c.Ct.C.PlaneArmed() {
		// Decouple the plane's coin from the workload stream so arming
		// never perturbs the populate/exercise draws.
		c.Ct.C.ArmPlane(int64(c.rng.Uint64()))
	}
	flipped := 0
	for _, fl := range geom.Flips(f) {
		switch m.Life {
		case StuckAt:
			// Each masked bit sticks at a random level (stuck-at-0 or
			// stuck-at-1 per bit), as in the field studies: the fault
			// manifests only when the stored value disagrees.
			stuck := c.rng.Uint64() & fl.Mask
			c.Ct.C.AddStuckFault(fl.Set, fl.Way, fl.Word, fl.Mask, stuck)
			if ln := c.Ct.C.Line(fl.Set, fl.Way); ln.Valid {
				old := ln.Data[fl.Word]
				ln.Data[fl.Word] = old&^fl.Mask | stuck
				flipped += popcount((old ^ ln.Data[fl.Word]) & fl.Mask)
			}
		case Intermittent:
			c.Ct.C.AddIntermittentFault(fl.Set, fl.Way, fl.Word, fl.Mask, m.reassert())
			// The injection event itself is the first assert.
			if c.Ct.C.Line(fl.Set, fl.Way).Valid {
				c.Ct.C.FlipBits(fl.Set, fl.Way, fl.Word, fl.Mask)
				flipped += popcount(fl.Mask)
			}
		}
	}
	return flipped
}

// exerciseAccesses is the checked-workload window each model trial runs
// after (and interleaved with) injection — long enough for persistent
// faults to re-assert many times and for stores to land on stuck cells.
const exerciseAccesses = 4000

// Exercise runs n checked workload accesses over footprintBytes,
// injecting one instance of the model at `faults` evenly spaced points.
// Loads are compared against the golden shadow as they complete, so a
// silently wrong value returned mid-workload is an SDC even if a later
// refetch repairs the stored copy. It reports the first failure, or
// (Corrected, false) if the window survives — the caller still probes.
func (c *Campaign) Exercise(m Model, faults, n, footprintBytes int) (Outcome, bool) {
	words := footprintBytes / 8
	injected := 0
	for i := 0; i < n; i++ {
		for injected < faults && i >= (injected+1)*n/(faults+1) {
			c.InjectModel(m)
			injected++
		}
		c.now++
		addr := uint64(c.rng.Intn(words)) * 8
		if c.rng.Intn(2) == 0 {
			v := c.rng.Uint64()
			c.shadow[addr] = v
			c.Ct.Store(addr, v, c.now)
		} else {
			res := c.Ct.Load(addr, c.now)
			if !c.Ct.Halted && res.Value != c.expected(addr) {
				return SDC, true
			}
		}
		if c.Ct.Halted {
			return DUE, true
		}
	}
	return Corrected, false
}

// RunModelTrials runs `trials` independent lifetimes of a fault model:
// populate, then a checked exercise window with `faults` injections,
// then a full probe sweep.
func RunModelTrials(mk SchemeFactory, m Model, faults, trials int, seed int64) Counts {
	out, _ := RunModelTrialsCtx(context.Background(), campaignCacheConfig(), mk, m, faults, trials, seed)
	return out
}

// RunModelTrialsCtx is RunModelTrials over an explicit layout with
// cooperative cancellation (polled between trials) and trial
// parallelism up to the context's worker hint (par.WithWorkers /
// experiments.WithCellWorkers). Trial i runs on stream seed+i whatever
// the worker count, so the counts are bit-identical to the sequential
// loop's.
func RunModelTrialsCtx(ctx context.Context, ccfg cache.Config, mk SchemeFactory, m Model, faults, trials int, seed int64) (Counts, error) {
	res, err := runTrials(ctx, trials, func(_ context.Context, a *Arena, i int) (Outcome, error) {
		camp := a.newCampaign(ccfg, mk, seed+int64(i))
		defer a.endTrial()
		camp.Populate(4000, 8192)
		outcome, failed := camp.Exercise(m, faults, exerciseAccesses, 8192)
		if !failed {
			outcome = camp.Probe()
		}
		return outcome, nil
	})
	if err != nil {
		return Counts{}, err
	}
	var out Counts
	for _, o := range res {
		out.note(o)
	}
	return out, nil
}
