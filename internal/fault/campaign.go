// Package fault implements fault-injection campaigns against protected
// caches: temporal single/multi-bit upsets and spatial NxM multi-bit
// upsets placed on the physical array geometry. Outcomes are classified
// by golden comparison — every resident word is read back through the
// protection scheme and checked against what the program actually wrote:
//
//	Corrected: every value reads back right and no machine check fired
//	DUE:       the scheme detected a fault it could not repair (halt)
//	SDC:       a wrong value was returned silently — the worst case
//
// The campaigns cross-check the paper's analytical coverage claims: which
// spatial squares each CPPC configuration corrects (Secs. 4.6, 4.11), how
// the baselines fail, and the Sec. 4.7 aliasing miscorrection.
package fault

import (
	"cppc/internal/cache"
	"cppc/internal/geometry"
	"cppc/internal/lfrng"
	"cppc/internal/protect"
)

// Outcome classifies one injection trial.
type Outcome int

const (
	// Corrected: all data intact after the probe sweep (repaired, or the
	// fault was benign).
	Corrected Outcome = iota
	// DUE: detected unrecoverable error — the machine checked.
	DUE
	// SDC: silent data corruption — a load returned a wrong value.
	SDC
)

func (o Outcome) String() string {
	switch o {
	case Corrected:
		return "corrected"
	case DUE:
		return "DUE"
	case SDC:
		return "SDC"
	}
	return "unknown"
}

// Campaign drives one protected cache with a synthetic workload, injects
// faults, and classifies the result.
type Campaign struct {
	Ct     *protect.Controller
	Mem    *cache.Memory
	rng    *lfrng.Rand
	shadow map[uint64]uint64 // golden values of every word the program wrote
	now    uint64

	probeAddrs []uint64 // Probe's sweep scratch, reused across trials
}

// New builds a campaign around a controller and its backing memory. The
// workload and placement stream comes from the repo's lagged-Fibonacci
// generator (internal/lfrng), so campaign cells hash identically on
// every toolchain — a requirement for the fleet cell cache.
func New(ct *protect.Controller, mem *cache.Memory, seed int64) *Campaign {
	c := new(Campaign)
	c.Reset(ct, mem, seed)
	return c
}

// Reset re-points a reusable campaign shell at a fresh controller: the
// rng is reseeded in place (its ~5KB state is the single biggest
// per-trial allocation), the shadow map is cleared rather than
// reallocated, and the probe scratch keeps its capacity. A reset shell
// behaves bit-identically to a freshly New'd campaign — the trial
// executor's per-worker arenas rely on this.
func (c *Campaign) Reset(ct *protect.Controller, mem *cache.Memory, seed int64) {
	c.Ct, c.Mem = ct, mem
	if c.rng == nil {
		c.rng = lfrng.New(seed)
	} else {
		c.rng.Seed(seed)
	}
	if c.shadow == nil {
		c.shadow = make(map[uint64]uint64)
	} else {
		clear(c.shadow)
	}
	c.now = 0
}

// Populate issues n random loads and stores over footprintBytes,
// populating the cache with a realistic mix of clean and dirty data.
func (c *Campaign) Populate(n int, footprintBytes int) {
	for i := 0; i < n; i++ {
		c.now++
		addr := uint64(c.rng.Intn(footprintBytes/8)) * 8
		if c.rng.Intn(2) == 0 {
			v := c.rng.Uint64()
			c.shadow[addr] = v
			c.Ct.Store(addr, v, c.now)
		} else {
			c.Ct.Load(addr, c.now)
		}
	}
}

// Store writes through the campaign, keeping the shadow in sync.
func (c *Campaign) Store(addr, v uint64) {
	c.now++
	c.shadow[addr] = v
	c.Ct.Store(addr, v, c.now)
}

// expected is the golden value of a word.
func (c *Campaign) expected(addr uint64) uint64 {
	if v, ok := c.shadow[addr]; ok {
		return v
	}
	return c.Mem.ReadWord(addr)
}

// InjectWord flips mask bits in the stored copy of addr, if resident.
// Reports whether anything was flipped.
func (c *Campaign) InjectWord(addr, mask uint64) bool {
	set, way := c.Ct.C.Probe(addr)
	if way < 0 {
		return false
	}
	_, _, word := c.Ct.C.Decompose(addr)
	c.Ct.C.FlipBits(set, way, word, mask)
	return true
}

// InjectSpatial flips an HxW square anchored at a random location of the
// physical array, restricted to valid lines; it returns the number of
// flipped cells (0 if the placement only hit invalid lines).
func (c *Campaign) InjectSpatial(h, w int) int {
	geom := c.Ct.C.Geom
	row := c.rng.Intn(geom.Rows() - h + 1)
	col := c.rng.Intn(geom.RowBits() - w + 1)
	return c.InjectSpatialAt(geometry.SpatialFault{Row: row, BitCol: col, Height: h, Width: w})
}

// InjectSpatialAt places a specific spatial fault; invalid lines are
// immune (no stored charge to disturb semantics are not modeled — a cell
// in an invalid line simply has no architectural effect, so we skip it).
func (c *Campaign) InjectSpatialAt(f geometry.SpatialFault) int {
	flipped := 0
	for _, fl := range c.Ct.C.Geom.Flips(f) {
		if !c.Ct.C.Line(fl.Set, fl.Way).Valid {
			continue
		}
		c.Ct.C.FlipBits(fl.Set, fl.Way, fl.Word, fl.Mask)
		flipped += popcount(fl.Mask)
	}
	return flipped
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Probe reads back every word of every valid line through the protection
// scheme and classifies the campaign outcome.
func (c *Campaign) Probe() Outcome {
	addrs := c.probeAddrs[:0]
	c.Ct.C.ForEachValid(func(set, way int, ln *cache.Line) {
		base := c.Ct.C.BlockAddr(set, way)
		for w := 0; w < c.Ct.C.Cfg.BlockWords(); w++ {
			addrs = append(addrs, base+uint64(w*8))
		}
	})
	c.probeAddrs = addrs // keep the grown capacity for the next trial
	sdc := false
	for _, a := range addrs {
		c.now++
		res := c.Ct.Load(a, c.now)
		if c.Ct.Halted {
			return DUE
		}
		if res.Value != c.expected(a) {
			sdc = true
		}
	}
	if sdc {
		return SDC
	}
	return Corrected
}
