package fault

import (
	"fmt"
	"testing"

	"cppc/internal/core"
)

// TestMCSeparation prints the lifetime separation between parity and
// CPPC at a few accelerated rates (informational; assertions live in the
// MonteCarlo tests).
func TestMCSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo lifetimes")
	}
	for _, lambda := range []float64{2e-7, 5e-8} {
		par := MonteCarloMTTF(parityFactory(), lambda, 8, 300_000, 41)
		cp := MonteCarloMTTF(cppcFactory(core.DefaultL1Config()), lambda, 8, 300_000, 41)
		t.Log(fmt.Sprintf("lambda=%.0e parity: mean=%.0f cens=%d DUE=%d SDC=%d | cppc: mean=%.0f cens=%d DUE=%d SDC=%d",
			lambda, par.MeanAccessesToFailure, par.Censored, par.DUEs, par.SDCs,
			cp.MeanAccessesToFailure, cp.Censored, cp.DUEs, cp.SDCs))
	}
}
