package fault

import (
	"testing"

	"cppc/internal/core"
)

// TestMonteCarloOrdering: at the same accelerated fault rate,
// detection-only parity dies orders of magnitude sooner than CPPC, and
// CPPC's failures are DUEs/censored, not silent.
func TestMonteCarloOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo lifetimes")
	}
	const lambda = 2e-7 // per bit per access, accelerated
	par := MonteCarloMTTF(parityFactory(), lambda, 10, 60_000, 41)
	cp := MonteCarloMTTF(cppcFactory(core.DefaultL1Config()), lambda, 10, 60_000, 41)

	if par.Censored == par.Trials {
		t.Fatal("parity never failed; raise lambda")
	}
	if cp.MeanAccessesToFailure < 3*par.MeanAccessesToFailure {
		t.Errorf("CPPC lifetime %.0f not well above parity %.0f",
			cp.MeanAccessesToFailure, par.MeanAccessesToFailure)
	}
	if par.SDCs != 0 {
		t.Errorf("parity produced SDCs: %+v", par)
	}
}

// TestMonteCarloMatchesAnalyticParity: the measured parity lifetime must
// sit near the first-fault model evaluated at the same rate and measured
// dirty population.
func TestMonteCarloMatchesAnalyticParity(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo lifetimes")
	}
	const lambda = 4e-7
	res := MonteCarloMTTF(parityFactory(), lambda, 20, 120_000, 43)
	if res.Censored > res.Trials/2 {
		t.Fatalf("too many censored trials: %+v", res)
	}
	analytic := AnalyticParityMTTFAccesses(lambda, res.MeanDirtyBits)
	ratio := res.MeanAccessesToFailure / analytic
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("measured %.0f vs analytic %.0f (ratio %.2f) out of range",
			res.MeanAccessesToFailure, analytic, ratio)
	}
}

// TestMonteCarloCPPCWithinModelRange: the CPPC lifetime should agree with
// the double-fault model within an order of magnitude (the model is
// approximate: it quantizes time into Tavg windows and assumes uniform
// access).
func TestMonteCarloCPPCWithinModelRange(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo lifetimes")
	}
	const lambda = 3e-6 // hot enough that double faults happen in-window
	res := MonteCarloMTTF(cppcFactory(core.DefaultL1Config()), lambda, 15, 150_000, 47)
	if res.Censored == res.Trials {
		t.Skip("no failures at this rate; model comparison impossible")
	}
	if res.MeanTavgAccesses <= 0 || res.MeanDirtyBits <= 0 {
		t.Fatalf("campaign did not measure inputs: %+v", res)
	}
	analytic := AnalyticDoubleFaultMTTFAccesses(
		lambda, res.MeanDirtyBits, res.MeanTavgAccesses, 8 /* 8 parity stripes x 1 pair */)
	ratio := res.MeanAccessesToFailure / analytic
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("measured %.0f vs analytic %.0f (ratio %.2f) out of range",
			res.MeanAccessesToFailure, analytic, ratio)
	}
}

func TestAnalyticHelpers(t *testing.T) {
	if got := AnalyticParityMTTFAccesses(1e-6, 1e4); got != 1e2 {
		t.Errorf("parity analytic = %v", got)
	}
	// Doubling domains doubles the double-fault MTTF.
	a := AnalyticDoubleFaultMTTFAccesses(1e-6, 1e4, 100, 8)
	b := AnalyticDoubleFaultMTTFAccesses(1e-6, 1e4, 100, 16)
	if b/a < 1.99 || b/a > 2.01 {
		t.Errorf("domain scaling = %v", b/a)
	}
}

// TestMeasuredLethality: the measured per-fault lethality under parity
// must be a sane probability, and CPPC's must be far lower (it corrects
// most strikes).
func TestMeasuredLethality(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo lifetimes")
	}
	const lambda = 2e-7
	par := MonteCarloMTTF(parityFactory(), lambda, 10, 120_000, 51)
	cp := MonteCarloMTTF(cppcFactory(core.DefaultL1Config()), lambda, 10, 120_000, 51)
	pl, cl := par.MeasuredLethality(), cp.MeasuredLethality()
	if pl <= 0 || pl > 1 {
		t.Fatalf("parity lethality %.3f out of range (%+v)", pl, par)
	}
	if cl >= pl {
		t.Errorf("CPPC lethality %.3f not below parity %.3f", cl, pl)
	}
}
