package fault

import (
	"context"
	"runtime"
	"testing"
	"time"

	"cppc/internal/core"
	"cppc/internal/par"
)

// The determinism matrix: every campaign kind must produce bit-identical
// results at workers ∈ {1, 8}. The 1-worker run takes the sequential
// fast path in runTrials, so this also pins the parallel executor
// against the sequential semantics the pre-executor code had. Run under
// -race in CI, this doubles as the data-race proof for the arena reuse.

func workersCtx(n int) context.Context {
	return par.WithWorkers(context.Background(), n)
}

func TestSpatialBitIdenticalAcrossWorkers(t *testing.T) {
	mk := cppcFactory(core.DefaultL1Config())
	base, err := RunSpatialTrialsCfgCtx(workersCtx(1), campaignCacheConfig(), mk, 8, 8, 24, 101)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSpatialTrialsCfgCtx(workersCtx(8), campaignCacheConfig(), mk, 8, 8, 24, 101)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("spatial: 8 workers %+v != 1 worker %+v", got, base)
	}
}

func TestTemporalBitIdenticalAcrossWorkers(t *testing.T) {
	base, err := RunTemporalTrialsCtx(workersCtx(1), parityFactory(), 2, 24, 103)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTemporalTrialsCtx(workersCtx(8), parityFactory(), 2, 24, 103)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("temporal: 8 workers %+v != 1 worker %+v", got, base)
	}
}

func TestModelBitIdenticalAcrossWorkers(t *testing.T) {
	// Stuck and intermittent lifetimes arm the fault plane, so this leg
	// also proves the pooled planes carry no state between trials.
	models := []Model{
		{Foot: FootWord, Life: Transient},
		{Foot: FootRow, Life: StuckAt},
		{Foot: FootColumn, Life: Intermittent},
		{Foot: FootBank, Life: StuckAt},
	}
	mk := cppcFactory(core.DefaultL1Config())
	for _, m := range models {
		base, err := RunModelTrialsCtx(workersCtx(1), campaignCacheConfig(), mk, m, 2, 12, 107)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunModelTrialsCtx(workersCtx(8), campaignCacheConfig(), mk, m, 2, 12, 107)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("%s: 8 workers %+v != 1 worker %+v", m, got, base)
		}
	}
}

func TestMTTFBitIdenticalAcrossWorkers(t *testing.T) {
	// MCResult carries float accumulators (mean lifetime, dirty bits,
	// Tavg); the struct compare below demands exact float equality, which
	// only holds because the executor replays its reduction in trial
	// order.
	base, err := MonteCarloMTTFCtx(workersCtx(1), parityFactory(), 2e-5, 12, 30_000, 109)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MonteCarloMTTFCtx(workersCtx(8), parityFactory(), 2e-5, 12, 30_000, 109)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("mttf: 8 workers %+v != 1 worker %+v", got, base)
	}
	if base.DUEs == 0 {
		t.Errorf("campaign too tame to compare anything: %+v", base)
	}
}

func TestTrialGauges(t *testing.T) {
	before := TrialsExecuted()
	if _, err := RunTemporalTrialsCtx(workersCtx(4), parityFactory(), 1, 16, 113); err != nil {
		t.Fatal(err)
	}
	if got := TrialsExecuted() - before; got != 16 {
		t.Errorf("TrialsExecuted advanced by %d, want 16", got)
	}
	if w := TrialWorkers(); w != 0 {
		t.Errorf("TrialWorkers = %d after campaign end, want 0", w)
	}
}

func TestCancellationMidCampaign(t *testing.T) {
	// A long campaign (lambda 0: every trial runs its full horizon) at 8
	// workers, canceled shortly after start: the run must return the
	// context's error promptly — the in-trial poll fires every
	// cancelPollAccesses accesses — and the barrier must drain every
	// worker before MonteCarloMTTFCtx returns.
	ctx, cancel := context.WithCancel(workersCtx(8))
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := MonteCarloMTTFCtx(ctx, parityFactory(), 0, 64, 50_000_000, 127)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Uncanceled, 64 x 50M-access trials would run for minutes; the
	// generous bound still proves the abort was the poll, not the
	// horizon. (-race and a loaded CI box are why it is not tighter.)
	if elapsed > 30*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if w := TrialWorkers(); w != 0 {
		t.Errorf("TrialWorkers = %d after canceled campaign, want 0 (leaked workers)", w)
	}
}

func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunTemporalTrialsCtx(ctx, parityFactory(), 1, 8, 1); err != context.Canceled {
		t.Errorf("sequential path: err = %v, want context.Canceled", err)
	}
	if _, err := RunTemporalTrialsCtx(par.WithWorkers(ctx, 8), parityFactory(), 1, 8, 1); err != context.Canceled {
		t.Errorf("parallel path: err = %v, want context.Canceled", err)
	}
}

func TestWorkersCappedByTrials(t *testing.T) {
	// More workers than trials must not spin up idle goroutines or change
	// results; 3 trials at 64 workers runs 3 workers.
	base, err := RunTemporalTrialsCtx(workersCtx(1), parityFactory(), 1, 3, 131)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTemporalTrialsCtx(workersCtx(64), parityFactory(), 1, 3, 131)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("64 workers over 3 trials %+v != sequential %+v", got, base)
	}
}

func TestTrialParallelSpeedup(t *testing.T) {
	// The wall-clock claim: 8 workers beat 1 on an MTTF campaign. Only
	// meaningful with real cores under the workers, so gate like
	// service's TestShardedSuiteSpeedup.
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("GOMAXPROCS=%d, need 8 cores for a meaningful speedup bound", runtime.GOMAXPROCS(0))
	}
	run := func(workers int) time.Duration {
		start := time.Now()
		if _, err := MonteCarloMTTFCtx(workersCtx(workers), parityFactory(), 0, 16, 300_000, 137); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	seq := run(1)
	pll := run(8)
	if speedup := float64(seq) / float64(pll); speedup < 3 {
		t.Errorf("8-worker speedup = %.2fx (seq %v, parallel %v), want >= 3x", speedup, seq, pll)
	}
}
