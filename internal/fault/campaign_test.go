package fault

import (
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/protect"
)

func cppcFactory(cfg core.Config) SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, cfg) }
}

func parityFactory() SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewParity1D(c, 8) }
}

func secdedFactory() SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewSECDED(c, true) }
}

func twodimFactory() SchemeFactory {
	return func(c *cache.Cache) protect.Scheme { return protect.NewTwoDim(c, 8) }
}

func TestOutcomeStrings(t *testing.T) {
	if Corrected.String() != "corrected" || DUE.String() != "DUE" ||
		SDC.String() != "SDC" || Outcome(9).String() != "unknown" {
		t.Error("outcome strings wrong")
	}
}

func TestNoFaultMeansCorrected(t *testing.T) {
	for _, mk := range []SchemeFactory{parityFactory(), secdedFactory(), twodimFactory(), cppcFactory(core.DefaultL1Config())} {
		c := cache.New(campaignCacheConfig())
		mem := cache.NewMemory(32, 100)
		ct := protect.NewController(c, mk(c), mem)
		camp := New(ct, mem, 1)
		camp.Populate(3000, 8192)
		if got := camp.Probe(); got != Corrected {
			t.Errorf("%s: clean probe = %v", ct.Scheme.Name(), got)
		}
	}
}

func TestSingleBitCoverage(t *testing.T) {
	const trials = 40
	// CPPC corrects every temporal single-bit fault.
	if got := RunTemporalTrials(cppcFactory(core.DefaultL1Config()), 1, trials, 7); got.Corrected != trials {
		t.Errorf("CPPC single-bit: %v", got)
	}
	// SECDED too.
	if got := RunTemporalTrials(secdedFactory(), 1, trials, 7); got.Corrected != trials {
		t.Errorf("SECDED single-bit: %v", got)
	}
	// 1D parity survives only faults in clean data; with a mixed workload
	// a good share must be DUEs and none silent.
	got := RunTemporalTrials(parityFactory(), 1, trials, 7)
	if got.SDC != 0 {
		t.Errorf("parity produced SDC: %v", got)
	}
	if got.DUE == 0 {
		t.Errorf("parity never DUEd on dirty faults: %v", got)
	}
}

func TestSpatialCoverageCPPCOnePair(t *testing.T) {
	// The evaluated L1 CPPC (one pair, byte shifting): everything inside
	// small squares corrects; note 1x1 through 4x4 here for runtime.
	mk := cppcFactory(core.DefaultL1Config())
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {1, 8}, {4, 1}} {
		got := RunSpatialTrials(mk, shape[0], shape[1], 15, 11)
		if got.Corrected != got.Total() {
			t.Errorf("%dx%d: %v", shape[0], shape[1], got)
		}
	}
}

func TestSpatial8x8NeedsTwoPairs(t *testing.T) {
	// Sec. 4.6: full 8x8 squares are not correctable with one pair but are
	// with two.
	one := RunSpatialTrials(cppcFactory(core.DefaultL1Config()), 8, 8, 10, 13)
	if one.DUE == 0 {
		t.Errorf("one pair corrected all 8x8 squares: %v", one)
	}
	if one.SDC != 0 {
		t.Errorf("one pair silently corrupted: %v", one)
	}
	two := RunSpatialTrials(cppcFactory(core.Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true}), 8, 8, 10, 13)
	if two.Corrected != two.Total() {
		t.Errorf("two pairs: %v", two)
	}
}

func TestSpatialEightPairsNoShifting(t *testing.T) {
	// Sec. 4.11: eight pairs without byte shifting correct all 8x8 faults.
	got := RunSpatialTrials(cppcFactory(core.FullCorrectionConfig()), 8, 8, 10, 17)
	if got.Corrected != got.Total() {
		t.Errorf("8 pairs: %v", got)
	}
}

func TestBasicCPPCFailsVerticalSpatial(t *testing.T) {
	// Sec. 4.2: without byte shifting (and only one pair), vertical
	// multi-bit faults are unrecoverable — but never silent.
	mk := cppcFactory(core.Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false})
	got := RunSpatialTrials(mk, 2, 1, 30, 19)
	if got.DUE == 0 {
		t.Errorf("basic CPPC corrected vertical 2x1 faults: %v", got)
	}
	if got.SDC != 0 {
		t.Errorf("basic CPPC silent corruption: %v", got)
	}
}

func TestSECDEDSpatialWithInterleaving(t *testing.T) {
	// On the physically bit-interleaved layout (the paper's SECDED
	// configuration), any burst up to 8 columns wide spreads into at most
	// one bit per word — fully correctable, including the 8x8 square.
	for _, shape := range [][2]int{{1, 8}, {4, 4}, {8, 8}} {
		got := RunSpatialTrialsInterleaved(secdedFactory(), shape[0], shape[1], 15, 23)
		if got.Corrected != got.Total() {
			t.Errorf("interleaved SECDED %dx%d: %v", shape[0], shape[1], got)
		}
	}
	// Without interleaving, two horizontally adjacent bits land in the
	// same codeword and defeat SECDED on dirty data.
	got := RunSpatialTrials(secdedFactory(), 1, 2, 40, 23)
	if got.DUE == 0 {
		t.Errorf("contiguous SECDED never DUEd on 2-bit horizontal: %v", got)
	}
}

func TestAliasingSDCReproduced(t *testing.T) {
	// Sec. 4.7: craft the aliasing pair — bit 56 of a class-0 dirty word
	// and bit 8 of the class-1 word directly below — and observe the SDC.
	c := cache.New(campaignCacheConfig())
	mem := cache.NewMemory(32, 100)
	ct := protect.NewController(c, protect.MustCPPC(c, core.DefaultL1Config()), mem)
	camp := New(ct, mem, 29)
	// Rows are blocks in this direct-mapped layout; word 0 of block 0 is
	// row 0 (class 0), word 0 of block 1 is row 1 (class 1).
	camp.Store(0x00, 0)
	camp.Store(0x20, 0)
	camp.InjectWord(0x00, 1<<56)
	camp.InjectWord(0x20, 1<<8)
	if got := camp.Probe(); got != SDC {
		t.Errorf("aliasing pair outcome = %v, want SDC", got)
	}
}

func TestCoverageMatrixShape(t *testing.T) {
	m := CoverageMatrix(cppcFactory(core.Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true}), 3, 4, 31)
	if len(m) != 3 || len(m[0]) != 3 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	for h := range m {
		for w := range m[h] {
			if m[h][w].Total() != 4 {
				t.Errorf("cell %dx%d trials = %d", h+1, w+1, m[h][w].Total())
			}
		}
	}
	s := FormatMatrix(m)
	if s == "" || len(s) < 20 {
		t.Error("FormatMatrix output too short")
	}
}

func TestCountsHelpers(t *testing.T) {
	c := Counts{Corrected: 3, DUE: 1, SDC: 0}
	if c.Total() != 4 || c.CoverageRate() != 0.75 {
		t.Errorf("%+v helpers wrong", c)
	}
	var empty Counts
	if empty.CoverageRate() != 0 {
		t.Error("empty coverage not 0")
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}
