package fault

import (
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/protect"
)

// TestModelParseRoundTrip pins the string forms the fieldmc grid and
// the job API use as canonical cell keys.
func TestModelParseRoundTrip(t *testing.T) {
	for _, f := range []Footprint{FootWord, FootRow, FootColumn, FootBank} {
		got, err := ParseFootprint(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFootprint(%q) = %v, %v", f.String(), got, err)
		}
	}
	for _, l := range []Lifetime{Transient, Intermittent, StuckAt} {
		got, err := ParseLifetime(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLifetime(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseFootprint("nope"); err == nil {
		t.Error("ParseFootprint accepted junk")
	}
	if _, err := ParseLifetime("nope"); err == nil {
		t.Error("ParseLifetime accepted junk")
	}
	if s := (Model{Foot: FootWord, Life: StuckAt}).String(); s != "word/stuck" {
		t.Errorf("Model.String() = %q", s)
	}
}

// TestModelTrialsDeterministic is the seeded-rng gate for the model
// runner: the campaign rng is the repo's lagged-Fibonacci generator, so
// the same seed must reproduce counts exactly on any Go release, and a
// different seed must drive a genuinely different fault sequence.
func TestModelTrialsDeterministic(t *testing.T) {
	m := Model{Foot: FootWord, Life: Intermittent, Reassert: 0.3}
	a := RunModelTrials(parityFactory(), m, 2, 12, 7)
	b := RunModelTrials(parityFactory(), m, 2, 12, 7)
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	// Trial i runs on seed+i, so nearby base seeds share trials; a
	// disjoint seed window must drive a different fault sequence.
	c := RunModelTrials(parityFactory(), m, 2, 12, 907)
	if a == c {
		t.Errorf("seeds 7 and 907 produced identical counts %v — rng stream suspect", a)
	}
	if got := a.Total(); got != 12 {
		t.Errorf("counts total %d, want 12", got)
	}
}

// TestLifetimeChangesSchemeRanking is the acceptance row of the issue:
// under transient single-bit faults detection-only parity mostly rides
// on clean-line refetch, but a stuck-at bit re-asserts after every
// repair, so parity-1d's DUE share must rise sharply while CPPC — which
// corrects on every access — stays fully covered in both worlds.
func TestLifetimeChangesSchemeRanking(t *testing.T) {
	const trials, seed = 30, 42
	cppc := cppcFactory(core.DefaultL1Config())

	transient := Model{Foot: FootWord, Life: Transient}
	stuck := Model{Foot: FootWord, Life: StuckAt}

	pTrans := RunModelTrials(parityFactory(), transient, 1, trials, seed)
	pStuck := RunModelTrials(parityFactory(), stuck, 1, trials, seed)
	if pStuck.DUE <= pTrans.DUE {
		t.Errorf("parity-1d DUE did not rise under stuck-at: transient %v, stuck %v", pTrans, pStuck)
	}
	if pStuck.Corrected >= pTrans.Corrected {
		t.Errorf("parity-1d coverage did not drop under stuck-at: transient %v, stuck %v", pTrans, pStuck)
	}

	cTrans := RunModelTrials(cppc, transient, 1, trials, seed)
	cStuck := RunModelTrials(cppc, stuck, 1, trials, seed)
	if cTrans.Corrected != trials || cStuck.Corrected != trials {
		t.Errorf("cppc lost coverage: transient %v, stuck %v", cTrans, cStuck)
	}
}

// TestStuckAtDefeatsOneShotRepair pins the physics at the unit level: a
// stuck-at bit on a clean line is "repaired" by refetch, yet the very
// next consult re-asserts it — the plane wins over the array until the
// fault is disarmed.
func TestStuckAtDefeatsOneShotRepair(t *testing.T) {
	c := cache.New(campaignCacheConfig())
	mem := cache.NewMemory(32, 100)
	ct := protect.NewController(c, protect.NewParity1D(c, 8), mem)
	camp := New(ct, mem, 3)
	camp.Populate(2000, 8192)

	// Find a valid clean word and pin one of its zero bits high.
	var set, way, word int
	var mask uint64
	found := false
	c.ForEachValid(func(s, w int, ln *cache.Line) {
		if found || ln.DirtyAny() {
			return
		}
		for b := 0; b < 64; b++ {
			if ln.Data[0]&(1<<b) == 0 {
				set, way, word, mask = s, w, 0, 1<<b
				found = true
				return
			}
		}
	})
	if !found {
		t.Skip("no clean resident line with a zero bit (pathological seed)")
	}
	c.ArmPlane(99)
	c.AddStuckFault(set, way, word, mask, mask)

	addr := c.BlockAddr(set, way) + uint64(word*8)
	for i := 0; i < 3; i++ {
		res := ct.Load(addr, uint64(1000+i))
		if ct.Halted {
			t.Fatalf("consult %d: DUE on a clean stuck-at word under refetch repair", i)
		}
		if res.Value&mask != 0 {
			t.Fatalf("consult %d: stuck bit leaked into the returned value", i)
		}
		if i > 0 && ct.Stats.FaultsDetected == 0 {
			t.Fatalf("consult %d: plane never re-asserted (no detections)", i)
		}
	}
	if ct.Stats.FaultsDetected < 2 {
		t.Fatalf("stuck bit detected %d times over 3 consults; one-shot repair should not silence it",
			ct.Stats.FaultsDetected)
	}
	c.DisarmPlane()
	before := ct.Stats.FaultsDetected
	res := ct.Load(addr, 2000)
	if ct.Halted || res.Value&mask != 0 || ct.Stats.FaultsDetected != before {
		t.Fatalf("disarmed plane still faulting: val=%#x halted=%v detects=%d->%d",
			res.Value, ct.Halted, before, ct.Stats.FaultsDetected)
	}
}
