package fault

import (
	"context"
	"fmt"
	"strings"

	"cppc/internal/cache"
	"cppc/internal/protect"
)

// SchemeFactory builds a protection scheme over a cache (mirrors
// cpu.SchemeFactory without importing the timing model).
type SchemeFactory func(c *cache.Cache) protect.Scheme

// Counts tallies trial outcomes.
type Counts struct {
	Corrected, DUE, SDC int
}

// Total is the trial count.
func (c Counts) Total() int { return c.Corrected + c.DUE + c.SDC }

// CoverageRate is the fraction of trials fully corrected.
func (c Counts) CoverageRate() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.Corrected) / float64(c.Total())
}

func (c Counts) String() string {
	return fmt.Sprintf("corrected=%d DUE=%d SDC=%d", c.Corrected, c.DUE, c.SDC)
}

// campaignCacheConfig is the small dense cache used for injection trials:
// direct-mapped so spatial placement is easy to reason about, with one
// block per physical row.
func campaignCacheConfig() cache.Config {
	cfg, err := cache.Config{
		Name: "campaign", SizeBytes: 4096, Ways: 1, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return cfg
}

// CampaignCacheConfig exposes the campaign layout to the experiments
// profiler, which runs every scheme over the same array.
func CampaignCacheConfig() cache.Config { return campaignCacheConfig() }

// InterleavedCampaignConfig exposes the bit-interleaved campaign layout
// (the SECDED pairing) to external drivers.
func InterleavedCampaignConfig() cache.Config { return interleavedCampaignConfig() }

// interleavedCampaignConfig is the campaign cache with 8-way physical bit
// interleaving (8 words per row), the layout the paper pairs with SECDED.
func interleavedCampaignConfig() cache.Config {
	cfg, err := cache.Config{
		Name: "campaign-il", SizeBytes: 4096, Ways: 1, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
		WordsPerRow: 8, BitInterleaved: true,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return cfg
}

// RunSpatialTrials runs `trials` independent spatial-fault injections of
// an HxW square against a fresh populated cache each time.
func RunSpatialTrials(mk SchemeFactory, h, w, trials int, seed int64) Counts {
	return RunSpatialTrialsCfg(campaignCacheConfig(), mk, h, w, trials, seed)
}

// RunSpatialTrialsInterleaved is RunSpatialTrials over the bit-interleaved
// layout.
func RunSpatialTrialsInterleaved(mk SchemeFactory, h, w, trials int, seed int64) Counts {
	return RunSpatialTrialsCfg(interleavedCampaignConfig(), mk, h, w, trials, seed)
}

// RunSpatialTrialsCfg runs spatial trials over an explicit cache layout.
func RunSpatialTrialsCfg(ccfg cache.Config, mk SchemeFactory, h, w, trials int, seed int64) Counts {
	out, _ := RunSpatialTrialsCfgCtx(context.Background(), ccfg, mk, h, w, trials, seed)
	return out
}

// RunSpatialTrialsCfgCtx is RunSpatialTrialsCfg with cooperative
// cancellation (polled between trials) and trial parallelism up to the
// context's worker hint; trial i runs on stream seed+i whatever the
// worker count, so the counts are bit-identical to the sequential
// loop's.
func RunSpatialTrialsCfgCtx(ctx context.Context, ccfg cache.Config, mk SchemeFactory, h, w, trials int, seed int64) (Counts, error) {
	res, err := runTrials(ctx, trials, func(_ context.Context, a *Arena, i int) (Outcome, error) {
		camp := a.newCampaign(ccfg, mk, seed+int64(i))
		defer a.endTrial()
		camp.Populate(4000, 8192)
		if camp.InjectSpatial(h, w) == 0 {
			return Corrected, nil // nothing flipped: benign placement
		}
		return camp.Probe(), nil
	})
	if err != nil {
		return Counts{}, err
	}
	var out Counts
	for _, o := range res {
		out.note(o)
	}
	return out, nil
}

// RunTemporalTrials injects `bits` independent single-bit flips at random
// resident words (temporal multi-bit when bits > 1), per trial.
func RunTemporalTrials(mk SchemeFactory, bits, trials int, seed int64) Counts {
	out, _ := RunTemporalTrialsCtx(context.Background(), mk, bits, trials, seed)
	return out
}

// RunTemporalTrialsCtx is RunTemporalTrials with cooperative
// cancellation (polled between trials) and trial parallelism up to the
// context's worker hint; counts are bit-identical at any worker count.
func RunTemporalTrialsCtx(ctx context.Context, mk SchemeFactory, bits, trials int, seed int64) (Counts, error) {
	res, err := runTrials(ctx, trials, func(_ context.Context, a *Arena, i int) (Outcome, error) {
		camp := a.newCampaign(campaignCacheConfig(), mk, seed+int64(i))
		defer a.endTrial()
		camp.Populate(4000, 8192)
		flipped := 0
		for flipped < bits {
			addr := uint64(camp.rng.Intn(8192/8)) * 8
			if camp.InjectWord(addr, 1<<uint(camp.rng.Intn(64))) {
				flipped++
			}
		}
		return camp.Probe(), nil
	})
	if err != nil {
		return Counts{}, err
	}
	var out Counts
	for _, o := range res {
		out.note(o)
	}
	return out, nil
}

// CoverageMatrix sweeps spatial squares from 1x1 to maxSize x maxSize and
// returns the per-shape counts, indexed [height-1][width-1].
func CoverageMatrix(mk SchemeFactory, maxSize, trials int, seed int64) [][]Counts {
	return CoverageMatrixCfg(campaignCacheConfig(), mk, maxSize, trials, seed)
}

// CoverageMatrixCfgCtx is CoverageMatrixCfg with cooperative
// cancellation, polled between trial batches.
func CoverageMatrixCfgCtx(ctx context.Context, ccfg cache.Config, mk SchemeFactory, maxSize, trials int, seed int64) ([][]Counts, error) {
	m := make([][]Counts, maxSize)
	for h := 1; h <= maxSize; h++ {
		m[h-1] = make([]Counts, maxSize)
		for w := 1; w <= maxSize; w++ {
			counts, err := RunSpatialTrialsCfgCtx(ctx, ccfg, mk, h, w, trials, seed+int64(h*100+w))
			if err != nil {
				return nil, err
			}
			m[h-1][w-1] = counts
		}
	}
	return m, nil
}

// CoverageMatrixInterleaved is CoverageMatrix over the bit-interleaved
// layout (the SECDED configuration).
func CoverageMatrixInterleaved(mk SchemeFactory, maxSize, trials int, seed int64) [][]Counts {
	return CoverageMatrixCfg(interleavedCampaignConfig(), mk, maxSize, trials, seed)
}

// CoverageMatrixCfg sweeps spatial squares over an explicit cache layout.
func CoverageMatrixCfg(ccfg cache.Config, mk SchemeFactory, maxSize, trials int, seed int64) [][]Counts {
	m, _ := CoverageMatrixCfgCtx(context.Background(), ccfg, mk, maxSize, trials, seed)
	return m
}

// FormatMatrix renders a coverage matrix as rows of correction rates.
func FormatMatrix(m [][]Counts) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s", "HxW")
	for w := 1; w <= len(m); w++ {
		fmt.Fprintf(&b, "%7d", w)
	}
	b.WriteByte('\n')
	for h := range m {
		fmt.Fprintf(&b, "%4d", h+1)
		for w := range m[h] {
			fmt.Fprintf(&b, "%7.2f", m[h][w].CoverageRate())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
