package geometry

import (
	"testing"
	"testing/quick"

	"cppc/internal/bitops"
)

func testLayout() Layout {
	// 32KB, 2-way, 32B blocks (the paper's L1D): 512 sets, 4 words/block,
	// 4 words per physical row (one block per row).
	return MustLayout(512, 2, 4, 4)
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(0, 2, 4, 4); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := NewLayout(512, 2, 4, 0); err == nil {
		t.Error("zero wordsPerRow accepted")
	}
	if _, err := NewLayout(3, 1, 1, 2); err == nil {
		t.Error("non-dividing wordsPerRow accepted")
	}
	if _, err := NewLayout(512, 2, 4, 8); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLayout did not panic on invalid input")
		}
	}()
	MustLayout(0, 0, 0, 0)
}

func TestDimensions(t *testing.T) {
	l := testLayout()
	if got := l.TotalWords(); got != 512*2*4 {
		t.Errorf("TotalWords = %d", got)
	}
	if got := l.Rows(); got != 1024 {
		t.Errorf("Rows = %d", got)
	}
	if got := l.RowBits(); got != 256 {
		t.Errorf("RowBits = %d", got)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	l := testLayout()
	f := func(setRaw, wayRaw, wordRaw uint16) bool {
		set := int(setRaw) % l.Sets
		way := int(wayRaw) % l.Ways
		word := int(wordRaw) % l.WordsPerBlock
		s2, w2, d2 := l.LogicalOf(l.CoordOf(set, way, word))
		return s2 == set && w2 == way && d2 == word
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassesCycle(t *testing.T) {
	l := testLayout()
	for row := 0; row < 32; row++ {
		if got := l.Class(row); got != row%8 {
			t.Errorf("Class(%d) = %d", row, got)
		}
	}
	// Vertically adjacent words are in different classes.
	a := l.ClassOf(0, 0, 0)
	set, way, word := l.LogicalOf(Coord{Row: 1, Col: 0})
	b := l.ClassOf(set, way, word)
	if a == b {
		t.Error("vertically adjacent words share a rotation class")
	}
}

func TestFlipsSingleCell(t *testing.T) {
	l := testLayout()
	fl := l.Flips(SpatialFault{Row: 5, BitCol: 70, Height: 1, Width: 1})
	if len(fl) != 1 {
		t.Fatalf("Flips = %v", fl)
	}
	// Bit column 70 = word column 1, bit 6.
	if fl[0].Mask != 1<<6 {
		t.Errorf("mask = %#x", fl[0].Mask)
	}
	set, way, word := l.LogicalOf(Coord{Row: 5, Col: 1})
	if fl[0].Set != set || fl[0].Way != way || fl[0].Word != word {
		t.Errorf("wrong word: %+v", fl[0])
	}
}

func TestFlipsVerticalColumn(t *testing.T) {
	l := testLayout()
	fl := l.Flips(SpatialFault{Row: 0, BitCol: 0, Height: 3, Width: 1})
	if len(fl) != 3 {
		t.Fatalf("want 3 affected words, got %d", len(fl))
	}
	for i, f := range fl {
		if f.Mask != 1 {
			t.Errorf("word %d mask = %#x", i, f.Mask)
		}
	}
}

func TestFlipsCrossWordBoundary(t *testing.T) {
	l := testLayout()
	// 7-bit horizontal fault across bits 62-63 of word 0 and 0-4 of word 1
	// (the Sec. 3.6 example).
	fl := l.Flips(SpatialFault{Row: 2, BitCol: 62, Height: 1, Width: 7})
	if len(fl) != 2 {
		t.Fatalf("want 2 affected words, got %v", fl)
	}
	if fl[0].Mask != (uint64(1)<<62)|(uint64(1)<<63) {
		t.Errorf("left word mask = %#x", fl[0].Mask)
	}
	if fl[1].Mask != 0x1f {
		t.Errorf("right word mask = %#x", fl[1].Mask)
	}
}

func TestFlipsClipped(t *testing.T) {
	l := testLayout()
	// Anchored at the last row and right edge: clipped, no panic.
	fl := l.Flips(SpatialFault{Row: l.Rows() - 1, BitCol: l.RowBits() - 2, Height: 8, Width: 8})
	if len(fl) != 1 {
		t.Fatalf("want 1 affected word after clipping, got %d", len(fl))
	}
	if bitops.PopCount(fl[0].Mask) != 2 {
		t.Errorf("want 2 flipped bits, got %d", bitops.PopCount(fl[0].Mask))
	}
	// Fully out of bounds.
	if fl := l.Flips(SpatialFault{Row: -10, BitCol: 0, Height: 2, Width: 2}); len(fl) != 0 {
		t.Errorf("out-of-bounds fault flipped cells: %v", fl)
	}
}

func TestFlips8x8TouchesEightClasses(t *testing.T) {
	l := testLayout()
	fl := l.Flips(SpatialFault{Row: 0, BitCol: 16, Height: 8, Width: 8})
	classes := map[int]bool{}
	for _, f := range fl {
		classes[l.ClassOf(f.Set, f.Way, f.Word)] = true
		if bitops.PopCount(f.Mask) != 8 {
			t.Errorf("word %+v flips %d bits, want 8", f, bitops.PopCount(f.Mask))
		}
	}
	if len(classes) != 8 {
		t.Errorf("8x8 fault touched %d classes, want 8", len(classes))
	}
}

func TestWordIndexMonotone(t *testing.T) {
	l := testLayout()
	prev := -1
	for set := 0; set < 4; set++ {
		for way := 0; way < l.Ways; way++ {
			for word := 0; word < l.WordsPerBlock; word++ {
				idx := l.WordIndex(set, way, word)
				if idx != prev+1 {
					t.Fatalf("WordIndex(%d,%d,%d) = %d, want %d", set, way, word, idx, prev+1)
				}
				prev = idx
			}
		}
	}
}

func TestFlipsBitInterleaved(t *testing.T) {
	l := MustLayout(512, 2, 4, 8)
	l.BitInterleaved = true
	// An 8-wide burst starting at column 0 hits bit 0 of each of the 8
	// words in the row — one bit per word.
	fl := l.Flips(SpatialFault{Row: 0, BitCol: 0, Height: 1, Width: 8})
	if len(fl) != 8 {
		t.Fatalf("want 8 words, got %d", len(fl))
	}
	for _, f := range fl {
		if f.Mask != 1 {
			t.Errorf("word %+v mask %#x, want bit 0 only", f, f.Mask)
		}
	}
	// Column 8 is bit 1 of word 0.
	fl = l.Flips(SpatialFault{Row: 0, BitCol: 8, Height: 1, Width: 1})
	if len(fl) != 1 || fl[0].Mask != 2 {
		t.Fatalf("column 8: %+v", fl)
	}
	// A 16-wide burst is 2 bits per word: beyond 8-way interleaving.
	fl = l.Flips(SpatialFault{Row: 0, BitCol: 0, Height: 1, Width: 16})
	if len(fl) != 8 {
		t.Fatalf("16-wide: want 8 words, got %d", len(fl))
	}
	for _, f := range fl {
		if bitops.PopCount(f.Mask) != 2 {
			t.Errorf("16-wide: word mask %#x, want 2 bits", f.Mask)
		}
	}
}
