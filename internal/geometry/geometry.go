// Package geometry models the physical organization of a cache data array:
// a grid of SRAM rows, each holding one or more 64-bit words side by side.
//
// Two of the paper's mechanisms are defined in terms of this physical view
// rather than the logical (set, way) view:
//
//   - rotation classes: "three bits of the Store address specify eight
//     separate amounts of rotation for eight different data array rows"
//     (Sec. 4.3) — the class of a word is its physical row modulo 8;
//   - spatial multi-bit errors: a particle strike flips bits inside an
//     NxN square of physically adjacent cells, which may span several rows
//     and cross word boundaries within a row (Sec. 4).
package geometry

import (
	"fmt"

	"cppc/internal/bitops"
)

// NumClasses is the number of rotation classes (and the height/width of the
// spatial-fault square the byte-shifted CPPC is designed to correct).
const NumClasses = 8

// Layout maps logical word coordinates (set, way, word-in-block) to
// physical array coordinates (row, column) and back.
type Layout struct {
	Sets          int // number of sets
	Ways          int // associativity
	WordsPerBlock int // 64-bit words per cache block
	WordsPerRow   int // physical words stored side by side in one SRAM row

	// BitInterleaved selects physical bit interleaving within a row: bit
	// column c belongs to word c mod WordsPerRow, bit c / WordsPerRow —
	// adjacent cells hold bits of different words, so a spatial burst
	// becomes single-bit errors in several words (the SECDED companion
	// technique of Secs. 1 and 6). Without it, words occupy contiguous
	// 64-bit column spans.
	BitInterleaved bool
}

// NewLayout builds a layout and validates its parameters. Blocks are laid
// out in logical order ((set*Ways+way)*WordsPerBlock + word) across rows of
// WordsPerRow words each, mirroring a banked SRAM floorplan.
func NewLayout(sets, ways, wordsPerBlock, wordsPerRow int) (Layout, error) {
	l := Layout{Sets: sets, Ways: ways, WordsPerBlock: wordsPerBlock, WordsPerRow: wordsPerRow}
	switch {
	case sets <= 0 || ways <= 0 || wordsPerBlock <= 0:
		return Layout{}, fmt.Errorf("geometry: non-positive dimension in %+v", l)
	case wordsPerRow <= 0:
		return Layout{}, fmt.Errorf("geometry: wordsPerRow must be positive, got %d", wordsPerRow)
	case (sets*ways*wordsPerBlock)%wordsPerRow != 0:
		return Layout{}, fmt.Errorf("geometry: %d words do not fill rows of %d", sets*ways*wordsPerBlock, wordsPerRow)
	}
	return l, nil
}

// MustLayout is NewLayout that panics on error; for tests and fixed configs.
func MustLayout(sets, ways, wordsPerBlock, wordsPerRow int) Layout {
	l, err := NewLayout(sets, ways, wordsPerBlock, wordsPerRow)
	if err != nil {
		panic(err)
	}
	return l
}

// TotalWords is the number of 64-bit words in the data array.
func (l Layout) TotalWords() int { return l.Sets * l.Ways * l.WordsPerBlock }

// Rows is the number of physical rows.
func (l Layout) Rows() int { return l.TotalWords() / l.WordsPerRow }

// RowBits is the width of one physical row in bits.
func (l Layout) RowBits() int { return l.WordsPerRow * bitops.WordBits }

// WordIndex returns the linear index of word `word` of block (set, way).
func (l Layout) WordIndex(set, way, word int) int {
	return (set*l.Ways+way)*l.WordsPerBlock + word
}

// Coord is a physical coordinate: row and word-column within the row.
type Coord struct {
	Row int // physical row index
	Col int // word column within the row (0..WordsPerRow-1)
}

// CoordOf maps a logical word to its physical coordinate.
func (l Layout) CoordOf(set, way, word int) Coord {
	idx := l.WordIndex(set, way, word)
	return Coord{Row: idx / l.WordsPerRow, Col: idx % l.WordsPerRow}
}

// LogicalOf inverts CoordOf.
func (l Layout) LogicalOf(c Coord) (set, way, word int) {
	idx := c.Row*l.WordsPerRow + c.Col
	word = idx % l.WordsPerBlock
	blk := idx / l.WordsPerBlock
	way = blk % l.Ways
	set = blk / l.Ways
	return set, way, word
}

// Class returns the rotation class of a physical row: row mod 8. All words
// in the same row share a class; vertically adjacent words differ by one
// class, which is what lets byte shifting separate their bits inside the
// register pair.
func (l Layout) Class(row int) int { return ((row % NumClasses) + NumClasses) % NumClasses }

// ClassOf is Class applied to a logical word.
func (l Layout) ClassOf(set, way, word int) int { return l.Class(l.CoordOf(set, way, word).Row) }

// CellFlip identifies one flipped bit: which logical word, and which bit of
// that word.
type CellFlip struct {
	Set, Way, Word int
	Bit            int // 0..63 within the word
}

// SpatialFault describes an HxW square of flipped cells anchored at
// physical row Row and absolute bit column BitCol (0 ..
// RowBits-1). Height is in rows, Width in bit columns. A fault that runs
// past the right edge of the array is clipped (strikes at the array edge
// flip fewer cells).
type SpatialFault struct {
	Row    int
	BitCol int
	Height int
	Width  int
}

// Flips enumerates every cell the fault flips, grouped per logical word
// with the affected bits merged into a mask.
type WordFlips struct {
	Set, Way, Word int
	Mask           uint64
}

// Flips expands the fault into per-word bit masks. Faults are clipped to
// the array bounds.
func (l Layout) Flips(f SpatialFault) []WordFlips {
	type key struct{ set, way, word int }
	acc := make(map[key]uint64)
	var order []key
	for dr := 0; dr < f.Height; dr++ {
		row := f.Row + dr
		if row < 0 || row >= l.Rows() {
			continue
		}
		for dc := 0; dc < f.Width; dc++ {
			bc := f.BitCol + dc
			if bc < 0 || bc >= l.RowBits() {
				continue
			}
			var col, bit int
			if l.BitInterleaved {
				col = bc % l.WordsPerRow
				bit = bc / l.WordsPerRow
			} else {
				col = bc / bitops.WordBits
				bit = bc % bitops.WordBits
			}
			set, way, word := l.LogicalOf(Coord{Row: row, Col: col})
			k := key{set, way, word}
			if _, seen := acc[k]; !seen {
				order = append(order, k)
			}
			acc[k] |= 1 << uint(bit)
		}
	}
	out := make([]WordFlips, 0, len(order))
	for _, k := range order {
		out = append(out, WordFlips{Set: k.set, Way: k.way, Word: k.word, Mask: acc[k]})
	}
	return out
}

// MaxCorrectableSquare reports the largest square the byte-shifted CPPC
// targets: 8x8, with the Sec. 4.6 corner cases (full 8x8 faults, faults
// on rows exactly 8/pairs apart, and the tall-vertical-column degeneracy
// documented in DESIGN.md) requiring at least two register pairs.
func MaxCorrectableSquare() int { return NumClasses }
