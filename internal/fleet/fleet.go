// Package fleet turns N cppcd daemons into one logical cell cache. Each
// daemon runs a Node speaking a small HTTP protocol under /fleet/:
//
//	GET  /fleet/cells/{hash}         fetch a computed cell's canonical bytes
//	PUT  /fleet/cells/{hash}         push a computed cell (steal delivery)
//	POST /fleet/claims/{hash}?owner= single-flight claim: who runs this cell
//	POST /fleet/claims               batch claim round: one POST arbitrates a whole steal batch
//	GET  /fleet/queue?max=N          cells awaiting a worker, ripe for stealing
//
// The Node plugs into the service as its Coordinator: before a worker
// executes a cell it asks the peers for the result, then claims the cell
// fleet-wide so a cell queued on two daemons runs on exactly one. Idle
// daemons poll peers' queues and steal cells, pushing results back.
//
// Failure rules — a dead peer degrades the fleet, never wedges it:
//   - a peer that cannot be reached is skipped (and backed off); it
//     cannot object to a claim, and it cannot serve a cell;
//   - a daemon that loses a claim waits at most PeerTimeout for the
//     winner's result, then executes the cell locally anyway;
//   - claims expire after ClaimTTL, so a crashed winner's claims decay.
//
// Claim arbitration is decentralized: a claimant records the claim
// locally, asks every reachable peer, and commits only if all grant and
// its own record was not overtaken meanwhile. Ties break toward the
// lexicographically smaller node ID, so two simultaneous claimants
// resolve deterministically to one winner. Duplicated execution is still
// possible under partitions or timeouts — results are content-addressed
// and deterministic, so duplicates cost only time, never correctness.
package fleet

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cppc/internal/cellstore"
	"cppc/internal/service"
)

// Executor is the slice of the service a Node drives: executing stolen
// cells and exposing the local queue. *service.Service implements it.
type Executor interface {
	ExecuteSpec(ctx context.Context, spec service.JobSpec) ([]byte, error)
	StealableCells(max int) []service.QueuedCell
	LoadHint() (queued, busy, workers int)
}

// Config wires a Node.
type Config struct {
	Self  string   // unique node ID, used for claim tie-breaks (typically the advertised address)
	Peers []string // peer base URLs, e.g. "http://host:8322"

	// Local is the node's own store tiers (memory → disk). Peer GETs are
	// served from it, steal results and peer PUTs land in it. It must be
	// the same store the service reads, so delivered cells satisfy
	// waiting workers.
	Local cellstore.Store

	// Exec runs stolen cells. nil disables stealing (the node still
	// serves and claims).
	Exec Executor

	PeerTimeout  time.Duration // result-wait budget before local fallback; also the dead-peer backoff. <= 0 means 5s
	PollInterval time.Duration // steal/wait poll cadence; <= 0 means 250ms
	ClaimTTL     time.Duration // claim expiry; <= 0 means max(30s, 4*PeerTimeout)
	StealBatch   int           // max cells stolen per poll; <= 0 means 2

	// Token is an optional shared secret. When set, every /fleet/*
	// request must carry it in X-Fleet-Token (checked with a
	// constant-time compare) and the node sends it on every peer
	// request, so fleet mode is deployable off-loopback. Every daemon
	// in a fleet must agree on the token.
	Token string

	Logf func(format string, args ...any) // nil means silent
}

// claim is one cell's arbitration record. committed means the owner won
// the full round and may be executing: a committed claim is never
// surrendered to a later claimant, tie-break or not.
type claim struct {
	owner     string
	committed bool
	expires   time.Time
}

// peer is one remote daemon plus its circuit breaker.
type peer struct {
	base string

	mu        sync.Mutex
	downUntil time.Time
}

func (p *peer) alive(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return now.After(p.downUntil)
}

func (p *peer) markDown(until time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.downUntil = until
}

// Node is one daemon's fleet endpoint, coordinator and stealer.
type Node struct {
	cfg    Config
	client *http.Client
	peers  []*peer
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	claims   map[string]*claim
	stats    map[string]int64
	nextPeer int  // round-robin cursor for stealing
	steals   int  // steal goroutines in flight
	started  bool // poller launched
}

// New builds the node. Call Start once the daemon's HTTP server has the
// node's Handler mounted — starting the poller earlier would hit peers
// whose /fleet/ routes are not up yet and trip their circuit breakers.
func New(cfg Config) *Node {
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 5 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.ClaimTTL <= 0 {
		cfg.ClaimTTL = 30 * time.Second
		if ttl := 4 * cfg.PeerTimeout; ttl > cfg.ClaimTTL {
			cfg.ClaimTTL = ttl
		}
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = 2
	}
	n := &Node{
		cfg:    cfg,
		client: &http.Client{},
		claims: make(map[string]*claim),
		stats:  make(map[string]int64),
	}
	for _, base := range cfg.Peers {
		n.peers = append(n.peers, &peer{base: base})
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	return n
}

// Start launches the steal poller. It is a no-op without an Executor or
// peers, and safe to call once only.
func (n *Node) Start() {
	if n.cfg.Exec == nil || len(n.peers) == 0 {
		return
	}
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go n.pollLoop()
}

// Close stops the poller and any in-flight steals.
func (n *Node) Close() {
	n.cancel()
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) bump(key string) {
	n.mu.Lock()
	n.stats[key]++
	n.mu.Unlock()
}

// Stats snapshots the fleet counters for /metrics.
func (n *Node) Stats() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]int64, len(n.stats)+1)
	for k, v := range n.stats {
		out[k] = v
	}
	out["claims_active"] = int64(len(n.claims))
	return out
}

// --- Coordinator: the service's fleet seam ------------------------------

// RunCell implements service.Coordinator: peers first, then claim; the
// claim loser waits for the winner's result and falls back to local
// execution when the wait budget expires — the fleet can only make a
// cell cheaper, never make it hang.
func (n *Node) RunCell(ctx context.Context, hash string, local func(context.Context) ([]byte, error)) ([]byte, error) {
	if !cellstore.ValidHash(hash) {
		return local(ctx)
	}
	if data, ok := n.fetchPeers(hash); ok {
		n.bump("peer_hits")
		return data, nil
	}
	if n.acquire(hash) {
		n.bump("claims_won")
		data, err := local(ctx)
		if err != nil {
			n.releaseOwn(hash) // let someone else try
		}
		return data, err
	}
	n.bump("claims_lost")

	deadline := time.NewTimer(n.cfg.PeerTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(n.cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline.C:
			n.bump("fallback_local")
			n.logf("fleet: cell %.12s: wait on peer expired, running locally", hash)
			return local(ctx)
		case <-tick.C:
			// A steal delivery lands in the local store; a winner's
			// result is served over its GET endpoint.
			if data, ok := n.cfg.Local.Get(hash); ok {
				n.bump("wait_hits")
				return data, nil
			}
			if data, ok := n.fetchPeers(hash); ok {
				n.bump("wait_hits")
				return data, nil
			}
		}
	}
}

// --- Claim arbitration --------------------------------------------------

// grant applies one claim request against the local table; it is the
// same rule for requests from peers and from this node. Committed claims
// are immovable; otherwise the lexicographically smaller owner wins.
func (n *Node) grant(hash, owner string) (granted bool, current string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	c, ok := n.claims[hash]
	if ok && now.After(c.expires) {
		ok = false
	}
	switch {
	case !ok:
		n.claims[hash] = &claim{owner: owner, expires: now.Add(n.cfg.ClaimTTL)}
		return true, owner
	case c.owner == owner:
		c.expires = now.Add(n.cfg.ClaimTTL)
		return true, owner
	case c.committed:
		return false, c.owner
	case owner < c.owner:
		n.claims[hash] = &claim{owner: owner, expires: now.Add(n.cfg.ClaimTTL)}
		return true, owner
	default:
		return false, c.owner
	}
}

// acquire runs the full claim round for one cell.
func (n *Node) acquire(hash string) bool {
	return n.acquireBatch([]string{hash})[0]
}

// acquireBatch runs one claim round for a set of cells: grant locally,
// then ONE batch POST per live peer for every cell still in contention,
// then commit the survivors. won[i] true means this node — and, in a
// partition-free fleet, only this node — executes hashes[i]. Batching
// changes round-trip count, not arbitration: each (cell, peer) pair is
// granted or rejected exactly as the per-cell round would, and a cell
// rejected by any peer stays in the request set for later peers only to
// learn (and adopt) the stronger owner sooner, never to re-win.
func (n *Node) acquireBatch(hashes []string) (won []bool) {
	won = make([]bool, len(hashes))
	idx := make(map[string]int, len(hashes))
	var live []string // cells still in contention, in submission order
	for i, h := range hashes {
		if _, dup := idx[h]; dup {
			continue // duplicate submissions lose to the first
		}
		if ok, _ := n.grant(h, n.cfg.Self); ok {
			idx[h] = i
			live = append(live, h)
			won[i] = true // tentative until every peer grants
		}
	}
	now := time.Now()
	for _, p := range n.peers {
		if len(live) == 0 {
			break
		}
		if !p.alive(now) {
			continue // a dead peer cannot object
		}
		results, err := n.claimPeerBatch(p, live)
		if err != nil {
			n.peerError(p, err)
			continue
		}
		for _, r := range results {
			i, ok := idx[r.Hash]
			if !ok || r.Granted {
				continue
			}
			won[i] = false
			n.adopt(r.Hash, r.Owner)
		}
		kept := live[:0]
		for _, h := range live {
			if won[idx[h]] {
				kept = append(kept, h)
			}
		}
		live = kept
	}
	// Commit only claims whose own record survived the round: a stronger
	// claimant may have overtaken one while our requests were in flight,
	// in which case exactly that claimant wins.
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, h := range hashes {
		if !won[i] {
			continue
		}
		c, ok := n.claims[h]
		if !ok || c.owner != n.cfg.Self {
			won[i] = false
			continue
		}
		c.committed = true
	}
	return won
}

// adopt records the fleet-wide winner locally so later local claimants
// lose fast, without another network round.
func (n *Node) adopt(hash, owner string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.claims[hash] = &claim{owner: owner, expires: time.Now().Add(n.cfg.ClaimTTL)}
}

// releaseOwn drops this node's claim after a failed execution.
func (n *Node) releaseOwn(hash string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.claims[hash]; ok && c.owner == n.cfg.Self {
		delete(n.claims, hash)
	}
}

// purgeExpired trims decayed claims so the table tracks live work only.
func (n *Node) purgeExpired() {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	for h, c := range n.claims {
		if now.After(c.expires) {
			delete(n.claims, h)
		}
	}
}

// --- Stealing -----------------------------------------------------------

// pollLoop steals queued cells from peers whenever this node has idle
// workers and an empty queue of its own.
func (n *Node) pollLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-tick.C:
		}
		n.purgeExpired()
		queued, busy, workers := n.cfg.Exec.LoadHint()
		n.mu.Lock()
		idle := workers - busy - n.steals
		n.mu.Unlock()
		if queued > 0 || idle <= 0 {
			continue
		}
		p := n.nextLivePeer()
		if p == nil {
			continue
		}
		want := idle
		if want > n.cfg.StealBatch {
			want = n.cfg.StealBatch
		}
		cells, err := n.queuePeer(p, want)
		if err != nil {
			n.peerError(p, err)
			continue
		}
		// Reserve steal slots first, then arbitrate the whole batch in
		// one claim round — one POST per live peer, not one per cell.
		var picked []service.QueuedCell
		for _, c := range cells {
			if !cellstore.ValidHash(c.Hash) {
				continue
			}
			if _, ok := n.cfg.Local.Get(c.Hash); ok {
				continue // already have it; the victim will fetch it
			}
			n.mu.Lock()
			full := n.steals >= want
			if !full {
				n.steals++
			}
			n.mu.Unlock()
			if full {
				break
			}
			picked = append(picked, c)
		}
		if len(picked) == 0 {
			continue
		}
		hashes := make([]string, len(picked))
		for i, c := range picked {
			hashes[i] = c.Hash
		}
		won := n.acquireBatch(hashes)
		for i, c := range picked {
			if !won[i] {
				n.mu.Lock()
				n.steals--
				n.mu.Unlock()
				continue // someone else runs it
			}
			n.wg.Add(1)
			go n.steal(p, c)
		}
	}
}

// nextLivePeer round-robins over peers that are not backed off.
func (n *Node) nextLivePeer() *peer {
	now := time.Now()
	n.mu.Lock()
	start := n.nextPeer
	n.nextPeer = (n.nextPeer + 1) % len(n.peers)
	n.mu.Unlock()
	for i := 0; i < len(n.peers); i++ {
		p := n.peers[(start+i)%len(n.peers)]
		if p.alive(now) {
			return p
		}
	}
	return nil
}

// steal executes one queued cell this node already claimed, then pushes
// the result back so the victim's waiting worker finds it immediately.
func (n *Node) steal(victim *peer, c service.QueuedCell) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		n.steals--
		n.mu.Unlock()
	}()
	data, err := n.cfg.Exec.ExecuteSpec(n.ctx, c.Spec)
	if err != nil {
		n.releaseOwn(c.Hash)
		n.bump("steal_errors")
		return
	}
	n.cfg.Local.Put(c.Hash, data)
	n.bump("cells_stolen")
	if err := n.putPeer(victim, c.Hash, data); err != nil {
		n.peerError(victim, err)
		n.bump("push_errors") // the victim can still fetch it from us
	}
}

// --- Peer HTTP client ---------------------------------------------------

// requestTimeout bounds one HTTP round-trip: short enough that a wedged
// peer cannot eat the whole wait budget in a single call.
func (n *Node) requestTimeout() time.Duration {
	if n.cfg.PeerTimeout < 2*time.Second {
		return n.cfg.PeerTimeout
	}
	return 2 * time.Second
}

func (n *Node) peerError(p *peer, err error) {
	p.markDown(time.Now().Add(n.cfg.PeerTimeout))
	n.bump("peer_errors")
	n.logf("fleet: peer %s down: %v", p.base, err)
}

func (n *Node) do(method, url string, body io.Reader) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(n.ctx, n.requestTimeout())
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		cancel()
		return nil, err
	}
	if n.cfg.Token != "" {
		req.Header.Set(tokenHeader, n.cfg.Token)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel runs when the caller finishes the body.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// fetchPeers asks every live peer for a cell, first hit wins.
func (n *Node) fetchPeers(hash string) ([]byte, bool) {
	now := time.Now()
	for _, p := range n.peers {
		if !p.alive(now) {
			continue
		}
		resp, err := n.do(http.MethodGet, p.base+"/fleet/cells/"+hash, nil)
		if err != nil {
			n.peerError(p, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxCellBytes))
		resp.Body.Close()
		if err != nil {
			n.peerError(p, err)
			continue
		}
		return data, true
	}
	return nil, false
}

// claimPeerBatch asks one peer to arbitrate every hash in one POST. A
// hash missing from the response is treated as granted — the same
// stance taken toward an unreachable peer, which cannot object either.
func (n *Node) claimPeerBatch(p *peer, hashes []string) ([]claimResult, error) {
	payload, err := json.Marshal(claimBatchRequest{Owner: n.cfg.Self, Hashes: hashes})
	if err != nil {
		return nil, err
	}
	resp, err := n.do(http.MethodPost, p.base+"/fleet/claims", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("claim batch: status %d", resp.StatusCode)
	}
	var body claimBatchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Results, nil
}

func (n *Node) putPeer(p *peer, hash string, data []byte) error {
	resp, err := n.do(http.MethodPut, p.base+"/fleet/cells/"+hash, bytes.NewReader(data))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("put %s: status %d", hash[:12], resp.StatusCode)
	}
	return nil
}

func (n *Node) queuePeer(p *peer, max int) ([]service.QueuedCell, error) {
	resp, err := n.do(http.MethodGet, fmt.Sprintf("%s/fleet/queue?max=%d", p.base, max), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("queue: status %d", resp.StatusCode)
	}
	var body queueResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Cells, nil
}

// --- HTTP server side ---------------------------------------------------

// maxCellBytes bounds one cell's encoded size on the wire; real cells
// are a few KB.
const maxCellBytes = 64 << 20

type claimResponse struct {
	Granted bool   `json:"granted"`
	Owner   string `json:"owner"`
}

// claimBatchMax bounds one batch claim request; steal batches are far
// smaller (the queue handler itself serves at most 64 cells).
const claimBatchMax = 256

type claimBatchRequest struct {
	Owner  string   `json:"owner"`
	Hashes []string `json:"hashes"`
}

type claimResult struct {
	Hash    string `json:"hash"`
	Granted bool   `json:"granted"`
	Owner   string `json:"owner"`
}

type claimBatchResponse struct {
	Results []claimResult `json:"results"`
}

type queueResponse struct {
	Cells []service.QueuedCell `json:"cells"`
}

// tokenHeader carries the fleet shared secret on every peer request.
const tokenHeader = "X-Fleet-Token"

// Handler serves the /fleet/ protocol; mount it on the daemon's mux
// next to the job API. With Config.Token set, every route requires the
// matching X-Fleet-Token header.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/cells/{hash}", n.handleGetCell)
	mux.HandleFunc("PUT /fleet/cells/{hash}", n.handlePutCell)
	mux.HandleFunc("POST /fleet/claims/{hash}", n.handleClaim)
	mux.HandleFunc("POST /fleet/claims", n.handleClaimBatch)
	mux.HandleFunc("GET /fleet/queue", n.handleQueue)
	if n.cfg.Token == "" {
		return mux
	}
	want := []byte(n.cfg.Token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get(tokenHeader))
		// subtle.ConstantTimeCompare is length-leaking by contract (it
		// returns 0 immediately on mismatched lengths), which is fine:
		// the length of the secret is not the secret.
		if subtle.ConstantTimeCompare(got, want) != 1 {
			n.bump("auth_rejected")
			http.Error(w, "bad fleet token", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func (n *Node) handleGetCell(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !cellstore.ValidHash(hash) {
		http.Error(w, "bad cell hash", http.StatusBadRequest)
		return
	}
	data, ok := n.cfg.Local.Get(hash)
	if !ok {
		http.Error(w, "cell not here", http.StatusNotFound)
		return
	}
	n.bump("cells_served")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (n *Node) handlePutCell(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !cellstore.ValidHash(hash) {
		http.Error(w, "bad cell hash", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxCellBytes))
	if err != nil {
		http.Error(w, "short read", http.StatusBadRequest)
		return
	}
	n.cfg.Local.Put(hash, data)
	n.bump("puts_received")
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleClaim(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	owner := r.URL.Query().Get("owner")
	if !cellstore.ValidHash(hash) || owner == "" || owner == n.cfg.Self {
		http.Error(w, "bad claim", http.StatusBadRequest)
		return
	}
	granted, current := n.grant(hash, owner)
	if granted {
		n.bump("claims_granted")
	} else {
		n.bump("claims_rejected")
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(claimResponse{Granted: granted, Owner: current})
}

// handleClaimBatch arbitrates a whole steal batch in one request. Each
// hash is granted or rejected independently, exactly as the per-hash
// endpoint would decide it.
func (n *Node) handleClaimBatch(w http.ResponseWriter, r *http.Request) {
	var req claimBatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad claim batch", http.StatusBadRequest)
		return
	}
	if req.Owner == "" || req.Owner == n.cfg.Self || len(req.Hashes) == 0 || len(req.Hashes) > claimBatchMax {
		http.Error(w, "bad claim batch", http.StatusBadRequest)
		return
	}
	results := make([]claimResult, 0, len(req.Hashes))
	for _, h := range req.Hashes {
		if !cellstore.ValidHash(h) {
			http.Error(w, "bad cell hash", http.StatusBadRequest)
			return
		}
		granted, current := n.grant(h, req.Owner)
		if granted {
			n.bump("claims_granted")
		} else {
			n.bump("claims_rejected")
		}
		results = append(results, claimResult{Hash: h, Granted: granted, Owner: current})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(claimBatchResponse{Results: results})
}

func (n *Node) handleQueue(w http.ResponseWriter, r *http.Request) {
	max := 4
	if s := r.URL.Query().Get("max"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			max = v
		}
	}
	if max > 64 {
		max = 64
	}
	var cells []service.QueuedCell
	if n.cfg.Exec != nil {
		cells = n.cfg.Exec.StealableCells(max)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(queueResponse{Cells: cells})
}
