package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cppc/internal/cellstore"
	"cppc/internal/experiments"
	"cppc/internal/service"
)

// tinyBudget keeps per-cell work to a few milliseconds so whole suites
// finish fast even on one worker.
const tinyWarmup, tinyMeasure = 2000, 5000

// testDaemon is one in-process cppcd: service + store + fleet node +
// an HTTP server exposing the /fleet/ protocol.
type testDaemon struct {
	svc   *service.Service
	node  *Node
	store cellstore.Store
	ts    *httptest.Server
	url   string
}

// kill takes the daemon down hard, in dependency order: stop stealing,
// stop serving, drain the service. Safe to call twice.
func (d *testDaemon) kill() {
	d.node.Close()
	d.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d.svc.Shutdown(ctx) // second call reports closed; ignore
}

// startFleet brings up n daemons in a full peer mesh. Servers come up
// first so every peer URL exists before any node is built, handlers are
// mounted before any poller starts.
func startFleet(t *testing.T, n, workers int, peerTimeout, pollInterval time.Duration) []*testDaemon {
	t.Helper()
	ds := make([]*testDaemon, n)
	muxes := make([]*http.ServeMux, n)
	for i := range ds {
		muxes[i] = http.NewServeMux()
		ts := httptest.NewServer(muxes[i])
		ds[i] = &testDaemon{ts: ts, url: ts.URL}
	}
	for i, d := range ds {
		var peers []string
		for j, o := range ds {
			if j != i {
				peers = append(peers, o.url)
			}
		}
		d.store = cellstore.NewMemory(1024)
		d.svc = service.New(service.Config{Workers: workers, Store: d.store})
		d.node = New(Config{
			Self:         d.url,
			Peers:        peers,
			Local:        d.store,
			Exec:         d.svc,
			PeerTimeout:  peerTimeout,
			PollInterval: pollInterval,
		})
		d.svc.SetCoordinator(d.node)
		muxes[i].Handle("/fleet/", d.node.Handler())
	}
	for _, d := range ds {
		d.node.Start()
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.kill()
		}
	})
	return ds
}

func submit(t *testing.T, s *service.Service, spec service.JobSpec) service.Job {
	t.Helper()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit %+v: %v", spec, err)
	}
	return job
}

func waitDone(t *testing.T, s *service.Service, id string, timeout time.Duration) service.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		job, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if job.State == service.StateDone {
			return job
		}
		if job.State == service.StateFailed {
			t.Fatalf("job %s failed: %s", id, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s (progress %d/%d)",
				id, job.State, job.Progress.Done, job.Progress.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetSuiteExactlyOnce is the tentpole acceptance test: a 60-cell
// suite submitted to one of three daemons must execute each cell exactly
// once across the fleet — idle peers steal real work — and render a
// report byte-identical to the sequential in-process suite.
func TestFleetSuiteExactlyOnce(t *testing.T) {
	// A long PeerTimeout keeps the local-fallback path out of the way:
	// any fallback would re-execute a cell and break the exact count.
	ds := startFleet(t, 3, 1, 15*time.Second, 5*time.Millisecond)

	budget := experiments.Budget{Warmup: tinyWarmup, Measure: tinyMeasure, Seed: 1}
	seq, err := experiments.RunSuiteCtx(context.Background(), budget, experiments.SuiteOptions{})
	if err != nil {
		t.Fatalf("sequential suite: %v", err)
	}
	want := map[string]string{
		"fig10":  seq.Figure10(),
		"fig11":  seq.Figure11(),
		"fig12":  seq.Figure12(),
		"table2": seq.Table2String(),
		"table3": seq.Table3(),
	}

	job := submit(t, ds[0].svc, service.JobSpec{Kind: "suite", Warmup: tinyWarmup, Measure: tinyMeasure})
	done := waitDone(t, ds[0].svc, job.ID, 120*time.Second)
	if done.Progress.Total != 60 || done.Progress.Done != 60 {
		t.Fatalf("suite progress = %d/%d, want 60/60", done.Progress.Done, done.Progress.Total)
	}

	total := 0
	for i, d := range ds {
		n := d.svc.Metrics().CellsExecuted
		t.Logf("daemon %d executed %d cells, fleet stats %v", i, n, d.node.Stats())
		total += n
	}
	if total != 60 {
		t.Fatalf("fleet executed %d cells for a 60-cell suite, want exactly 60", total)
	}
	var stolen int64
	for _, d := range ds {
		stolen += d.node.Stats()["cells_stolen"]
	}
	if stolen == 0 {
		t.Fatalf("idle peers stole no cells from the loaded daemon")
	}

	_, res, err := ds[0].svc.JobResult(done.ID)
	if err != nil || res == nil {
		t.Fatalf("suite result: %+v, %v", res, err)
	}
	for name, text := range want {
		if res.Artifacts[name] != text {
			t.Fatalf("artifact %q diverges from the sequential suite", name)
		}
	}
}

// TestFleetTwoDaemonsOneExecution pins the claim protocol's purpose: the
// same cell submitted to two daemons at once runs on exactly one of them;
// the loser serves the winner's result.
func TestFleetTwoDaemonsOneExecution(t *testing.T) {
	ds := startFleet(t, 2, 1, 15*time.Second, 5*time.Millisecond)
	spec := service.JobSpec{Kind: "simulate", Bench: "gzip", Scheme: "cppc",
		Warmup: tinyWarmup, Measure: tinyMeasure}

	a := submit(t, ds[0].svc, spec)
	b := submit(t, ds[1].svc, spec)
	ja := waitDone(t, ds[0].svc, a.ID, 60*time.Second)
	jb := waitDone(t, ds[1].svc, b.ID, 60*time.Second)

	total := ds[0].svc.Metrics().CellsExecuted + ds[1].svc.Metrics().CellsExecuted
	if total != 1 {
		t.Fatalf("fleet executed the cell %d times, want exactly once", total)
	}

	_, ra, err := ds[0].svc.JobResult(ja.ID)
	if err != nil || ra == nil {
		t.Fatalf("result on daemon A: %v", err)
	}
	_, rb, err := ds[1].svc.JobResult(jb.ID)
	if err != nil || rb == nil {
		t.Fatalf("result on daemon B: %v", err)
	}
	if ra.Artifacts["summary"] != rb.Artifacts["summary"] {
		t.Fatalf("daemons disagree on the one cell:\n%q\nvs\n%q",
			ra.Artifacts["summary"], rb.Artifacts["summary"])
	}
}

// TestFleetPeerDeathFallback kills a peer mid-suite: cells it claimed
// but never delivered must fall back to local execution on the
// submitting daemon, and the suite must still complete. A dead peer
// degrades the fleet; it never wedges it.
func TestFleetPeerDeathFallback(t *testing.T) {
	// Short PeerTimeout so abandoned claims are given up on quickly.
	ds := startFleet(t, 2, 1, 300*time.Millisecond, 10*time.Millisecond)

	job := submit(t, ds[0].svc, service.JobSpec{Kind: "suite", Warmup: tinyWarmup, Measure: tinyMeasure})

	// Let the peer get its hands dirty first, so the kill has something
	// to abandon.
	deadline := time.Now().Add(30 * time.Second)
	for ds[1].svc.Metrics().CellsExecuted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("peer never stole a cell; fleet stats %v", ds[1].node.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ds[1].kill()

	done := waitDone(t, ds[0].svc, job.ID, 120*time.Second)
	if done.Progress.Done != done.Progress.Total {
		t.Fatalf("suite progress = %d/%d after peer death", done.Progress.Done, done.Progress.Total)
	}
	if _, res, err := ds[0].svc.JobResult(done.ID); err != nil || res == nil || res.Artifacts["table2"] == "" {
		t.Fatalf("suite result after peer death: %+v, %v", res, err)
	}
	t.Logf("survivor executed %d cells, fleet stats %v",
		ds[0].svc.Metrics().CellsExecuted, ds[0].node.Stats())
}

// TestClaimTieBreak races two nodes claiming the same cell: every round
// must end with exactly one winner, whichever interleaving the scheduler
// produces.
func TestClaimTieBreak(t *testing.T) {
	muxA, muxB := http.NewServeMux(), http.NewServeMux()
	tsA, tsB := httptest.NewServer(muxA), httptest.NewServer(muxB)
	defer tsA.Close()
	defer tsB.Close()

	a := New(Config{Self: tsA.URL, Peers: []string{tsB.URL}, Local: cellstore.NewMemory(8)})
	b := New(Config{Self: tsB.URL, Peers: []string{tsA.URL}, Local: cellstore.NewMemory(8)})
	defer a.Close()
	defer b.Close()
	muxA.Handle("/fleet/", a.Handler())
	muxB.Handle("/fleet/", b.Handler())

	for i := 0; i < 30; i++ {
		hash := fmt.Sprintf("%064x", 7000+i)
		var aWon, bWon bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); aWon = a.acquire(hash) }()
		go func() { defer wg.Done(); bWon = b.acquire(hash) }()
		wg.Wait()
		if aWon == bWon {
			t.Fatalf("round %d: a=%v b=%v, want exactly one winner", i, aWon, bWon)
		}
	}
}

// fakeExec is a minimal Executor: always-idle workers, instant cells.
type fakeExec struct {
	mu   sync.Mutex
	runs int
}

func (f *fakeExec) ExecuteSpec(context.Context, service.JobSpec) ([]byte, error) {
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	return []byte(`{"cell":"ok"}`), nil
}
func (f *fakeExec) StealableCells(int) []service.QueuedCell { return nil }
func (f *fakeExec) LoadHint() (int, int, int)               { return 0, 0, 8 }

// fakePeer is a scripted /fleet/ server that counts claim traffic.
type fakePeer struct {
	ts *httptest.Server

	mu          sync.Mutex
	batchPosts  int      // POST /fleet/claims
	singlePosts int      // POST /fleet/claims/{hash}
	batchHashes []string // hashes seen across batch claim posts
	puts        int      // PUT /fleet/cells/{hash}
	queue       []service.QueuedCell
}

func newFakePeer(queue []service.QueuedCell) *fakePeer {
	f := &fakePeer{queue: queue}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/queue", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		cells := f.queue
		f.queue = nil // served once: a real queue drains as cells are claimed
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(queueResponse{Cells: cells})
	})
	mux.HandleFunc("POST /fleet/claims", func(w http.ResponseWriter, r *http.Request) {
		var req claimBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.batchPosts++
		f.batchHashes = append(f.batchHashes, req.Hashes...)
		f.mu.Unlock()
		results := make([]claimResult, len(req.Hashes))
		for i, h := range req.Hashes {
			results[i] = claimResult{Hash: h, Granted: true, Owner: req.Owner}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(claimBatchResponse{Results: results})
	})
	mux.HandleFunc("POST /fleet/claims/{hash}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.singlePosts++
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(claimResponse{Granted: true, Owner: r.URL.Query().Get("owner")})
	})
	mux.HandleFunc("PUT /fleet/cells/{hash}", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		f.mu.Lock()
		f.puts++
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /fleet/cells/{hash}", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "cell not here", http.StatusNotFound)
	})
	f.ts = httptest.NewServer(mux)
	return f
}

// TestStealBatchClaimsOnePostPerPeer pins the batch claim round: a steal
// batch of four cells must cost exactly one POST /fleet/claims per live
// peer — not one claim request per cell — and no legacy per-hash posts.
func TestStealBatchClaimsOnePostPerPeer(t *testing.T) {
	const batch = 4
	cells := make([]service.QueuedCell, batch)
	hashes := map[string]bool{}
	for i := range cells {
		sum := sha256.Sum256([]byte{byte(i)})
		h := hex.EncodeToString(sum[:])
		cells[i] = service.QueuedCell{Hash: h}
		hashes[h] = true
	}
	victim := newFakePeer(cells)
	defer victim.ts.Close()
	bystander := newFakePeer(nil)
	defer bystander.ts.Close()

	exec := &fakeExec{}
	n := New(Config{
		Self:         "http://stealer.invalid",
		Peers:        []string{victim.ts.URL, bystander.ts.URL},
		Local:        cellstore.NewMemory(64),
		Exec:         exec,
		PeerTimeout:  2 * time.Second,
		PollInterval: 20 * time.Millisecond,
		StealBatch:   batch,
	})
	n.Start()
	defer n.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		victim.mu.Lock()
		done := victim.puts == batch
		victim.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stolen results never delivered: %d/%d puts", victim.puts, batch)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for name, p := range map[string]*fakePeer{"victim": victim, "bystander": bystander} {
		p.mu.Lock()
		if p.batchPosts != 1 {
			t.Errorf("%s: %d batch claim posts for one steal batch, want 1", name, p.batchPosts)
		}
		if p.singlePosts != 0 {
			t.Errorf("%s: %d per-hash claim posts, want 0", name, p.singlePosts)
		}
		if len(p.batchHashes) != batch {
			t.Errorf("%s: batch claimed %d hashes, want %d", name, len(p.batchHashes), batch)
		}
		for _, h := range p.batchHashes {
			if !hashes[h] {
				t.Errorf("%s: claimed unknown hash %s", name, h)
			}
		}
		p.mu.Unlock()
	}
	exec.mu.Lock()
	if exec.runs != batch {
		t.Errorf("executed %d cells, want %d", exec.runs, batch)
	}
	exec.mu.Unlock()
}

// TestFleetAuthRejectsBadToken pins the shared-secret gate: with
// Config.Token set, /fleet/* requests without the exact token are
// rejected with 401 before reaching any handler, and a client Node
// configured with the matching token passes.
func TestFleetAuthRejectsBadToken(t *testing.T) {
	store := cellstore.NewMemory(64)
	svc := service.New(service.Config{Workers: 1, Store: store})
	defer svc.Shutdown(context.Background())
	server := New(Config{
		Self:  "http://server.invalid",
		Local: store,
		Exec:  svc,
		Token: "s3cret",
	})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	get := func(token string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/fleet/queue?max=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set(tokenHeader, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, tc := range []struct {
		name, token string
		want        int
	}{
		{"missing token", "", http.StatusUnauthorized},
		{"wrong token", "s3cret-but-wrong", http.StatusUnauthorized},
		{"right token", "s3cret", http.StatusOK},
	} {
		if got := get(tc.token); got != tc.want {
			t.Errorf("%s: GET /fleet/queue = %d, want %d", tc.name, got, tc.want)
		}
	}
	if rejected := server.Stats()["auth_rejected"]; rejected != 2 {
		t.Errorf("auth_rejected = %d, want 2", rejected)
	}

	// A client Node carrying the matching token gets through the gate:
	// queuePeer round-trips against the authed server.
	client := New(Config{
		Self:  "http://client.invalid",
		Peers: []string{ts.URL},
		Local: cellstore.NewMemory(64),
		Exec:  svc,
		Token: "s3cret",
	})
	defer client.Close()
	if _, err := client.queuePeer(client.peers[0], 1); err != nil {
		t.Fatalf("authed client queuePeer: %v", err)
	}

	// And one with the wrong token is shut out.
	impostor := New(Config{
		Self:  "http://impostor.invalid",
		Peers: []string{ts.URL},
		Local: cellstore.NewMemory(64),
		Exec:  svc,
		Token: "wrong",
	})
	defer impostor.Close()
	if _, err := impostor.queuePeer(impostor.peers[0], 1); err == nil {
		t.Fatal("impostor queuePeer succeeded, want auth error")
	}
}
