package bitops

// Whole-line fold kernels. Every whole-line reduction in the protection
// machinery — granule parity (encode, verify, scrub), the incremental
// check-bit delta on stores, and the 2D scheme's reconstruction sweep —
// is an XOR of a []uint64 run followed by one SWAR parity fold. The XOR
// itself used to reduce through a single accumulator, i.e. a serial
// dependency chain of length len(line); like the classic multi-register
// parity kernels, FoldLine breaks the chain with four independent
// accumulators so the adds retire in parallel, then combines them in a
// two-level tree.
//
// The single-accumulator loops are kept as reference oracles
// (FoldLineRef, FoldLineDeltaRef, FoldLineParityRef, FoldLineStripeRef);
// fold_test.go holds the kernels to them bit for bit, exhaustively over
// line lengths and under fuzzing.

// FoldLine XOR-reduces line to a single word using four independent
// accumulators.
func FoldLine(line []uint64) uint64 {
	var a0, a1, a2, a3 uint64
	i := 0
	for ; i+4 <= len(line); i += 4 {
		a0 ^= line[i]
		a1 ^= line[i+1]
		a2 ^= line[i+2]
		a3 ^= line[i+3]
	}
	for ; i < len(line); i++ {
		a0 ^= line[i]
	}
	return (a0 ^ a1) ^ (a2 ^ a3)
}

// FoldLineRef is the single-accumulator reference for FoldLine.
func FoldLineRef(line []uint64) uint64 {
	var x uint64
	for _, w := range line {
		x ^= w
	}
	return x
}

// FoldLineDelta XOR-reduces the element-wise difference old[i] ^ cur[i]
// to a single word — the quantity the incremental check-bit update needs
// (check ^= Parity(old ^ new), Sec. 3.1). Both slices must have the same
// length.
func FoldLineDelta(old, cur []uint64) uint64 {
	var a0, a1, a2, a3 uint64
	i := 0
	for ; i+4 <= len(cur); i += 4 {
		a0 ^= old[i] ^ cur[i]
		a1 ^= old[i+1] ^ cur[i+1]
		a2 ^= old[i+2] ^ cur[i+2]
		a3 ^= old[i+3] ^ cur[i+3]
	}
	for ; i < len(cur); i++ {
		a0 ^= old[i] ^ cur[i]
	}
	return (a0 ^ a1) ^ (a2 ^ a3)
}

// FoldLineDeltaRef is the single-accumulator reference for FoldLineDelta.
func FoldLineDeltaRef(old, cur []uint64) uint64 {
	var x uint64
	for i := range cur {
		x ^= old[i] ^ cur[i]
	}
	return x
}

// FoldLineParity computes the degree-way interleaved parity of a whole
// line: interleaved parity is linear and stripe-aligned across words, so
// the multi-accumulator XOR fold runs first and a single SWAR log-fold
// finishes.
func FoldLineParity(line []uint64, degree int) uint64 {
	x := FoldLine(line)
	if degree == 8 {
		return Parity8(x)
	}
	return Parity(x, degree)
}

// FoldLineParityRef reduces stripe-by-stripe through the word-level
// reference oracle — an independent evaluation order from the kernel's
// fold-then-parity.
func FoldLineParityRef(line []uint64, degree int) uint64 {
	var out uint64
	for _, w := range line {
		out ^= ParityRef(w, degree)
	}
	return out
}

// FoldLineStripe computes interleaved parity stripe p of a whole line.
func FoldLineStripe(line []uint64, p, degree int) uint64 {
	return (FoldLineParity(line, degree) >> uint(p%degree)) & 1
}

// FoldLineStripeRef is the masked-popcount reference for FoldLineStripe.
func FoldLineStripeRef(line []uint64, p, degree int) uint64 {
	var out uint64
	for _, w := range line {
		out ^= StripeParityRef(w, p, degree)
	}
	return out
}
