// Package bitops provides the 64-bit word-level primitives that the CPPC
// protection machinery is built from: byte rotation (the dataflow of the
// paper's barrel shifter), interleaved-parity stripe arithmetic, and a few
// mask/popcount helpers shared by the parity codes and the fault locator.
//
// All operations are pure functions on uint64 values; the packages above
// this one decide when to apply them (e.g. data is rotated only on its way
// into the R1/R2 registers, never in the cache array itself — Sec. 4.1 of
// the paper).
package bitops

import "math/bits"

// WordBits is the machine word size the paper assumes throughout.
const WordBits = 64

// WordBytes is the number of bytes in a word.
const WordBytes = WordBits / 8

// RotlBytes rotates w left by n bytes (n is taken modulo 8). This is the
// operation performed by the CPPC barrel shifter before a word is XORed
// into a register pair: rotation class c rotates by c bytes.
func RotlBytes(w uint64, n int) uint64 {
	n = ((n % WordBytes) + WordBytes) % WordBytes
	return bits.RotateLeft64(w, n*8)
}

// RotrBytes rotates w right by n bytes; the inverse of RotlBytes, used in
// recovery step 2 ("rotate the result of step 1 in reverse").
func RotrBytes(w uint64, n int) uint64 {
	return RotlBytes(w, -n)
}

// Byte extracts byte i (0 = least significant) of w.
func Byte(w uint64, i int) byte {
	return byte(w >> (uint(i&7) * 8))
}

// SetByte returns w with byte i replaced by b.
func SetByte(w uint64, i int, b byte) uint64 {
	sh := uint(i&7) * 8
	return (w &^ (uint64(0xff) << sh)) | uint64(b)<<sh
}

// The interleaved-parity kernels below are the hottest code in the
// simulator: every load verification and every store re-encode funnels
// through Parity. Two facts make them fast:
//
//   - every valid degree divides 64, and every divisor of 64 is a power of
//     two, so stripe masks for all degrees fit in one small precomputed
//     table (stripeMasks), built once at init from the reference
//     implementation;
//   - interleaved parity of degree d is a SWAR fold: XORing the top half of
//     a 2d-bit-wide value into the bottom half preserves every stripe's
//     parity, so folding 64 -> 32 -> ... -> d bits computes all d stripes
//     branch-free in log2(64/d) shift-XOR pairs (Parity).
//
// The original loop-built implementations are kept as reference oracles
// (StripeMaskRef, StripeParityRef, ParityRef); the equivalence tests and
// fuzzers in bitops_test.go hold the kernels to them bit for bit.

// validDegree reports whether degree is a legal interleave degree: it must
// divide the 64-bit word evenly (all such divisors are powers of two).
func validDegree(degree int) bool {
	return degree > 0 && degree <= WordBits && WordBits%degree == 0
}

// stripeMasks[log2(degree)][p] is StripeMask(p, degree) for the seven valid
// degrees 1, 2, 4, 8, 16, 32, 64.
var stripeMasks [7][]uint64

func init() {
	for lg := 0; lg < 7; lg++ {
		degree := 1 << uint(lg)
		stripeMasks[lg] = make([]uint64, degree)
		for p := 0; p < degree; p++ {
			stripeMasks[lg][p] = StripeMaskRef(p, degree)
		}
	}
}

// StripeMask returns the mask of the bits covered by interleaved parity bit
// p out of degree total bits of parity per 64-bit word. With degree=8,
// parity bit p covers bits p, p+8, ..., p+56 (Sec. 3.6).
func StripeMask(p, degree int) uint64 {
	if !validDegree(degree) {
		panic("bitops: invalid interleaved parity degree")
	}
	return stripeMasks[bits.TrailingZeros(uint(degree))][p%degree]
}

// StripeMaskRef is the loop-built reference implementation of StripeMask,
// kept as the oracle the precomputed tables are checked against.
func StripeMaskRef(p, degree int) uint64 {
	if !validDegree(degree) {
		panic("bitops: invalid interleaved parity degree")
	}
	var m uint64
	for i := p % degree; i < WordBits; i += degree {
		m |= 1 << uint(i)
	}
	return m
}

// StripeParity computes interleaved parity bit p of w for the given degree:
// the XOR of all bits of w whose index is congruent to p modulo degree.
func StripeParity(w uint64, p, degree int) uint64 {
	return (Parity(w, degree) >> uint(p%degree)) & 1
}

// StripeParityRef is the mask-and-popcount reference for StripeParity.
func StripeParityRef(w uint64, p, degree int) uint64 {
	return uint64(bits.OnesCount64(w&StripeMaskRef(p, degree)) & 1)
}

// Parity computes all degree interleaved parity bits of w at once, packed
// into the low bits of the result (bit p of the result is parity stripe p).
//
// It is a SWAR fold: halving the width with a shift-XOR XORs bit i with bit
// i+width/2, which lie in the same stripe whenever degree divides width/2;
// repeating down to the interleave degree leaves stripe p's parity in bit p.
func Parity(w uint64, degree int) uint64 {
	if !validDegree(degree) {
		panic("bitops: invalid interleaved parity degree")
	}
	for s := WordBits / 2; s >= degree; s >>= 1 {
		w ^= w >> uint(s)
	}
	if degree == WordBits {
		return w
	}
	return w & (1<<uint(degree) - 1)
}

// Parity8 is Parity specialized to the paper's evaluated 8-way interleave
// (Sec. 3.6): a fully unrolled three-step fold. The hot encode/verify paths
// in internal/core and internal/protect dispatch here.
func Parity8(w uint64) uint64 {
	w ^= w >> 32
	w ^= w >> 16
	w ^= w >> 8
	return w & 0xff
}

// ParityRef is the stripe-by-stripe reference implementation of Parity,
// kept as the oracle for the SWAR kernels.
func ParityRef(w uint64, degree int) uint64 {
	var out uint64
	for p := 0; p < degree; p++ {
		out |= StripeParityRef(w, p, degree) << uint(p)
	}
	return out
}

// Syndrome returns, for a word whose stored parity was stored and whose
// recomputed parity is current, the set of parity stripes that disagree,
// packed like Parity's result. A nonzero syndrome means detection.
func Syndrome(stored, current uint64) uint64 { return stored ^ current }

// FaultyStripes expands a parity syndrome into the list of stripe indices
// that flagged an error, in ascending order.
func FaultyStripes(syndrome uint64, degree int) []int {
	var out []int
	for p := 0; p < degree; p++ {
		if syndrome&(1<<uint(p)) != 0 {
			out = append(out, p)
		}
	}
	return out
}

// OnesPositions returns the indices of the set bits of w in ascending order.
func OnesPositions(w uint64) []int {
	out := make([]int, 0, bits.OnesCount64(w))
	for w != 0 {
		i := bits.TrailingZeros64(w)
		out = append(out, i)
		w &^= 1 << uint(i)
	}
	return out
}

// ByteMask returns the mask covering byte i of a word.
func ByteMask(i int) uint64 { return uint64(0xff) << (uint(i&7) * 8) }

// NonzeroBytes returns the indices of the bytes of w that contain at least
// one set bit (the "R3 faulty bytes" of locator step 1, Sec. 4.5).
func NonzeroBytes(w uint64) []int {
	var out []int
	for i := 0; i < WordBytes; i++ {
		if w&ByteMask(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// PopCount counts the set bits of w.
func PopCount(w uint64) int { return bits.OnesCount64(w) }

// BitsInByteColumn returns the mask of bits of a word that live in byte
// column col after the word has been rotated left by class bytes; i.e. the
// pre-rotation byte whose contents land in register byte col.
func BitsInByteColumn(col, class int) uint64 {
	src := ((col-class)%WordBytes + WordBytes) % WordBytes
	return ByteMask(src)
}
