package bitops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRotlBytesBasic(t *testing.T) {
	cases := []struct {
		w    uint64
		n    int
		want uint64
	}{
		{0x0102030405060708, 0, 0x0102030405060708},
		{0x0102030405060708, 1, 0x0203040506070801},
		{0x0102030405060708, 7, 0x0801020304050607},
		{0x0102030405060708, 8, 0x0102030405060708},
		{0x00000000000000ff, 1, 0x000000000000ff00},
		{0xff00000000000000, 1, 0x00000000000000ff},
	}
	for _, c := range cases {
		if got := RotlBytes(c.w, c.n); got != c.want {
			t.Errorf("RotlBytes(%#x, %d) = %#x, want %#x", c.w, c.n, got, c.want)
		}
	}
}

func TestRotlNegativeAndLarge(t *testing.T) {
	w := uint64(0xdeadbeefcafebabe)
	for n := -20; n <= 20; n++ {
		a := RotlBytes(w, n)
		b := RotlBytes(w, n+8)
		if a != b {
			t.Errorf("rotation not periodic mod 8 at n=%d: %#x vs %#x", n, a, b)
		}
	}
}

func TestRotrInvertsRotl(t *testing.T) {
	f := func(w uint64, n int) bool {
		return RotrBytes(RotlBytes(w, n), n) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotlDistributesOverXOR(t *testing.T) {
	// The recovery algorithm depends on rotation being linear over XOR.
	f := func(a, b uint64, n int) bool {
		return RotlBytes(a^b, n) == RotlBytes(a, n)^RotlBytes(b, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteAndSetByte(t *testing.T) {
	w := uint64(0x0102030405060708)
	for i := 0; i < 8; i++ {
		want := byte(8 - i)
		if got := Byte(w, i); got != want {
			t.Errorf("Byte(%#x, %d) = %#x, want %#x", w, i, got, want)
		}
	}
	w2 := SetByte(w, 3, 0xaa)
	if Byte(w2, 3) != 0xaa {
		t.Errorf("SetByte failed: got %#x", w2)
	}
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		if Byte(w2, i) != Byte(w, i) {
			t.Errorf("SetByte disturbed byte %d", i)
		}
	}
}

func TestStripeMask(t *testing.T) {
	// Degree 8, stripe 0 covers bits 0, 8, ..., 56.
	want := uint64(0x0101010101010101)
	if got := StripeMask(0, 8); got != want {
		t.Errorf("StripeMask(0,8) = %#x, want %#x", got, want)
	}
	// Degree 1 covers everything.
	if got := StripeMask(0, 1); got != ^uint64(0) {
		t.Errorf("StripeMask(0,1) = %#x", got)
	}
	// Stripes of a degree partition the word.
	for _, degree := range []int{1, 2, 4, 8, 16, 32, 64} {
		var union uint64
		for p := 0; p < degree; p++ {
			m := StripeMask(p, degree)
			if union&m != 0 {
				t.Errorf("degree %d: stripe %d overlaps", degree, p)
			}
			union |= m
		}
		if union != ^uint64(0) {
			t.Errorf("degree %d: stripes do not cover the word", degree)
		}
	}
}

func TestStripeMaskPanicsOnBadDegree(t *testing.T) {
	for _, degree := range []int{0, -1, 3, 65, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StripeMask(0, %d) did not panic", degree)
				}
			}()
			StripeMask(0, degree)
		}()
	}
}

func TestParityDetectsSingleBit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		w := rng.Uint64()
		p := Parity(w, 8)
		bit := rng.Intn(64)
		w2 := w ^ (1 << uint(bit))
		p2 := Parity(w2, 8)
		syn := Syndrome(p, p2)
		if syn == 0 {
			t.Fatalf("single-bit flip at %d undetected", bit)
		}
		stripes := FaultyStripes(syn, 8)
		if len(stripes) != 1 || stripes[0] != bit%8 {
			t.Fatalf("flip at %d flagged stripes %v", bit, stripes)
		}
	}
}

func TestParityDetectsHorizontalBursts(t *testing.T) {
	// 8-way interleaving detects any horizontal burst of <= 8 bits within a
	// word (each stripe sees at most one flip).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		w := rng.Uint64()
		width := 1 + rng.Intn(8)
		start := rng.Intn(64 - width + 1)
		var mask uint64
		for i := 0; i < width; i++ {
			mask |= 1 << uint(start+i)
		}
		if Syndrome(Parity(w, 8), Parity(w^mask, 8)) == 0 {
			t.Fatalf("burst width %d at %d undetected", width, start)
		}
	}
}

func TestParityMissesAlignedDoubleFlip(t *testing.T) {
	// Two flips in the same stripe are invisible — the reason plain parity
	// needs interleaving and CPPC needs Tavg-bounded vulnerability windows.
	w := uint64(0x1234)
	mask := uint64(1)<<0 | uint64(1)<<8 // both in stripe 0 of degree 8
	if Syndrome(Parity(w, 8), Parity(w^mask, 8)) != 0 {
		t.Fatal("aligned double flip unexpectedly detected")
	}
}

func TestOnesPositions(t *testing.T) {
	got := OnesPositions(0b10110)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("OnesPositions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnesPositions = %v, want %v", got, want)
		}
	}
	if len(OnesPositions(0)) != 0 {
		t.Fatal("OnesPositions(0) not empty")
	}
}

func TestNonzeroBytes(t *testing.T) {
	w := uint64(0xff) | uint64(0x01)<<56
	got := NonzeroBytes(w)
	if len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("NonzeroBytes = %v", got)
	}
}

func TestBitsInByteColumn(t *testing.T) {
	// With class 0 (no rotation), register byte col receives cache byte col.
	for col := 0; col < 8; col++ {
		if BitsInByteColumn(col, 0) != ByteMask(col) {
			t.Errorf("class 0, col %d wrong", col)
		}
	}
	// With class 1, register byte 1 receives cache byte 0.
	if BitsInByteColumn(1, 1) != ByteMask(0) {
		t.Error("class 1, col 1 should map from byte 0")
	}
	// Wraparound: register byte 0 with class 1 receives cache byte 7.
	if BitsInByteColumn(0, 1) != ByteMask(7) {
		t.Error("class 1, col 0 should map from byte 7")
	}
}

func TestBitsInByteColumnMatchesRotation(t *testing.T) {
	f := func(w uint64, colRaw, classRaw uint8) bool {
		col := int(colRaw % 8)
		class := int(classRaw % 8)
		rot := RotlBytes(w, class)
		// The bits of rot in byte col came from the source byte mask.
		src := BitsInByteColumn(col, class)
		return RotlBytes(w&src, class) == rot&ByteMask(col)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
