package bitops

import (
	"math/rand"
	"testing"
)

// validDegrees are every interleaving degree the kernels accept.
var validDegrees = []int{1, 2, 4, 8, 16, 32, 64}

// swarTestWords is a structured corpus that exercises every byte lane,
// stripe boundary and fold level: single bits, single bytes, stripe
// masks themselves, saturations, and a dense random sample.
func swarTestWords() []uint64 {
	ws := []uint64{0, ^uint64(0), 0x0101010101010101, 0x8080808080808080,
		0xaaaaaaaaaaaaaaaa, 0x5555555555555555, 0xdeadbeefcafebabe}
	for i := 0; i < 64; i++ {
		ws = append(ws, 1<<uint(i), ^uint64(0)^(1<<uint(i)))
	}
	for i := 0; i < 8; i++ {
		ws = append(ws, ByteMask(i))
	}
	for _, d := range validDegrees {
		for p := 0; p < d; p++ {
			ws = append(ws, StripeMask(p, d))
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4096; i++ {
		ws = append(ws, rng.Uint64())
	}
	return ws
}

// TestParityMatchesRef pins the SWAR fold to the bit-at-a-time oracle
// over the structured corpus, for every valid degree.
func TestParityMatchesRef(t *testing.T) {
	for _, w := range swarTestWords() {
		for _, d := range validDegrees {
			if got, want := Parity(w, d), ParityRef(w, d); got != want {
				t.Fatalf("Parity(%#x, %d) = %#x, ref %#x", w, d, got, want)
			}
		}
	}
}

// TestParity8MatchesRef pins the unrolled degree-8 kernel (the paper's
// evaluated configuration, and the hot path's direct call).
func TestParity8MatchesRef(t *testing.T) {
	for _, w := range swarTestWords() {
		if got, want := Parity8(w), ParityRef(w, 8); got != want {
			t.Fatalf("Parity8(%#x) = %#x, ref %#x", w, got, want)
		}
		if Parity8(w) != Parity(w, 8) {
			t.Fatalf("Parity8(%#x) disagrees with Parity(w, 8)", w)
		}
	}
}

// TestStripeParityMatchesRef covers every (stripe, degree) pair — an
// exhaustive sweep of the mask table — against the masked-popcount
// oracle.
func TestStripeParityMatchesRef(t *testing.T) {
	for _, w := range swarTestWords() {
		for _, d := range validDegrees {
			for p := 0; p < d; p++ {
				if got, want := StripeParity(w, p, d), StripeParityRef(w, p, d); got != want {
					t.Fatalf("StripeParity(%#x, %d, %d) = %#x, ref %#x", w, p, d, got, want)
				}
			}
		}
	}
}

// TestStripeMaskMatchesRef checks the precomputed mask table against the
// generator for every valid (stripe, degree) pair — exhaustive, the
// table is finite.
func TestStripeMaskMatchesRef(t *testing.T) {
	for _, d := range validDegrees {
		for p := 0; p < d; p++ {
			if got, want := StripeMask(p, d), StripeMaskRef(p, d); got != want {
				t.Fatalf("StripeMask(%d, %d) = %#x, ref %#x", p, d, got, want)
			}
		}
	}
}

// TestParityLinearity checks the XOR homomorphism the incremental
// check-bit update (check ^= Parity(old^new)) relies on.
func TestParityLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4096; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		for _, d := range validDegrees {
			if Parity(a^b, d) != Parity(a, d)^Parity(b, d) {
				t.Fatalf("degree %d: parity not linear at %#x, %#x", d, a, b)
			}
		}
	}
}

// FuzzParitySWAR cross-checks the SWAR kernels against the reference
// oracles on fuzzer-chosen words.
func FuzzParitySWAR(f *testing.F) {
	f.Add(uint64(0), uint8(3))
	f.Add(^uint64(0), uint8(0))
	f.Add(uint64(0xdeadbeefcafebabe), uint8(6))
	f.Fuzz(func(t *testing.T, w uint64, dIdx uint8) {
		d := validDegrees[int(dIdx)%len(validDegrees)]
		if got, want := Parity(w, d), ParityRef(w, d); got != want {
			t.Fatalf("Parity(%#x, %d) = %#x, ref %#x", w, d, got, want)
		}
		if d == 8 {
			if got, want := Parity8(w), ParityRef(w, 8); got != want {
				t.Fatalf("Parity8(%#x) = %#x, ref %#x", w, got, want)
			}
		}
		for p := 0; p < d; p++ {
			if got, want := StripeParity(w, p, d), StripeParityRef(w, p, d); got != want {
				t.Fatalf("StripeParity(%#x, %d, %d) = %#x, ref %#x", w, p, d, got, want)
			}
		}
	})
}
