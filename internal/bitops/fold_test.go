package bitops

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// foldTestLines builds a corpus of lines exercising every unroll
// remainder (lengths 0..17 hit all i%4 tails twice), plus long lines and
// structured contents (stripe masks, saturations, single bits).
func foldTestLines() [][]uint64 {
	var lines [][]uint64
	words := swarTestWords()
	rng := rand.New(rand.NewSource(41))
	for n := 0; n <= 17; n++ {
		ln := make([]uint64, n)
		for i := range ln {
			ln[i] = words[rng.Intn(len(words))]
		}
		lines = append(lines, ln)
	}
	for _, n := range []int{32, 64, 257} {
		ln := make([]uint64, n)
		for i := range ln {
			ln[i] = rng.Uint64()
		}
		lines = append(lines, ln)
	}
	return lines
}

// TestFoldLineMatchesRef pins the 4-accumulator fold to the serial
// single-accumulator oracle for every tail length.
func TestFoldLineMatchesRef(t *testing.T) {
	for _, ln := range foldTestLines() {
		if got, want := FoldLine(ln), FoldLineRef(ln); got != want {
			t.Fatalf("FoldLine(len=%d) = %#x, ref %#x", len(ln), got, want)
		}
	}
}

// TestFoldLineDeltaMatchesRef pins the delta fold, and checks it equals
// FoldLine(old) ^ FoldLine(cur) — the linearity the incremental
// check-bit path relies on.
func TestFoldLineDeltaMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, cur := range foldTestLines() {
		old := make([]uint64, len(cur))
		for i := range old {
			old[i] = rng.Uint64()
		}
		got := FoldLineDelta(old, cur)
		if want := FoldLineDeltaRef(old, cur); got != want {
			t.Fatalf("FoldLineDelta(len=%d) = %#x, ref %#x", len(cur), got, want)
		}
		if want := FoldLine(old) ^ FoldLine(cur); got != want {
			t.Fatalf("FoldLineDelta(len=%d) = %#x, FoldLine xor %#x", len(cur), got, want)
		}
	}
}

// TestFoldLineParityMatchesRef pins fold-then-parity against the
// stripe-by-stripe reference reduction for every valid degree.
func TestFoldLineParityMatchesRef(t *testing.T) {
	for _, ln := range foldTestLines() {
		for _, d := range validDegrees {
			if got, want := FoldLineParity(ln, d), FoldLineParityRef(ln, d); got != want {
				t.Fatalf("FoldLineParity(len=%d, %d) = %#x, ref %#x", len(ln), d, got, want)
			}
		}
	}
}

// TestFoldLineStripeMatchesRef covers every (stripe, degree) pair over
// the corpus.
func TestFoldLineStripeMatchesRef(t *testing.T) {
	for _, ln := range foldTestLines() {
		for _, d := range validDegrees {
			for p := 0; p < d; p++ {
				if got, want := FoldLineStripe(ln, p, d), FoldLineStripeRef(ln, p, d); got != want {
					t.Fatalf("FoldLineStripe(len=%d, %d, %d) = %#x, ref %#x", len(ln), p, d, got, want)
				}
			}
		}
	}
}

// FuzzFoldLine cross-checks all fold kernels against their oracles on
// fuzzer-chosen byte strings (interpreted as little-endian words; the
// remainder bytes vary the line length across all unroll tails).
func FuzzFoldLine(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add(make([]byte, 8*9), uint8(6))
	f.Fuzz(func(t *testing.T, raw []byte, dIdx uint8) {
		d := validDegrees[int(dIdx)%len(validDegrees)]
		n := len(raw) / 8
		if n > 4096 {
			n = 4096
		}
		line := make([]uint64, n)
		old := make([]uint64, n)
		for i := range line {
			line[i] = binary.LittleEndian.Uint64(raw[i*8:])
			old[i] = line[i]*0x9e3779b97f4a7c15 + 1
		}
		if got, want := FoldLine(line), FoldLineRef(line); got != want {
			t.Fatalf("FoldLine = %#x, ref %#x", got, want)
		}
		if got, want := FoldLineDelta(old, line), FoldLineDeltaRef(old, line); got != want {
			t.Fatalf("FoldLineDelta = %#x, ref %#x", got, want)
		}
		if got, want := FoldLineParity(line, d), FoldLineParityRef(line, d); got != want {
			t.Fatalf("FoldLineParity(%d) = %#x, ref %#x", d, got, want)
		}
		for p := 0; p < d; p++ {
			if got, want := FoldLineStripe(line, p, d), FoldLineStripeRef(line, p, d); got != want {
				t.Fatalf("FoldLineStripe(%d, %d) = %#x, ref %#x", p, d, got, want)
			}
		}
	})
}
