package coherence

import "math/rand"

// Workload drives a multiprocessor with a mix of private and shared
// traffic. SharedFrac of accesses go to a region all cores contend on
// (migratory/producer-consumer style); the rest go to per-core private
// regions with strong store locality — the pattern that maximizes CPPC's
// read-before-write count on a uniprocessor.
type Workload struct {
	Cores        int
	SharedFrac   float64 // fraction of accesses to the shared region
	StoreFrac    float64 // fraction of accesses that are stores
	SharedBytes  int
	PrivateBytes int
	StoreRehit   float64 // probability a private store revisits a recent target
}

// DefaultWorkload is a write-sharing-heavy configuration.
func DefaultWorkload(cores int) Workload {
	return Workload{
		Cores: cores, SharedFrac: 0.3, StoreFrac: 0.3,
		SharedBytes: 64 << 10, PrivateBytes: 64 << 10,
		StoreRehit: 0.5,
	}
}

// Run issues n accesses round-robin across cores and returns the golden
// memory image for verification.
func (w Workload) Run(m *Multiprocessor, n int, seed int64) map[uint64]uint64 {
	rng := rand.New(rand.NewSource(seed))
	golden := map[uint64]uint64{}
	recent := make([][]uint64, w.Cores)
	for i := range recent {
		recent[i] = make([]uint64, 32)
	}
	var now uint64
	for i := 0; i < n; i++ {
		now++
		core := i % w.Cores
		var addr uint64
		isStore := rng.Float64() < w.StoreFrac
		if rng.Float64() < w.SharedFrac {
			// Shared region: same address space for every core.
			addr = uint64(rng.Intn(w.SharedBytes/8)) * 8
		} else {
			// Private region: disjoint per core, above the shared region.
			base := uint64(w.SharedBytes) + uint64(core)*uint64(w.PrivateBytes)
			if isStore && rng.Float64() < w.StoreRehit {
				if a := recent[core][rng.Intn(len(recent[core]))]; a != 0 {
					addr = a
				} else {
					addr = base + uint64(rng.Intn(w.PrivateBytes/8))*8
				}
			} else {
				addr = base + uint64(rng.Intn(w.PrivateBytes/8))*8
			}
		}
		if isStore {
			v := rng.Uint64()
			golden[addr] = v
			m.Write(core, addr, v, now)
			recent[core][rng.Intn(len(recent[core]))] = addr
		} else {
			m.Read(core, addr, now)
		}
	}
	return golden
}
