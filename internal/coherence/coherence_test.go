package coherence

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
	"cppc/internal/protect"
)

func smallL1() cache.Config {
	cfg, err := cache.Config{
		Name: "mpL1", SizeBytes: 4096, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return cfg
}

func smallL2() cache.Config {
	cfg, err := cache.Config{
		Name: "mpL2", SizeBytes: 64 << 10, Ways: 4, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return cfg
}

func cppcL1(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL1Config()) }
func cppcL2(c *cache.Cache) protect.Scheme { return protect.MustCPPC(c, core.DefaultL2Config()) }

func newMP(n int) *Multiprocessor {
	return New(n, smallL1(), smallL2(), cppcL1, cppcL2, 100)
}

func TestBasicSharing(t *testing.T) {
	m := newMP(2)
	m.Write(0, 0x100, 0xAA, 1)
	// Core 1 reads the line core 0 dirtied: the owner must flush first.
	res := m.Read(1, 0x100, 2)
	if res.Value != 0xAA {
		t.Fatalf("core 1 read %#x", res.Value)
	}
	if m.Stats.OwnerFlushes != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
	// Both copies are now clean (Shared).
	for i := 0; i < 2; i++ {
		set, way := m.L1s[i].C.Probe(0x100)
		if way < 0 {
			t.Fatalf("core %d lost its copy", i)
		}
		if m.L1s[i].C.Line(set, way).DirtyAny() {
			t.Fatalf("core %d copy still dirty after downgrade", i)
		}
	}
	if err := m.CheckCoherent(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := newMP(4)
	for core := 0; core < 4; core++ {
		m.Read(core, 0x200, uint64(core+1))
	}
	m.Write(0, 0x200, 0xBB, 10)
	if m.Stats.Invalidations != 3 {
		t.Fatalf("invalidations = %d", m.Stats.Invalidations)
	}
	for core := 1; core < 4; core++ {
		if _, way := m.L1s[core].C.Probe(0x200); way >= 0 {
			t.Fatalf("core %d still holds an invalidated block", core)
		}
	}
	// The new value is visible everywhere.
	for core := 1; core < 4; core++ {
		if res := m.Read(core, 0x200, uint64(20+core)); res.Value != 0xBB {
			t.Fatalf("core %d reads %#x", core, res.Value)
		}
	}
}

func TestDirtyInvalidationFoldsIntoR2(t *testing.T) {
	m := newMP(2)
	m.Write(0, 0x300, 0xCC, 1)
	eng, _ := schemeEngine(m.L1s[0])
	if m.L1s[0].C.DirtyGranuleCount() != 1 {
		t.Fatal("core 0 should hold one dirty word")
	}
	// A remote write invalidates the Modified copy: the dirty data folds
	// into R2 and the register invariant survives.
	m.Write(1, 0x300, 0xDD, 2)
	if m.Stats.OwnerWritebackInvalidations != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
	if m.L1s[0].C.DirtyGranuleCount() != 0 {
		t.Fatal("core 0 dirty data not cleared")
	}
	if err := eng.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if res := m.Read(0, 0x300, 3); res.Value != 0xDD {
		t.Fatalf("core 0 reads %#x after re-share", res.Value)
	}
}

func schemeEngine(ct *protect.Controller) (*core.Engine, bool) {
	s, ok := ct.Scheme.(*protect.CPPCScheme)
	if !ok {
		return nil, false
	}
	return s.Engine, true
}

func TestGoldenUnderRandomSharing(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		m := newMP(cores)
		w := DefaultWorkload(cores)
		golden := w.Run(m, 20000, 7)
		if err := m.CheckCoherent(); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		// Every golden value must be readable from every core.
		rng := rand.New(rand.NewSource(9))
		now := uint64(1 << 20)
		checked := 0
		for addr, want := range golden {
			if checked > 500 {
				break
			}
			checked++
			core := rng.Intn(cores)
			now++
			if res := m.Read(core, addr, now); res.Value != want {
				t.Fatalf("%d cores: core %d reads %#x at %#x, want %#x",
					cores, core, res.Value, addr, want)
			}
		}
		for i, l1 := range m.L1s {
			if eng, ok := schemeEngine(l1); ok {
				if err := eng.CheckInvariant(); err != nil {
					t.Fatalf("%d cores: L1[%d] invariant: %v", cores, i, err)
				}
			}
		}
		if eng, ok := schemeEngine(m.L2); ok {
			if err := eng.CheckInvariant(); err != nil {
				t.Fatalf("%d cores: L2 invariant: %v", cores, err)
			}
		}
	}
}

// TestSection7Hypothesis: write sharing reduces the read-before-write
// ratio — invalidations keep stealing dirty blocks before their owner can
// store over them again.
func TestSection7Hypothesis(t *testing.T) {
	ratio := func(sharedFrac float64) float64 {
		m := newMP(4)
		w := DefaultWorkload(4)
		w.SharedFrac = sharedFrac
		w.Run(m, 40000, 11)
		st := m.TotalL1Stats()
		return float64(st.ReadBeforeWrite) / float64(st.Stores)
	}
	private := ratio(0)
	shared := ratio(0.8)
	if shared >= private {
		t.Errorf("RBW/store did not drop with sharing: private %.3f, shared %.3f",
			private, shared)
	}
}

// TestFaultRecoveryAcrossCores: a fault in one core's dirty data recovers
// locally; a fault in data another core then reads is transparent.
func TestFaultRecoveryAcrossCores(t *testing.T) {
	m := newMP(2)
	m.Write(0, 0x400, 0xEE, 1)
	set, way := m.L1s[0].C.Probe(0x400)
	m.L1s[0].C.FlipBits(set, way, 0, 1<<21)
	// Core 1 reads: core 0 must flush — the CPPC verifies dirty data on
	// downgrade and recovers before the write-back.
	if res := m.Read(1, 0x400, 2); res.Value != 0xEE {
		t.Fatalf("core 1 reads %#x through a faulty owner", res.Value)
	}
	if res := m.Read(0, 0x400, 3); res.Value != 0xEE {
		t.Fatalf("core 0 re-reads %#x", res.Value)
	}
}

func TestCoherentDetectsViolations(t *testing.T) {
	m := newMP(2)
	m.Write(0, 0x500, 1, 1)
	// Manufacture a violation: force core 1 to also hold the block dirty.
	m.L1s[1].Store(0x500, 2, 2)
	if err := m.CheckCoherent(); err == nil {
		t.Fatal("double-Modified block not detected")
	}
}
