package coherence

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
)

// TestStressRandomOpsWithFaults hammers the protocol with randomized
// multi-core op sequences and periodic single-bit fault injections,
// asserting the coherence invariant and the full golden map after every
// single operation. It runs under the CI race job (go test -race ./...),
// where the map-heavy directory bookkeeping gets checked too.
func TestStressRandomOpsWithFaults(t *testing.T) {
	const ops = 1200
	for _, cores := range []int{2, 3, 4} {
		m := newMP(cores)
		rng := rand.New(rand.NewSource(int64(1000 + cores)))

		// Address pool: one shared region all cores touch plus a small
		// private region per core. All word-aligned.
		var addrs []uint64
		for i := 0; i < 64; i++ {
			addrs = append(addrs, uint64(i)*8) // shared
		}
		for c := 0; c < cores; c++ {
			for i := 0; i < 32; i++ {
				addrs = append(addrs, uint64(c+1)*0x10000+uint64(i)*8)
			}
		}

		golden := map[uint64]uint64{}
		checkAll := func(op int) {
			t.Helper()
			if err := m.CheckCoherent(); err != nil {
				t.Fatalf("%d cores, op %d: %v", cores, op, err)
			}
			for _, a := range addrs {
				if got, want := m.PeekWord(a), golden[a]; got != want {
					t.Fatalf("%d cores, op %d: addr %#x holds %#x, golden %#x",
						cores, op, a, got, want)
				}
			}
		}

		var now uint64
		var nextVal uint64
		for op := 0; op < ops; op++ {
			now++
			c := rng.Intn(cores)
			a := addrs[rng.Intn(len(addrs))]
			if rng.Intn(100) < 40 {
				nextVal++
				m.Write(c, a, nextVal, now)
				golden[a] = nextVal
			} else {
				if res := m.Read(c, a, now); res.Value != golden[a] {
					t.Fatalf("%d cores, op %d: core %d reads %#x at %#x, golden %#x",
						cores, op, c, res.Value, a, golden[a])
				}
			}

			// Every few ops, flip one bit in a random resident word and
			// immediately read it back through the protocol: detection and
			// recovery must restore the golden value before the next op.
			if op%7 == 3 {
				victim := rng.Intn(cores)
				l1 := m.L1s[victim]
				type slot struct{ set, way int }
				var valid []slot
				l1.C.ForEachValid(func(set, way int, _ *cache.Line) {
					valid = append(valid, slot{set, way})
				})
				if len(valid) > 0 {
					s := valid[rng.Intn(len(valid))]
					word := rng.Intn(l1.C.BlockWords())
					l1.C.FlipBits(s.set, s.way, word, 1<<uint(rng.Intn(64)))
					faddr := l1.C.BlockAddr(s.set, s.way) + uint64(word)*8
					now++
					if res := m.Read(victim, faddr, now); res.Value != golden[faddr] {
						t.Fatalf("%d cores, op %d: core %d recovers %#x at %#x, golden %#x",
							cores, op, victim, res.Value, faddr, golden[faddr])
					}
					if l1.Halted {
						t.Fatalf("%d cores, op %d: single-bit fault halted core %d", cores, op, victim)
					}
				}
			}
			checkAll(op)
		}

		// Drain the hierarchy and compare the golden map against memory:
		// every surviving dirty word must land intact.
		now++
		for _, l1 := range m.L1s {
			l1.Flush(now)
		}
		m.L2.Flush(now)
		for _, a := range addrs {
			if got, want := m.Mem.ReadWord(a), golden[a]; got != want {
				t.Fatalf("%d cores: after flush, memory holds %#x at %#x, golden %#x",
					cores, got, a, want)
			}
		}
	}
}
