package coherence

import (
	"cppc/internal/cache"
	"cppc/internal/protect"
)

// Timing prices the protocol events of the bus/directory. All costs are
// in core cycles. The zero value is the untimed protocol (every event
// free), which keeps the functional golden-map tests exact.
type Timing struct {
	// BusCycles is the bus/directory occupancy of one transaction
	// (BusRead or BusReadX): arbitration plus the address phase.
	BusCycles int
	// OwnerFlushCycles is the extra cost when a remote Modified copy must
	// be written back first (M->S downgrade on a read, or the writeback
	// half of invalidating an owner).
	OwnerFlushCycles int
	// InvalidateCycles is the per-copy cost of killing a remote sharer
	// (snoop lookup and acknowledgement).
	InvalidateCycles int
}

// DefaultTiming is the Sec. 7 model: a short split-transaction bus next
// to the shared L2, an owner flush priced like an L1-to-L2 writeback, and
// cheap invalidation acks.
func DefaultTiming() Timing {
	return Timing{BusCycles: 4, OwnerFlushCycles: 10, InvalidateCycles: 2}
}

// busAcquire reserves the bus for d cycles starting no earlier than now
// (FCFS) and returns the total added latency: queueing delay plus d.
func (m *Multiprocessor) busAcquire(now uint64, d int) int {
	start := now
	if m.busFree > start {
		start = m.busFree
	}
	m.busFree = start + uint64(d)
	m.Stats.BusBusyCycles += uint64(d)
	return int(start-now) + d
}

// busExtend keeps the bus busy for d more cycles of the transaction in
// flight (owner flush, invalidation acks) and returns d.
func (m *Multiprocessor) busExtend(d int) int {
	m.busFree += uint64(d)
	m.Stats.BusBusyCycles += uint64(d)
	return d
}

// CorePort is one core's view of the shared hierarchy. It satisfies the
// cpu.MemoryPort seam, so an OoO timing core drives the coherent
// multiprocessor exactly the way a single-core run drives its private
// controller stack — same read-port-steal contention model on top.
type CorePort struct {
	m    *Multiprocessor
	core int
}

// CorePort returns core i's port.
func (m *Multiprocessor) CorePort(i int) CorePort { return CorePort{m: m, core: i} }

func (p CorePort) LoadInto(addr, now uint64, res *protect.AccessResult) {
	p.m.ReadInto(p.core, addr, now, res)
}

func (p CorePort) StoreInto(addr, val, now uint64, res *protect.AccessResult) {
	p.m.WriteInto(p.core, addr, val, now, res)
}

func (p CorePort) PlanStore(addr uint64) (bool, int) { return p.m.L1s[p.core].PlanStoreRBW(addr) }
func (p CorePort) PlanLoadMiss(addr uint64) int      { return p.m.L1s[p.core].PlanLoadVictimRead(addr) }
func (p CorePort) HitLatency() int                   { return p.m.L1s[p.core].C.Cfg.HitLatencyCycles }
func (p CorePort) Halted() bool                      { return p.m.L1s[p.core].Halted || p.m.L2.Halted }

// PrivateHierarchy is false by construction: every access walks the
// shared directory and may invalidate or flush another core's L1, so a
// parallel cpu.Cluster must keep CorePort execution serialized in core
// order (only trace generation fans out). See cpu.PrivateMemory.
func (p CorePort) PrivateHierarchy() bool { return false }

// ResetStats clears every counter after warm-up so a measurement window
// starts clean: cache statistics, occupancy sampling, AND each scheme's
// engine event counters (CPPC folds, recoveries, elided silent stores).
// The event reset mirrors cpu.(*System).ResetStats — resetting the cache
// stats but letting fold counts keep their warmup contribution would
// inflate every multicore energy figure built from them. Bus reservations
// are cycle-absolute and deliberately not reset.
func (m *Multiprocessor) ResetStats() {
	m.Stats = Stats{}
	for _, l1 := range m.L1s {
		l1.Stats = cache.Stats{}
		l1.C.ResetSampling()
		if r, ok := l1.Scheme.(protect.EventResetter); ok {
			r.ResetEvents()
		}
	}
	m.L2.Stats = cache.Stats{}
	m.L2.C.ResetSampling()
	if r, ok := m.L2.Scheme.(protect.EventResetter); ok {
		r.ResetEvents()
	}
	m.Mem.Fetches, m.Mem.WriteBacks = 0, 0
}

// PeekWord returns the globally newest value of the word at addr without
// perturbing any cache state: the owner's dirty copy wins, then any clean
// L1 copy, then the L2, then memory. Checker use only.
func (m *Multiprocessor) PeekWord(addr uint64) uint64 {
	if e, ok := m.lookup(m.block(addr)); ok && e.owner >= 0 {
		if v, ok := m.L1s[e.owner].C.PeekWord(addr); ok {
			return v
		}
	}
	for _, l1 := range m.L1s {
		if v, ok := l1.C.PeekWord(addr); ok {
			return v
		}
	}
	if v, ok := m.L2.C.PeekWord(addr); ok {
		return v
	}
	return m.Mem.ReadWord(addr)
}
