// Package coherence implements a bus/directory-style write-invalidate MSI
// protocol over N private L1 caches and a shared L2 — the substrate for
// the paper's Sec. 7 multiprocessor hypothesis: "In invalidate protocols,
// since many dirty blocks may be invalidated, the number of
// read-before-write operations might decrease which might lead to better
// efficiency in multiprocessor CPPCs."
//
// The protocol maps directly onto the existing protection machinery:
//
//   - a block is Modified in the one L1 whose copy has dirty granules;
//   - Shared copies are valid-and-clean;
//   - a remote read forces the owner to flush (write back, downgrade to
//     Shared: Scheme.OnDowngrade folds the dirty data out of the CPPC
//     registers);
//   - a write invalidates every other copy (Controller.InvalidateBlock);
//     an invalidated Modified block folds its dirty data into R2 on the
//     way out, exactly like an eviction.
//
// Operations are globally ordered (the simulation is sequentially
// consistent), so a golden map is a valid checker.
package coherence

import (
	"fmt"
	"math/bits"
	"sync"

	"cppc/internal/cache"
	"cppc/internal/protect"
)

// Stats counts protocol events.
type Stats struct {
	BusReads                    uint64 // read misses served through the directory
	BusReadX                    uint64 // writes that had to claim ownership
	Invalidations               uint64 // copies killed by remote writes
	OwnerFlushes                uint64 // M->S downgrades forced by remote reads
	OwnerWritebackInvalidations uint64 // M copies killed by remote writes (dirty data folded out)
	BusBusyCycles               uint64 // cycles the bus/directory was reserved (timed runs)
}

// dirEntry tracks one block's global state. Sharers are a bitmask (one
// bit per core, so the system is capped at 64 cores) and entries are
// stored by value: looking up or creating a block's state costs zero
// allocations, where a pointer-and-inner-map representation paid two per
// block plus bucket growth on every new sharer — the dominant allocation
// cost of a multicore cell.
type dirEntry struct {
	sharers uint64 // bitmask of cores holding a valid copy
	owner   int16  // core holding the block Modified, or -1
}

// Multiprocessor is N cores with private L1s over one shared L2.
type Multiprocessor struct {
	L1s []*protect.Controller
	L2  *protect.Controller
	Mem *cache.Memory

	// Timing prices the protocol events (see timing.go). The zero value
	// makes every protocol event free, which is the historical untimed
	// behaviour the functional tests rely on.
	Timing Timing

	dir     map[uint64]dirEntry
	Stats   Stats
	busFree uint64 // first cycle the bus/directory is free again (FCFS)

	blockBytes uint64
	blockShift uint // log2(blockBytes)

	// Direct-mapped directory memo in front of the map: recently touched
	// blocks — sequential runs through a 32-byte block, hot-window and
	// rehit revisits — resolve with one index and compare instead of a
	// map hash. The memo is write-back: a resident slot is the
	// authoritative state for its block (the map may lag behind) and is
	// spilled to the map only when a conflicting block claims the slot,
	// so the per-access hot path never touches the hash map at all.
	// Every reader outside the hot path goes through lookup, which
	// checks the memo before the map.
	memo [dirMemoSize]dirMemoSlot
}

// dirMemoSize is the direct-mapped memo's slot count (power of two).
const dirMemoSize = 4096

// memoIdx hashes a block address to its memo slot. The low block-index
// bits alone would alias a block's shared copy with every core's private
// copy: per-core regions sit at 1MB strides (multiples of 32768 blocks,
// ≡ 0 mod dirMemoSize), so XOR-folding the region bits back in is what
// keeps the copies in distinct slots.
func (m *Multiprocessor) memoIdx(b uint64) uint64 {
	x := b >> m.blockShift
	return (x ^ x>>12) & (dirMemoSize - 1)
}

type dirMemoSlot struct {
	b     uint64
	e     dirEntry
	valid bool
}

// dirPool recycles directory maps across Multiprocessor lifetimes:
// clear() keeps a map's buckets, so a released directory re-serves a
// same-footprint run without re-growing.
var dirPool = sync.Pool{New: func() any { return make(map[uint64]dirEntry, 1024) }}

// SchemeFactory builds a protection scheme for one cache.
type SchemeFactory func(c *cache.Cache) protect.Scheme

// New builds an n-core system. l1cfg/l2cfg describe the caches; mkL1/mkL2
// build each level's protection.
func New(n int, l1cfg, l2cfg cache.Config, mkL1, mkL2 SchemeFactory, memLatency int) *Multiprocessor {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("coherence: cores must be in [1,64], got %d", n))
	}
	mem := cache.NewMemory(l2cfg.BlockBytes, memLatency)
	l2c := cache.New(l2cfg)
	l2 := protect.NewController(l2c, mkL2(l2c), mem)
	m := &Multiprocessor{
		L2: l2, Mem: mem,
		dir:        dirPool.Get().(map[uint64]dirEntry),
		blockBytes: uint64(l1cfg.BlockBytes),
		blockShift: uint(bits.TrailingZeros64(uint64(l1cfg.BlockBytes))),
	}
	for i := 0; i < n; i++ {
		c := cache.New(l1cfg)
		m.L1s = append(m.L1s, protect.NewController(c, mkL1(c), l2))
	}
	return m
}

func (m *Multiprocessor) block(addr uint64) uint64 { return addr &^ (m.blockBytes - 1) }

// Release returns the system's cache arrays and directory map to their
// construction pools for reuse by a future New of the same shape. The
// Multiprocessor — including its controllers, caches and ports — must not
// be used afterwards.
func (m *Multiprocessor) Release() {
	for _, l1 := range m.L1s {
		l1.C.Release()
	}
	m.L2.C.Release()
	m.Mem.Release()
	if m.dir != nil {
		clear(m.dir)
		dirPool.Put(m.dir)
		m.dir = nil
	}
}

// entry loads a block's directory state (a zero-allocation value copy;
// the caller writes the mutated entry back with commit).
func (m *Multiprocessor) entry(addr uint64) (uint64, dirEntry) {
	b := m.block(addr)
	if s := &m.memo[m.memoIdx(b)]; s.valid && s.b == b {
		return b, s.e
	}
	e, ok := m.dir[b]
	if !ok {
		e = dirEntry{owner: -1}
	}
	return b, e
}

// commit publishes a block's (possibly mutated) directory state into
// its memo slot, spilling a displaced block's state to the map.
func (m *Multiprocessor) commit(b uint64, e dirEntry) {
	s := &m.memo[m.memoIdx(b)]
	if s.valid && s.b != b {
		m.dir[s.b] = s.e
	}
	s.b, s.e, s.valid = b, e, true
}

// lookup returns block b's directory state, memo-first (the checker and
// peek paths, which must see the authoritative write-back state).
func (m *Multiprocessor) lookup(b uint64) (dirEntry, bool) {
	if s := &m.memo[m.memoIdx(b)]; s.valid && s.b == b {
		return s.e, true
	}
	e, ok := m.dir[b]
	return e, ok
}

// noteEvictions reconciles the directory with silent L1 replacements: a
// core's copy may have been evicted by capacity pressure without a
// protocol event. Cheap probe-based lazy cleanup over the sharer bits.
func (m *Multiprocessor) reconcile(e *dirEntry, addr uint64) {
	for s := e.sharers; s != 0; s &= s - 1 {
		core := bits.TrailingZeros64(s)
		if _, way := m.L1s[core].C.Probe(addr); way < 0 {
			e.sharers &^= 1 << core
			if int(e.owner) == core {
				e.owner = -1
			}
		}
	}
}

// Read performs a load by `core` at addr (untimed entry point: protocol
// events are counted but cost nothing beyond the cache latencies).
func (m *Multiprocessor) Read(core int, addr, now uint64) protect.AccessResult {
	var res protect.AccessResult
	m.ReadInto(core, addr, now, &res)
	return res
}

// Write performs a store by `core` at addr (untimed entry point).
func (m *Multiprocessor) Write(core int, addr, val, now uint64) protect.AccessResult {
	var res protect.AccessResult
	m.WriteInto(core, addr, val, now, &res)
	return res
}

// ReadInto performs a load by `core` at addr. With a non-zero Timing the
// returned Latency includes bus-wait, bus-transaction, and owner-flush
// cycles on top of the local hierarchy's latency.
func (m *Multiprocessor) ReadInto(core int, addr, now uint64, res *protect.AccessResult) {
	b, e := m.entry(addr)
	// Pure local hit: the requester is already a sharer and its copy is
	// still resident, so no protocol event can fire and the entry cannot
	// change (reconcile only clears bits for silently evicted copies,
	// and every consumer of the sharer bits reconciles again before
	// using them — the cleanup is safely deferred).
	if e.sharers&(1<<core) != 0 {
		if set, way := m.L1s[core].C.Probe(addr); way >= 0 {
			m.L1s[core].LoadResidentInto(set, way, addr, now, res)
			return
		}
	}
	m.reconcile(&e, addr)
	extra := 0
	if e.sharers&(1<<core) == 0 {
		m.Stats.BusReads++
		extra = m.busAcquire(now, m.Timing.BusCycles)
		// A remote Modified copy must reach the L2 before we fetch.
		if e.owner >= 0 && int(e.owner) != core {
			if m.L1s[e.owner].FlushBlock(addr, now) {
				m.Stats.OwnerFlushes++
				extra += m.busExtend(m.Timing.OwnerFlushCycles)
			}
			e.owner = -1
		}
	}
	m.L1s[core].LoadInto(addr, now+uint64(extra), res)
	res.Latency += extra
	e.sharers |= 1 << core
	m.commit(b, e)
}

// WriteInto performs a store by `core` at addr. With a non-zero Timing
// the returned Latency includes bus-wait, bus-transaction, invalidation,
// and owner-writeback cycles on top of the local hierarchy's latency.
func (m *Multiprocessor) WriteInto(core int, addr, val, now uint64, res *protect.AccessResult) {
	b, e := m.entry(addr)
	// Pure local hit: the requester already owns the block Modified and
	// its copy is resident. Ownership implies it was the only sharer, so
	// no invalidation, bus transaction or entry mutation can occur.
	if int(e.owner) == core {
		if set, way := m.L1s[core].C.Probe(addr); way >= 0 {
			m.L1s[core].StoreResidentInto(set, way, addr, val, now, res)
			return
		}
	}
	m.reconcile(&e, addr)
	extra := 0
	if int(e.owner) != core {
		m.Stats.BusReadX++
		extra = m.busAcquire(now, m.Timing.BusCycles)
		for s := e.sharers &^ (1 << core); s != 0; s &= s - 1 {
			other := bits.TrailingZeros64(s)
			wasOwner := int(e.owner) == other
			if m.L1s[other].InvalidateBlock(addr, now) {
				m.Stats.Invalidations++
				extra += m.busExtend(m.Timing.InvalidateCycles)
				if wasOwner {
					m.Stats.OwnerWritebackInvalidations++
					extra += m.busExtend(m.Timing.OwnerFlushCycles)
				}
			}
			e.sharers &^= 1 << other
		}
		e.owner = int16(core)
	}
	m.L1s[core].StoreInto(addr, val, now+uint64(extra), res)
	res.Latency += extra
	e.sharers |= 1 << core
	m.commit(b, e)
}

// CheckCoherent verifies the single-writer/multi-reader invariant: at
// most one L1 holds any block dirty, and dirty copies match the directory
// owner.
func (m *Multiprocessor) CheckCoherent() error {
	type holder struct{ core, set, way int }
	dirtyHolders := map[uint64][]holder{}
	for i, l1 := range m.L1s {
		l1.C.ForEachValid(func(set, way int, ln *cache.Line) {
			if ln.DirtyAny() {
				b := l1.C.BlockAddr(set, way)
				dirtyHolders[b] = append(dirtyHolders[b], holder{i, set, way})
			}
		})
	}
	for b, hs := range dirtyHolders {
		if len(hs) > 1 {
			return fmt.Errorf("coherence: block %#x dirty in %d caches", b, len(hs))
		}
		if e, ok := m.lookup(b); ok && int(e.owner) != hs[0].core {
			return fmt.Errorf("coherence: block %#x dirty in core %d but owner is %d",
				b, hs[0].core, e.owner)
		}
	}
	return nil
}

// TotalL1Stats sums the cache statistics across cores.
func (m *Multiprocessor) TotalL1Stats() cache.Stats {
	var total cache.Stats
	for _, l1 := range m.L1s {
		total.Add(l1.Stats)
	}
	return total
}
