// Package tables renders experiment results as aligned text tables, the
// output format shared by cmd/repro, cmd/cppcsim and the benchmark
// harness.
package tables

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells under a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table with a title and column names.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row built from format/value pairs: each value is
// formatted with %v unless it is a float64, which uses %.3f.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows; the
// title becomes a leading comment line), for plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("# " + t.Title + "\n")
	}
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Sci formats a float in scientific notation suited for MTTF years.
func Sci(v float64) string { return fmt.Sprintf("%.2e", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
