package tables

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.Addf("beta", 2.5)
	tb.Addf("gamma", 42)
	s := tb.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Errorf("missing title:\n%s", s)
	}
	for _, want := range []string{"name", "value", "alpha", "2.500", "42", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Columns align: every line has the same separator position.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 { // title, header, sep, 3 rows
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestWideCellsWidenColumns(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("a-very-long-cell")
	s := tb.String()
	if !strings.Contains(s, "a-very-long-cell") {
		t.Error("cell truncated")
	}
}

func TestFormatters(t *testing.T) {
	if Sci(8.02e21) != "8.02e+21" {
		t.Errorf("Sci = %q", Sci(8.02e21))
	}
	if Pct(0.163) != "16.3%" {
		t.Errorf("Pct = %q", Pct(0.163))
	}
}

func TestCSV(t *testing.T) {
	tb := New("A, title", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `quote"inside`)
	s := tb.CSV()
	want := "# A, title\nname,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
	if s != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", s, want)
	}
	// No title -> no comment line.
	tb2 := New("", "x")
	tb2.AddRow("1")
	if strings.HasPrefix(tb2.CSV(), "#") {
		t.Error("untitled CSV has a comment line")
	}
}
