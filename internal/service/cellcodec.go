package service

import (
	"encoding/json"
	"fmt"

	"cppc/internal/experiments"
)

// cellResult is one executed cell's typed output. Exactly one field is
// set, matching the cell spec's kind. Cells carry the typed value rather
// than rendered text so overlapping sweeps can re-aggregate it into
// whatever artifact their parent job asked for.
type cellResult struct {
	Run       *experiments.Run            `json:"run,omitempty"`       // simulate
	Multicore *experiments.MulticoreRun   `json:"multicore,omitempty"` // multicore point
	L3        *experiments.L3Run          `json:"l3,omitempty"`        // l3 bench
	MC        *experiments.MonteCarloCell `json:"mc,omitempty"`        // montecarlo scheme
	FieldMC   *experiments.FieldMCCell    `json:"fieldmc,omitempty"`   // fieldmc grid cell
}

// encodeCell renders a cell result into the canonical bytes every store
// tier and the fleet wire protocol carry. JSON round-trips each field
// exactly (integers verbatim, float64s in shortest re-parsable form), so
// a cell decoded from disk or a peer aggregates into reports
// byte-identical to a locally computed one.
func encodeCell(res cellResult) ([]byte, error) {
	return json.Marshal(res)
}

// decodeCell parses stored bytes back into a typed cell result. A blob
// carrying no payload at all is rejected, so a torn disk write or a
// malformed peer response can't masquerade as a computed cell — callers
// fall back to recomputation.
func decodeCell(data []byte) (cellResult, error) {
	var res cellResult
	if err := json.Unmarshal(data, &res); err != nil {
		return cellResult{}, fmt.Errorf("cell decode: %w", err)
	}
	if res.Run == nil && res.Multicore == nil && res.L3 == nil && res.MC == nil && res.FieldMC == nil {
		return cellResult{}, fmt.Errorf("cell decode: empty result")
	}
	return res, nil
}
