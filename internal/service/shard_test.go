package service_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"cppc/internal/experiments"
	"cppc/internal/service"
	"cppc/internal/trace"
)

// --- Direct-API helpers -------------------------------------------------

func submitSpec(t *testing.T, s *service.Service, spec service.JobSpec) service.Job {
	t.Helper()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit %+v: %v", spec, err)
	}
	return job
}

func waitJob(t *testing.T, s *service.Service, id string, want func(service.Job) bool, timeout time.Duration) service.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		job, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if want(job) {
			return job
		}
		if job.State == service.StateFailed {
			t.Fatalf("job %s failed: %s", id, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s (progress %d/%d)",
				id, job.State, job.Progress.Done, job.Progress.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func jobDone(j service.Job) bool { return j.State == service.StateDone }

func shutdown(t *testing.T, s *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// tinyBudget keeps per-cell work to a few milliseconds so sweeps finish
// fast even on one worker.
const tinyWarmup, tinyMeasure = 2000, 5000

// --- Shard semantics ----------------------------------------------------

// TestOverlappingSweepsShareCells submits a standalone simulate job and
// then the full suite: the suite must reuse the simulate job's cell from
// the cell cache (they hash to the same cell spec). A multicore point
// job submitted after a multicore sweep must then complete entirely from
// cache, without executing anything.
func TestOverlappingSweepsShareCells(t *testing.T) {
	s := service.New(service.Config{Workers: 4})
	defer shutdown(t, s)

	sim := submitSpec(t, s, service.JobSpec{
		Kind: "simulate", Bench: "gzip", Scheme: "cppc", Warmup: tinyWarmup, Measure: tinyMeasure,
	})
	waitJob(t, s, sim.ID, jobDone, 30*time.Second)
	if hits := s.Metrics().CellCacheHits; hits != 0 {
		t.Fatalf("unexpected cell cache hits before any overlap: %d", hits)
	}

	suite := submitSpec(t, s, service.JobSpec{
		Kind: "suite", Warmup: tinyWarmup, Measure: tinyMeasure,
	})
	done := waitJob(t, s, suite.ID, jobDone, 120*time.Second)
	if done.Progress.Total != 60 || done.Progress.Done != 60 {
		t.Fatalf("suite progress = %d/%d, want 60/60", done.Progress.Done, done.Progress.Total)
	}
	m := s.Metrics()
	if m.CellCacheHits == 0 {
		t.Fatalf("suite did not reuse the simulate job's cached cell: %+v", m)
	}
	if m.CellsCompleted != 1+59 { // simulate cell + the 59 suite cells it didn't cover
		t.Fatalf("cells executed = %d, want 60", m.CellsCompleted)
	}

	// A sweep primes every one of its points for later point jobs.
	sweep := submitSpec(t, s, service.JobSpec{
		Kind: "multicore", Sweep: true, Warmup: tinyWarmup, Measure: tinyMeasure,
	})
	waitJob(t, s, sweep.ID, jobDone, 60*time.Second)
	executed := s.Metrics().CellsCompleted

	point := submitSpec(t, s, service.JobSpec{
		Kind: "multicore", Cores: 8, SharedFrac: 0.6, Warmup: tinyWarmup, Measure: tinyMeasure,
	})
	if !point.CacheHit || point.State != service.StateDone {
		t.Fatalf("sweep-covered point job = %+v, want synchronous cache-hit completion", point)
	}
	if got := s.Metrics().CellsCompleted; got != executed {
		t.Fatalf("point job executed %d extra cells, want 0", got-executed)
	}
	_, res, err := s.JobResult(point.ID)
	if err != nil || res == nil || res.Artifacts["summary"] == "" {
		t.Fatalf("point job result = %+v, %v", res, err)
	}
}

// TestLateJoinReleasesQueueSlot pins the single-flight accounting: a
// job that joins a cell already in flight is marked running at submit
// (Started set) and releases no queue slot it never held — QueueDepth
// must return to zero once both jobs complete, where the leak left it
// stuck at one per late joiner until every Submit reported a full queue.
func TestLateJoinReleasesQueueSlot(t *testing.T) {
	if testing.Short() {
		t.Skip("timed simulation")
	}
	s := service.New(service.Config{Workers: 1, QueueSize: 2})
	defer shutdown(t, s)

	// Long enough to still be in flight when the twin submission lands.
	spec := service.JobSpec{Kind: "simulate", Bench: "gzip", Scheme: "cppc",
		Warmup: 0, Measure: 20_000_000}
	first := submitSpec(t, s, spec)
	waitJob(t, s, first.ID, func(j service.Job) bool { return j.State == service.StateRunning }, 30*time.Second)

	second := submitSpec(t, s, spec)
	if second.State != service.StateRunning || second.Started == nil {
		t.Fatalf("late-joining twin = state %s, started %v; want running with a start time",
			second.State, second.Started)
	}
	waitJob(t, s, first.ID, jobDone, 2*time.Minute)
	done := waitJob(t, s, second.ID, jobDone, 2*time.Minute)
	if done.Started == nil || done.Finished == nil {
		t.Fatalf("late-joining twin finished without timestamps: %+v", done)
	}
	if depth := s.Metrics().QueueDepth; depth != 0 {
		t.Fatalf("queue depth after both twins completed = %d, want 0", depth)
	}
}

// TestCancelParentCancelsCells cancels a running sweep and requires its
// in-flight cell to stop and its queued cells to be discarded — but a
// cell another job still waits on must survive the cancellation.
func TestCancelParentCancelsCells(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	defer shutdown(t, s)

	// Default-budget L3 cells run for seconds each: plenty of time to
	// cancel while the first is in flight and three are queued.
	sweep := submitSpec(t, s, service.JobSpec{Kind: "l3", Sweep: true})
	waitJob(t, s, sweep.ID, func(j service.Job) bool { return j.State == service.StateRunning }, 30*time.Second)

	snap, err := s.Cancel(sweep.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if snap.State != service.StateCanceled || snap.Error == "" {
		t.Fatalf("canceled sweep snapshot = %+v", snap)
	}

	// The orphaned running cell observes its context and the queued cells
	// drain without executing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := s.Metrics()
		if m.CellsRunning == 0 && m.CellsQueued == 0 {
			if m.CellsCompleted != 0 {
				t.Fatalf("canceled sweep still completed %d cells", m.CellsCompleted)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cells did not drain after cancel: %+v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Two identical sweeps ride the same cells (single-flight): canceling
	// one must not take the survivor's cells down with it.
	spec := service.JobSpec{Kind: "multicore", Sweep: true, Warmup: tinyWarmup, Measure: tinyMeasure}
	a := submitSpec(t, s, spec)
	b := submitSpec(t, s, spec)
	if b.Hash != a.Hash {
		t.Fatalf("identical sweeps hash differently: %s vs %s", a.Hash, b.Hash)
	}
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatalf("cancel shared sweep: %v", err)
	}
	done := waitJob(t, s, b.ID, jobDone, 60*time.Second)
	if done.Progress.Done != done.Progress.Total {
		t.Fatalf("surviving sweep progress = %d/%d", done.Progress.Done, done.Progress.Total)
	}
	if _, res, err := s.JobResult(b.ID); err != nil || res == nil || res.Artifacts["sec7"] == "" {
		t.Fatalf("surviving sweep result = %+v, %v", res, err)
	}
}

// TestShardedSuiteByteIdentical requires the sharded suite — on one
// worker and on eight — to render byte-identical artifacts to the
// sequential in-process suite.
func TestShardedSuiteByteIdentical(t *testing.T) {
	budget := experiments.Budget{Warmup: tinyWarmup, Measure: tinyMeasure, Seed: 1}
	seq, err := experiments.RunSuiteCtx(context.Background(), budget, experiments.SuiteOptions{})
	if err != nil {
		t.Fatalf("sequential suite: %v", err)
	}
	want := map[string]string{
		"fig10":  seq.Figure10(),
		"fig11":  seq.Figure11(),
		"fig12":  seq.Figure12(),
		"table2": seq.Table2String(),
		"table3": seq.Table3(),
	}

	for _, workers := range []int{1, 8} {
		s := service.New(service.Config{Workers: workers})
		job := submitSpec(t, s, service.JobSpec{Kind: "suite", Warmup: tinyWarmup, Measure: tinyMeasure})
		waitJob(t, s, job.ID, jobDone, 120*time.Second)
		_, res, err := s.JobResult(job.ID)
		if err != nil || res == nil {
			t.Fatalf("suite result on %d workers: %+v, %v", workers, res, err)
		}
		for name, text := range want {
			if res.Artifacts[name] != text {
				t.Fatalf("artifact %q on %d workers diverges from the sequential suite", name, workers)
			}
		}
		shutdown(t, s)
	}
}

// TestShardedSuiteSpeedup measures the tentpole win: the same suite on
// eight workers must run at least 3x faster than on one. The cells need
// real parallel hardware, so the test is skipped on small machines (the
// byte-identical and sharing tests above run everywhere).
func TestShardedSuiteSpeedup(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 8 {
		t.Skipf("need 8 CPUs for the speedup bound, have %d", p)
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(workers int) time.Duration {
		s := service.New(service.Config{Workers: workers})
		defer shutdown(t, s)
		start := time.Now()
		job := submitSpec(t, s, service.JobSpec{Kind: "suite", Budget: "quick"})
		waitJob(t, s, job.ID, jobDone, 10*time.Minute)
		return time.Since(start)
	}
	wall1 := run(1)
	wall8 := run(8)
	t.Logf("suite wall-clock: 1 worker %v, 8 workers %v (%.2fx)", wall1, wall8, wall1.Seconds()/wall8.Seconds())
	if wall8*3 > wall1 {
		t.Fatalf("8-worker suite only %.2fx faster than 1-worker (want >= 3x)", wall1.Seconds()/wall8.Seconds())
	}
}

// TestSweepSpecNormalization pins the sweep spec surface: sweep applies
// to multicore and l3 only, takes no per-point fields, and montecarlo
// accepts its per-scheme cell form.
func TestSweepSpecNormalization(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	defer shutdown(t, s)

	bad := []service.JobSpec{
		{Kind: "suite", Sweep: true},
		{Kind: "simulate", Bench: "gzip", Scheme: "cppc", Sweep: true},
		{Kind: "multicore", Sweep: true, Cores: 4},
		{Kind: "multicore", Sweep: true, SharedFrac: 0.3},
		{Kind: "l3", Sweep: true, Bench: "mcf"},
		{Kind: "montecarlo", Scheme: "secded"},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted, want rejection", spec)
		}
	}

	mc := submitSpec(t, s, service.JobSpec{Kind: "montecarlo", Scheme: "cppc", Trials: 2})
	done := waitJob(t, s, mc.ID, jobDone, 60*time.Second)
	if done.Progress.Total != 1 {
		t.Fatalf("single-scheme campaign plans %d cells, want 1", done.Progress.Total)
	}
	full := submitSpec(t, s, service.JobSpec{Kind: "montecarlo", Trials: 2})
	waitJob(t, s, full.ID, jobDone, 60*time.Second)
	if m := s.Metrics(); m.CellCacheHits == 0 {
		t.Fatalf("full campaign did not reuse the single-scheme cell: %+v", m)
	}
}

// TestShardedFieldMCByteIdentical requires the sharded fieldmc job — on
// one worker and on eight — to render the field-mix grid byte-identical
// to the sequential in-process campaign, and a single-cell job
// submitted afterwards to complete from the cell cache.
func TestShardedFieldMCByteIdentical(t *testing.T) {
	const trials = 2
	want, err := experiments.FieldMCCtx(context.Background(), trials, 1)
	if err != nil {
		t.Fatalf("sequential fieldmc: %v", err)
	}

	for _, workers := range []int{1, 8} {
		s := service.New(service.Config{Workers: workers})
		job := submitSpec(t, s, service.JobSpec{Kind: "fieldmc", Trials: trials})
		done := waitJob(t, s, job.ID, jobDone, 120*time.Second)
		wantCells := len(experiments.FieldMCPoints()) * len(experiments.FieldMCSchemes())
		if done.Progress.Total != wantCells {
			t.Fatalf("fieldmc sweep plans %d cells, want %d", done.Progress.Total, wantCells)
		}
		_, res, err := s.JobResult(job.ID)
		if err != nil || res == nil {
			t.Fatalf("fieldmc result on %d workers: %+v, %v", workers, res, err)
		}
		if res.Artifacts["fieldmc"] != want {
			t.Fatalf("fieldmc artifact on %d workers diverges from the sequential campaign", workers)
		}

		cell := submitSpec(t, s, service.JobSpec{
			Kind: "fieldmc", Scheme: "cppc",
			Footprint: "word", Lifetime: "stuck", Rate: "x1", Trials: trials,
		})
		waitJob(t, s, cell.ID, jobDone, 60*time.Second)
		if m := s.Metrics(); m.CellCacheHits == 0 {
			t.Fatalf("single fieldmc cell did not reuse the sweep's cell: %+v", m)
		}
		_, cres, err := s.JobResult(cell.ID)
		if err != nil || cres == nil || cres.Values["coverage_rate"] == 0 {
			t.Fatalf("fieldmc cell result = %+v, %v", cres, err)
		}
		shutdown(t, s)
	}
}

// TestFieldMCSpecNormalization pins the fieldmc spec surface: cell
// coordinates are all-or-nothing and must name a real grid point.
func TestFieldMCSpecNormalization(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	defer shutdown(t, s)

	bad := []service.JobSpec{
		{Kind: "fieldmc", Scheme: "cppc"},                                                   // partial coords
		{Kind: "fieldmc", Footprint: "word", Lifetime: "stuck", Rate: "x1"},                 // no scheme
		{Kind: "fieldmc", Scheme: "dram", Footprint: "word", Lifetime: "stuck", Rate: "x1"}, // bad scheme
		{Kind: "fieldmc", Scheme: "cppc", Footprint: "blob", Lifetime: "stuck", Rate: "x1"}, // bad footprint
		{Kind: "fieldmc", Scheme: "cppc", Footprint: "word", Lifetime: "stuck", Rate: "x9"}, // bad rate
		{Kind: "fieldmc", Scheme: "cppc", Footprint: "word", Lifetime: "stuck", Rate: "x1", Sweep: true},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted, want rejection", spec)
		}
	}
}

// TestShardedSilentSweepByteIdentical requires the silent-store sweep —
// sharded on one worker and on eight — to render the Sec. 7 table
// byte-identical to the sequential in-process sweep, and the silent
// knob to address its own cache cells (a plain point must not hit a
// silent cell).
func TestShardedSilentSweepByteIdentical(t *testing.T) {
	budget := experiments.Budget{Warmup: tinyWarmup, Measure: tinyMeasure, Seed: 1}
	prof, ok := trace.ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	pts := experiments.Section7Points()
	runs := make([]experiments.MulticoreRun, 0, len(pts))
	for _, pt := range pts {
		r, err := experiments.MulticoreCellCtx(context.Background(), prof, pt.Cores, pt.SharedFrac, true, budget)
		if err != nil {
			t.Fatalf("sequential silent cell %+v: %v", pt, err)
		}
		runs = append(runs, r)
	}
	want := experiments.Section7Table(runs)

	for _, workers := range []int{1, 8} {
		s := service.New(service.Config{Workers: workers})
		job := submitSpec(t, s, service.JobSpec{
			Kind: "multicore", Sweep: true, Silent: true, Warmup: tinyWarmup, Measure: tinyMeasure,
		})
		waitJob(t, s, job.ID, jobDone, 120*time.Second)
		_, res, err := s.JobResult(job.ID)
		if err != nil || res == nil {
			t.Fatalf("silent sweep result on %d workers: %+v, %v", workers, res, err)
		}
		if res.Artifacts["sec7"] != want {
			t.Fatalf("silent sweep on %d workers diverges from the sequential table:\n%s\nwant:\n%s",
				workers, res.Artifacts["sec7"], want)
		}
		if workers == 1 {
			// A silent point completes from the sweep's cells; a plain
			// point at the same coordinates must not.
			hitsBefore := s.Metrics().CellCacheHits
			silentPt := submitSpec(t, s, service.JobSpec{
				Kind: "multicore", Cores: 8, SharedFrac: 0.6, Silent: true,
				Warmup: tinyWarmup, Measure: tinyMeasure,
			})
			waitJob(t, s, silentPt.ID, jobDone, 60*time.Second)
			if s.Metrics().CellCacheHits == hitsBefore {
				t.Error("silent point did not reuse the silent sweep's cell")
			}
			plainPt := submitSpec(t, s, service.JobSpec{
				Kind: "multicore", Cores: 8, SharedFrac: 0.6,
				Warmup: tinyWarmup, Measure: tinyMeasure,
			})
			done := waitJob(t, s, plainPt.ID, jobDone, 60*time.Second)
			if done.CacheHit {
				t.Error("plain point hit the silent sweep's cache entry")
			}
		}
		shutdown(t, s)
	}
}

// TestSilentSpecNormalization: the silent knob belongs to multicore jobs
// only — on any other kind it is normalized away, so the spellings share
// one cache identity.
func TestSilentSpecNormalization(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	defer shutdown(t, s)

	plain, err := s.Submit(service.JobSpec{Kind: "l3", Warmup: tinyWarmup, Measure: tinyMeasure})
	if err != nil {
		t.Fatal(err)
	}
	silent, err := s.Submit(service.JobSpec{Kind: "l3", Silent: true, Warmup: tinyWarmup, Measure: tinyMeasure})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hash != silent.Hash {
		t.Errorf("silent normalized into the l3 hash: %s vs %s", plain.Hash, silent.Hash)
	}
	waitJob(t, s, plain.ID, jobDone, 120*time.Second)
	waitJob(t, s, silent.ID, jobDone, 120*time.Second)

	a, err := s.Submit(service.JobSpec{Kind: "multicore", Cores: 2, SharedFrac: 0.3, Warmup: tinyWarmup, Measure: tinyMeasure})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(service.JobSpec{Kind: "multicore", Cores: 2, SharedFrac: 0.3, Silent: true, Warmup: tinyWarmup, Measure: tinyMeasure})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash == b.Hash {
		t.Error("silent multicore point shares the plain point's hash")
	}
	waitJob(t, s, a.ID, jobDone, 60*time.Second)
	waitJob(t, s, b.ID, jobDone, 60*time.Second)
}
