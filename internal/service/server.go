package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Server is the HTTP front-end over a Service.
//
//	POST   /jobs             submit a JobSpec; 202 + job snapshot (200 on cache hit)
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result finished job's Result
//	GET    /jobs/{id}/events server-sent events: a status snapshot per change
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /metrics          Metrics JSON
//	GET    /healthz          readiness: 200 serving, 503 draining
type Server struct {
	svc *Service
	mux *http.ServeMux

	// eventPoll is how often the SSE loop re-checks a job for changes;
	// shortened in tests.
	eventPoll time.Duration
}

// NewServer wires the routes.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), eventPoll: 200 * time.Millisecond}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// handleHealthz is the readiness probe fleet membership checks and load
// balancers key off: 200 while the daemon accepts jobs, 503 once a
// drain has begun so traffic (and peer steals) stop landing here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.svc.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Handler returns the routed handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, err := s.svc.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	case job.CacheHit:
		writeJSON(w, http.StatusOK, job)
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.svc.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.svc.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, res, err := s.svc.JobResult(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if res == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s, no result yet", job.ID, job.State))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Metrics())
}

// handleEvents streams job snapshots as server-sent events until the job
// reaches a terminal state or the client goes away. Each event carries
// the full status JSON; a snapshot is emitted only when Version moves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.svc.Job(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	lastVersion := -1
	ticker := time.NewTicker(s.eventPoll)
	defer ticker.Stop()
	for {
		job, err := s.svc.Job(id)
		if err != nil {
			return
		}
		if job.Version != lastVersion {
			lastVersion = job.Version
			raw, _ := json.Marshal(job)
			fmt.Fprintf(w, "event: status\ndata: %s\n\n", raw)
			flusher.Flush()
		}
		if job.State.terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
