package service

import (
	"sync"

	"cppc/internal/experiments"
)

// cellResult is one executed cell's typed output. Exactly one field is
// set, matching the cell spec's kind. Cells cache the typed value rather
// than rendered text so overlapping sweeps can re-aggregate it into
// whatever artifact their parent job asked for.
type cellResult struct {
	Run       *experiments.Run            // simulate
	Multicore *experiments.MulticoreRun   // multicore point
	L3        *experiments.L3Run          // l3 bench
	MC        *experiments.MonteCarloCell // montecarlo scheme
}

// cellCache is the per-cell twin of resultCache: a bounded
// content-addressed cache of executed cell results keyed by the cell
// spec's canonical hash. Because cells of different parents share hashes
// (a suite cell is a simulate spec), overlapping sweeps reuse each
// other's work through here. Eviction is FIFO by insertion, same as the
// job-level cache.
type cellCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]cellResult
	order   []string
	hits    uint64
	misses  uint64
}

func newCellCache(max int) *cellCache {
	if max <= 0 {
		max = 1024
	}
	return &cellCache{max: max, entries: make(map[string]cellResult)}
}

// get looks up a cell result and counts the hit or miss.
func (c *cellCache) get(hash string) (cellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[hash]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

// put stores a cell result, evicting the oldest entry when full.
func (c *cellCache) put(hash string, r cellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[hash]; ok {
		c.entries[hash] = r
		return
	}
	if len(c.order) == c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[hash] = r
	c.order = append(c.order, hash)
}

// stats returns the counters for /metrics.
func (c *cellCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
