package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cppc/internal/experiments"
	"cppc/internal/trace"
)

// Config sizes the daemon.
type Config struct {
	Workers   int // concurrent jobs; <= 0 means runtime.GOMAXPROCS(0)
	QueueSize int // jobs waiting beyond the running ones; <= 0 means 64
	CacheSize int // retained results; <= 0 means 256
}

// Errors surfaced to the HTTP layer.
var (
	ErrNotFound  = errors.New("no such job")
	ErrQueueFull = errors.New("job queue is full")
	ErrClosed    = errors.New("service is shutting down")
)

// Service owns the job table, the FIFO queue, the worker pool and the
// result cache. One mutex guards the job table and every Job's fields;
// snapshots returned to callers are copies.
type Service struct {
	cfg   Config
	cache *resultCache

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	queue  chan *Job
	closed bool
	nextID int

	started   time.Time
	busy      int   // workers currently running a job
	busyNanos int64 // cumulative busy time across finished jobs

	// Latency aggregates over jobs that actually ran (cache hits are
	// excluded: they are free by construction).
	waitNanos   int64 // submit -> start
	runNanos    int64 // start -> finish
	runNanosMax int64
	ranJobs     int

	submitted, completed, failed, canceled int

	wg sync.WaitGroup
}

// New builds the service and starts its workers.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	s := &Service{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueSize),
		started: time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a job. A spec whose canonical hash is
// already cached completes immediately (CacheHit set) without touching
// the queue.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	norm, err := spec.normalize()
	if err != nil {
		return Job{}, err
	}
	hash := norm.hash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, ErrClosed
	}
	now := time.Now()
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Hash:      hash,
		Spec:      norm,
		State:     StateQueued,
		Submitted: now,
	}

	if res, ok := s.cache.get(hash); ok {
		job.State = StateDone
		job.CacheHit = true
		job.result = res
		job.Progress = Progress{Done: 1, Total: 1}
		job.Started, job.Finished = &now, &now
		job.Version++
		s.register(job)
		s.submitted++
		s.completed++
		return *job, nil
	}

	select {
	case s.queue <- job:
	default:
		return Job{}, ErrQueueFull
	}
	s.register(job)
	s.submitted++
	return *job, nil
}

// register must run under s.mu.
func (s *Service) register(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

// Job returns a snapshot of one job.
func (s *Service) Job(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return *j, nil
}

// JobResult returns a finished job's result.
func (s *Service) JobResult(id string) (Job, *Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, nil, ErrNotFound
	}
	return *j, j.result, nil
}

// Jobs lists snapshots in submission order.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Cancel cancels a queued or running job. Terminal jobs are left alone
// (the returned snapshot tells the caller which case they hit).
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		// The job stays in the channel; the worker that drains it sees
		// the terminal state and skips it.
		now := time.Now()
		j.State = StateCanceled
		j.Error = "canceled before start"
		j.Finished = &now
		j.Version++
		s.canceled++
	case StateRunning:
		j.cancel() // the worker observes ctx and finishes the transition
	}
	return *j, nil
}

// Shutdown stops accepting submissions and drains the queue: every
// accepted job still runs to completion. When ctx expires first, the
// remaining running jobs are canceled and Shutdown returns ctx's error
// after the workers exit.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.State == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the FIFO queue until shutdown closes it.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

func (s *Service) runJob(job *Job) {
	s.mu.Lock()
	if job.State != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	now := time.Now()
	job.cancel = cancel
	job.State = StateRunning
	job.Started = &now
	job.Version++
	s.busy++
	s.mu.Unlock()

	res, err := s.execute(ctx, job)

	s.mu.Lock()
	defer s.mu.Unlock()
	end := time.Now()
	runNs := end.Sub(*job.Started).Nanoseconds()
	s.busy--
	s.busyNanos += runNs
	s.waitNanos += job.Started.Sub(job.Submitted).Nanoseconds()
	s.runNanos += runNs
	if runNs > s.runNanosMax {
		s.runNanosMax = runNs
	}
	s.ranJobs++
	job.Finished = &end
	job.Version++
	switch {
	case err == nil:
		job.State = StateDone
		job.result = res
		s.cache.put(job.Hash, res)
		s.completed++
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.State = StateCanceled
		job.Error = "canceled"
		s.canceled++
	default:
		job.State = StateFailed
		job.Error = err.Error()
		s.failed++
	}
}

// setProgress publishes a progress update.
func (s *Service) setProgress(job *Job, done, total int) {
	s.mu.Lock()
	job.Progress = Progress{Done: done, Total: total}
	job.Version++
	s.mu.Unlock()
}

// execute runs one job's work under its cancellation context.
func (s *Service) execute(ctx context.Context, job *Job) (*Result, error) {
	start := time.Now()
	spec := job.Spec
	res := &Result{Kind: spec.Kind, Artifacts: map[string]string{}}

	switch spec.Kind {
	case KindSuite:
		s.setProgress(job, 0, len(trace.Profiles())*4)
		suite, err := experiments.RunSuiteCtx(ctx, spec.budget(), experiments.SuiteOptions{
			Parallel:   spec.Parallel,
			OnProgress: func(done, total int) { s.setProgress(job, done, total) },
		})
		if err != nil {
			return nil, err
		}
		want := spec.Figures
		if len(want) == 0 {
			want = suiteArtifacts
		}
		for _, f := range want {
			switch f {
			case "fig10":
				res.Artifacts[f] = suite.Figure10()
			case "fig11":
				res.Artifacts[f] = suite.Figure11()
			case "fig12":
				res.Artifacts[f] = suite.Figure12()
			case "table2":
				res.Artifacts[f] = suite.Table2String()
			case "table3":
				res.Artifacts[f] = suite.Table3()
			}
		}
	case KindSimulate:
		prof, _ := trace.ProfileByName(spec.Bench)
		id, _ := parseScheme(spec.Scheme) // both validated by normalize
		s.setProgress(job, 0, 1)
		run, err := experiments.SimulateCtx(ctx, prof, id, spec.budget())
		if err != nil {
			return nil, err
		}
		s.setProgress(job, 1, 1)
		res.Values = map[string]float64{
			"cpi":            run.CPI,
			"l1_misses":      float64(run.L1.Misses),
			"l1_accesses":    float64(run.L1.Accesses()),
			"l2_misses":      float64(run.L2.Misses),
			"l2_accesses":    float64(run.L2.Accesses()),
			"l1_dirty_frac":  run.L1Gran.Dirty,
			"l2_dirty_frac":  run.L2Gran.Dirty,
			"l1_tavg_cycles": run.L1Gran.Tavg,
			"l2_tavg_cycles": run.L2Gran.Tavg,
		}
		res.Artifacts["summary"] = fmt.Sprintf("%s/%s: CPI %.4f (L1 %d/%d misses, L2 %d/%d)\n",
			run.Bench, run.Scheme, run.CPI,
			run.L1.Misses, run.L1.Accesses(), run.L2.Misses, run.L2.Accesses())
	case KindMonteCarlo:
		s.setProgress(job, 0, 1)
		out, err := experiments.MonteCarloValidationCtx(ctx, spec.Trials, spec.Seed)
		if err != nil {
			return nil, err
		}
		s.setProgress(job, 1, 1)
		res.Artifacts["montecarlo"] = out
	case KindMulticore:
		prof, _ := trace.ProfileByName(spec.Bench) // validated by normalize
		s.setProgress(job, 0, 1)
		run, err := experiments.MulticoreCellCtx(ctx, prof, spec.Cores, spec.SharedFrac, spec.budget())
		if err != nil {
			return nil, err
		}
		s.setProgress(job, 1, 1)
		rbwPerStore := 0.0
		if run.L1.Stores > 0 {
			rbwPerStore = float64(run.L1.ReadBeforeWrite) / float64(run.L1.Stores)
		}
		res.Values = map[string]float64{
			"cpi":             run.CPI,
			"cycles":          float64(run.Cycles),
			"instructions":    float64(run.Instructions),
			"rbw_per_store":   rbwPerStore,
			"bus_reads":       float64(run.Coherence.BusReads),
			"bus_readx":       float64(run.Coherence.BusReadX),
			"invalidations":   float64(run.Coherence.Invalidations),
			"owner_flushes":   float64(run.Coherence.OwnerFlushes),
			"bus_busy_cycles": float64(run.Coherence.BusBusyCycles),
			"dirty_l1_frac":   run.DirtyL1,
		}
		res.Artifacts["summary"] = fmt.Sprintf(
			"%s x%d cores (shared %.2f): CPI %.4f over %d cycles; RBW/store %.4f, %d invalidations, %d owner flushes\n",
			run.Bench, run.Cores, run.SharedFrac, run.CPI, run.Cycles,
			rbwPerStore, run.Coherence.Invalidations, run.Coherence.OwnerFlushes)
	case KindL3:
		prof, _ := trace.ProfileByName(spec.Bench) // validated by normalize
		s.setProgress(job, 0, 1)
		run, err := experiments.L3Cell(ctx, prof, spec.budget())
		if err != nil {
			return nil, err
		}
		s.setProgress(job, 1, 1)
		res.Values = map[string]float64{
			"cpi_parity":       run.ParityCPI,
			"cpi_cppc_l3":      run.CPPCL3CPI,
			"cpi_cppc_l2":      run.CPPCL2CPI,
			"l3_accesses":      float64(run.L3Accesses),
			"l3_miss_rate":     run.L3MissRate,
			"rbw_per_store_l2": run.RBWPerStoreL2,
			"rbw_per_store_l3": run.RBWPerStoreL3,
			"l3_energy_ratio":  run.EnergyRatio,
		}
		res.Artifacts["summary"] = fmt.Sprintf(
			"%s L3 study: CPI parity %.4f, cppc@L3 %.4f, cppc@L2 %.4f; RBW/store L2 %.4f vs L3 %.4f; L3 energy ratio %.4f\n",
			run.Bench, run.ParityCPI, run.CPPCL3CPI, run.CPPCL2CPI,
			run.RBWPerStoreL2, run.RBWPerStoreL3, run.EnergyRatio)
	default:
		return nil, fmt.Errorf("unknown job kind %q", spec.Kind) // unreachable after normalize
	}

	res.ElapsedMs = time.Since(start).Milliseconds()
	return res, nil
}
