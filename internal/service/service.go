package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cppc/internal/cellstore"
	"cppc/internal/experiments"
	"cppc/internal/trace"
)

// Config sizes the daemon.
type Config struct {
	Workers       int // concurrent cells; <= 0 means runtime.GOMAXPROCS(0)
	QueueSize     int // jobs with cells still awaiting a worker; <= 0 means 64
	CacheSize     int // retained job results; <= 0 means 256
	CellCacheSize int // retained cell results when Store is nil; <= 0 means 1024

	// Store is the composed cell-result store the scheduler reads and
	// writes through (memory tier, optionally disk below it). nil means
	// a memory-only store bounded by CellCacheSize.
	Store cellstore.Store
}

// Coordinator distributes cell execution across a fleet of daemons. The
// scheduler calls RunCell for every cell that missed the local store;
// the coordinator may fetch the result from a peer, claim the cell
// fleet-wide and run local, or — when peers are slow or dead — fall back
// to local anyway. internal/fleet implements it; nil means single-daemon.
type Coordinator interface {
	// RunCell returns the cell's canonical encoded bytes. local executes
	// the cell in this process and must be the fallback whenever peers
	// cannot produce the result.
	RunCell(ctx context.Context, hash string, local func(context.Context) ([]byte, error)) ([]byte, error)
	// Stats returns fleet counters for /metrics.
	Stats() map[string]int64
}

// QueuedCell is one cell awaiting a local worker, exposed over the fleet
// protocol so idle peers can steal it.
type QueuedCell struct {
	Hash string  `json:"hash"`
	Spec JobSpec `json:"spec"`
}

// Errors surfaced to the HTTP layer.
var (
	ErrNotFound  = errors.New("no such job")
	ErrQueueFull = errors.New("job queue is full")
	ErrClosed    = errors.New("service is shutting down")
)

// cellJob is one schedulable cell: the shared unit of work that one or
// more parent jobs are waiting on. Cells are deduplicated by hash — a
// suite and a standalone simulate of the same benchmark, or two sweeps
// sharing a point, ride the same cellJob.
type cellJob struct {
	hash     string
	spec     JobSpec
	enqueued time.Time
	parents  []*Job // jobs awaiting this cell; empty means orphaned

	running   bool
	startedAt time.Time
	cancel    context.CancelFunc
}

// Service owns the job table, the cell run queue, the worker pool and
// the two result caches (whole jobs and individual cells). Every
// submitted job is planned into cells; workers pull cells, not jobs, so
// one sweep fans out across the whole pool. One mutex guards the job
// table, the scheduler state and every Job's fields; snapshots returned
// to callers are copies.
type Service struct {
	cfg   Config
	cache *resultCache
	store cellstore.Store

	mu     sync.Mutex
	cond   *sync.Cond // signaled when runq grows or the service closes
	jobs   map[string]*Job
	order  []string            // submission order, for listing
	cells  map[string]*cellJob // queued or running cells, by hash
	runq   []*cellJob          // FIFO of cells awaiting a worker
	closed bool
	nextID int

	backlogJobs int // jobs with >=1 cell still awaiting a worker, bounded by cfg.QueueSize

	started   time.Time
	busy      int   // workers currently running a cell
	busyNanos int64 // cumulative busy time across finished cells

	// Latency aggregates over cells that actually executed (cache hits
	// are excluded: they are free by construction).
	waitNanos   int64 // cell enqueue -> start
	runNanos    int64 // cell start -> finish
	runNanosMax int64
	ranCells    int

	submitted, completed, failed, canceled int
	jobsByKind                             map[string]int
	cellsCompleted                         int
	cellsExecuted                          int // cells this process actually simulated (incl. fleet steals)

	coord Coordinator // fleet coordinator; nil means single-daemon

	wg sync.WaitGroup
}

// New builds the service and starts its workers.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Store == nil {
		cfg.Store = cellstore.NewMemory(cfg.CellCacheSize)
	}
	s := &Service{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheSize),
		store:      cfg.Store,
		jobs:       make(map[string]*Job),
		cells:      make(map[string]*cellJob),
		jobsByKind: make(map[string]int),
		started:    time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates a job, plans it into cells and schedules the cells
// that are not already cached or in flight. A spec whose canonical hash
// is already in the job cache — or whose every cell is in the cell
// cache — completes immediately (CacheHit set) without touching the
// queue.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	norm, err := spec.normalize()
	if err != nil {
		return Job{}, err
	}
	hash := norm.hash()
	plan := planCells(norm)

	// Probe the caches before taking the scheduler lock: the store's
	// disk tier does file I/O, and fresh work misses every probe — none
	// of that belongs under s.mu. A cell completing between probe and
	// enqueue is caught again by the worker's pre-execution store check.
	jobRes, jobHit := s.cache.get(hash)
	var planHash []string
	var cellHits []*cellResult
	if !jobHit {
		planHash = make([]string, len(plan))
		cellHits = make([]*cellResult, len(plan))
		for i, c := range plan {
			planHash[i] = c.hash()
			if data, ok := s.store.Get(planHash[i]); ok {
				if res, err := decodeCell(data); err == nil {
					r := res
					cellHits[i] = &r
				}
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, ErrClosed
	}
	now := time.Now()
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Hash:      hash,
		Spec:      norm,
		State:     StateQueued,
		Submitted: now,
	}

	if jobHit {
		job.State = StateDone
		job.CacheHit = true
		job.result = jobRes
		job.Progress = Progress{Done: 1, Total: 1}
		job.Started, job.Finished = &now, &now
		job.Version++
		s.register(job)
		s.completed++
		return *job, nil
	}

	job.plan = plan
	job.planHash = planHash
	job.cellIdx = make(map[string]int, len(plan))
	job.cellRes = make([]cellResult, len(plan))
	job.delivered = make([]bool, len(plan))
	job.remaining = len(plan)
	job.Progress = Progress{Done: 0, Total: len(plan)}

	var missing []int
	for i := range plan {
		job.cellIdx[planHash[i]] = i
		if cellHits[i] != nil {
			job.cellRes[i] = *cellHits[i]
			job.delivered[i] = true
			job.remaining--
			job.Progress.Done++
		} else {
			missing = append(missing, i)
		}
	}

	if job.remaining == 0 {
		// Every cell was computed before under some other parent:
		// assemble the report synchronously — the whole job is a cache
		// hit even though this exact spec never ran. Rendering every
		// artifact can take a while, so drop the lock for the render
		// (the job is still local; nothing else can see it yet).
		s.mu.Unlock()
		res, err := aggregate(norm, job.cellRes)
		s.mu.Lock()
		if err != nil {
			return Job{}, err
		}
		if s.closed {
			return Job{}, ErrClosed
		}
		job.State = StateDone
		job.CacheHit = true
		job.result = res
		job.Started, job.Finished = &now, &now
		job.Version++
		s.cache.put(hash, res)
		s.register(job)
		s.completed++
		return *job, nil
	}

	// Admission: a job counts against the queue bound until every cell
	// it is waiting on has started, so the run queue can accumulate at
	// most the plans of cfg.QueueSize jobs. Cells already in flight are
	// free to join (single-flight adds no work).
	unstarted := 0
	joinedRunning := false
	for _, i := range missing {
		if c, ok := s.cells[job.planHash[i]]; ok && c.running {
			joinedRunning = true
		} else {
			unstarted++
		}
	}
	if unstarted > 0 {
		if s.backlogJobs >= s.cfg.QueueSize {
			return Job{}, ErrQueueFull
		}
		s.backlogJobs++
	}
	job.unstarted = unstarted
	for _, i := range missing {
		h := job.planHash[i]
		if c, ok := s.cells[h]; ok {
			c.parents = append(c.parents, job) // single-flight: join the in-flight cell
			continue
		}
		c := &cellJob{hash: h, spec: plan[i], enqueued: now, parents: []*Job{job}}
		s.cells[h] = c
		s.runq = append(s.runq, c)
	}
	s.cond.Broadcast()
	s.register(job)
	if joinedRunning {
		// Joining a cell that already started means the job is running
		// right now; without this it would reach StateDone straight from
		// StateQueued with Started unset.
		s.markRunningLocked(job, now)
	}
	return *job, nil
}

// register must run under s.mu. It indexes the job and counts the
// submission.
func (s *Service) register(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.submitted++
	s.jobsByKind[job.Spec.Kind]++
}

// Job returns a snapshot of one job.
func (s *Service) Job(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return *j, nil
}

// JobResult returns a finished job's result.
func (s *Service) JobResult(id string) (Job, *Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, nil, ErrNotFound
	}
	return *j, j.result, nil
}

// Jobs lists snapshots in submission order.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Cancel cancels a queued or running job: the job is detached from its
// cells, any cell it was the last parent of is canceled (running) or
// dropped (queued), and cells other jobs still wait on keep running.
// Terminal jobs are left alone (the returned snapshot tells the caller
// which case they hit).
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	now := time.Now()
	switch j.State {
	case StateQueued:
		s.finishCanceledLocked(j, "canceled before start", now)
	case StateRunning:
		s.finishCanceledLocked(j, "canceled", now)
	}
	return *j, nil
}

// finishCanceledLocked moves a non-terminal job to StateCanceled and
// releases its cells. Must run under s.mu.
func (s *Service) finishCanceledLocked(j *Job, reason string, now time.Time) {
	s.detachLocked(j)
	s.clearBacklogLocked(j)
	j.State = StateCanceled
	j.Error = reason
	j.Finished = &now
	j.Version++
	s.canceled++
}

// detachLocked removes the job from every cell it is still waiting on.
// A running cell with no parents left is canceled; a queued one stays in
// the run queue and is discarded when a worker pops it. Must run under
// s.mu.
func (s *Service) detachLocked(j *Job) {
	for i, h := range j.planHash {
		if j.delivered[i] {
			continue
		}
		c, ok := s.cells[h]
		if !ok {
			continue
		}
		for k, p := range c.parents {
			if p == j {
				c.parents = append(c.parents[:k], c.parents[k+1:]...)
				break
			}
		}
		if len(c.parents) == 0 && c.running && c.cancel != nil {
			c.cancel()
		}
	}
}

// Shutdown stops accepting submissions and drains the run queue: every
// accepted job still runs to completion. When ctx expires first, the
// remaining jobs are canceled (in-flight cells via their contexts) and
// Shutdown returns ctx's error after the workers exit.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		now := time.Now()
		for _, j := range s.jobs {
			if !j.State.terminal() {
				s.finishCanceledLocked(j, "canceled", now)
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker pulls cells off the run queue until shutdown drains it. The
// loop body runs under s.mu except for the cell execution itself.
func (s *Service) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for len(s.runq) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.runq) == 0 { // closed and drained
			s.mu.Unlock()
			return
		}
		c := s.runq[0]
		s.runq = s.runq[1:]
		if len(c.parents) == 0 { // orphaned while queued
			delete(s.cells, c.hash)
			continue
		}

		start := time.Now()
		ctx, cancel := context.WithCancel(context.Background())
		c.cancel = cancel
		c.running = true
		c.startedAt = start
		for _, p := range c.parents {
			s.markRunningLocked(p, start)
			s.cellStartedLocked(p)
		}
		s.busy++
		s.waitNanos += start.Sub(c.enqueued).Nanoseconds()
		// Intra-cell parallelism hint: workers with neither a running cell
		// nor queued work to pick up would otherwise idle, so this cell may
		// fan its internal independent phases (per-core trace generation,
		// the l3 placement runs) across them. Purely a wall-clock knob —
		// cell results and cache keys are identical whatever it says.
		spare := s.cfg.Workers - s.busy - len(s.runq)
		s.mu.Unlock()
		if spare > 0 {
			ctx = experiments.WithCellWorkers(ctx, 1+spare)
		}

		res, err := s.runCell(ctx, c.hash, c.spec)
		cancel()

		s.mu.Lock()
		end := time.Now()
		runNs := end.Sub(start).Nanoseconds()
		s.busy--
		s.busyNanos += runNs
		s.runNanos += runNs
		if runNs > s.runNanosMax {
			s.runNanosMax = runNs
		}
		s.ranCells++
		delete(s.cells, c.hash)
		if err == nil {
			s.cellsCompleted++
			var ready []*Job // parents this cell completed
			for _, p := range c.parents {
				if s.deliverLocked(p, c.hash, res) {
					ready = append(ready, p)
				}
			}
			if len(ready) > 0 {
				// Aggregation renders every artifact of the parent job;
				// do it outside the lock so the other workers and the
				// API handlers keep moving. The parents' cell slices are
				// complete and no longer written to, so reading them
				// unlocked is safe.
				s.mu.Unlock()
				aggs := make([]*Result, len(ready))
				errs := make([]error, len(ready))
				for i, p := range ready {
					aggs[i], errs[i] = aggregate(p.Spec, p.cellRes)
				}
				s.mu.Lock()
				for i, p := range ready {
					s.finishAggregatedLocked(p, aggs[i], errs[i], end)
				}
			}
		} else {
			canceled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
			for _, p := range c.parents {
				s.failLocked(p, err, canceled, end)
			}
		}
	}
}

// markRunningLocked moves a queued parent to StateRunning when its first
// cell starts (or when it joins a cell that had already started). Must
// run under s.mu.
func (s *Service) markRunningLocked(p *Job, now time.Time) {
	if p.State != StateQueued {
		return
	}
	t := now
	p.State = StateRunning
	p.Started = &t
	p.Version++
}

// cellStartedLocked notes that one of p's planned cells reached a
// worker. The job stops counting against the queue bound once every
// cell it is waiting on has started. Must run under s.mu.
func (s *Service) cellStartedLocked(p *Job) {
	if p.unstarted == 0 {
		return
	}
	p.unstarted--
	if p.unstarted == 0 {
		s.backlogJobs--
	}
}

// clearBacklogLocked releases a terminal job's claim on the queue bound
// when it still had cells awaiting a worker. Must run under s.mu.
func (s *Service) clearBacklogLocked(j *Job) {
	if j.unstarted > 0 {
		j.unstarted = 0
		s.backlogJobs--
	}
}

// deliverLocked hands one completed cell to a parent; the parent's
// progress derives from its cells. Returns true when this was the
// parent's last outstanding cell: the caller then aggregates outside
// the lock and publishes through finishAggregatedLocked. Must run
// under s.mu.
func (s *Service) deliverLocked(p *Job, hash string, res cellResult) bool {
	if p.State.terminal() {
		return false
	}
	idx, ok := p.cellIdx[hash]
	if !ok || p.delivered[idx] {
		return false
	}
	p.cellRes[idx] = res
	p.delivered[idx] = true
	p.remaining--
	p.Progress.Done++
	p.Version++
	return p.remaining == 0
}

// finishAggregatedLocked publishes a fully-delivered parent's report.
// The parent may have been canceled while the caller aggregated outside
// the lock; the result is dropped in that case. Must run under s.mu.
func (s *Service) finishAggregatedLocked(p *Job, agg *Result, err error, end time.Time) {
	if p.State.terminal() {
		return
	}
	s.clearBacklogLocked(p)
	t := end
	p.Finished = &t
	p.Version++
	if err != nil {
		p.State = StateFailed
		p.Error = err.Error()
		s.failed++
		return
	}
	if p.Started != nil {
		agg.ElapsedMs = end.Sub(*p.Started).Milliseconds()
	}
	p.State = StateDone
	p.result = agg
	s.cache.put(p.Hash, agg)
	s.completed++
}

// failLocked fails (or cancels) a parent whose cell errored and releases
// its remaining cells. Must run under s.mu.
func (s *Service) failLocked(p *Job, err error, canceled bool, end time.Time) {
	if p.State.terminal() {
		return
	}
	if canceled {
		s.finishCanceledLocked(p, "canceled", end)
		return
	}
	s.detachLocked(p)
	s.clearBacklogLocked(p)
	t := end
	p.State = StateFailed
	p.Error = err.Error()
	p.Finished = &t
	p.Version++
	s.failed++
}

// runCell produces one cell's result through the store seam: a result
// computed earlier — by another job, by a previous process over the same
// data dir, or by a fleet peer — is decoded and reused; otherwise the
// cell executes, locally or wherever the fleet coordinator decides, and
// the canonical bytes are written through every store tier. Runs outside
// s.mu.
func (s *Service) runCell(ctx context.Context, hash string, spec JobSpec) (cellResult, error) {
	if data, ok := s.store.Get(hash); ok {
		if res, err := decodeCell(data); err == nil {
			return res, nil
		}
		// A corrupt entry (torn disk write, bad peer bytes) falls
		// through to recomputation and is overwritten below.
	}
	local := func(ctx context.Context) ([]byte, error) {
		res, err := s.executeCounted(ctx, spec)
		if err != nil {
			return nil, err
		}
		return encodeCell(res)
	}
	var data []byte
	var err error
	if coord := s.coordinator(); coord != nil {
		data, err = coord.RunCell(ctx, hash, local)
	} else {
		data, err = local(ctx)
	}
	if err != nil {
		return cellResult{}, err
	}
	res, derr := decodeCell(data)
	if derr != nil {
		// A peer handed back bytes we cannot read: recompute locally.
		if data, err = local(ctx); err != nil {
			return cellResult{}, err
		}
		if res, derr = decodeCell(data); derr != nil {
			return cellResult{}, derr
		}
	}
	s.store.Put(hash, data)
	return res, nil
}

// executeCounted is the one funnel every local cell execution passes
// through — worker-scheduled cells and fleet steals alike — so
// CellsExecuted counts exactly the simulations this process ran.
func (s *Service) executeCounted(ctx context.Context, spec JobSpec) (cellResult, error) {
	res, err := executeCell(ctx, spec)
	if err != nil {
		return cellResult{}, err
	}
	s.mu.Lock()
	s.cellsExecuted++
	s.mu.Unlock()
	return res, nil
}

// SetCoordinator installs the fleet coordinator. Wire it before the
// daemon takes traffic; cells already in flight keep executing locally.
func (s *Service) SetCoordinator(c Coordinator) {
	s.mu.Lock()
	s.coord = c
	s.mu.Unlock()
}

func (s *Service) coordinator() Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// Draining reports whether Shutdown has begun: the daemon refuses new
// jobs and /healthz turns not-ready so peers and load balancers stop
// routing work here.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// StealableCells lists up to max cells still awaiting a local worker,
// oldest first. Fleet peers poll this to steal work; the claim protocol
// — not this listing — is what keeps a cell from running twice.
func (s *Service) StealableCells(max int) []QueuedCell {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []QueuedCell
	for _, c := range s.runq {
		if len(c.parents) == 0 {
			continue // orphaned; a worker will discard it
		}
		out = append(out, QueuedCell{Hash: c.hash, Spec: c.spec})
		if len(out) == max {
			break
		}
	}
	return out
}

// LoadHint reports scheduler pressure for the fleet stealer: cells
// awaiting a worker, busy workers, and the pool size.
func (s *Service) LoadHint() (queued, busy, workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runq), s.busy, s.cfg.Workers
}

// ExecuteSpec runs one cell spec outside the worker pool — this is where
// a fleet steal lands — and returns the canonical encoded bytes after
// writing them through the local store.
func (s *Service) ExecuteSpec(ctx context.Context, spec JobSpec) ([]byte, error) {
	norm, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if s.Draining() {
		return nil, ErrClosed
	}
	res, err := s.executeCounted(ctx, norm)
	if err != nil {
		return nil, err
	}
	data, err := encodeCell(res)
	if err != nil {
		return nil, err
	}
	s.store.Put(norm.hash(), data)
	return data, nil
}

// executeCell runs one cell's simulation under its cancellation context.
// Cell specs are normalized, so lookups cannot fail here.
func executeCell(ctx context.Context, spec JobSpec) (cellResult, error) {
	switch spec.Kind {
	case KindSimulate:
		prof, _ := trace.ProfileByName(spec.Bench)
		id, _ := parseScheme(spec.Scheme)
		run, err := experiments.SimulateCtx(ctx, prof, id, spec.budget())
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{Run: &run}, nil
	case KindMulticore:
		prof, _ := trace.ProfileByName(spec.Bench)
		run, err := experiments.MulticoreCellCtx(ctx, prof, spec.Cores, spec.SharedFrac, spec.Silent, spec.budget())
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{Multicore: &run}, nil
	case KindL3:
		prof, _ := trace.ProfileByName(spec.Bench)
		run, err := experiments.L3Cell(ctx, prof, spec.budget())
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{L3: &run}, nil
	case KindMonteCarlo:
		cell, err := experiments.MonteCarloCellCtx(ctx, spec.Scheme, spec.Trials, spec.Seed)
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{MC: &cell}, nil
	case KindFieldMC:
		pt := experiments.FieldPoint{Footprint: spec.Footprint, Lifetime: spec.Lifetime, Rate: spec.Rate}
		cell, err := experiments.FieldMCCellCtx(ctx, spec.Scheme, pt, spec.Trials, spec.Seed)
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{FieldMC: &cell}, nil
	default:
		return cellResult{}, fmt.Errorf("job kind %q is not a cell", spec.Kind) // unreachable after planCells
	}
}

// aggregate assembles a job's report from its completed cells (in plan
// order). The rendered artifacts are byte-identical to the sequential
// in-process sweeps', because both paths go through the same experiments
// renderers.
func aggregate(spec JobSpec, cells []cellResult) (*Result, error) {
	res := &Result{Kind: spec.Kind, Artifacts: map[string]string{}}
	switch {
	case spec.Kind == KindSuite:
		suite := experiments.NewSuite(spec.budget())
		for i, c := range cells {
			if c.Run == nil {
				return nil, fmt.Errorf("suite cell %d missing its run", i)
			}
			suite.Add(*c.Run)
		}
		want := spec.Figures
		if len(want) == 0 {
			want = suiteArtifacts
		}
		for _, f := range want {
			switch f {
			case "fig10":
				res.Artifacts[f] = suite.Figure10()
			case "fig11":
				res.Artifacts[f] = suite.Figure11()
			case "fig12":
				res.Artifacts[f] = suite.Figure12()
			case "table2":
				res.Artifacts[f] = suite.Table2String()
			case "table3":
				res.Artifacts[f] = suite.Table3()
			}
		}
	case spec.Kind == KindSimulate:
		run := cells[0].Run
		if run == nil {
			return nil, fmt.Errorf("simulate cell missing its run")
		}
		res.Values = map[string]float64{
			"cpi":            run.CPI,
			"l1_misses":      float64(run.L1.Misses),
			"l1_accesses":    float64(run.L1.Accesses()),
			"l2_misses":      float64(run.L2.Misses),
			"l2_accesses":    float64(run.L2.Accesses()),
			"l1_dirty_frac":  run.L1Gran.Dirty,
			"l2_dirty_frac":  run.L2Gran.Dirty,
			"l1_tavg_cycles": run.L1Gran.Tavg,
			"l2_tavg_cycles": run.L2Gran.Tavg,
		}
		res.Artifacts["summary"] = fmt.Sprintf("%s/%s: CPI %.4f (L1 %d/%d misses, L2 %d/%d)\n",
			run.Bench, run.Scheme, run.CPI,
			run.L1.Misses, run.L1.Accesses(), run.L2.Misses, run.L2.Accesses())
	case spec.Kind == KindMonteCarlo:
		mcs := make([]experiments.MonteCarloCell, 0, len(cells))
		for i, c := range cells {
			if c.MC == nil {
				return nil, fmt.Errorf("montecarlo cell %d missing its campaign", i)
			}
			mcs = append(mcs, *c.MC)
		}
		res.Artifacts["montecarlo"] = experiments.MonteCarloTable(spec.Trials, mcs)
	case spec.Kind == KindFieldMC && spec.Scheme == "":
		fcs := make([]experiments.FieldMCCell, 0, len(cells))
		for i, c := range cells {
			if c.FieldMC == nil {
				return nil, fmt.Errorf("fieldmc cell %d missing its campaign", i)
			}
			fcs = append(fcs, *c.FieldMC)
		}
		res.Artifacts["fieldmc"] = experiments.FieldMCTable(spec.Trials, fcs)
	case spec.Kind == KindFieldMC:
		cell := cells[0].FieldMC
		if cell == nil {
			return nil, fmt.Errorf("fieldmc cell missing its campaign")
		}
		res.Values = map[string]float64{
			"corrected":     float64(cell.Counts.Corrected),
			"due":           float64(cell.Counts.DUE),
			"sdc":           float64(cell.Counts.SDC),
			"coverage_rate": cell.Counts.CoverageRate(),
		}
		res.Artifacts["summary"] = fmt.Sprintf("%s @ %s: %s of %d trials\n",
			cell.Scheme, cell.Point, cell.Counts.String(), cell.Counts.Total())
	case spec.Kind == KindMulticore && spec.Sweep:
		runs := make([]experiments.MulticoreRun, 0, len(cells))
		for i, c := range cells {
			if c.Multicore == nil {
				return nil, fmt.Errorf("multicore cell %d missing its run", i)
			}
			runs = append(runs, *c.Multicore)
		}
		res.Artifacts["sec7"] = experiments.Section7Table(runs)
	case spec.Kind == KindMulticore:
		run := cells[0].Multicore
		if run == nil {
			return nil, fmt.Errorf("multicore cell missing its run")
		}
		rbwPerStore := 0.0
		if run.L1.Stores > 0 {
			rbwPerStore = float64(run.L1.ReadBeforeWrite) / float64(run.L1.Stores)
		}
		res.Values = map[string]float64{
			"cpi":             run.CPI,
			"cycles":          float64(run.Cycles),
			"instructions":    float64(run.Instructions),
			"rbw_per_store":   rbwPerStore,
			"bus_reads":       float64(run.Coherence.BusReads),
			"bus_readx":       float64(run.Coherence.BusReadX),
			"invalidations":   float64(run.Coherence.Invalidations),
			"owner_flushes":   float64(run.Coherence.OwnerFlushes),
			"bus_busy_cycles": float64(run.Coherence.BusBusyCycles),
			"dirty_l1_frac":   run.DirtyL1,
			"energy_l1_pj":    run.EnergyL1.Total(),
			"energy_l2_pj":    run.EnergyL2.Total(),
			"energy_bus_pj":   run.EnergyBus.Total(),
			"energy_total_pj": run.TotalEnergyPJ(),
			"silent_elided":   float64(run.ElidedL1 + run.ElidedL2),
		}
		variant := ""
		if run.Silent {
			variant = " [silent]"
		}
		res.Artifacts["summary"] = fmt.Sprintf(
			"%s x%d cores (shared %.2f)%s: CPI %.4f over %d cycles; RBW/store %.4f, %d invalidations, %d owner flushes; %.1f nJ (L1 %.1f, L2 %.1f, bus %.1f), %d silent stores elided\n",
			run.Bench, run.Cores, run.SharedFrac, variant, run.CPI, run.Cycles,
			rbwPerStore, run.Coherence.Invalidations, run.Coherence.OwnerFlushes,
			run.TotalEnergyPJ()/1e3, run.EnergyL1.Total()/1e3, run.EnergyL2.Total()/1e3, run.EnergyBus.Total()/1e3,
			run.ElidedL1+run.ElidedL2)
	case spec.Kind == KindL3 && spec.Sweep:
		runs := make([]experiments.L3Run, 0, len(cells))
		for i, c := range cells {
			if c.L3 == nil {
				return nil, fmt.Errorf("l3 cell %d missing its run", i)
			}
			runs = append(runs, *c.L3)
		}
		res.Artifacts["l3"] = experiments.L3Table(runs)
	case spec.Kind == KindL3:
		run := cells[0].L3
		if run == nil {
			return nil, fmt.Errorf("l3 cell missing its run")
		}
		res.Values = map[string]float64{
			"cpi_parity":       run.ParityCPI,
			"cpi_cppc_l3":      run.CPPCL3CPI,
			"cpi_cppc_l2":      run.CPPCL2CPI,
			"l3_accesses":      float64(run.L3Accesses),
			"l3_miss_rate":     run.L3MissRate,
			"rbw_per_store_l2": run.RBWPerStoreL2,
			"rbw_per_store_l3": run.RBWPerStoreL3,
			"l3_energy_ratio":  run.EnergyRatio,
		}
		res.Artifacts["summary"] = fmt.Sprintf(
			"%s L3 study: CPI parity %.4f, cppc@L3 %.4f, cppc@L2 %.4f; RBW/store L2 %.4f vs L3 %.4f; L3 energy ratio %.4f\n",
			run.Bench, run.ParityCPI, run.CPPCL3CPI, run.CPPCL2CPI,
			run.RBWPerStoreL2, run.RBWPerStoreL3, run.EnergyRatio)
	default:
		return nil, fmt.Errorf("unknown job kind %q", spec.Kind) // unreachable after normalize
	}
	return res, nil
}
