package service

import "sync"

// resultCache is a bounded content-addressed cache of finished job
// results, keyed by the canonical spec hash. Eviction is FIFO by
// insertion: the workload is "regenerate the same figures again", where
// recency matters much less than simply retaining the recent working set.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*Result
	order   []string
	hits    uint64
	misses  uint64
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 256
	}
	return &resultCache{max: max, entries: make(map[string]*Result)}
}

// get looks up a result and counts the hit or miss.
func (c *resultCache) get(hash string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[hash]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

// put stores a result, evicting oldest entries while the cache is at or
// over its bound — `>=`, not `==`, so a shrunk bound (or any future
// config change that leaves the cache oversized) drains back under the
// limit instead of growing without bound.
func (c *resultCache) put(hash string, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[hash]; ok {
		c.entries[hash] = r
		return
	}
	for len(c.order) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[hash] = r
	c.order = append(c.order, hash)
}

// stats returns the counters for /metrics.
func (c *resultCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
