package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"cppc/internal/cellstore"
	"cppc/internal/service"
)

// TestHealthzReadiness pins the readiness contract fleet membership
// checks rely on: 200 while serving, 503 once draining.
func TestHealthzReadiness(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(service.NewServer(svc).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving = %d, want 200", resp.StatusCode)
	}

	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestDiskWarmRestart is the restart acceptance test: a daemon restarted
// over the same data dir serves a previously computed cell as a cache
// hit, without re-executing it.
func TestDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	newSvc := func() *service.Service {
		disk, err := cellstore.NewDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return service.New(service.Config{
			Workers: 2,
			Store:   cellstore.NewTiered(cellstore.NewMemory(64), disk),
		})
	}
	spec := service.JobSpec{Kind: "simulate", Bench: "gzip", Scheme: "cppc",
		Warmup: tinyWarmup, Measure: tinyMeasure}

	s1 := newSvc()
	job := submitSpec(t, s1, spec)
	if job.CacheHit {
		t.Fatalf("fresh cell claims a cache hit")
	}
	done := waitJob(t, s1, job.ID, jobDone, 30e9)
	_, want, err := s1.JobResult(done.ID)
	if err != nil || want == nil {
		t.Fatalf("first run result: %+v, %v", want, err)
	}
	if got := s1.Metrics().CellsExecuted; got != 1 {
		t.Fatalf("first process executed %d cells, want 1", got)
	}
	shutdown(t, s1)

	// Same data dir, fresh process: the cell must come off disk.
	s2 := newSvc()
	defer shutdown(t, s2)
	again := submitSpec(t, s2, spec)
	if !again.CacheHit || again.State != service.StateDone {
		t.Fatalf("restarted daemon re-ran the cell: %+v", again)
	}
	if got := s2.Metrics().CellsExecuted; got != 0 {
		t.Fatalf("restarted daemon executed %d cells, want 0", got)
	}
	_, got, err := s2.JobResult(again.ID)
	if err != nil || got == nil {
		t.Fatalf("restart result: %+v, %v", got, err)
	}
	if got.Artifacts["summary"] != want.Artifacts["summary"] {
		t.Fatalf("restart artifact diverges:\n%q\nvs\n%q",
			got.Artifacts["summary"], want.Artifacts["summary"])
	}
	if len(s2.Metrics().StoreTiers) != 2 {
		t.Fatalf("store tiers not surfaced in metrics: %+v", s2.Metrics().StoreTiers)
	}
}
