package service

import (
	"fmt"
	"testing"

	"cppc/internal/energy"
	"cppc/internal/experiments"
)

// TestResultCacheBound pins the eviction rule on the job cache: FIFO,
// never over the bound, and — the shrinking-working-set edge — a cache
// that finds itself over a (reduced) bound drains back under it on the
// next put instead of growing unbounded forever.
func TestResultCacheBound(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("h%d", i), &Result{Kind: "simulate"})
	}
	if _, _, entries := c.stats(); entries != 3 {
		t.Fatalf("entries = %d, want 3", entries)
	}
	for i := 0; i < 7; i++ {
		if _, ok := c.get(fmt.Sprintf("h%d", i)); ok {
			t.Fatalf("entry h%d not FIFO-evicted", i)
		}
	}
	for i := 7; i < 10; i++ {
		if _, ok := c.get(fmt.Sprintf("h%d", i)); !ok {
			t.Fatalf("recent entry h%d evicted", i)
		}
	}

	// Shrink the bound under a full cache: the next put must evict down
	// to the new limit, not stop at one.
	c.max = 1
	c.put("h99", &Result{Kind: "simulate"})
	if _, _, entries := c.stats(); entries > 1 {
		t.Fatalf("entries = %d after bound shrank to 1", entries)
	}
	if _, ok := c.get("h99"); !ok {
		t.Fatalf("newest entry evicted instead of oldest")
	}
}

// TestCellCodecRoundTrip requires the canonical cell encoding to
// reproduce the typed result exactly — the property the byte-identical
// fleet reports rest on.
func TestCellCodecRoundTrip(t *testing.T) {
	run := experiments.Run{Bench: "gzip", Scheme: experiments.CPPC, CPI: 1.0625437891234567}
	run.L1.Misses = 1<<52 + 3
	run.L1Gran.Dirty = 0.12345678901234567
	in := cellResult{Run: &run}

	data, err := encodeCell(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := decodeCell(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Run == nil || *out.Run != run {
		t.Fatalf("round trip lost data: %+v vs %+v", out.Run, run)
	}
	if out.Multicore != nil || out.L3 != nil || out.MC != nil {
		t.Fatalf("phantom fields decoded: %+v", out)
	}

	// Torn or foreign blobs must be rejected, not decoded as empty cells.
	for _, bad := range [][]byte{nil, []byte("{}"), []byte("not json"), data[:len(data)/2]} {
		if _, err := decodeCell(bad); err == nil {
			t.Fatalf("bad blob %q decoded", bad)
		}
	}
}

// TestMulticoreCellCodecRoundTrip pins the multicore cell codec on the
// fields the Sec. 7 energy columns aggregate from: the per-level energy
// reports, fold/elision counters and the silent flag must survive the
// disk/wire encoding exactly, or sharded sweeps would drift from
// sequential ones.
func TestMulticoreCellCodecRoundTrip(t *testing.T) {
	run := experiments.MulticoreRun{
		Bench: "gzip", Cores: 2, SharedFrac: 0.3, Silent: true,
		CPI: 1.0625437891234567, Cycles: 123456, Instructions: 30000,
	}
	run.L1.StoreHits = 1<<52 + 3
	run.L2.Misses = 7
	run.Coherence.Invalidations = 11
	run.FoldsL1, run.FoldsL2 = 1<<40+1, 17
	run.ElidedL1, run.ElidedL2 = 99, 3
	run.EnergyL1 = energy.Report{ReadPJ: 0.12345678901234567, WritePJ: 42.5, RBWPJ: 7, FoldPJ: 1e-9}
	run.EnergyL2 = energy.Report{ReadPJ: 2}
	run.EnergyBus = energy.Report{RBWPJ: 3.5}
	in := cellResult{Multicore: &run}

	data, err := encodeCell(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := decodeCell(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Multicore == nil || *out.Multicore != run {
		t.Fatalf("round trip lost data: %+v vs %+v", out.Multicore, run)
	}
}
