package service

import "time"

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress counts completed work units (suite cells, campaign schemes).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Result is what a finished job produced: rendered text artifacts (the
// same tables cmd/repro prints) plus scalar values for machine use.
type Result struct {
	Kind      string             `json:"kind"`
	Artifacts map[string]string  `json:"artifacts,omitempty"`
	Values    map[string]float64 `json:"values,omitempty"`
	ElapsedMs int64              `json:"elapsed_ms"`
}

// Job is one submitted unit of work. All fields are guarded by the
// owning Service's mutex; handlers only ever see copies.
type Job struct {
	ID       string   `json:"id"`
	Hash     string   `json:"hash"`
	Spec     JobSpec  `json:"spec"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	CacheHit bool     `json:"cache_hit"`
	Error    string   `json:"error,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// Version increments on every observable change; the streaming
	// endpoint uses it to emit only fresh snapshots.
	Version int `json:"version"`

	result *Result

	// Shard bookkeeping, owned by the Service. plan holds the job's
	// normalized cell specs in aggregation order; cellRes fills in as
	// cells complete (delivered marks which). Snapshots share these
	// slices, but callers never look at unexported fields.
	plan      []JobSpec
	planHash  []string
	cellIdx   map[string]int
	cellRes   []cellResult
	delivered []bool
	remaining int
	unstarted int // planned cells not yet started; >0 counts the job against the queue bound
}
