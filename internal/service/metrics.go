package service

import (
	"time"

	"cppc/internal/cellstore"
	"cppc/internal/fault"
)

// Metrics is the GET /metrics payload: queue pressure, worker
// utilization, cache effectiveness (whole jobs and individual cells),
// shard scheduler gauges and cell latency, all since startup.
type Metrics struct {
	UptimeSec float64 `json:"uptime_sec"`

	Workers           int     `json:"workers"`
	BusyWorkers       int     `json:"busy_workers"`
	WorkerUtilization float64 `json:"worker_utilization"` // busy-time fraction since start

	QueueDepth    int `json:"queue_depth"` // jobs with cells still awaiting a worker
	QueueCapacity int `json:"queue_capacity"`

	JobsSubmitted int            `json:"jobs_submitted"`
	JobsRunning   int            `json:"jobs_running"`
	JobsCompleted int            `json:"jobs_completed"`
	JobsFailed    int            `json:"jobs_failed"`
	JobsCanceled  int            `json:"jobs_canceled"`
	JobsByKind    map[string]int `json:"jobs_by_kind,omitempty"` // submissions per job kind

	// Shard scheduler gauges: cells are the unit workers actually run.
	// CellsCompleted counts cells a local worker delivered (including
	// store hits); CellsExecuted counts simulations this process ran,
	// including cells stolen from fleet peers — in a healthy fleet the
	// sum of CellsExecuted across daemons equals the distinct cells.
	CellsQueued    int `json:"cells_queued"`
	CellsRunning   int `json:"cells_running"`
	CellsCompleted int `json:"cells_completed"`
	CellsExecuted  int `json:"cells_executed"`

	// Trial-executor gauges: campaign fan-out inside montecarlo/fieldmc
	// cells (and any standalone campaign in this process), observable
	// next to the cells_* family. TrialsExecuted counts completed
	// campaign trials since startup; TrialWorkers is the currently
	// active executor workers (a sequential campaign counts one).
	TrialsExecuted int64 `json:"trials_executed"`
	TrialWorkers   int64 `json:"trial_workers"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`

	CellCacheHits    uint64  `json:"cell_cache_hits"`
	CellCacheMisses  uint64  `json:"cell_cache_misses"`
	CellCacheHitRate float64 `json:"cell_cache_hit_rate"`
	CellCacheEntries int     `json:"cell_cache_entries"`

	// Latencies are per executed cell (cache hits excluded).
	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms"`
	RunMeanMs       float64 `json:"run_mean_ms"`
	RunMaxMs        float64 `json:"run_max_ms"`

	// StoreTiers breaks the cell store down per tier (memory, disk);
	// the legacy cell_cache_* fields above mirror the memory tier.
	StoreTiers []cellstore.Stats `json:"store_tiers,omitempty"`

	// Fleet carries the coordinator's counters (peer hits, claims won
	// and lost, cells stolen, local fallbacks) when fleet mode is on.
	Fleet map[string]int64 `json:"fleet,omitempty"`
}

// Metrics snapshots the counters.
func (s *Service) Metrics() Metrics {
	hits, misses, entries := s.cache.stats()
	tiers := s.store.Stats()
	var cHits, cMisses uint64
	var cEntries int
	for _, t := range tiers {
		if t.Tier == "memory" {
			cHits, cMisses, cEntries = t.Hits, t.Misses, t.Entries
			break
		}
	}
	var fleetStats map[string]int64
	if coord := s.coordinator(); coord != nil {
		fleetStats = coord.Stats()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	uptime := time.Since(s.started)
	m := Metrics{
		UptimeSec:        uptime.Seconds(),
		Workers:          s.cfg.Workers,
		BusyWorkers:      s.busy,
		QueueDepth:       s.backlogJobs,
		QueueCapacity:    s.cfg.QueueSize,
		JobsSubmitted:    s.submitted,
		JobsCompleted:    s.completed,
		JobsFailed:       s.failed,
		JobsCanceled:     s.canceled,
		CellsQueued:      len(s.runq),
		CellsRunning:     s.busy,
		CellsCompleted:   s.cellsCompleted,
		CellsExecuted:    s.cellsExecuted,
		TrialsExecuted:   fault.TrialsExecuted(),
		TrialWorkers:     fault.TrialWorkers(),
		CacheHits:        hits,
		CacheMisses:      misses,
		CacheEntries:     entries,
		CellCacheHits:    cHits,
		CellCacheMisses:  cMisses,
		CellCacheEntries: cEntries,
		StoreTiers:       tiers,
		Fleet:            fleetStats,
	}
	if len(s.jobsByKind) > 0 {
		m.JobsByKind = make(map[string]int, len(s.jobsByKind))
		for k, v := range s.jobsByKind {
			m.JobsByKind[k] = v
		}
	}
	for _, j := range s.jobs {
		if j.State == StateRunning {
			m.JobsRunning++
		}
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	if total := cHits + cMisses; total > 0 {
		m.CellCacheHitRate = float64(cHits) / float64(total)
	}
	// Count the in-flight busy time too, so utilization is honest while a
	// long cell is still running.
	busyNs := s.busyNanos
	for _, c := range s.cells {
		if c.running {
			busyNs += time.Since(c.startedAt).Nanoseconds()
		}
	}
	if denom := uptime.Nanoseconds() * int64(s.cfg.Workers); denom > 0 {
		m.WorkerUtilization = float64(busyNs) / float64(denom)
	}
	if s.ranCells > 0 {
		n := float64(s.ranCells)
		m.QueueWaitMeanMs = float64(s.waitNanos) / n / 1e6
		m.RunMeanMs = float64(s.runNanos) / n / 1e6
		m.RunMaxMs = float64(s.runNanosMax) / 1e6
	}
	return m
}
