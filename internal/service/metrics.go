package service

import "time"

// Metrics is the GET /metrics payload: queue pressure, worker
// utilization, cache effectiveness and job latency, all since startup.
type Metrics struct {
	UptimeSec float64 `json:"uptime_sec"`

	Workers           int     `json:"workers"`
	BusyWorkers       int     `json:"busy_workers"`
	WorkerUtilization float64 `json:"worker_utilization"` // busy-time fraction since start

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	JobsSubmitted int `json:"jobs_submitted"`
	JobsRunning   int `json:"jobs_running"`
	JobsCompleted int `json:"jobs_completed"`
	JobsFailed    int `json:"jobs_failed"`
	JobsCanceled  int `json:"jobs_canceled"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`

	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms"`
	RunMeanMs       float64 `json:"run_mean_ms"`
	RunMaxMs        float64 `json:"run_max_ms"`
}

// Metrics snapshots the counters.
func (s *Service) Metrics() Metrics {
	hits, misses, entries := s.cache.stats()

	s.mu.Lock()
	defer s.mu.Unlock()
	uptime := time.Since(s.started)
	m := Metrics{
		UptimeSec:     uptime.Seconds(),
		Workers:       s.cfg.Workers,
		BusyWorkers:   s.busy,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueSize,
		JobsSubmitted: s.submitted,
		JobsRunning:   s.busy,
		JobsCompleted: s.completed,
		JobsFailed:    s.failed,
		JobsCanceled:  s.canceled,
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheEntries:  entries,
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	// Count the in-flight busy time too, so utilization is honest while a
	// long job is still running.
	busyNs := s.busyNanos
	for _, j := range s.jobs {
		if j.State == StateRunning && j.Started != nil {
			busyNs += time.Since(*j.Started).Nanoseconds()
		}
	}
	if denom := uptime.Nanoseconds() * int64(s.cfg.Workers); denom > 0 {
		m.WorkerUtilization = float64(busyNs) / float64(denom)
	}
	if s.ranJobs > 0 {
		n := float64(s.ranJobs)
		m.QueueWaitMeanMs = float64(s.waitNanos) / n / 1e6
		m.RunMeanMs = float64(s.runNanos) / n / 1e6
		m.RunMaxMs = float64(s.runNanosMax) / 1e6
	}
	return m
}
