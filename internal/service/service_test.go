package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cppc/internal/service"
)

// --- HTTP helpers -------------------------------------------------------

func postJob(t *testing.T, base string, spec string) (service.Job, int) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewBufferString(spec))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var job service.Job
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatalf("decode job: %v", err)
		}
	}
	return job, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitForState(t *testing.T, base, id string, want func(service.Job) bool, timeout time.Duration) service.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var job service.Job
		if code := getJSON(t, base+"/jobs/"+id, &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if want(job) {
			return job
		}
		if job.State == service.StateFailed {
			t.Fatalf("job %s failed: %s", id, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s (progress %d/%d)",
				id, job.State, job.Progress.Done, job.Progress.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// --- The acceptance-path end-to-end test --------------------------------

// TestServerEndToEnd drives the whole daemon over HTTP: submit the
// quick-budget Fig. 10 matrix, poll it to completion, resubmit the
// identical spec and observe a content-addressed cache hit via /metrics,
// cancel an in-flight default-budget job (watching it over the SSE
// stream), and shut the server down gracefully.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick-budget suite")
	}
	svc := service.New(service.Config{Workers: 2, QueueSize: 8, CacheSize: 16})
	ts := httptest.NewServer(service.NewServer(svc).Handler())
	defer ts.Close()

	const fig10Spec = `{"kind":"suite","budget":"quick","figures":["fig10"]}`

	// Submit the quick-budget Figure 10 matrix and poll to completion.
	job, code := postJob(t, ts.URL, fig10Spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if job.State != service.StateQueued || job.CacheHit {
		t.Fatalf("fresh submit: state %s cacheHit %v", job.State, job.CacheHit)
	}
	done := waitForState(t, ts.URL, job.ID,
		func(j service.Job) bool { return j.State == service.StateDone }, 8*time.Minute)
	if done.Progress.Done != done.Progress.Total || done.Progress.Total == 0 {
		t.Fatalf("done job progress %d/%d", done.Progress.Done, done.Progress.Total)
	}

	var res service.Result
	if code := getJSON(t, ts.URL+"/jobs/"+job.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	fig10, ok := res.Artifacts["fig10"]
	if !ok || !strings.Contains(fig10, "Figure 10") || !strings.Contains(fig10, "average") {
		t.Fatalf("fig10 artifact missing or malformed:\n%s", fig10)
	}
	if _, ok := res.Artifacts["fig11"]; ok {
		t.Fatalf("unrequested artifact rendered")
	}

	var m0 service.Metrics
	getJSON(t, ts.URL+"/metrics", &m0)
	if m0.CacheHits != 0 || m0.JobsCompleted != 1 {
		t.Fatalf("metrics before resubmit: hits %d completed %d", m0.CacheHits, m0.JobsCompleted)
	}

	// Resubmit the identical spec: immediate completion from the cache.
	hit, code := postJob(t, ts.URL, fig10Spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d", code)
	}
	if !hit.CacheHit || hit.State != service.StateDone {
		t.Fatalf("resubmit: cacheHit %v state %s", hit.CacheHit, hit.State)
	}
	if hit.Hash != done.Hash {
		t.Fatalf("canonical hash changed across submissions: %s vs %s", hit.Hash, done.Hash)
	}
	var hitRes service.Result
	if code := getJSON(t, ts.URL+"/jobs/"+hit.ID+"/result", &hitRes); code != http.StatusOK {
		t.Fatalf("cached result: status %d", code)
	}
	if hitRes.Artifacts["fig10"] != fig10 {
		t.Fatalf("cached result differs from original")
	}
	var m1 service.Metrics
	getJSON(t, ts.URL+"/metrics", &m1)
	if m1.CacheHits != 1 {
		t.Fatalf("metrics after resubmit: cache_hits = %d, want 1", m1.CacheHits)
	}
	if m1.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate not reported: %v", m1.CacheHitRate)
	}

	// Cancel an in-flight job: a default-budget suite runs for minutes,
	// so it is reliably mid-flight when the DELETE lands.
	long, code := postJob(t, ts.URL, `{"kind":"suite","budget":"default"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit long job: status %d", code)
	}
	waitForState(t, ts.URL, long.ID,
		func(j service.Job) bool { return j.State == service.StateRunning }, time.Minute)

	// Watch it over the SSE stream while canceling it.
	stream, err := http.Get(ts.URL + "/jobs/" + long.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+long.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()

	canceled := waitForState(t, ts.URL, long.ID,
		func(j service.Job) bool { return j.State == service.StateCanceled }, time.Minute)
	if canceled.Error == "" {
		t.Fatalf("canceled job has no error note")
	}

	// The stream must terminate on its own with a final canceled snapshot.
	var last service.Job
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	events := 0
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			events++
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				t.Fatalf("bad SSE payload: %v", err)
			}
		}
	}
	if events == 0 || last.State != service.StateCanceled {
		t.Fatalf("SSE stream: %d events, final state %q", events, last.State)
	}

	var m2 service.Metrics
	getJSON(t, ts.URL+"/metrics", &m2)
	if m2.JobsCanceled != 1 {
		t.Fatalf("metrics: jobs_canceled = %d, want 1", m2.JobsCanceled)
	}
	if m2.RunMaxMs <= 0 || m2.RunMeanMs <= 0 {
		t.Fatalf("metrics: latency not reported: %+v", m2)
	}

	// Graceful shutdown: nothing is running, so the drain is immediate.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// Submissions after shutdown are refused.
	if _, code := postJob(t, ts.URL, fig10Spec); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d", code)
	}
}

// --- Canonical hashing through the API ----------------------------------

// TestCanonicalSpecHash asserts that two differently-spelled specs for
// the same work share one cache entry, and that result-changing fields
// break the sharing.
func TestCanonicalSpecHash(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())

	submitWait := func(spec service.JobSpec) service.Job {
		t.Helper()
		job, err := svc.Submit(spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		deadline := time.Now().Add(time.Minute)
		for !time.Now().After(deadline) {
			j, err := svc.Job(job.ID)
			if err != nil {
				t.Fatal(err)
			}
			if j.State == service.StateDone {
				return j
			}
			if j.State == service.StateFailed || j.State == service.StateCanceled {
				t.Fatalf("job ended %s: %s", j.State, j.Error)
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("job %s did not finish", job.ID)
		return service.Job{}
	}

	base := service.JobSpec{Kind: "simulate", Bench: "gzip", Scheme: "cppc", Warmup: 1000, Measure: 2000}
	first := submitWait(base)
	if first.CacheHit {
		t.Fatalf("first run claims a cache hit")
	}

	// Equivalent spelling: explicit defaults and a scheduling-only knob.
	equiv := base
	equiv.Seed = 1
	equiv.Parallel = 3
	second := submitWait(equiv)
	if !second.CacheHit {
		t.Fatalf("equivalent spec missed the cache (hash %s vs %s)", second.Hash, first.Hash)
	}

	// A different seed computes different numbers: no sharing.
	other := base
	other.Seed = 2
	third := submitWait(other)
	if third.CacheHit {
		t.Fatalf("seed change still hit the cache")
	}

	// Bad specs are rejected up front.
	for _, bad := range []service.JobSpec{
		{Kind: "nope"},
		{Kind: "simulate", Bench: "gzip", Scheme: "wat"},
		{Kind: "simulate", Bench: "nope", Scheme: "cppc"},
		{Kind: "suite", Figures: []string{"fig99"}},
		{Kind: "suite", Bench: "gzip"},
		{Kind: "multicore", Bench: "nope"},
		{Kind: "multicore", Cores: 64},
		{Kind: "multicore", SharedFrac: 1.5},
		{Kind: "multicore", Scheme: "cppc"},
	} {
		if _, err := svc.Submit(bad); err == nil {
			t.Fatalf("bad spec accepted: %+v", bad)
		}
	}
}

// TestMulticoreJob submits a small timed Sec. 7 cell and checks the
// reported values, plus cache-sharing between equivalent spellings
// (defaulted vs. explicit bench/cores).
func TestMulticoreJob(t *testing.T) {
	if testing.Short() {
		t.Skip("timed multicore simulation")
	}
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())

	spec := service.JobSpec{Kind: "multicore", Cores: 2, SharedFrac: 0.5, Warmup: 2000, Measure: 5000}
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j, err := svc.Job(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == service.StateDone {
			break
		}
		if j.State == service.StateFailed || j.State == service.StateCanceled {
			t.Fatalf("job ended %s: %s", j.State, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("multicore job stuck in %s", j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, res, err := svc.JobResult(job.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Values["cpi"] <= 0 || res.Values["cycles"] <= 0 {
		t.Fatalf("degenerate multicore values: %v", res.Values)
	}
	if res.Values["instructions"] != 2*5000 {
		t.Fatalf("expected %d instructions, got %v", 2*5000, res.Values["instructions"])
	}
	if !strings.Contains(res.Artifacts["summary"], "x2 cores") {
		t.Fatalf("summary malformed: %q", res.Artifacts["summary"])
	}

	// Defaulted bench ("gzip") must share a cache entry with the explicit
	// spelling.
	explicit := spec
	explicit.Bench = "gzip"
	explicit.Seed = 1
	j2, err := svc.Submit(explicit)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !j2.CacheHit {
		t.Fatalf("equivalent multicore spec missed the cache")
	}
}

// TestL3Job submits a small timed Sec. 7 L3 cell and checks the reported
// values, plus cache-sharing between the defaulted and explicit bench.
func TestL3Job(t *testing.T) {
	if testing.Short() {
		t.Skip("timed three-level simulation")
	}
	svc := service.New(service.Config{Workers: 1})
	defer svc.Shutdown(context.Background())

	spec := service.JobSpec{Kind: "l3", Warmup: 2000, Measure: 5000}
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j, err := svc.Job(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == service.StateDone {
			break
		}
		if j.State == service.StateFailed || j.State == service.StateCanceled {
			t.Fatalf("job ended %s: %s", j.State, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("l3 job stuck in %s", j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, res, err := svc.JobResult(job.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	for _, key := range []string{"cpi_parity", "cpi_cppc_l3", "cpi_cppc_l2"} {
		if res.Values[key] <= 0 {
			t.Fatalf("degenerate L3 values (%s): %v", key, res.Values)
		}
	}
	if !strings.Contains(res.Artifacts["summary"], "mcf L3 study") {
		t.Fatalf("summary malformed: %q", res.Artifacts["summary"])
	}

	// Defaulted bench ("mcf") must share a cache entry with the explicit
	// spelling.
	explicit := spec
	explicit.Bench = "mcf"
	explicit.Seed = 1
	j2, err := svc.Submit(explicit)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !j2.CacheHit {
		t.Fatalf("equivalent l3 spec missed the cache")
	}

	// Scheme is meaningless for l3 jobs and must be rejected.
	if _, err := svc.Submit(service.JobSpec{Kind: "l3", Scheme: "cppc"}); err == nil {
		t.Fatal("l3 job with a scheme accepted")
	}
}

// --- Queue bounds, queued-job cancellation, forced drain ----------------

func TestQueueBoundsAndForcedShutdown(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueSize: 1})

	// A job long enough to still be running when the test ends.
	long := service.JobSpec{Kind: "simulate", Bench: "mcf", Scheme: "secded",
		Warmup: 0, Measure: 500_000_000}

	first, err := svc.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker has it, so queue occupancy is exact.
	deadline := time.Now().Add(time.Minute)
	for {
		j, _ := svc.Job(first.ID)
		if j.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	queued := service.JobSpec{Kind: "simulate", Bench: "gcc", Scheme: "secded",
		Warmup: 0, Measure: 500_000_000}
	second, err := svc.Submit(queued)
	if err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	third := service.JobSpec{Kind: "simulate", Bench: "vpr", Scheme: "secded",
		Warmup: 0, Measure: 500_000_000}
	if _, err := svc.Submit(third); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}

	// Canceling the queued job is immediate and the worker later skips it.
	j, err := svc.Cancel(second.ID)
	if err != nil || j.State != service.StateCanceled {
		t.Fatalf("cancel queued: %v state %s", err, j.State)
	}

	// Forced drain: the context expires long before the 500M-instruction
	// job finishes, so Shutdown cancels it and reports the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown: err = %v, want DeadlineExceeded", err)
	}
	j, _ = svc.Job(first.ID)
	if j.State != service.StateCanceled {
		t.Fatalf("running job after forced drain: %s", j.State)
	}
	m := svc.Metrics()
	if m.BusyWorkers != 0 || m.JobsCanceled != 2 {
		t.Fatalf("after shutdown: busy %d canceled %d", m.BusyWorkers, m.JobsCanceled)
	}
}
