// Package service exposes the simulator as a long-running daemon: a JSON
// HTTP API to submit simulation jobs (the paper's figure/table matrix,
// single-cell simulations, and Monte-Carlo fault campaigns), a bounded
// worker pool with a FIFO queue and per-job cancellation, a
// content-addressed result cache so repeated figure regenerations are
// free, streaming job progress, and a /metrics endpoint. cmd/cppcd is
// the thin binary around it.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"cppc/internal/experiments"
	"cppc/internal/trace"
)

// Job kinds accepted by POST /jobs.
const (
	KindSuite      = "suite"      // full benchmark x scheme matrix + figures
	KindSimulate   = "simulate"   // one benchmark under one protection scheme
	KindMonteCarlo = "montecarlo" // PARMA-style Monte-Carlo lifetime campaign
	KindMulticore  = "multicore"  // timed Sec. 7 multiprocessor cell
	KindL3         = "l3"         // timed Sec. 7 three-level L3 cell
	KindFieldMC    = "fieldmc"    // field-mix footprint x lifetime x rate campaign
)

// suiteArtifacts are the renderable outputs of a suite job, in canonical
// order.
var suiteArtifacts = []string{"fig10", "fig11", "fig12", "table2", "table3"}

// JobSpec is the JSON body of POST /jobs. Unset fields take defaults
// during normalization, so two specs that mean the same work hash to the
// same cache key regardless of how explicit the client was.
type JobSpec struct {
	Kind string `json:"kind"`

	// Budget names an instruction budget: "quick" or "default". Warmup
	// and Measure, when both set, override it with a custom budget.
	Budget  string `json:"budget,omitempty"`
	Warmup  int    `json:"warmup,omitempty"`
	Measure int    `json:"measure,omitempty"`
	Seed    int64  `json:"seed,omitempty"`

	Bench  string `json:"bench,omitempty"`  // simulate: benchmark name
	Scheme string `json:"scheme,omitempty"` // simulate: protection scheme

	Trials int `json:"trials,omitempty"` // montecarlo/fieldmc: trials per cell

	// Fieldmc cell coordinates (experiments.FieldPoint). All empty on
	// the sweep form, which plans into every (scheme, point) cell; all
	// set (with Scheme) on the cell form the sweep shards into.
	Footprint string `json:"footprint,omitempty"` // word | col | row | bank
	Lifetime  string `json:"lifetime,omitempty"`  // transient | intermittent | stuck
	Rate      string `json:"rate,omitempty"`      // x1 | x4

	// Multicore jobs: core count and the fraction of each core's memory
	// accesses that target the shared region. Silent selects the
	// cppc-silent variant (silent-store elision) in both cache levels.
	Cores      int     `json:"cores,omitempty"`
	SharedFrac float64 `json:"shared_frac,omitempty"`
	Silent     bool    `json:"silent,omitempty"`

	// Sweep turns a multicore or l3 job into the full Sec. 7 sweep: the
	// canonical (cores, shared_frac) matrix over Bench for multicore, the
	// fixed large-footprint benchmark set for l3. Sweep jobs shard into
	// per-cell sub-jobs scheduled across the whole worker pool.
	Sweep bool `json:"sweep,omitempty"`

	// Figures restricts which suite artifacts are rendered (subset of
	// fig10 fig11 fig12 table2 table3); empty means all of them.
	Figures []string `json:"figures,omitempty"`

	// Parallel bounds the suite job's internal fan-out (0 = GOMAXPROCS).
	// It only affects scheduling, never results, so it is excluded from
	// the cache key.
	Parallel int `json:"parallel,omitempty"`
}

// parseScheme maps the wire names to experiments scheme IDs.
func parseScheme(name string) (experiments.SchemeID, error) {
	for _, id := range []experiments.SchemeID{
		experiments.Parity1D, experiments.CPPC, experiments.SECDED, experiments.TwoDim,
		experiments.CPPCSilent,
	} {
		if id.String() == name {
			return id, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (want parity-1d, cppc, secded, parity-2d or cppc-silent)", name)
}

// normalize validates the spec and fills every defaulted field, returning
// the canonical form used for hashing and execution.
func (s JobSpec) normalize() (JobSpec, error) {
	n := s
	switch n.Kind {
	case KindSuite, KindSimulate, KindMonteCarlo, KindMulticore, KindL3, KindFieldMC:
	case "":
		return n, fmt.Errorf("missing job kind (want %s, %s, %s, %s, %s or %s)",
			KindSuite, KindSimulate, KindMonteCarlo, KindMulticore, KindL3, KindFieldMC)
	default:
		return n, fmt.Errorf("unknown job kind %q", n.Kind)
	}

	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.Warmup != 0 || n.Measure != 0 {
		if n.Warmup < 0 || n.Measure <= 0 {
			return n, fmt.Errorf("custom budget needs warmup >= 0 and measure > 0")
		}
		n.Budget = "custom"
	} else {
		switch n.Budget {
		case "", "default":
			n.Budget = "default"
		case "quick":
		default:
			return n, fmt.Errorf("unknown budget %q (want quick or default)", n.Budget)
		}
	}
	if n.Parallel < 0 {
		n.Parallel = 0
	}

	if n.Sweep && n.Kind != KindMulticore && n.Kind != KindL3 {
		return n, fmt.Errorf("sweep applies to %s and %s jobs only", KindMulticore, KindL3)
	}

	switch n.Kind {
	case KindSuite:
		if n.Bench != "" || n.Scheme != "" {
			return n, fmt.Errorf("suite jobs take no bench/scheme")
		}
		n.Trials = 0
		seen := map[string]bool{}
		var figs []string
		for _, f := range n.Figures {
			if !seen[f] {
				seen[f] = true
				figs = append(figs, f)
			}
		}
		for _, f := range figs {
			known := false
			for _, k := range suiteArtifacts {
				known = known || f == k
			}
			if !known {
				return n, fmt.Errorf("unknown figure %q (want one of %v)", f, suiteArtifacts)
			}
		}
		if len(figs) == 0 || len(figs) == len(suiteArtifacts) {
			figs = nil // "all" is the canonical form
		}
		sort.Strings(figs)
		n.Figures = figs
	case KindSimulate:
		if _, ok := trace.ProfileByName(n.Bench); !ok {
			return n, fmt.Errorf("unknown benchmark %q", n.Bench)
		}
		if _, err := parseScheme(n.Scheme); err != nil {
			return n, err
		}
		n.Trials = 0
		n.Figures = nil
	case KindMonteCarlo:
		if n.Bench != "" {
			return n, fmt.Errorf("montecarlo jobs take no bench")
		}
		if n.Scheme != "" {
			// A single-scheme campaign: the cell form the full validation
			// shards into, also addressable directly.
			known := false
			for _, sch := range experiments.MonteCarloSchemes() {
				known = known || sch == n.Scheme
			}
			if !known {
				return n, fmt.Errorf("unknown montecarlo scheme %q (want one of %v)",
					n.Scheme, experiments.MonteCarloSchemes())
			}
		}
		if n.Trials <= 0 {
			n.Trials = 20
		}
		n.Figures = nil
		n.Budget, n.Warmup, n.Measure = "", 0, 0 // campaigns have their own horizon
	case KindMulticore:
		if n.Scheme != "" {
			return n, fmt.Errorf("multicore jobs take no scheme (the hierarchy is CPPC end-to-end)")
		}
		if n.Bench == "" {
			n.Bench = "gzip"
		}
		if _, ok := trace.ProfileByName(n.Bench); !ok {
			return n, fmt.Errorf("unknown benchmark %q", n.Bench)
		}
		if n.Sweep {
			// The sweep's matrix is canonical (Section7Points); per-point
			// fields would be ambiguous.
			if n.Cores != 0 || n.SharedFrac != 0 {
				return n, fmt.Errorf("multicore sweep jobs take no cores/shared_frac (the Sec. 7 matrix is fixed)")
			}
		} else {
			if n.Cores == 0 {
				n.Cores = 4
			}
			if n.Cores < 1 || n.Cores > 32 {
				return n, fmt.Errorf("cores must be in [1,32], got %d", n.Cores)
			}
			if n.SharedFrac < 0 || n.SharedFrac > 1 {
				return n, fmt.Errorf("shared_frac must be in [0,1], got %v", n.SharedFrac)
			}
		}
		n.Trials = 0
		n.Figures = nil
	case KindFieldMC:
		if n.Bench != "" {
			return n, fmt.Errorf("fieldmc jobs take no bench")
		}
		coords := 0
		for _, f := range []string{n.Scheme, n.Footprint, n.Lifetime, n.Rate} {
			if f != "" {
				coords++
			}
		}
		switch coords {
		case 0:
			// The sweep form: every (scheme, grid point) cell.
		case 4:
			// A single grid cell, also addressable directly — it shares
			// its cache entry with the sweep's shard.
			known := false
			for _, sch := range experiments.FieldMCSchemes() {
				known = known || sch == n.Scheme
			}
			if !known {
				return n, fmt.Errorf("unknown fieldmc scheme %q (want one of %v)",
					n.Scheme, experiments.FieldMCSchemes())
			}
			pt := experiments.FieldPoint{Footprint: n.Footprint, Lifetime: n.Lifetime, Rate: n.Rate}
			knownPt := false
			for _, p := range experiments.FieldMCPoints() {
				knownPt = knownPt || p == pt
			}
			if !knownPt {
				return n, fmt.Errorf("unknown fieldmc grid point %s (want footprint word|col|row|bank, lifetime transient|intermittent|stuck, rate x1|x4)", pt)
			}
		default:
			return n, fmt.Errorf("fieldmc jobs take either none or all of scheme/footprint/lifetime/rate")
		}
		if n.Trials <= 0 {
			n.Trials = 20
		}
		n.Figures = nil
		n.Budget, n.Warmup, n.Measure = "", 0, 0 // campaigns have their own horizon
	case KindL3:
		if n.Scheme != "" {
			return n, fmt.Errorf("l3 jobs take no scheme (parity vs. CPPC placement is the experiment)")
		}
		if n.Sweep {
			if n.Bench != "" {
				return n, fmt.Errorf("l3 sweep jobs take no bench (the large-footprint set is fixed)")
			}
		} else if n.Bench == "" {
			n.Bench = "mcf"
		}
		if !n.Sweep {
			if _, ok := trace.ProfileByName(n.Bench); !ok {
				return n, fmt.Errorf("unknown benchmark %q", n.Bench)
			}
		}
		n.Trials = 0
		n.Figures = nil
	}
	if n.Kind != KindMulticore {
		n.Cores, n.SharedFrac, n.Silent = 0, 0, false
	}
	if n.Kind != KindFieldMC {
		n.Footprint, n.Lifetime, n.Rate = "", "", ""
	}
	return n, nil
}

// planCells expands a normalized spec into its canonical cell specs, in
// aggregation order. Single-cell kinds plan into themselves, so a sweep's
// cells share cache entries with directly-submitted cell jobs — a suite
// and a simulate of one benchmark, or two multicore sweeps sharing core
// counts, reuse each other's work. Every returned spec is normalized
// (planning a cell spec yields itself).
func planCells(n JobSpec) []JobSpec {
	cell := func(c JobSpec) JobSpec {
		norm, err := c.normalize()
		if err != nil {
			panic("service: planned cell does not normalize: " + err.Error()) // internal invariant
		}
		return norm
	}
	base := JobSpec{Budget: n.Budget, Warmup: n.Warmup, Measure: n.Measure, Seed: n.Seed}
	switch {
	case n.Kind == KindSuite:
		cells := make([]JobSpec, 0, len(experiments.SuiteCells()))
		for _, sc := range experiments.SuiteCells() {
			c := base
			c.Kind, c.Bench, c.Scheme = KindSimulate, sc.Bench, sc.Scheme.String()
			cells = append(cells, cell(c))
		}
		return cells
	case n.Kind == KindMulticore && n.Sweep:
		pts := experiments.Section7Points()
		cells := make([]JobSpec, 0, len(pts))
		for _, pt := range pts {
			c := base
			c.Kind, c.Bench, c.Cores, c.SharedFrac = KindMulticore, n.Bench, pt.Cores, pt.SharedFrac
			c.Silent = n.Silent
			cells = append(cells, cell(c))
		}
		return cells
	case n.Kind == KindL3 && n.Sweep:
		benches := experiments.L3Benches()
		cells := make([]JobSpec, 0, len(benches))
		for _, b := range benches {
			c := base
			c.Kind, c.Bench = KindL3, b
			cells = append(cells, cell(c))
		}
		return cells
	case n.Kind == KindMonteCarlo && n.Scheme == "":
		schemes := experiments.MonteCarloSchemes()
		cells := make([]JobSpec, 0, len(schemes))
		for _, sch := range schemes {
			cells = append(cells, cell(JobSpec{Kind: KindMonteCarlo, Scheme: sch, Trials: n.Trials, Seed: n.Seed}))
		}
		return cells
	case n.Kind == KindFieldMC && n.Scheme == "":
		// Point-major, scheme-minor: the order FieldMCTable consumes.
		pts := experiments.FieldMCPoints()
		schemes := experiments.FieldMCSchemes()
		cells := make([]JobSpec, 0, len(pts)*len(schemes))
		for _, pt := range pts {
			for _, sch := range schemes {
				cells = append(cells, cell(JobSpec{
					Kind: KindFieldMC, Scheme: sch, Trials: n.Trials, Seed: n.Seed,
					Footprint: pt.Footprint, Lifetime: pt.Lifetime, Rate: pt.Rate,
				}))
			}
		}
		return cells
	default:
		// Already a single cell (simulate, multicore point, l3 bench,
		// single-scheme montecarlo).
		return []JobSpec{n}
	}
}

// budget resolves the normalized spec's instruction budget.
func (s JobSpec) budget() experiments.Budget {
	var b experiments.Budget
	switch s.Budget {
	case "quick":
		b = experiments.QuickBudget()
	case "custom":
		b = experiments.Budget{Warmup: s.Warmup, Measure: s.Measure}
	default:
		b = experiments.DefaultBudget()
	}
	b.Seed = s.Seed
	return b
}

// hash is the content address of a normalized spec: a SHA-256 over its
// canonical JSON with scheduling-only fields (Parallel) zeroed, so two
// submissions that compute the same result share one cache entry.
func (s JobSpec) hash() string {
	s.Parallel = 0
	raw, err := json.Marshal(s) // struct marshaling is deterministic
	if err != nil {
		panic("service: spec marshal: " + err.Error()) // unreachable: plain fields
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
