package cache

import (
	"fmt"
	"math/bits"
	"sync"

	"cppc/internal/geometry"
)

// Line is one cache block: tag/state plus real data contents. Check bits
// are stored per word and are opaque to the cache — the protection scheme
// owns their encoding.
type Line struct {
	Tag   uint64
	Valid bool
	Data  []uint64 // BlockWords() words of real contents
	Check []uint64 // per-word check bits (scheme-defined; may be unused)
	Dirty []bool   // per dirty granule (Granules() entries)

	// lastDirtyAccess[g] is the cycle of the previous access to dirty
	// granule g, for the Table 2 Tavg measurement.
	lastDirtyAccess []uint64
}

// DirtyAny reports whether any granule of the line is dirty.
func (ln *Line) DirtyAny() bool {
	for _, d := range ln.Dirty {
		if d {
			return true
		}
	}
	return false
}

// Cache is the tag+data array. All policy (miss handling, protection,
// write-back ordering) is driven from outside via the primitives below.
type Cache struct {
	Cfg    Config
	Geom   geometry.Layout
	sets   [][]Line
	lines  []Line // flat backing of sets, indexed set*nWays+way
	ar     *arena // pooled wrapper the backing arrays came from, if any
	lruClk uint64

	// Probe/Victim-path mirrors of per-line state, flat-indexed
	// set*nWays+way: scanning a set touches one or two cache lines instead
	// of one fat Line struct per way. tags/valids are maintained by
	// Install/Invalidate; lrus (higher = more recently used) by Touch.
	tags   []uint64
	valids []bool
	lrus   []uint64

	// Derived geometry, cached at construction: the Config methods divide
	// on every call, and Sets()/Granules() sit on the per-access hot path
	// (address decomposition, granule indexing, scrub/verify loops).
	nSets        int
	nWays        int
	blockWords   int
	granules     int    // granules per block
	granuleWords int    // == Cfg.DirtyGranuleWords
	blockBytes   uint64 // == Cfg.BlockBytes
	setMask      uint64 // nSets-1 (Validate guarantees power-of-two sets)
	setShift     uint   // log2(nSets)
	blockShift   uint   // log2(blockBytes); valid only when blockPow2
	blockPow2    bool   // block size is a power of two (32B in all Table 1 configs)
	granShift    uint   // log2(granuleWords); valid only when granPow2
	granPow2     bool

	// Tavg / dirty-occupancy accounting (Table 2).
	dirtyGranules   int     // currently dirty granules
	dirtySamples    uint64  // number of occupancy samples
	dirtyAccum      float64 // sum of dirty fractions over samples
	tavgSum         uint64  // sum of intervals between accesses to dirty granules
	tavgCount       uint64  // number of such intervals
	totalGranules   int
	granuleSizeBits int

	// One-entry probe memo. Every memory instruction probes the same
	// address twice — once to plan port usage (PlanLoadVictimRead /
	// PlanStoreRBW), once inside the controller's ensure — and the
	// coherence layer's lazy sharer reconciliation adds a third. The memo
	// answers the repeats with a compare instead of a set scan. mut is
	// bumped by every tag/valid mutation (Install, Invalidate); a stale
	// memo can therefore never be returned. New seeds mut=1 so the
	// zero-valued memo (tag 0, set 0, way 0) can never match first.
	mut      uint64
	probeMut uint64
	probeTag uint64
	probeSet int
	probeWay int

	// plane, when non-nil, is the armed physical fault plane (plane.go):
	// persistent stuck-at / intermittent cells the controller re-asserts
	// on every read path. Nil in every normal simulation — the nil check
	// is the only cost the hook adds to unfaulted runs.
	plane *FaultPlane
}

// arena bundles one geometry's backing arrays (line structs plus the
// probe mirrors; the data/check/dirty payloads stay alive through the Line
// slice headers). Zeroing a 2MB level's arrays dominates short
// simulations, so Release recycles arenas through a per-geometry pool and
// New resets only what gates observable behaviour: an invalid line is
// never read before Install and the scheme's OnFill rewrite its data,
// check bits and dirty state.
type arena struct {
	lines  []Line
	sets   [][]Line
	tags   []uint64
	valids []bool
	lrus   []uint64
}

// nWays is part of the key because the arena now carries the per-set
// slice headers: two geometries with the same line count but different
// associativity must not swap arenas.
type arenaKey struct{ nLines, nWays, blockWords, granules int }

var arenaPools sync.Map // arenaKey -> *sync.Pool of *arena

// Release returns the cache's backing arrays to the construction pool for
// reuse by a future New of the same geometry. The cache — including any
// Line pointers obtained from it — must not be used afterwards.
func (c *Cache) Release() {
	if c.lines == nil {
		return
	}
	key := arenaKey{len(c.lines), c.nWays, c.blockWords, c.granules}
	p, _ := arenaPools.LoadOrStore(key, new(sync.Pool))
	a := c.ar
	if a == nil {
		a = new(arena)
	}
	*a = arena{lines: c.lines, sets: c.sets, tags: c.tags, valids: c.valids, lrus: c.lrus}
	p.(*sync.Pool).Put(a)
	c.lines, c.sets, c.tags, c.valids, c.lrus, c.ar = nil, nil, nil, nil, nil, nil
	if c.plane != nil {
		planePool.Put(c.plane)
		c.plane = nil
	}
}

// New builds an empty cache from a validated config.
func New(cfg Config) *Cache {
	cfg, err := cfg.Validate()
	if err != nil {
		panic(err)
	}
	c := &Cache{
		Cfg:             cfg,
		Geom:            cfg.Layout(),
		nSets:           cfg.Sets(),
		nWays:           cfg.Ways,
		blockWords:      cfg.BlockWords(),
		granules:        cfg.Granules(),
		granuleWords:    cfg.DirtyGranuleWords,
		blockBytes:      uint64(cfg.BlockBytes),
		totalGranules:   cfg.Sets() * cfg.Ways * cfg.Granules(),
		granuleSizeBits: cfg.DirtyGranuleWords * 64,
	}
	c.mut = 1
	c.setMask = uint64(c.nSets - 1)
	c.setShift = uint(bits.TrailingZeros64(uint64(c.nSets)))
	if c.blockBytes&(c.blockBytes-1) == 0 {
		c.blockPow2 = true
		c.blockShift = uint(bits.TrailingZeros64(c.blockBytes))
	}
	if gw := uint64(c.granuleWords); gw&(gw-1) == 0 {
		c.granPow2 = true
		c.granShift = uint(bits.TrailingZeros64(gw))
	}
	nLines := c.nSets * c.nWays
	bw, ng := c.blockWords, c.granules
	if p, ok := arenaPools.Load(arenaKey{nLines, c.nWays, bw, ng}); ok {
		if a, _ := p.(*sync.Pool).Get().(*arena); a != nil {
			c.ar = a
			c.lines, c.sets, c.tags, c.valids, c.lrus = a.lines, a.sets, a.tags, a.valids, a.lrus
			// Install/Invalidate keep ln.Valid and the flat valids mirror
			// in lockstep, so only lines the previous life actually used
			// need their Valid cleared — a short run through a big level
			// touches a tiny fraction of it, where the old whole-array
			// walk dragged the entire line array (tens of MB for an L3)
			// through the heap per construction.
			for i, v := range c.valids {
				if v {
					c.lines[i].Valid = false
				}
			}
			clear(c.valids)
			return c
		}
	}
	c.sets = make([][]Line, c.nSets)
	// One backing array per field, subsliced per line: construction cost is
	// a handful of allocations instead of four per line, and line payloads
	// end up contiguous in memory.
	c.tags = make([]uint64, nLines)
	c.valids = make([]bool, nLines)
	c.lrus = make([]uint64, nLines)
	lines := make([]Line, nLines)
	data := make([]uint64, nLines*bw)
	check := make([]uint64, nLines*bw)
	dirty := make([]bool, nLines*ng)
	lastAcc := make([]uint64, nLines*ng)
	for i := range lines {
		lines[i] = Line{
			Data:            data[i*bw : (i+1)*bw : (i+1)*bw],
			Check:           check[i*bw : (i+1)*bw : (i+1)*bw],
			Dirty:           dirty[i*ng : (i+1)*ng : (i+1)*ng],
			lastDirtyAccess: lastAcc[i*ng : (i+1)*ng : (i+1)*ng],
		}
	}
	c.lines = lines
	for s := range c.sets {
		c.sets[s] = lines[s*c.nWays : (s+1)*c.nWays : (s+1)*c.nWays]
	}
	return c
}

// Cached geometry accessors: identical to the Cfg methods of the same
// names, without the per-call division.
func (c *Cache) Sets() int         { return c.nSets }
func (c *Cache) Ways() int         { return c.nWays }
func (c *Cache) BlockWords() int   { return c.blockWords }
func (c *Cache) Granules() int     { return c.granules }
func (c *Cache) GranuleWords() int { return c.granuleWords }

// GranuleOf maps a word index within a block to its dirty granule.
func (c *Cache) GranuleOf(word int) int {
	if c.granPow2 {
		return word >> c.granShift
	}
	return word / c.granuleWords
}

// Decompose splits a byte address into block tag, set index and word index
// within the block.
func (c *Cache) Decompose(addr uint64) (tag uint64, set, word int) {
	var block, off uint64
	if c.blockPow2 {
		block = addr >> c.blockShift
		off = addr & (c.blockBytes - 1)
	} else {
		block = addr / c.blockBytes
		off = addr % c.blockBytes
	}
	set = int(block & c.setMask)
	tag = block >> c.setShift
	word = int(off >> 3)
	return tag, set, word
}

// BlockAddr reconstructs the byte address of the first word of a resident
// line.
func (c *Cache) BlockAddr(set, way int) uint64 {
	ln := c.Line(set, way)
	return (ln.Tag<<c.setShift + uint64(set)) * c.blockBytes
}

// Probe looks up addr without changing any state. way is -1 on a miss.
func (c *Cache) Probe(addr uint64) (set, way int) {
	tag, s, _ := c.Decompose(addr)
	return s, c.ProbeTS(tag, s)
}

// ProbeTS is Probe for a pre-decomposed (tag, set) — callers that already
// split the address skip a second Decompose.
func (c *Cache) ProbeTS(tag uint64, s int) (way int) {
	if c.probeMut == c.mut && c.probeTag == tag && c.probeSet == s {
		return c.probeWay
	}
	row := s * c.nWays
	way = -1
	for w := 0; w < c.nWays; w++ {
		if c.valids[row+w] && c.tags[row+w] == tag {
			way = w
			break
		}
	}
	c.probeMut, c.probeTag, c.probeSet, c.probeWay = c.mut, tag, s, way
	return way
}

// Line returns the line at (set, way). The pointer stays valid for the
// lifetime of the cache.
func (c *Cache) Line(set, way int) *Line { return &c.lines[set*c.nWays+way] }

// PeekWord returns the stored word at addr if its block is resident,
// without touching replacement or sampling state (checker use).
func (c *Cache) PeekWord(addr uint64) (uint64, bool) {
	set, way := c.Probe(addr)
	if way < 0 {
		return 0, false
	}
	_, _, word := c.Decompose(addr)
	return c.Line(set, way).Data[word], true
}

// Touch marks (set, way) most recently used.
func (c *Cache) Touch(set, way int) {
	c.lruClk++
	c.lrus[set*c.nWays+way] = c.lruClk
}

// Victim picks the replacement way in a set: an invalid way if one exists,
// else true-LRU.
func (c *Cache) Victim(set int) int {
	row := set * c.nWays
	best, bestLRU := 0, ^uint64(0)
	for w := 0; w < c.nWays; w++ {
		if !c.valids[row+w] {
			return w
		}
		if l := c.lrus[row+w]; l < bestLRU {
			best, bestLRU = w, l
		}
	}
	return best
}

// Install replaces the line at (set, way) with a clean block for addr,
// copying data. Eviction of the previous occupant is the caller's job.
func (c *Cache) Install(set, way int, addr uint64, data []uint64) {
	tag, s, _ := c.Decompose(addr)
	if s != set {
		panic(fmt.Sprintf("cache %s: installing addr %#x into wrong set %d (want %d)", c.Cfg.Name, addr, set, s))
	}
	ln := &c.sets[set][way]
	if ln.Valid {
		c.noteDirtyDelta(ln, -1)
	}
	ln.Tag = tag
	ln.Valid = true
	c.mut++
	c.tags[set*c.nWays+way] = tag
	c.valids[set*c.nWays+way] = true
	copy(ln.Data, data)
	for g := range ln.Dirty {
		ln.Dirty[g] = false
		ln.lastDirtyAccess[g] = 0
	}
	c.Touch(set, way)
}

// Invalidate drops the line; dirty contents are discarded (the caller must
// have written them back first if needed).
func (c *Cache) Invalidate(set, way int) {
	ln := &c.sets[set][way]
	if ln.Valid {
		c.noteDirtyDelta(ln, -1)
	}
	ln.Valid = false
	c.mut++
	c.valids[set*c.nWays+way] = false
}

// noteDirtyDelta updates the dirty-granule population when a whole line
// enters/leaves (sign -1 removes the line's dirty granules).
func (c *Cache) noteDirtyDelta(ln *Line, sign int) {
	for _, d := range ln.Dirty {
		if d {
			c.dirtyGranules += sign
		}
	}
}

// MarkDirty sets the dirty bit of the granule containing word `word`,
// maintaining the dirty population. now is the current cycle, used for
// Tavg accounting.
func (c *Cache) MarkDirty(set, way, word int, now uint64) {
	ln := &c.sets[set][way]
	g := c.GranuleOf(word)
	if !ln.Dirty[g] {
		ln.Dirty[g] = true
		c.dirtyGranules++
	}
	ln.lastDirtyAccess[g] = now
}

// MarkClean clears the dirty bit of granule g of the line.
func (c *Cache) MarkClean(set, way, g int) {
	ln := &c.sets[set][way]
	if ln.Dirty[g] {
		ln.Dirty[g] = false
		c.dirtyGranules--
	}
}

// TouchDirty records an access at cycle `now` to the granule containing
// `word` for Tavg measurement: if the granule is dirty and was accessed
// before, the interval is accumulated.
func (c *Cache) TouchDirty(set, way, word int, now uint64) {
	c.TouchDirtyG(&c.lines[set*c.nWays+way], c.GranuleOf(word), now)
}

// TouchDirtyG is TouchDirty for a caller that already holds the line
// pointer and granule index.
func (c *Cache) TouchDirtyG(ln *Line, g int, now uint64) {
	if !ln.Dirty[g] {
		return
	}
	if last := ln.lastDirtyAccess[g]; last != 0 && now > last {
		c.tavgSum += now - last
		c.tavgCount++
	}
	ln.lastDirtyAccess[g] = now
}

// SampleDirtyOccupancy records one sample of the dirty fraction (Table 2's
// "percentage of dirty data during program execution").
func (c *Cache) SampleDirtyOccupancy() {
	c.dirtySamples++
	c.dirtyAccum += float64(c.dirtyGranules) / float64(c.totalGranules)
}

// DirtyFraction returns the average sampled dirty fraction, or the current
// instantaneous fraction if no samples were taken.
func (c *Cache) DirtyFraction() float64 {
	if c.dirtySamples == 0 {
		return float64(c.dirtyGranules) / float64(c.totalGranules)
	}
	return c.dirtyAccum / float64(c.dirtySamples)
}

// DirtyGranuleCount returns the number of currently dirty granules.
func (c *Cache) DirtyGranuleCount() int { return c.dirtyGranules }

// Tavg returns the measured average interval (in cycles) between
// consecutive accesses to a dirty granule; 0 if never measured.
func (c *Cache) Tavg() float64 {
	if c.tavgCount == 0 {
		return 0
	}
	return float64(c.tavgSum) / float64(c.tavgCount)
}

// ResetSampling clears the dirty-occupancy and Tavg accumulators (used
// after cache warm-up so measurements cover only the steady state).
func (c *Cache) ResetSampling() {
	c.dirtySamples = 0
	c.dirtyAccum = 0
	c.tavgSum = 0
	c.tavgCount = 0
}

// ForEachValid visits every valid line.
func (c *Cache) ForEachValid(fn func(set, way int, ln *Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if ln := &c.sets[s][w]; ln.Valid {
				fn(s, w, ln)
			}
		}
	}
}

// ForEachDirtyGranule visits every dirty granule of every valid line.
func (c *Cache) ForEachDirtyGranule(fn func(set, way, granule int, ln *Line)) {
	c.ForEachValid(func(set, way int, ln *Line) {
		for g, d := range ln.Dirty {
			if d {
				fn(set, way, g, ln)
			}
		}
	})
}

// FlipBits XORs mask into the stored data word at (set, way, word) without
// touching check bits: a fault injection.
func (c *Cache) FlipBits(set, way, word int, mask uint64) {
	c.sets[set][way].Data[word] ^= mask
}

// FlipCheckBits XORs mask into the stored check bits at (set, way, word).
func (c *Cache) FlipCheckBits(set, way, word int, mask uint64) {
	c.sets[set][way].Check[word] ^= mask
}
