package cache

import (
	"fmt"

	"cppc/internal/geometry"
)

// Line is one cache block: tag/state plus real data contents. Check bits
// are stored per word and are opaque to the cache — the protection scheme
// owns their encoding.
type Line struct {
	Tag   uint64
	Valid bool
	Data  []uint64 // BlockWords() words of real contents
	Check []uint64 // per-word check bits (scheme-defined; may be unused)
	Dirty []bool   // per dirty granule (Granules() entries)

	// lastDirtyAccess[g] is the cycle of the previous access to dirty
	// granule g, for the Table 2 Tavg measurement.
	lastDirtyAccess []uint64

	lru uint64 // higher = more recently used
}

// DirtyAny reports whether any granule of the line is dirty.
func (ln *Line) DirtyAny() bool {
	for _, d := range ln.Dirty {
		if d {
			return true
		}
	}
	return false
}

// Cache is the tag+data array. All policy (miss handling, protection,
// write-back ordering) is driven from outside via the primitives below.
type Cache struct {
	Cfg    Config
	Geom   geometry.Layout
	sets   [][]Line
	lruClk uint64

	// Tavg / dirty-occupancy accounting (Table 2).
	dirtyGranules   int     // currently dirty granules
	dirtySamples    uint64  // number of occupancy samples
	dirtyAccum      float64 // sum of dirty fractions over samples
	tavgSum         uint64  // sum of intervals between accesses to dirty granules
	tavgCount       uint64  // number of such intervals
	totalGranules   int
	granuleSizeBits int
}

// New builds an empty cache from a validated config.
func New(cfg Config) *Cache {
	cfg, err := cfg.Validate()
	if err != nil {
		panic(err)
	}
	c := &Cache{
		Cfg:             cfg,
		Geom:            cfg.Layout(),
		sets:            make([][]Line, cfg.Sets()),
		totalGranules:   cfg.Sets() * cfg.Ways * cfg.Granules(),
		granuleSizeBits: cfg.DirtyGranuleWords * 64,
	}
	for s := range c.sets {
		c.sets[s] = make([]Line, cfg.Ways)
		for w := range c.sets[s] {
			c.sets[s][w] = Line{
				Data:            make([]uint64, cfg.BlockWords()),
				Check:           make([]uint64, cfg.BlockWords()),
				Dirty:           make([]bool, cfg.Granules()),
				lastDirtyAccess: make([]uint64, cfg.Granules()),
			}
		}
	}
	return c
}

// Decompose splits a byte address into block tag, set index and word index
// within the block.
func (c *Cache) Decompose(addr uint64) (tag uint64, set, word int) {
	block := addr / uint64(c.Cfg.BlockBytes)
	set = int(block % uint64(c.Cfg.Sets()))
	tag = block / uint64(c.Cfg.Sets())
	word = int(addr%uint64(c.Cfg.BlockBytes)) / 8
	return tag, set, word
}

// BlockAddr reconstructs the byte address of the first word of a resident
// line.
func (c *Cache) BlockAddr(set, way int) uint64 {
	ln := c.Line(set, way)
	return (ln.Tag*uint64(c.Cfg.Sets()) + uint64(set)) * uint64(c.Cfg.BlockBytes)
}

// Probe looks up addr without changing any state. way is -1 on a miss.
func (c *Cache) Probe(addr uint64) (set, way int) {
	tag, s, _ := c.Decompose(addr)
	for w := range c.sets[s] {
		if ln := &c.sets[s][w]; ln.Valid && ln.Tag == tag {
			return s, w
		}
	}
	return s, -1
}

// Line returns the line at (set, way). The pointer stays valid for the
// lifetime of the cache.
func (c *Cache) Line(set, way int) *Line { return &c.sets[set][way] }

// Touch marks (set, way) most recently used.
func (c *Cache) Touch(set, way int) {
	c.lruClk++
	c.sets[set][way].lru = c.lruClk
}

// Victim picks the replacement way in a set: an invalid way if one exists,
// else true-LRU.
func (c *Cache) Victim(set int) int {
	best, bestLRU := 0, ^uint64(0)
	for w := range c.sets[set] {
		ln := &c.sets[set][w]
		if !ln.Valid {
			return w
		}
		if ln.lru < bestLRU {
			best, bestLRU = w, ln.lru
		}
	}
	return best
}

// Install replaces the line at (set, way) with a clean block for addr,
// copying data. Eviction of the previous occupant is the caller's job.
func (c *Cache) Install(set, way int, addr uint64, data []uint64) {
	tag, s, _ := c.Decompose(addr)
	if s != set {
		panic(fmt.Sprintf("cache %s: installing addr %#x into wrong set %d (want %d)", c.Cfg.Name, addr, set, s))
	}
	ln := &c.sets[set][way]
	if ln.Valid {
		c.noteDirtyDelta(ln, -1)
	}
	ln.Tag = tag
	ln.Valid = true
	copy(ln.Data, data)
	for g := range ln.Dirty {
		ln.Dirty[g] = false
		ln.lastDirtyAccess[g] = 0
	}
	c.Touch(set, way)
}

// Invalidate drops the line; dirty contents are discarded (the caller must
// have written them back first if needed).
func (c *Cache) Invalidate(set, way int) {
	ln := &c.sets[set][way]
	if ln.Valid {
		c.noteDirtyDelta(ln, -1)
	}
	ln.Valid = false
}

// noteDirtyDelta updates the dirty-granule population when a whole line
// enters/leaves (sign -1 removes the line's dirty granules).
func (c *Cache) noteDirtyDelta(ln *Line, sign int) {
	for _, d := range ln.Dirty {
		if d {
			c.dirtyGranules += sign
		}
	}
}

// MarkDirty sets the dirty bit of the granule containing word `word`,
// maintaining the dirty population. now is the current cycle, used for
// Tavg accounting.
func (c *Cache) MarkDirty(set, way, word int, now uint64) {
	ln := &c.sets[set][way]
	g := word / c.Cfg.DirtyGranuleWords
	if !ln.Dirty[g] {
		ln.Dirty[g] = true
		c.dirtyGranules++
	}
	ln.lastDirtyAccess[g] = now
}

// MarkClean clears the dirty bit of granule g of the line.
func (c *Cache) MarkClean(set, way, g int) {
	ln := &c.sets[set][way]
	if ln.Dirty[g] {
		ln.Dirty[g] = false
		c.dirtyGranules--
	}
}

// TouchDirty records an access at cycle `now` to the granule containing
// `word` for Tavg measurement: if the granule is dirty and was accessed
// before, the interval is accumulated.
func (c *Cache) TouchDirty(set, way, word int, now uint64) {
	ln := &c.sets[set][way]
	g := word / c.Cfg.DirtyGranuleWords
	if !ln.Dirty[g] {
		return
	}
	if last := ln.lastDirtyAccess[g]; last != 0 && now > last {
		c.tavgSum += now - last
		c.tavgCount++
	}
	ln.lastDirtyAccess[g] = now
}

// SampleDirtyOccupancy records one sample of the dirty fraction (Table 2's
// "percentage of dirty data during program execution").
func (c *Cache) SampleDirtyOccupancy() {
	c.dirtySamples++
	c.dirtyAccum += float64(c.dirtyGranules) / float64(c.totalGranules)
}

// DirtyFraction returns the average sampled dirty fraction, or the current
// instantaneous fraction if no samples were taken.
func (c *Cache) DirtyFraction() float64 {
	if c.dirtySamples == 0 {
		return float64(c.dirtyGranules) / float64(c.totalGranules)
	}
	return c.dirtyAccum / float64(c.dirtySamples)
}

// DirtyGranuleCount returns the number of currently dirty granules.
func (c *Cache) DirtyGranuleCount() int { return c.dirtyGranules }

// Tavg returns the measured average interval (in cycles) between
// consecutive accesses to a dirty granule; 0 if never measured.
func (c *Cache) Tavg() float64 {
	if c.tavgCount == 0 {
		return 0
	}
	return float64(c.tavgSum) / float64(c.tavgCount)
}

// ResetSampling clears the dirty-occupancy and Tavg accumulators (used
// after cache warm-up so measurements cover only the steady state).
func (c *Cache) ResetSampling() {
	c.dirtySamples = 0
	c.dirtyAccum = 0
	c.tavgSum = 0
	c.tavgCount = 0
}

// ForEachValid visits every valid line.
func (c *Cache) ForEachValid(fn func(set, way int, ln *Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if ln := &c.sets[s][w]; ln.Valid {
				fn(s, w, ln)
			}
		}
	}
}

// ForEachDirtyGranule visits every dirty granule of every valid line.
func (c *Cache) ForEachDirtyGranule(fn func(set, way, granule int, ln *Line)) {
	c.ForEachValid(func(set, way int, ln *Line) {
		for g, d := range ln.Dirty {
			if d {
				fn(set, way, g, ln)
			}
		}
	})
}

// FlipBits XORs mask into the stored data word at (set, way, word) without
// touching check bits: a fault injection.
func (c *Cache) FlipBits(set, way, word int, mask uint64) {
	c.sets[set][way].Data[word] ^= mask
}

// FlipCheckBits XORs mask into the stored check bits at (set, way, word).
func (c *Cache) FlipCheckBits(set, way, word int, mask uint64) {
	c.sets[set][way].Check[word] ^= mask
}
