package cache

// Stats counts the cache events the paper's energy and performance models
// consume (Sec. 6.2: "we count the number of read hits, write hits, and
// read-before-write operations").
type Stats struct {
	Loads     uint64 // load accesses
	Stores    uint64 // store accesses
	LoadHits  uint64
	StoreHits uint64
	Misses    uint64 // load + store misses
	Fills     uint64 // blocks brought in from the next level
	WriteBack uint64 // dirty blocks pushed to the next level

	// ReadBeforeWrite counts the extra read-port operations a protection
	// scheme required: CPPC performs one per store to an already-dirty
	// word; two-dimensional parity performs one per store and per miss
	// fill (Sec. 2, Sec. 5.2).
	ReadBeforeWrite uint64

	// RBWOnMissLines counts whole-line reads forced by two-dimensional
	// parity on miss fills ("in the case of a miss, an entire cache line
	// must be read").
	RBWOnMissLines uint64

	// SubWordRMW counts read-modify-writes forced by sub-word stores:
	// with per-word check bits every byte/halfword/word store must read
	// the containing 64-bit word first. This cost is common to all
	// per-word protection schemes (it is not a CPPC delta).
	SubWordRMW uint64

	// Detections / recoveries observed during the run.
	FaultsDetected   uint64
	FaultsCorrected  uint64
	CleanRefetches   uint64 // faults in clean data repaired by re-fetching
	UnrecoverableDUE uint64
}

// Accesses is total loads+stores.
func (s *Stats) Accesses() uint64 { return s.Loads + s.Stores }

// MissRate is misses per access.
func (s *Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.LoadHits += o.LoadHits
	s.StoreHits += o.StoreHits
	s.Misses += o.Misses
	s.Fills += o.Fills
	s.WriteBack += o.WriteBack
	s.ReadBeforeWrite += o.ReadBeforeWrite
	s.RBWOnMissLines += o.RBWOnMissLines
	s.SubWordRMW += o.SubWordRMW
	s.FaultsDetected += o.FaultsDetected
	s.FaultsCorrected += o.FaultsCorrected
	s.CleanRefetches += o.CleanRefetches
	s.UnrecoverableDUE += o.UnrecoverableDUE
}
