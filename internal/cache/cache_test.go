package cache

import (
	"testing"
)

func smallConfig() Config {
	c, err := Config{
		Name: "test", SizeBytes: 1 << 10, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "odd-block", SizeBytes: 1024, Ways: 2, BlockBytes: 12},
		{Name: "non-pow2-sets", SizeBytes: 96, Ways: 1, BlockBytes: 32},
		{Name: "bad-granule", SizeBytes: 1024, Ways: 2, BlockBytes: 32, DirtyGranuleWords: 3},
		{Name: "bad-row", SizeBytes: 1024, Ways: 2, BlockBytes: 32, WordsPerRow: 7},
	}
	for _, c := range bad {
		if _, err := c.Validate(); err == nil {
			t.Errorf("config %q unexpectedly valid", c.Name)
		}
	}
	good, err := Config{Name: "ok", SizeBytes: 1024, Ways: 2, BlockBytes: 32}.Validate()
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.DirtyGranuleWords != 1 || good.WordsPerRow != 4 || good.HitLatencyCycles != 1 {
		t.Errorf("defaults not applied: %+v", good)
	}
}

func TestPaperConfigs(t *testing.T) {
	l1 := L1DConfig()
	if l1.Sets() != 512 || l1.BlockWords() != 4 || l1.Granules() != 4 {
		t.Errorf("L1D geometry wrong: sets=%d words=%d granules=%d", l1.Sets(), l1.BlockWords(), l1.Granules())
	}
	l2 := L2Config()
	if l2.Sets() != 8192 || l2.Granules() != 1 {
		t.Errorf("L2 geometry wrong: sets=%d granules=%d", l2.Sets(), l2.Granules())
	}
	if L1IConfig().Ways != 1 {
		t.Error("L1I should be direct-mapped")
	}
}

func TestDecomposeRoundTrip(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0x12345678) &^ 7
	tag, set, word := c.Decompose(addr)
	_ = tag
	if word != int(addr%32)/8 {
		t.Errorf("word = %d", word)
	}
	// Install and reconstruct the block address.
	way := c.Victim(set)
	data := make([]uint64, 4)
	c.Install(set, way, addr, data)
	if got := c.BlockAddr(set, way); got != addr&^31 {
		t.Errorf("BlockAddr = %#x, want %#x", got, addr&^31)
	}
}

func TestProbeInstall(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0x1000)
	if _, way := c.Probe(addr); way != -1 {
		t.Fatal("empty cache hit")
	}
	set, _ := c.Probe(addr)
	c.Install(set, c.Victim(set), addr, []uint64{1, 2, 3, 4})
	s2, way := c.Probe(addr)
	if way == -1 || s2 != set {
		t.Fatal("installed block not found")
	}
	ln := c.Line(set, way)
	if ln.Data[2] != 3 {
		t.Errorf("data not copied: %v", ln.Data)
	}
	if ln.DirtyAny() {
		t.Error("fresh install is dirty")
	}
}

func TestLRUVictim(t *testing.T) {
	c := New(smallConfig())
	// Two addresses in the same set (set stride = sets*blockBytes = 16*32).
	stride := uint64(c.Cfg.Sets() * c.Cfg.BlockBytes)
	a, b, d := uint64(0x40), 0x40+stride, 0x40+2*stride
	set, _ := c.Probe(a)
	c.Install(set, c.Victim(set), a, make([]uint64, 4))
	c.Install(set, c.Victim(set), b, make([]uint64, 4))
	// Touch a so b becomes LRU.
	if _, way := c.Probe(a); way >= 0 {
		c.Touch(set, way)
	}
	vic := c.Victim(set)
	if _, wayB := c.Probe(b); vic != wayB {
		t.Errorf("victim = way %d, want LRU way of b", vic)
	}
	// Install d over the victim; b must be gone.
	c.Install(set, vic, d, make([]uint64, 4))
	if _, way := c.Probe(b); way != -1 {
		t.Error("b still resident after replacement")
	}
	if _, way := c.Probe(a); way == -1 {
		t.Error("a evicted although MRU")
	}
}

func TestDirtyAccounting(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0)
	set, _ := c.Probe(addr)
	way := c.Victim(set)
	c.Install(set, way, addr, make([]uint64, 4))

	c.MarkDirty(set, way, 0, 100)
	c.MarkDirty(set, way, 1, 100)
	if c.DirtyGranuleCount() != 2 {
		t.Fatalf("dirty count = %d", c.DirtyGranuleCount())
	}
	// Re-marking the same word does not double count.
	c.MarkDirty(set, way, 0, 110)
	if c.DirtyGranuleCount() != 2 {
		t.Fatalf("dirty count after re-mark = %d", c.DirtyGranuleCount())
	}
	c.MarkClean(set, way, 0)
	if c.DirtyGranuleCount() != 1 {
		t.Fatalf("dirty count after clean = %d", c.DirtyGranuleCount())
	}
	// Invalidate removes the remaining dirty granule from the population.
	c.Invalidate(set, way)
	if c.DirtyGranuleCount() != 0 {
		t.Fatalf("dirty count after invalidate = %d", c.DirtyGranuleCount())
	}
}

func TestInstallOverDirtyLine(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0)
	set, _ := c.Probe(addr)
	way := c.Victim(set)
	c.Install(set, way, addr, make([]uint64, 4))
	c.MarkDirty(set, way, 0, 1)
	// Overwriting the line (as a fill would after eviction) clears its
	// dirty contribution.
	stride := uint64(c.Cfg.Sets() * c.Cfg.BlockBytes)
	c.Install(set, way, addr+stride, make([]uint64, 4))
	if c.DirtyGranuleCount() != 0 {
		t.Fatalf("dirty count = %d after reinstall", c.DirtyGranuleCount())
	}
}

func TestTavgMeasurement(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0)
	set, _ := c.Probe(addr)
	way := c.Victim(set)
	c.Install(set, way, addr, make([]uint64, 4))
	c.MarkDirty(set, way, 0, 1000)
	c.TouchDirty(set, way, 0, 1500) // interval 500
	c.TouchDirty(set, way, 0, 1700) // interval 200
	if got := c.Tavg(); got != 350 {
		t.Errorf("Tavg = %v, want 350", got)
	}
	// Clean granules do not contribute.
	c.TouchDirty(set, way, 1, 2000)
	if got := c.Tavg(); got != 350 {
		t.Errorf("Tavg disturbed by clean access: %v", got)
	}
}

func TestDirtyOccupancySampling(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0)
	set, _ := c.Probe(addr)
	way := c.Victim(set)
	c.Install(set, way, addr, make([]uint64, 4))
	c.SampleDirtyOccupancy() // 0 dirty
	c.MarkDirty(set, way, 0, 1)
	c.SampleDirtyOccupancy() // 1 of 128 granules dirty
	want := (0.0 + 1.0/128.0) / 2
	if got := c.DirtyFraction(); got != want {
		t.Errorf("DirtyFraction = %v, want %v", got, want)
	}
}

func TestForEachDirtyGranule(t *testing.T) {
	c := New(smallConfig())
	for i := 0; i < 4; i++ {
		addr := uint64(i * c.Cfg.BlockBytes)
		set, _ := c.Probe(addr)
		way := c.Victim(set)
		c.Install(set, way, addr, make([]uint64, 4))
		if i%2 == 0 {
			c.MarkDirty(set, way, i%4, 1)
		}
	}
	n := 0
	c.ForEachDirtyGranule(func(set, way, g int, ln *Line) { n++ })
	if n != 2 {
		t.Errorf("visited %d dirty granules, want 2", n)
	}
}

func TestFlipBits(t *testing.T) {
	c := New(smallConfig())
	addr := uint64(0)
	set, _ := c.Probe(addr)
	way := c.Victim(set)
	c.Install(set, way, addr, []uint64{0xff, 0, 0, 0})
	c.FlipBits(set, way, 0, 0x0f)
	if got := c.Line(set, way).Data[0]; got != 0xf0 {
		t.Errorf("data after flip = %#x", got)
	}
	c.FlipCheckBits(set, way, 0, 0x3)
	if got := c.Line(set, way).Check[0]; got != 0x3 {
		t.Errorf("check after flip = %#x", got)
	}
}

func TestMemoryGolden(t *testing.T) {
	m := NewMemory(32, 200)
	m.WriteWord(0x100, 0xdead)
	if m.ReadWord(0x100) != 0xdead {
		t.Fatal("ReadWord mismatch")
	}
	dst := make([]uint64, 4)
	if lat := m.FetchBlock(0x108, dst, 0); lat != 200 {
		t.Errorf("latency = %d", lat)
	}
	if dst[0] != 0xdead {
		t.Errorf("block fetch = %v", dst)
	}
	m.WriteBackBlock(0x120, []uint64{1, 2, 3, 4}, 0)
	if m.ReadWord(0x128) != 2 {
		t.Error("write-back not visible")
	}
	if m.Fetches != 1 || m.WriteBacks != 1 {
		t.Errorf("counters: %d fetches, %d writebacks", m.Fetches, m.WriteBacks)
	}
}

func TestStatsAddAndRates(t *testing.T) {
	var a, b Stats
	a.Loads, a.LoadHits, a.Misses = 10, 8, 2
	b.Stores, b.StoreHits, b.ReadBeforeWrite = 5, 5, 3
	a.Add(b)
	if a.Accesses() != 15 {
		t.Errorf("Accesses = %d", a.Accesses())
	}
	if got := a.MissRate(); got != 2.0/15.0 {
		t.Errorf("MissRate = %v", got)
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Error("MissRate of empty stats should be 0")
	}
}
