package cache

import (
	"sync"

	"cppc/internal/lfrng"
)

// The fault plane models faults that live in the physical array rather
// than in the stored values: a stuck-at cell reads as its stuck value
// no matter what was written over it, and an intermittent cell flickers
// with some probability each time the array is consulted. The plane is
// keyed by physical location (set, way, word) — not by tag — so a fault
// outlives eviction: whatever block is installed over a bad cell
// inherits it, exactly as in the field studies the campaigns mirror.
//
// The plane is passive storage; re-assertion happens when the protect
// controller calls ReassertGranule/ReassertLine at the top of its read
// paths (demand verify, block fetch, scrub, write-back verify). That
// placement is what makes lifetimes matter: a scheme may correct or
// refetch the data — the next consult re-applies the fault, so only
// schemes that can correct on *every* access survive a stuck cell.
//
// Campaign determinism: intermittent draws come from a plane-local
// lagged-Fibonacci generator (internal/lfrng) in cache-access order,
// which is fixed for a given workload, so armed trials are bit-stable
// across runs and toolchains.

// FaultLife distinguishes the persistent lifetimes the plane stores.
// (Transient faults are a one-shot FlipBits and never enter the plane.)
type FaultLife uint8

const (
	// LifeStuck: the masked bits always read back as the stuck value.
	LifeStuck FaultLife = iota
	// LifeIntermittent: each consult flips the masked bits with
	// probability reassert — the cell flickers.
	LifeIntermittent
)

type planeFault struct {
	word     int // word index within the block
	life     FaultLife
	mask     uint64
	stuckVal uint64  // LifeStuck: value of the masked bits
	reassert float64 // LifeIntermittent: per-consult flip probability
}

// FaultPlane holds the armed faults of one cache, keyed by flat line
// index (set*ways+way).
type FaultPlane struct {
	byLine map[int][]planeFault
	faults int
	rng    lfrng.Rand
}

// planePool recycles FaultPlane shells: the embedded lagged-Fibonacci
// state is ~5KB, and field campaigns arm a fresh plane per trial.
// Release returns an armed cache's plane here; ArmPlane reseeds the rng
// and clears the fault map in place, which is behaviourally identical
// to a fresh plane.
var planePool = sync.Pool{New: func() any { return new(FaultPlane) }}

// ArmPlane attaches an (empty) fault plane; seed drives the
// intermittent-fault coin. Arming an already-armed cache resets it.
func (c *Cache) ArmPlane(seed int64) {
	p := planePool.Get().(*FaultPlane)
	if p.byLine == nil {
		p.byLine = make(map[int][]planeFault)
	} else {
		clear(p.byLine)
	}
	p.faults = 0
	p.rng.Seed(seed)
	c.plane = p
}

// DisarmPlane removes the plane; the cache is back to fault-free.
func (c *Cache) DisarmPlane() { c.plane = nil }

// PlaneArmed reports whether a fault plane is attached.
func (c *Cache) PlaneArmed() bool { return c.plane != nil }

// PlaneFaults is the number of armed persistent faults.
func (c *Cache) PlaneFaults() int {
	if c.plane == nil {
		return 0
	}
	return c.plane.faults
}

func (c *Cache) addPlaneFault(set, way int, f planeFault) {
	if c.plane == nil {
		panic("cache: AddFault on unarmed plane")
	}
	idx := set*c.nWays + way
	c.plane.byLine[idx] = append(c.plane.byLine[idx], f)
	c.plane.faults++
}

// AddStuckFault arms a stuck-at fault: the mask bits of the word at
// (set, way, word) read back as stuckVal&mask on every consult.
func (c *Cache) AddStuckFault(set, way, word int, mask, stuckVal uint64) {
	c.addPlaneFault(set, way, planeFault{word: word, life: LifeStuck, mask: mask, stuckVal: stuckVal & mask})
}

// AddIntermittentFault arms a flickering fault: each consult of the
// line XORs mask into the word with probability reassert.
func (c *Cache) AddIntermittentFault(set, way, word int, mask uint64, reassert float64) {
	c.addPlaneFault(set, way, planeFault{word: word, life: LifeIntermittent, mask: mask, reassert: reassert})
}

// reassert applies one fault to the line's stored data.
func (p *FaultPlane) reassert(ln *Line, f *planeFault) {
	switch f.life {
	case LifeStuck:
		ln.Data[f.word] = ln.Data[f.word]&^f.mask | f.stuckVal
	case LifeIntermittent:
		if p.rng.Float64() < f.reassert {
			ln.Data[f.word] ^= f.mask
		}
	}
}

// ReassertGranule re-applies every armed fault whose word lies in
// granule g of (set, way). Called by the controller before a granule
// verify. The wrapper stays under the inlining budget so an unarmed
// plane costs the read path exactly one inlined nil check.
func (c *Cache) ReassertGranule(set, way, g int) {
	if c.plane != nil {
		c.reassertGranule(set, way, g)
	}
}

func (c *Cache) reassertGranule(set, way, g int) {
	fs := c.plane.byLine[set*c.nWays+way]
	if len(fs) == 0 {
		return
	}
	ln := &c.lines[set*c.nWays+way]
	if !ln.Valid {
		return
	}
	lo, hi := g*c.granuleWords, (g+1)*c.granuleWords
	for i := range fs {
		if f := &fs[i]; f.word >= lo && f.word < hi {
			c.plane.reassert(ln, f)
		}
	}
}

// ReassertLine re-applies every armed fault on (set, way). Called by
// the controller before whole-line reads (block fetch, write-back);
// inlined to a nil check when the plane is unarmed.
func (c *Cache) ReassertLine(set, way int) {
	if c.plane != nil {
		c.reassertLine(set, way)
	}
}

func (c *Cache) reassertLine(set, way int) {
	fs := c.plane.byLine[set*c.nWays+way]
	if len(fs) == 0 {
		return
	}
	ln := &c.lines[set*c.nWays+way]
	if !ln.Valid {
		return
	}
	for i := range fs {
		c.plane.reassert(ln, &fs[i])
	}
}
