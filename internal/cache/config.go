// Package cache implements the write-back set-associative cache model that
// every protection scheme in the paper sits on: tag and data arrays holding
// real 64-bit contents, per-granule dirty bits, true-LRU replacement, and a
// golden backing memory. The cache is deliberately mechanical — protection
// policy (parity checks, XOR registers, read-before-write) lives in
// internal/protect and internal/core, which drive the primitives exposed
// here.
package cache

import (
	"fmt"

	"cppc/internal/geometry"
)

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int // total data capacity
	Ways       int // associativity
	BlockBytes int // line size

	// DirtyGranuleWords is the dirty-bit granularity in 64-bit words: 1
	// for an L1 CPPC ("one dirty bit per word", Sec. 3), BlockBytes/8 for
	// an L2 CPPC ("one dirty bit per unit of L1 cache block size",
	// Sec. 3.5, with equal L1/L2 block sizes as in Table 1).
	DirtyGranuleWords int

	// WordsPerRow is the physical row width used for rotation classes and
	// spatial faults; defaults to one block per row.
	WordsPerRow int

	// BitInterleaved selects physical bit interleaving within a row (the
	// SECDED companion technique): spatial bursts spread across words at
	// the cost of 8x bitline energy (Sec. 6.2).
	BitInterleaved bool

	// HitLatencyCycles is the access latency on a hit (Table 1: 2 for
	// L1D, 8 for L2).
	HitLatencyCycles int
}

// Derived geometry.
func (c Config) BlockWords() int { return c.BlockBytes / 8 }
func (c Config) Sets() int       { return c.SizeBytes / (c.BlockBytes * c.Ways) }
func (c Config) Granules() int   { return c.BlockWords() / c.DirtyGranuleWords }
func (c Config) TotalBits() int  { return c.SizeBytes * 8 }

// Validate checks internal consistency and fills defaults; it returns the
// normalized config.
func (c Config) Validate() (Config, error) {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return c, fmt.Errorf("cache %q: non-positive dimension", c.Name)
	}
	if c.BlockBytes%8 != 0 {
		return c, fmt.Errorf("cache %q: block size %dB not word-aligned", c.Name, c.BlockBytes)
	}
	if c.SizeBytes%(c.BlockBytes*c.Ways) != 0 {
		return c, fmt.Errorf("cache %q: size %d not divisible into %d-way sets of %dB blocks",
			c.Name, c.SizeBytes, c.Ways, c.BlockBytes)
	}
	sets := c.SizeBytes / (c.BlockBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return c, fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, sets)
	}
	if c.DirtyGranuleWords == 0 {
		c.DirtyGranuleWords = 1
	}
	if c.BlockWords()%c.DirtyGranuleWords != 0 {
		return c, fmt.Errorf("cache %q: dirty granule %d words does not divide block of %d words",
			c.Name, c.DirtyGranuleWords, c.BlockWords())
	}
	if c.WordsPerRow == 0 {
		c.WordsPerRow = c.BlockWords()
	}
	if c.HitLatencyCycles == 0 {
		c.HitLatencyCycles = 1
	}
	if (sets*c.Ways*c.BlockWords())%c.WordsPerRow != 0 {
		return c, fmt.Errorf("cache %q: wordsPerRow %d does not tile the array", c.Name, c.WordsPerRow)
	}
	return c, nil
}

// Layout returns the physical layout of the data array.
func (c Config) Layout() geometry.Layout {
	l := geometry.MustLayout(c.Sets(), c.Ways, c.BlockWords(), c.WordsPerRow)
	l.BitInterleaved = c.BitInterleaved
	return l
}

// L1DConfig is the paper's Table 1 L1 data cache: 32KB, 2-way, 32-byte
// lines, 2-cycle latency, per-word dirty bits.
func L1DConfig() Config {
	c, err := Config{
		Name: "L1D", SizeBytes: 32 << 10, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return c
}

// L2Config is the paper's Table 1 unified L2: 1MB, 4-way, 32-byte lines,
// 8-cycle latency, dirty bits at L1-block (= full line) granularity.
func L2Config() Config {
	c, err := Config{
		Name: "L2", SizeBytes: 1 << 20, Ways: 4, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return c
}

// L3Config is the configuration used for the Sec. 7 future-work study
// ("we expect an L3 CPPC to be even more energy efficient"): an 8MB
// 16-way last-level cache with the same 32-byte lines, dirty-tracked at
// L1-block granularity like the L2.
func L3Config() Config {
	c, err := Config{
		Name: "L3", SizeBytes: 8 << 20, Ways: 16, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 30,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return c
}

// L1IConfig is the paper's Table 1 instruction cache: 16KB direct-mapped,
// 32-byte lines, 1-cycle latency. Instruction caches hold no dirty data;
// it participates only in the timing model.
func L1IConfig() Config {
	c, err := Config{
		Name: "L1I", SizeBytes: 16 << 10, Ways: 1, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 1,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return c
}
