package cache

import "sync"

// Backing is the next level below a cache controller: either main memory
// or another (protected) cache level.
type Backing interface {
	// FetchBlock reads the block containing addr (block-aligned inside)
	// into dst and returns the access latency in cycles.
	FetchBlock(addr uint64, dst []uint64, now uint64) int
	// WriteBackBlock accepts an evicted dirty block.
	WriteBackBlock(addr uint64, src []uint64, now uint64)
}

// Memory is the golden backing store: a sparse word-addressed map that is
// never subject to faults. It doubles as the reference copy that fault
// campaigns compare recovered data against.
type Memory struct {
	words        map[uint64]uint64
	blockBytes   int
	LatencyCycle int // Fetch latency (e.g. ~200 cycles at 3GHz DRAM)

	Fetches    uint64
	WriteBacks uint64
}

// memWordsPool recycles the sparse word map across Memory lifetimes:
// clear() keeps a map's buckets, so a released memory re-serves a
// same-footprint simulation without re-growing (write-back bucket growth
// otherwise shows up in every short cell's allocation profile).
var memWordsPool = sync.Pool{New: func() any { return make(map[uint64]uint64, 1024) }}

// NewMemory creates a memory serving blocks of the given size.
func NewMemory(blockBytes, latency int) *Memory {
	return &Memory{
		words:        memWordsPool.Get().(map[uint64]uint64),
		blockBytes:   blockBytes,
		LatencyCycle: latency,
	}
}

// Reset returns the memory to its freshly-constructed state in place,
// keeping the word map's buckets: the trial executor's per-worker
// arenas reuse one Memory across trials instead of cycling it through
// the pool, so a same-footprint trial never re-grows the map.
func (m *Memory) Reset() {
	clear(m.words)
	m.Fetches, m.WriteBacks = 0, 0
}

// Release returns the memory's word map to the construction pool. The
// memory must not be used afterwards.
func (m *Memory) Release() {
	if m.words == nil {
		return
	}
	clear(m.words)
	memWordsPool.Put(m.words)
	m.words = nil
}

// ReadWord returns the golden value at a word-aligned address.
func (m *Memory) ReadWord(addr uint64) uint64 { return m.words[addr&^7] }

// WriteWord stores a golden value at a word-aligned address.
func (m *Memory) WriteWord(addr uint64, v uint64) { m.words[addr&^7] = v }

// FetchBlock implements Backing.
func (m *Memory) FetchBlock(addr uint64, dst []uint64, _ uint64) int {
	m.Fetches++
	base := addr &^ uint64(m.blockBytes-1)
	for i := range dst {
		dst[i] = m.words[base+uint64(i*8)]
	}
	return m.LatencyCycle
}

// WriteBackBlock implements Backing.
func (m *Memory) WriteBackBlock(addr uint64, src []uint64, _ uint64) {
	m.WriteBacks++
	base := addr &^ uint64(m.blockBytes-1)
	for i, w := range src {
		m.words[base+uint64(i*8)] = w
	}
}
