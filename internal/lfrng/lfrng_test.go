package lfrng

import (
	"math/rand"
	"testing"
)

// TestLFRandMatchesMathRand locks Rand to the stdlib stream: for the
// same seed, an interleaved sequence of every method the generator
// exposes must match rand.New(rand.NewSource(seed)) draw for draw. The
// trace generator's and fault campaigns' determinism guarantees (and
// therefore every figure's bit-exact reproducibility against earlier
// releases) rest on this.
func TestLFRandMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, 42, -7, 89482311, 1<<62 + 12345, -(1 << 40)}
	sizes := []int{1, 2, 3, 5, 7, 8, 16, 64, 100, 4096, 1 << 20, int32max, int32max + 1, 1 << 40}
	for _, seed := range seeds {
		ref := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 20000; i++ {
			switch i % 5 {
			case 0:
				if g, w := got.Float64(), ref.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
				}
			case 1:
				n := sizes[i%len(sizes)]
				if g, w := got.Intn(n), ref.Intn(n); g != w {
					t.Fatalf("seed %d draw %d: Intn(%d) = %d, want %d", seed, i, n, g, w)
				}
			case 2:
				if g, w := got.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, g, w)
				}
			case 3:
				if g, w := got.Int31(), ref.Int31(); g != w {
					t.Fatalf("seed %d draw %d: Int31 = %d, want %d", seed, i, g, w)
				}
			case 4:
				if g, w := got.Uint64(), ref.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, g, w)
				}
			}
		}
	}
}

// TestLFRandIntnPanics mirrors math/rand's contract on invalid bounds.
func TestLFRandIntnPanics(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

// TestBoundMatchesIntn locks the precomputed-bound path to the plain
// Intn stream for power-of-two and general bounds.
func TestBoundMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 100, 607} {
		a, b := New(9), New(9)
		bd := MakeBound(n)
		for i := 0; i < 5000; i++ {
			if g, w := a.IntnBound(bd), b.Intn(n); g != w {
				t.Fatalf("n=%d draw %d: IntnBound = %d, Intn = %d", n, i, g, w)
			}
		}
	}
}
