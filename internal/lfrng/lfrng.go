// Package lfrng is a bit-compatible reimplementation of the stdlib
// math/rand additive lagged-Fibonacci generator (Mitchell & Reeds)
// together with the rand.Rand derivations the simulator draws through
// (Float64, Intn, Uint64). For an identical seed it produces the
// identical value stream — TestLFRandMatchesMathRand checks this
// exhaustively — but with concrete, inlinable methods instead of an
// interface dispatch per draw, and a stream that is frozen here rather
// than in the toolchain, so cached results stay byte-identical across
// Go versions.
//
// It began life inside internal/trace (which still aliases it); the
// fault campaigns share it so that fleet-cached cells hash identically
// on every daemon regardless of toolchain.
//
// The seeding table in table.go is generated from the toolchain's
// math/rand source; regenerate it only if the stdlib stream ever
// changes (it is frozen by the Go 1 compatibility promise).
package lfrng

const (
	lfLen    = 607
	lfTap    = 273
	lfMask   = 1<<63 - 1
	int32max = 1<<31 - 1
)

// Rand is the generator. The zero value is not seeded; call Seed (or
// use New) before drawing.
type Rand struct {
	tap, feed int
	vec       [lfLen]int64
}

// New returns a generator in the same state as
// rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	r := new(Rand)
	r.Seed(seed)
	return r
}

// lfSeedrand advances the seeding LCG: x[n+1] = 48271 * x[n] mod (2^31-1).
func lfSeedrand(x int32) int32 {
	const (
		a  = 48271
		q  = 44488
		rr = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - rr*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// Seed resets the generator to the state of rand.NewSource(seed).
func (r *Rand) Seed(seed int64) {
	r.tap = 0
	r.feed = lfLen - lfTap
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	x := int32(seed)
	for i := -20; i < lfLen; i++ {
		x = lfSeedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = lfSeedrand(x)
			u ^= int64(x) << 20
			x = lfSeedrand(x)
			u ^= int64(x)
			u ^= lfCooked[i]
			r.vec[i] = u
		}
	}
}

// Uint64 returns the raw 64-bit generator output — the same stream as
// rand.New(rand.NewSource(seed)).Uint64(), whose rngSource implements
// Source64 and hands back the unmasked lagged-Fibonacci word.
func (r *Rand) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += lfLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += lfLen
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return uint64(x)
}

func (r *Rand) Int63() int64 { return int64(r.Uint64() & lfMask) }

func (r *Rand) Int31() int32 { return int32(r.Int63() >> 32) }

// Float64 preserves the Go 1 value stream, including the round-to-1
// resample. The stdlib divides by 2^63; multiplying by the exactly
// representable 2^-63 only adjusts the exponent the same way, so every
// result is bit-identical and the divider stays off the hot path.
func (r *Rand) Float64() float64 {
again:
	f := float64(r.Int63()) * 0x1p-63
	if f == 1 {
		goto again
	}
	return f
}

func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 {
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 {
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// Bound is a precomputed Intn bound for n in [1, 2^31). Int31n
// recomputes its rejection threshold — a hardware division — on every
// call; hoisting it out matters for per-instruction draws whose bounds
// are fixed for the life of a generator. The drawn value stream is
// identical to Intn(n).
type Bound struct {
	n    int32
	mask int32 // n-1 when n is a power of two, else -1
	max  int32 // rejection threshold when n is not a power of two
}

// MakeBound precomputes the rejection threshold for IntnBound.
func MakeBound(n int) Bound {
	if n <= 0 || n > 1<<31-1 {
		panic("invalid argument to MakeBound")
	}
	if n&(n-1) == 0 {
		return Bound{n: int32(n), mask: int32(n - 1)}
	}
	return Bound{n: int32(n), mask: -1, max: int32((1 << 31) - 1 - (1<<31)%uint32(n))}
}

// IntnBound draws Intn(b.n) through the precomputed bound.
func (r *Rand) IntnBound(b Bound) int {
	if b.mask >= 0 {
		return int(r.Int31() & b.mask)
	}
	v := r.Int31()
	for v > b.max {
		v = r.Int31()
	}
	return int(v % b.n)
}
