package core

import (
	"fmt"
	"sync"

	"cppc/internal/bitops"
	"cppc/internal/cache"
)

// Events counts what the engine did; consumed by the energy model and the
// fault campaigns.
type Events struct {
	Folds           uint64 // register XOR updates (R1 or R2)
	Recoveries      uint64 // recovery procedures triggered
	SweptGranules   uint64 // dirty granules visited during recoveries
	CorrectedSingle uint64 // single-faulty-granule corrections (Sec. 3.2)
	CorrectedCheck  uint64 // corrupted check bits rewritten
	CorrectedDisj   uint64 // multi-fault, disjoint parity stripes (step 4)
	CorrectedSpat   uint64 // spatial corrections via the fault locator
	LocatorRuns     uint64
	DUEs            uint64 // detected unrecoverable errors (step 7 halt)
	RegisterScrubs  uint64 // register faults repaired from the cache (Sec. 4.9)
	// SilentStoresElided counts stores skipped because the new value
	// equaled the verified old one (Config.SilentStoreElision): no array
	// write, no folds — the energy model subtracts both.
	SilentStoresElided uint64
}

// Engine attaches CPPC protection to a cache. It owns the register pairs
// and the per-granule interleaved parity bits (stored in the cache's check
// array), and implements the recovery algorithm and fault locator.
type Engine struct {
	Cfg Config
	C   *cache.Cache

	granuleWords int
	r1, r2       [][]uint64 // [pair][element]

	// Geometry tables, precomputed at construction: the rotation class of
	// a granule is a pure function of its physical coordinates, and the
	// per-store ClassOf -> CoordOf chain (index arithmetic with three
	// divisions) was hot enough to matter. classTab/pairTab/rotTab are
	// indexed by (set*ways+way)*granules + g.
	classTab []uint8
	pairTab  []uint8
	rotTab   []uint8
	granules int // granules per block, cached

	// Sec. 4.9 register self-protection (EnableRegisterParity).
	regParity    bool
	r1Par, r2Par [][]uint64

	Events Events
}

// geomTabs is one immutable set of precomputed geometry tables. The
// tables are a pure function of the cache configuration (which fully
// determines the physical layout) and the engine configuration, and
// engines only ever read them — so they are built once per distinct
// (cache.Config, core.Config) and shared across every engine of that
// shape. Cell sweeps construct thousands of same-shaped engines; the
// ~100KB L2 table walk was a measurable slice of cell construction.
type geomTabs struct {
	class, pair, rot []uint8
}

var geomTabCache sync.Map // struct{cache.Config; Config} -> *geomTabs

func geomTabsFor(c *cache.Cache, cfg Config, granules int) *geomTabs {
	type key struct {
		cc cache.Config
		ec Config
	}
	k := key{c.Cfg, cfg}
	if t, ok := geomTabCache.Load(k); ok {
		return t.(*geomTabs)
	}
	g := c.Cfg.DirtyGranuleWords
	t := &geomTabs{
		class: make([]uint8, c.Sets()*c.Ways()*granules),
		pair:  make([]uint8, c.Sets()*c.Ways()*granules),
		rot:   make([]uint8, c.Sets()*c.Ways()*granules),
	}
	for set := 0; set < c.Sets(); set++ {
		for way := 0; way < c.Ways(); way++ {
			for gi := 0; gi < granules; gi++ {
				class := c.Geom.ClassOf(set, way, gi*g)
				i := (set*c.Ways()+way)*granules + gi
				t.class[i] = uint8(class)
				t.pair[i] = uint8(cfg.PairOf(class))
				t.rot[i] = uint8(cfg.RotationOf(class))
			}
		}
	}
	// Concurrent builders race benignly: the content is identical, and
	// LoadOrStore keeps exactly one copy resident.
	actual, _ := geomTabCache.LoadOrStore(k, t)
	return actual.(*geomTabs)
}

// New attaches a CPPC engine to c. The register width follows the cache's
// dirty granularity: one word for an L1 CPPC, one L1 block for an L2 CPPC
// (Sec. 3.5).
func New(c *cache.Cache, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := c.Cfg.DirtyGranuleWords
	e := &Engine{Cfg: cfg, C: c, granuleWords: g, granules: c.Granules()}
	e.r1 = make([][]uint64, cfg.RegisterPairs)
	e.r2 = make([][]uint64, cfg.RegisterPairs)
	for p := range e.r1 {
		e.r1[p] = make([]uint64, g)
		e.r2[p] = make([]uint64, g)
	}
	tabs := geomTabsFor(c, cfg, e.granules)
	e.classTab, e.pairTab, e.rotTab = tabs.class, tabs.pair, tabs.rot
	return e, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(c *cache.Cache, cfg Config) *Engine {
	e, err := New(c, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// GranuleWords is the register width in 64-bit words.
func (e *Engine) GranuleWords() int { return e.granuleWords }

// R1 and R2 expose the live register contents for inspection and tests.
// The returned slices are read-only views: callers must not mutate them
// (use FlipRegisterBits to inject register faults). They used to return
// fresh copies on every call, which put an allocation on every recovery
// and test probe for no benefit — no caller writes through them.
func (e *Engine) R1(pair int) []uint64 { return e.r1[pair] }
func (e *Engine) R2(pair int) []uint64 { return e.r2[pair] }

// GranuleData returns the live data slice of granule g of a line.
func (e *Engine) GranuleData(ln *cache.Line, g int) []uint64 {
	return ln.Data[g*e.granuleWords : (g+1)*e.granuleWords]
}

// ClassOf is the rotation class of granule g of block (set, way): the
// physical row (of the granule's first word) modulo 8.
func (e *Engine) ClassOf(set, way, g int) int {
	return int(e.classTab[(set*e.C.Ways()+way)*e.granules+g])
}

// geomOf returns the precomputed (pair, rotation) of a granule.
func (e *Engine) geomOf(set, way, g int) (pair, rot int) {
	i := (set*e.C.Ways()+way)*e.granules + g
	return int(e.pairTab[i]), int(e.rotTab[i])
}

// fold XORs data (rotated right by rot bytes, the paper's barrel-shifter
// direction) into dst element-wise.
func fold(dst, data []uint64, rot int) {
	for j := range dst {
		dst[j] ^= bitops.RotrBytes(data[j], rot)
	}
}

// foldReg folds into a register and keeps its parity current when
// register self-protection is enabled.
func (e *Engine) foldReg(reg, par [][]uint64, pair int, data []uint64, rot int) {
	fold(reg[pair], data, rot)
	if e.regParity {
		for j := range reg[pair] {
			par[pair][j] = bitops.Parity(reg[pair][j], e.Cfg.ParityDegree)
		}
	}
	e.Events.Folds++
}

// unfold reverses fold for a single register image.
func unfold(reg []uint64, rot int) []uint64 {
	out := make([]uint64, len(reg))
	for j := range reg {
		out[j] = bitops.RotlBytes(reg[j], rot)
	}
	return out
}

// GranuleParity computes the interleaved parity bits of a granule: stripe s
// is the XOR of every data bit whose index is congruent to s modulo the
// degree, across all words of the granule. Parity is linear, so the words
// are XORed together first and a single SWAR fold finishes the job.
func (e *Engine) GranuleParity(data []uint64) uint64 {
	// Single-word granules (the L1 register width) skip the line fold:
	// Parity8 inlines into the verify hot path, and the fold of a
	// one-word line is the word itself.
	if len(data) == 1 && e.Cfg.ParityDegree == 8 {
		return bitops.Parity8(data[0])
	}
	return bitops.FoldLineParity(data, e.Cfg.ParityDegree)
}

// EncodeCheck recomputes and stores the parity bits for granule g.
func (e *Engine) EncodeCheck(set, way, g int) {
	ln := e.C.Line(set, way)
	ln.Check[g*e.granuleWords] = e.GranuleParity(e.GranuleData(ln, g))
}

// CheckSyndrome recomputes granule g's parity and returns the set of
// disagreeing stripes (0 = clean).
func (e *Engine) CheckSyndrome(set, way, g int) uint64 {
	ln := e.C.Line(set, way)
	// Single-word granule at the default degree: one SWAR fold, no
	// slice arithmetic (the per-load verify hot path).
	if e.granuleWords == 1 && e.Cfg.ParityDegree == 8 {
		return ln.Check[g] ^ bitops.Parity8(ln.Data[g])
	}
	return ln.Check[g*e.granuleWords] ^ e.GranuleParity(e.GranuleData(ln, g))
}

// LineSyndromeOr ORs every granule's syndrome in one pass; zero means
// the whole line verifies clean. One bounds-predictable loop with no
// per-granule dispatch — the bulk path behind a clean block fetch.
func (e *Engine) LineSyndromeOr(set, way int) uint64 {
	ln := e.C.Line(set, way)
	var or uint64
	if e.granuleWords == 1 && e.Cfg.ParityDegree == 8 {
		for g := 0; g < e.granules; g++ {
			or |= ln.Check[g] ^ bitops.Parity8(ln.Data[g])
		}
		return or
	}
	for g := 0; g < e.granules; g++ {
		or |= ln.Check[g*e.granuleWords] ^ e.GranuleParity(e.GranuleData(ln, g))
	}
	return or
}

// OnFill encodes check bits for a freshly installed (clean) block.
func (e *Engine) OnFill(set, way int) {
	ln := e.C.Line(set, way)
	if e.granuleWords == 1 && e.Cfg.ParityDegree == 8 {
		for g := 0; g < e.granules; g++ {
			ln.Check[g] = bitops.Parity8(ln.Data[g])
		}
		return
	}
	for g := 0; g < e.granules; g++ {
		ln.Check[g*e.granuleWords] = e.GranuleParity(e.GranuleData(ln, g))
	}
}

// OnStore records a write of granule g: the cache line must already hold
// the new data; old is the granule's previous contents and wasDirty its
// previous dirty state. The new data is folded into R1 and, if the granule
// was dirty, the displaced old data into R2 — the read-before-write of
// Sec. 3.1. Check bits are re-encoded and the granule marked dirty.
//
// oldVerified reports that the caller ran the granule through the fault
// checker in this same access before capturing old (the controller's
// Store/StoreSub read-before-write path). In that case the stored check
// bits are known to equal Parity(old), and parity's linearity lets the
// check bits be maintained incrementally: check ^= Parity(old ^ new)
// rewrites them to exactly Parity(new) without re-deriving anything —
// the hardware's check-bit datapath (Sec. 3.1), and the same redundant
// re-encode that silent-write ECC work elides. When old was captured
// without a verify (the block write-back path), the full re-encode keeps
// the legacy semantics: a latent fault overwritten by the store is healed
// rather than flagged on the next read.
func (e *Engine) OnStore(set, way, g int, old []uint64, wasDirty, oldVerified bool, now uint64) {
	pair, rot := e.geomOf(set, way, g)
	ln := e.C.Line(set, way)
	data := e.GranuleData(ln, g)
	if e.Cfg.SilentStoreElision && oldVerified && wasDirty && silentStore(old, data) {
		// The store is silent: the verified old value equals the new one.
		// Plain CPPC would fold new into R1 and old into R2 — equal
		// contributions that cancel in R1^R2 — and XOR a zero delta into
		// the check bits. Skipping all three is bit-identical for every
		// detection outcome; only the energy counters differ. The granule
		// stays dirty (the data is still newer than the next level's), so
		// only the access timestamp needs refreshing.
		e.Events.SilentStoresElided++
		e.C.MarkDirty(set, way, g*e.granuleWords, now)
		return
	}
	e.foldReg(e.r1, e.r1Par, pair, data, rot)
	if wasDirty {
		e.foldReg(e.r2, e.r2Par, pair, old, rot)
	}
	e.C.MarkDirty(set, way, g*e.granuleWords, now)
	if oldVerified && old != nil {
		delta := bitops.FoldLineDelta(old, data)
		if e.Cfg.ParityDegree == 8 {
			ln.Check[g*e.granuleWords] ^= bitops.Parity8(delta)
		} else {
			ln.Check[g*e.granuleWords] ^= bitops.Parity(delta, e.Cfg.ParityDegree)
		}
		return
	}
	e.EncodeCheck(set, way, g)
}

// silentStore reports whether a store left the granule unchanged: every
// word of the verified old contents equals the resident (new) data. The
// per-word compare — not a folded XOR, whose multi-word cancellation
// could alias two opposite changes to zero — is the hardware's one-gate
// zero check on the old^new delta the incremental check-bit path already
// computes.
func silentStore(old, data []uint64) bool {
	if old == nil || len(old) != len(data) {
		return false
	}
	for j := range data {
		if old[j] != data[j] {
			return false
		}
	}
	return true
}

// OnRemoveDirty records the departure of dirty granule g (write-back or
// invalidation): its current contents are folded into R2 and the granule
// marked clean.
func (e *Engine) OnRemoveDirty(set, way, g int) {
	pair, rot := e.geomOf(set, way, g)
	ln := e.C.Line(set, way)
	e.foldReg(e.r2, e.r2Par, pair, e.GranuleData(ln, g), rot)
	e.C.MarkClean(set, way, g)
}

// OnEvictBlock removes every dirty granule of a departing block.
func (e *Engine) OnEvictBlock(set, way int) {
	ln := e.C.Line(set, way)
	for g, d := range ln.Dirty {
		if d {
			e.OnRemoveDirty(set, way, g)
		}
	}
}

// DirtyXor returns R1 ^ R2 for a pair: the XOR of the rotated images of
// every dirty granule the pair protects (the paper's core invariant).
func (e *Engine) DirtyXor(pair int) []uint64 {
	out := make([]uint64, e.granuleWords)
	for j := range out {
		out[j] = e.r1[pair][j] ^ e.r2[pair][j]
	}
	return out
}

// dirtyXorFromCache recomputes, per pair, the XOR of the rotated images of
// all dirty granules currently resident — by sweeping the arrays.
func (e *Engine) dirtyXorFromCache() [][]uint64 {
	acc := make([][]uint64, e.Cfg.RegisterPairs)
	for p := range acc {
		acc[p] = make([]uint64, e.granuleWords)
	}
	e.C.ForEachDirtyGranule(func(set, way, g int, ln *cache.Line) {
		class := e.ClassOf(set, way, g)
		fold(acc[e.Cfg.PairOf(class)], e.GranuleData(ln, g), e.Cfg.RotationOf(class))
	})
	return acc
}

// CheckInvariant verifies R1 ^ R2 against a fresh sweep of the cache; it
// returns an error naming the first mismatching pair. Used by tests and by
// register scrubbing.
func (e *Engine) CheckInvariant() error {
	swept := e.dirtyXorFromCache()
	for p := 0; p < e.Cfg.RegisterPairs; p++ {
		want := e.DirtyXor(p)
		for j := range want {
			if swept[p][j] != want[j] {
				return fmt.Errorf("cppc: pair %d element %d: registers %#x, cache sweep %#x",
					p, j, want[j], swept[p][j])
			}
		}
	}
	return nil
}

// ScrubRegisters re-derives the register state from the cache contents
// (Sec. 4.9: recovering from a fault in R1 or R2 itself, valid provided no
// dirty word is simultaneously faulty). After scrubbing, R1 holds the
// dirty XOR and R2 is zero; the invariant R1^R2 is restored.
func (e *Engine) ScrubRegisters() {
	swept := e.dirtyXorFromCache()
	for p := range e.r1 {
		copy(e.r1[p], swept[p])
		for j := range e.r2[p] {
			e.r2[p][j] = 0
		}
	}
}

// FlipRegisterBits injects a fault into a register (for Sec. 4.9 tests).
// which selects R1 (1) or R2 (2).
func (e *Engine) FlipRegisterBits(pair, which, element int, mask uint64) {
	switch which {
	case 1:
		e.r1[pair][element] ^= mask
	case 2:
		e.r2[pair][element] ^= mask
	default:
		panic("cppc: which must be 1 or 2")
	}
}
