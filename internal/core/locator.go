package core

import "cppc/internal/bitops"

// The fault locator (Sec. 4.5). Parity stripes say *that* a granule is
// faulty and in which stripes, but not *which bit* of a stripe flipped.
// Under the spatial assumption — every flipped cell lies inside one byte
// column or two physically adjacent byte columns of the data array — the
// register residue R3 pins the flips down:
//
//   - byte rotation preserves a bit's stripe (rotations are whole bytes,
//     and the parity degree divides 8), so each R3 bit's stripe is the
//     stripe of the flipped cell it came from;
//   - within a square at most 8 bit-columns wide, no two flipped cells can
//     land on the same R3 bit (they would have to sit exactly 8 columns
//     apart in rows whose classes differ by the same amount), so every set
//     bit of R3 is exactly one flipped cell;
//   - a cell in element j, byte x of a class-c granule lands in element j,
//     byte (x - rot(c)) mod 8 of R3.
//
// The locator therefore enumerates the candidate byte-column hypotheses,
// and for each one searches for an attribution of every R3 set bit to a
// faulty granule such that each granule's attributed stripes are exactly
// its faulty parity stripes. A unique attribution across all hypotheses
// locates the fault; none, or more than one distinct attribution, is a DUE
// — which is precisely how the Sec. 4.6 corner cases (full 8x8 faults,
// rows 4 apart with one pair) fail, and how the Sec. 4.7 temporal-aliasing
// miscorrection arises when a wrong-but-unique attribution exists.

// hypothesis is a set of allowed source byte columns, as (element, byte)
// pairs; one column, two adjacent columns within an element (with
// wraparound, since the rotation wraps within a word), or the boundary
// pair spanning two adjacent elements.
type hypothesis [][2]int

// r3bit is one set bit of the register residue awaiting attribution.
type r3bit struct {
	elem, pos int // register element and bit position within it
	stripe    int // parity stripe of the bit (preserved by rotation)
	byteIdx   int // byte column of the bit within the element
}

func (e *Engine) hypotheses() []hypothesis {
	g := e.granuleWords
	var hs []hypothesis
	for j := 0; j < g; j++ {
		for x := 0; x < 8; x++ {
			hs = append(hs, hypothesis{{j, x}})
		}
		for x := 0; x < 8; x++ {
			hs = append(hs, hypothesis{{j, x}, {j, (x + 1) % 8}})
		}
	}
	for j := 0; j+1 < g; j++ {
		hs = append(hs, hypothesis{{j, 7}, {j + 1, 0}})
	}
	return hs
}

// locate returns one correction mask per entry of faults (parallel
// slices), or ok=false when no unique attribution exists.
func (e *Engine) locate(faults []faultInfo, r3 []uint64) (masks [][]uint64, ok bool) {
	degree := e.Cfg.ParityDegree

	// The R3 set bits to attribute.
	var bits []r3bit
	for j, w := range r3 {
		for _, p := range bitops.OnesPositions(w) {
			bits = append(bits, r3bit{elem: j, pos: p, stripe: p % degree, byteIdx: p / 8})
		}
	}

	// Every granule must receive exactly one bit per faulty stripe.
	need := 0
	stripesOf := make([][]int, len(faults))
	for i, f := range faults {
		stripesOf[i] = bitops.FaultyStripes(f.syndrome, degree)
		need += len(stripesOf[i])
	}
	if need != len(bits) {
		return nil, false
	}

	var (
		solutions  []string
		firstMasks [][]uint64
	)
	for _, h := range e.hypotheses() {
		m, n := e.solveHypothesis(h, faults, bits)
		if n == 0 {
			continue
		}
		if n > 1 {
			return nil, false // ambiguous within one hypothesis
		}
		key := fmtMasks(m)
		dup := false
		for _, s := range solutions {
			if s == key {
				dup = true
				break
			}
		}
		if !dup {
			solutions = append(solutions, key)
			if firstMasks == nil {
				firstMasks = m
			}
		}
		if len(solutions) > 1 {
			return nil, false // distinct attributions across hypotheses
		}
	}
	if len(solutions) != 1 {
		return nil, false
	}
	return firstMasks, true
}

// solveHypothesis backtracks over attributions of R3 bits to faulty
// granules under one byte-column hypothesis, returning the first solution
// found and the number of distinct solutions (capped at 2).
func (e *Engine) solveHypothesis(h hypothesis, faults []faultInfo, bits []r3bit) ([][]uint64, int) {
	allowed := func(elem, x int) bool {
		for _, c := range h {
			if c[0] == elem && c[1] == x {
				return true
			}
		}
		return false
	}

	// candidates[b] lists the faulty-granule indices that could own bit b.
	candidates := make([][]int, len(bits))
	for b, rb := range bits {
		for i, f := range faults {
			if f.syndrome&(1<<uint(rb.stripe)) == 0 {
				continue
			}
			// Source byte of granule i that folds into this R3 byte.
			x := (rb.byteIdx + f.rot) % 8
			if allowed(rb.elem, x) {
				candidates[b] = append(candidates[b], i)
			}
		}
		if len(candidates[b]) == 0 {
			return nil, 0
		}
	}

	// used[i] is the set of stripes already attributed to granule i.
	used := make([]uint64, len(faults))
	assign := make([]int, len(bits))
	var (
		found  int
		result [][]uint64
	)
	var rec func(b int)
	rec = func(b int) {
		if found >= 2 {
			return
		}
		if b == len(bits) {
			// Count equality guarantees full coverage at this point.
			found++
			if found == 1 {
				result = e.buildMasks(faults, bits, assign)
			}
			return
		}
		rb := bits[b]
		for _, i := range candidates[b] {
			if used[i]&(1<<uint(rb.stripe)) != 0 {
				continue
			}
			used[i] |= 1 << uint(rb.stripe)
			assign[b] = i
			rec(b + 1)
			used[i] &^= 1 << uint(rb.stripe)
		}
	}
	rec(0)
	return result, found
}

// buildMasks converts an attribution into per-granule correction masks by
// unfolding each attributed R3 bit back through the granule's rotation.
func (e *Engine) buildMasks(faults []faultInfo, bits []r3bit, assign []int) [][]uint64 {
	masks := make([][]uint64, len(faults))
	for i := range masks {
		masks[i] = make([]uint64, e.granuleWords)
	}
	for b, rb := range bits {
		i := assign[b]
		x := (rb.byteIdx + faults[i].rot) % 8
		srcPos := x*8 + rb.pos%8
		masks[i][rb.elem] |= 1 << uint(srcPos)
	}
	return masks
}
