package core

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		DefaultL1Config(), DefaultL2Config(), FullCorrectionConfig(),
		{ParityDegree: 1, RegisterPairs: 1},
		{ParityDegree: 4, RegisterPairs: 2, ByteShifting: true},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{ParityDegree: 0, RegisterPairs: 1},
		{ParityDegree: 3, RegisterPairs: 1},
		{ParityDegree: 8, RegisterPairs: 0},
		{ParityDegree: 8, RegisterPairs: 5},
		{ParityDegree: 16, RegisterPairs: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestPairAndRotationMapping(t *testing.T) {
	c := Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true}
	// Classes 0-3 on pair 0, classes 4-7 on pair 1 (Sec. 4.6).
	for class := 0; class < 8; class++ {
		wantPair := 0
		if class >= 4 {
			wantPair = 1
		}
		if got := c.PairOf(class); got != wantPair {
			t.Errorf("PairOf(%d) = %d, want %d", class, got, wantPair)
		}
		if got := c.RotationOf(class); got != class {
			t.Errorf("RotationOf(%d) = %d", class, got)
		}
	}
	noShift := Config{ParityDegree: 8, RegisterPairs: 8}
	for class := 0; class < 8; class++ {
		if noShift.RotationOf(class) != 0 {
			t.Errorf("no-shift rotation for class %d nonzero", class)
		}
		if noShift.PairOf(class) != class {
			t.Errorf("8 pairs: PairOf(%d) = %d", class, noShift.PairOf(class))
		}
	}
}

func TestInvariantAfterStores(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	for i := 0; i < 20; i++ {
		h.store(uint64(i*8), uint64(i)*0x1111111111111111)
		h.mustInvariant()
	}
}

func TestInvariantAfterOverwrites(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	addr := uint64(0x40)
	h.store(addr, 1)
	h.store(addr, 2) // store to an already-dirty word: R2 absorbs the old value
	h.store(addr, 3)
	h.mustInvariant()
	if got, syn := h.load(addr); got != 3 || syn != 0 {
		t.Fatalf("load = %#x syn %#x", got, syn)
	}
}

func TestInvariantAfterEvictions(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	// The harness cache has 16 sets; these two addresses collide.
	a := uint64(0x20)
	b := a + uint64(h.c.Cfg.Sets()*h.c.Cfg.BlockBytes)
	h.store(a, 0xaaaa)
	h.store(b, 0xbbbb) // evicts a (dirty): OnEvictBlock folds it into R2
	h.mustInvariant()
	if h.c.DirtyGranuleCount() != 1 {
		t.Fatalf("dirty granules = %d", h.c.DirtyGranuleCount())
	}
	// The write-back reached memory.
	if h.mem.ReadWord(a) != 0xaaaa {
		t.Fatal("write-back lost")
	}
}

// The central invariant (Sec. 3): at any time R1 ^ R2 equals the XOR of
// the rotated images of all dirty granules — under arbitrary interleavings
// of stores, overwrites, loads and evictions, for every configuration.
func TestInvariantRandomOps(t *testing.T) {
	configs := []Config{
		{ParityDegree: 1, RegisterPairs: 1},
		{ParityDegree: 8, RegisterPairs: 1, ByteShifting: true},
		{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true},
		{ParityDegree: 8, RegisterPairs: 4, ByteShifting: true},
		FullCorrectionConfig(),
	}
	for _, cfg := range configs {
		cfg := cfg
		h := newHarness(t, cfg)
		rng := rand.New(rand.NewSource(42))
		for op := 0; op < 2000; op++ {
			// 32 blocks over 16 sets: plenty of conflict misses.
			addr := uint64(rng.Intn(32*4)) * 8
			if rng.Intn(3) == 0 {
				h.load(addr)
			} else {
				h.store(addr, rng.Uint64())
			}
		}
		if err := h.e.CheckInvariant(); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

func TestInvariantRandomOpsL2(t *testing.T) {
	h := newL2Harness(t, DefaultL2Config())
	rng := rand.New(rand.NewSource(43))
	vals := make([]uint64, 4)
	for op := 0; op < 1000; op++ {
		addr := uint64(rng.Intn(64)) * 32
		for j := range vals {
			vals[j] = rng.Uint64()
		}
		h.storeBlock(addr, vals)
	}
	h.mustInvariant()
}

func TestScrubRegisters(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(0x10, 0x1234)
	h.store(0x48, 0x5678)
	// Corrupt R1 (Sec. 4.9): the invariant breaks, scrubbing restores it.
	h.e.FlipRegisterBits(0, 1, 0, 0xff)
	if err := h.e.CheckInvariant(); err == nil {
		t.Fatal("corrupted register not detected by invariant check")
	}
	h.e.ScrubRegisters()
	h.mustInvariant()
	// And recovery still works after a scrub.
	h.flip(0x10, 1<<5)
	if rep := h.recoverAt(0x10); rep.Outcome != OutcomeCorrected {
		t.Fatalf("post-scrub recovery: %+v", rep)
	}
	if got, _ := h.load(0x10); got != 0x1234 {
		t.Fatalf("post-scrub recovered value %#x", got)
	}
}

func TestFlipRegisterBitsPanics(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid register selector")
		}
	}()
	h.e.FlipRegisterBits(0, 3, 0, 1)
}

func TestGranuleParityMatchesWordParity(t *testing.T) {
	h := newL2Harness(t, DefaultL2Config())
	data := []uint64{0xff, 0xff00, 0, 1 << 63}
	// Granule parity is the XOR of per-word interleaved parities.
	var want uint64
	for _, w := range data {
		var p uint64
		for s := 0; s < 8; s++ {
			var bit uint64
			for i := s; i < 64; i += 8 {
				bit ^= (w >> uint(i)) & 1
			}
			p |= bit << uint(s)
		}
		want ^= p
	}
	if got := h.e.GranuleParity(data); got != want {
		t.Fatalf("GranuleParity = %#x, want %#x", got, want)
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	c := cache.New(cache.L1DConfig())
	if _, err := New(c, Config{ParityDegree: 3, RegisterPairs: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestEventsCounted(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(0, 1)
	h.store(0, 2)
	if h.e.Events.Folds != 3 { // two R1 folds + one R2 fold
		t.Fatalf("Folds = %d, want 3", h.e.Events.Folds)
	}
	h.flip(0, 1)
	rep := h.recoverAt(0)
	if rep.Outcome != OutcomeCorrected || h.e.Events.Recoveries != 1 || h.e.Events.CorrectedSingle != 1 {
		t.Fatalf("events after recovery: %+v, report %+v", h.e.Events, rep)
	}
}
