// Package core implements the paper's contribution: the CPPC engine that
// turns a parity-protected write-back cache into a correctable cache.
//
// The engine owns, per register pair, two registers R1 and R2 sized to one
// dirty granule (a 64-bit word for an L1 CPPC, an L1 block for an L2 CPPC):
//
//	R1 = XOR of all data written into the cache
//	R2 = XOR of all dirty data removed from the cache
//	     (overwritten by a store, or written back on eviction)
//
// so that R1 ^ R2 always equals the XOR of all dirty granules currently in
// the cache (Sec. 3). With byte shifting enabled, a granule in rotation
// class c (physical row mod 8) is rotated by c bytes before being folded
// into the registers, which spreads vertically adjacent bits across
// different register bytes and makes spatial multi-bit errors separable
// (Sec. 4). The fold direction follows the paper's worked examples
// (Figs. 5, 7, 8): byte x of a class-c word lands in register byte
// (x - c) mod 8.
package core

import (
	"fmt"

	"cppc/internal/geometry"
)

// Config selects a point in the CPPC design space of Secs. 3.4, 4.6 and
// 4.11.
type Config struct {
	// ParityDegree is the number of interleaved parity bits kept per dirty
	// granule: 1 reproduces the basic CPPC of Sec. 3, 8 the evaluated
	// spatial-MBE-tolerant configuration.
	ParityDegree int

	// RegisterPairs is the number of (R1, R2) pairs: 1, 2, 4 or 8.
	// Rotation classes are distributed contiguously over pairs (classes
	// 0-3 on pair 0 and 4-7 on pair 1 when RegisterPairs is 2, Sec. 4.6).
	RegisterPairs int

	// ByteShifting enables the barrel-shifter rotation of Sec. 4.3. With 8
	// register pairs it is unnecessary (Sec. 4.11) and may be disabled.
	ByteShifting bool

	// SilentStoreElision enables the near-free optimization from the
	// silent-write ECC literature: the incremental check-bit path already
	// computes old^new on every store to a dirty granule, so detecting a
	// silent store (old == new) costs one compare. An elided store skips
	// the data-array write and both register folds — safe because a
	// verified old equal to new contributes identically to R1 and R2,
	// leaving R1^R2, the check bits and every detection outcome unchanged
	// — and is counted in Events.SilentStoresElided for the energy model.
	SilentStoreElision bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.ParityDegree {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("cppc: parity degree must be 1, 2, 4 or 8; got %d", c.ParityDegree)
	}
	switch c.RegisterPairs {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("cppc: register pairs must be 1, 2, 4 or 8; got %d", c.RegisterPairs)
	}
	if !c.ByteShifting && c.RegisterPairs < geometry.NumClasses {
		// Permitted (it is the basic CPPC of Sec. 3), but the combination
		// cannot correct vertical spatial MBEs; nothing to reject.
		_ = c
	}
	return nil
}

// ClassesPerPair is how many rotation classes share one register pair.
func (c Config) ClassesPerPair() int { return geometry.NumClasses / c.RegisterPairs }

// PairOf maps a rotation class to its register pair.
func (c Config) PairOf(class int) int { return class / c.ClassesPerPair() }

// RotationOf is the byte-shift amount applied to a class's data before it
// is folded into the registers.
func (c Config) RotationOf(class int) int {
	if !c.ByteShifting {
		return 0
	}
	return class
}

// DefaultL1Config is the evaluated L1 CPPC (Sec. 6): one register pair,
// eight interleaved parity bits per word, byte shifting.
func DefaultL1Config() Config {
	return Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: true}
}

// DefaultL2Config is the evaluated L2 CPPC (Sec. 6): one register pair
// sized to an L1 block, eight interleaved parity bits per block, byte
// shifting.
func DefaultL2Config() Config {
	return Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: true}
}

// SilentL1Config is DefaultL1Config with silent-store elision enabled
// (the cppc-silent ablation).
func SilentL1Config() Config {
	c := DefaultL1Config()
	c.SilentStoreElision = true
	return c
}

// SilentL2Config is DefaultL2Config with silent-store elision enabled.
func SilentL2Config() Config {
	c := DefaultL2Config()
	c.SilentStoreElision = true
	return c
}

// FullCorrectionConfig is the Sec. 4.11 design: eight register pairs, no
// byte shifting, all spatial MBEs within 8x8 correctable and temporal
// aliasing eliminated.
func FullCorrectionConfig() Config {
	return Config{ParityDegree: 8, RegisterPairs: 8, ByteShifting: false}
}
