package core

import (
	"reflect"
	"testing"
)

// storeVerified is the harness store along the verified-hit path: the
// read-before-write has checked the old data, so OnStore sees
// oldVerified=true — the only path silent-store elision may take.
func (h *harness) storeVerified(addr, val uint64) {
	h.now++
	set, way := h.ensure(addr)
	_, _, word := h.c.Decompose(addr)
	g := word / h.e.GranuleWords()
	ln := h.c.Line(set, way)
	old := append([]uint64(nil), h.e.GranuleData(ln, g)...)
	wasDirty := ln.Dirty[g]
	ln.Data[word] = val
	h.e.OnStore(set, way, g, old, wasDirty, true, h.now)
}

// driveSilentMix sends the same store/load mix through a harness:
// dirtying stores, repeated silent stores of the resident value, and
// overwrites, across several granules.
func driveSilentMix(h *harness) {
	for i := 0; i < 6; i++ {
		a := h.rowAddr(i%4, i%4)
		h.storeVerified(a, uint64(0x1111*(i+1)))
		h.storeVerified(a, uint64(0x1111*(i+1))) // silent: same value, dirty granule
		h.storeVerified(a, uint64(0x1111*(i+1))) // silent again
		h.storeVerified(a, uint64(0x2222*(i+1))) // real overwrite
		h.load(a)
	}
}

// TestSilentStoreElisionStateIdentical: with elision on, every piece of
// protection state — check bits, R1, R2, dirty bits — must be
// bit-identical to the plain engine's after an identical access mix, and
// recovery must still correct an injected fault. Only the event counters
// may differ.
func TestSilentStoreElisionStateIdentical(t *testing.T) {
	plain := newHarness(t, DefaultL1Config())
	silent := newHarness(t, SilentL1Config())
	driveSilentMix(plain)
	driveSilentMix(silent)

	if plain.e.Events.SilentStoresElided != 0 {
		t.Fatal("plain engine elided stores")
	}
	elided := silent.e.Events.SilentStoresElided
	if elided == 0 {
		t.Fatal("no stores elided; the mix should contain silent stores")
	}
	// Each elided dirty-granule store skips exactly two folds (new into
	// R1, old into R2).
	if got, want := plain.e.Events.Folds-silent.e.Events.Folds, 2*elided; got != want {
		t.Errorf("fold savings = %d, want 2*elided = %d", got, want)
	}
	if !reflect.DeepEqual(plain.e.r1, silent.e.r1) {
		t.Error("R1 diverged under elision")
	}
	if !reflect.DeepEqual(plain.e.r2, silent.e.r2) {
		t.Error("R2 diverged under elision")
	}
	for _, h := range []*harness{plain, silent} {
		h.mustInvariant()
	}
	for i := 0; i < 4; i++ {
		a := plain.rowAddr(i, i)
		_, synP := plain.load(a)
		_, synS := silent.load(a)
		if synP != 0 || synS != 0 {
			t.Fatalf("clean syndromes differ or non-zero: plain %#x silent %#x", synP, synS)
		}
	}

	// Detection and correction stay intact: flip a dirty word in both and
	// recover.
	addr := plain.rowAddr(1, 1)
	plain.flip(addr, 1<<9)
	silent.flip(addr, 1<<9)
	repP := plain.recoverAt(addr)
	repS := silent.recoverAt(addr)
	if repP.Outcome != OutcomeCorrected || repS.Outcome != OutcomeCorrected {
		t.Fatalf("recovery outcomes: plain %v silent %v", repP.Outcome, repS.Outcome)
	}
	// rowAddr(1,1) was last overwritten at i=5 (5%4 == 1) with 0x2222*6.
	if v, _ := silent.load(addr); v != 0x2222*6 {
		t.Errorf("silent engine recovered wrong value %#x", v)
	}
}

// TestSilentStoreCleanGranuleNotElided: a store of an identical value to
// a CLEAN granule must not be elided — the granule becomes dirty, so its
// data has to enter R1 or the register invariant breaks.
func TestSilentStoreCleanGranuleNotElided(t *testing.T) {
	h := newHarness(t, SilentL1Config())
	a := h.rowAddr(0, 0)
	set, way := h.ensure(a)
	// The fetched memory content is zero; "store" zero again onto the
	// clean granule with the old value verified (the RMW path can do
	// this).
	ln := h.c.Line(set, way)
	old := append([]uint64(nil), h.e.GranuleData(ln, 0)...)
	h.e.OnStore(set, way, 0, old, false, true, 1)
	if h.e.Events.SilentStoresElided != 0 {
		t.Fatal("clean-granule store was elided")
	}
	h.mustInvariant()
}
