package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertySingleGranuleRecovery: for any configuration, any operation
// history, and any nonzero corruption of one dirty word, recovery
// restores the stored value exactly. This is the paper's core guarantee
// (Sec. 3.4: "corrects all odd numbers of faults in a dirty word provided
// there are no faults in other dirty words" — and, because recovery
// rebuilds the whole word from the registers, even-weight corruptions
// detected via other stripes too).
func TestPropertySingleGranuleRecovery(t *testing.T) {
	cfgs := []Config{
		{ParityDegree: 1, RegisterPairs: 1},
		{ParityDegree: 8, RegisterPairs: 1, ByteShifting: true},
		{ParityDegree: 4, RegisterPairs: 2, ByteShifting: true},
		FullCorrectionConfig(),
	}
	f := func(seed int64, mask uint64, cfgIdx uint8) bool {
		if mask == 0 {
			return true
		}
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		h := newHarness(t, cfg)
		rng := rand.New(rand.NewSource(seed))
		// Random history.
		for op := 0; op < 200; op++ {
			addr := uint64(rng.Intn(64)) * 8
			if rng.Intn(3) == 0 {
				h.load(addr)
			} else {
				h.store(addr, rng.Uint64())
			}
		}
		// Pick a dirty word; if none, make one.
		target := uint64(rng.Intn(64)) * 8
		h.store(target, rng.Uint64())
		want, syn := h.load(target)
		if syn != 0 {
			return false
		}
		h.flip(target, mask)
		// The fault may be parity-invisible (even flips per stripe); the
		// recovery contract only covers detected faults.
		set, way, _, g := h.locate(target)
		if h.e.CheckSyndrome(set, way, g) == 0 {
			return true
		}
		rep := h.recoverAt(target)
		if rep.Outcome != OutcomeCorrected {
			return false
		}
		got, syn2 := h.load(target)
		return got == want && syn2 == 0 && h.e.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInvariantUnderOps: the register invariant survives any
// operation sequence under any configuration (quick-check variant of the
// targeted tests).
func TestPropertyInvariantUnderOps(t *testing.T) {
	f := func(seed int64, pairsRaw, degreeRaw uint8, shifting bool) bool {
		pairs := []int{1, 2, 4, 8}[pairsRaw%4]
		degree := []int{1, 2, 4, 8}[degreeRaw%4]
		cfg := Config{ParityDegree: degree, RegisterPairs: pairs, ByteShifting: shifting}
		h := newHarness(t, cfg)
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 300; op++ {
			addr := uint64(rng.Intn(128)) * 8
			if rng.Intn(3) == 0 {
				h.load(addr)
			} else {
				h.store(addr, rng.Uint64())
			}
		}
		return h.e.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoSilentCorruptionOnDetectedSingle: when recovery reports
// DUE it must not have silently altered other words' stored values in a
// way their parity misses — every granule still verifies or is reported
// faulty.
func TestPropertyRecoveryNeverBreaksCleanGranules(t *testing.T) {
	f := func(seed int64, mask uint64) bool {
		if mask == 0 {
			return true
		}
		h := newHarness(t, DefaultL1Config())
		rng := rand.New(rand.NewSource(seed))
		golden := map[uint64]uint64{}
		for op := 0; op < 200; op++ {
			addr := uint64(rng.Intn(64)) * 8
			v := rng.Uint64()
			golden[addr] = v
			h.store(addr, v)
		}
		target := uint64(rng.Intn(64)) * 8
		h.flip(target, mask)
		set, way, _, g := h.locate(target)
		if h.e.CheckSyndrome(set, way, g) == 0 {
			return true
		}
		h.recoverAt(target)
		// Every word other than the target must still hold its golden
		// value (single-word faults never require touching other words).
		ok := true
		for addr, want := range golden {
			if addr == target {
				continue
			}
			if got, _ := h.load(addr); got != want {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
