package core

import (
	"testing"
)

// TestSection45WorkedExample reproduces the paper's Sec. 4.5 walkthrough
// bit for bit: a spatial fault flips bits 5-12 of four words from rotation
// classes 0-3. The paper states that parity bits P0-P7 of all four rows
// detect errors and that bits 0-12 and 45-63 of R3 are set; the locator
// then peels the words class by class and corrects all 32 flips.
func TestSection45WorkedExample(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	const faultMask = uint64(0x1FE0) // bits 5..12

	want := make([]uint64, 4)
	for r := 0; r < 4; r++ {
		want[r] = uint64(r+1) * 0x0123_4567_89ab_cdef
		h.store(h.rowAddr(r, 0), want[r])
	}
	for r := 0; r < 4; r++ {
		h.flip(h.rowAddr(r, 0), faultMask)
	}

	// All eight parity stripes of each faulty word must flag (the mask
	// covers stripes 5,6,7 in byte 0 and 0..4 in byte 1).
	for r := 0; r < 4; r++ {
		set, way, _, g := h.locate(h.rowAddr(r, 0))
		if syn := h.e.CheckSyndrome(set, way, g); syn != 0xff {
			t.Fatalf("row %d syndrome = %#x, want 0xff", r, syn)
		}
	}

	// R3 = R1 ^ R2 ^ XOR(rotated dirty words) must have exactly bits 0-12
	// and 45-63 set, as the paper states.
	swept := h.e.dirtyXorFromCache()
	r3 := h.e.DirtyXor(0)[0] ^ swept[0][0]
	var wantR3 uint64
	for b := 0; b <= 12; b++ {
		wantR3 |= 1 << uint(b)
	}
	for b := 45; b <= 63; b++ {
		wantR3 |= 1 << uint(b)
	}
	if r3 != wantR3 {
		t.Fatalf("R3 = %#x, want %#x", r3, wantR3)
	}

	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeCorrected || rep.Method != "locator" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Faulty) != 4 {
		t.Fatalf("faulty count = %d", len(rep.Faulty))
	}
	for r := 0; r < 4; r++ {
		if got, syn := h.load(h.rowAddr(r, 0)); got != want[r] || syn != 0 {
			t.Fatalf("row %d = %#x (syn %#x), want %#x", r, got, syn, want[r])
		}
	}
	if h.e.Events.LocatorRuns != 1 || h.e.Events.CorrectedSpat != 1 {
		t.Fatalf("events = %+v", h.e.Events)
	}
}

// TestHypothesesEnumeration sanity-checks the hypothesis space: 8 singles
// and 8 wrapping pairs per element, plus element-boundary pairs.
func TestHypothesesEnumeration(t *testing.T) {
	h1 := newHarness(t, DefaultL1Config())
	if got := len(h1.e.hypotheses()); got != 16 {
		t.Errorf("L1 hypotheses = %d, want 16", got)
	}
	h2 := newL2Harness(t, DefaultL2Config())
	if got := len(h2.e.hypotheses()); got != 4*16+3 {
		t.Errorf("L2 hypotheses = %d, want 67", got)
	}
}

// TestLocatorRejectsStrayResidue: if R3 carries bits whose stripe no
// faulty word flagged (e.g. an undetected even flip elsewhere corrupted
// the residue), attribution is impossible and recovery must report DUE
// rather than guess.
func TestLocatorRejectsStrayResidue(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(h.rowAddr(0, 0), 1)
	h.store(h.rowAddr(1, 0), 2)
	// Shared stripe 0 faults in two words (forces the spatial path)...
	h.flip(h.rowAddr(0, 0), 1<<0)
	h.flip(h.rowAddr(1, 0), 1<<0)
	// ...plus an undetectable double flip in stripe 3 of the first word,
	// which poisons R3 with bits no syndrome accounts for.
	h.flip(h.rowAddr(0, 0), 1<<3|1<<11)
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeDUE {
		t.Fatalf("stray residue unexpectedly %v", rep.Outcome)
	}
}

// TestDiagonalFault: a 3x3 diagonal inside the square (one bit per row,
// sliding columns) is still within an adjacent-byte hypothesis only if it
// spans <= 2 byte columns; a tight diagonal within one byte is corrected.
func TestDiagonalFault(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	want := make([]uint64, 3)
	for r := 0; r < 3; r++ {
		want[r] = uint64(0xf0f0 << r)
		h.store(h.rowAddr(r, 0), want[r])
	}
	// Diagonal: bit 16+r of row r (all in byte 2).
	for r := 0; r < 3; r++ {
		h.flip(h.rowAddr(r, 0), 1<<uint(16+r))
	}
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	for r := 0; r < 3; r++ {
		if got, _ := h.load(h.rowAddr(r, 0)); got != want[r] {
			t.Fatalf("row %d = %#x, want %#x", r, got, want[r])
		}
	}
}

// TestLocatorSkipsCleanRows: dirty words between the faulty rows that are
// not faulty must not confuse attribution.
func TestLocatorSkipsCleanRows(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	for r := 0; r < 5; r++ {
		h.store(h.rowAddr(r, 0), uint64(r)*3)
	}
	// Vertical 2-bit fault on rows 1 and 3 (distance 2, shared stripe).
	h.flip(h.rowAddr(1, 0), 1<<24)
	h.flip(h.rowAddr(3, 0), 1<<24)
	rep := h.recoverAt(h.rowAddr(1, 0))
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	for r := 0; r < 5; r++ {
		if got, _ := h.load(h.rowAddr(r, 0)); got != uint64(r)*3 {
			t.Fatalf("row %d = %#x", r, got)
		}
	}
}

// TestFigure7ByteMapping verifies the paper's Fig. 7 arrangement directly:
// byte x of a rotation-class-c word lands in register byte (x - c) mod 8,
// so e.g. a vertical fault in bit 0 of byte 0 of classes 0, 1, 2 shows up
// in bytes 0, 7 and 6 of the registers — the exact cells the paper lists.
func TestFigure7ByteMapping(t *testing.T) {
	for class := 0; class < 3; class++ {
		// Store a word whose only set byte is byte 0, into a row of the
		// wanted class, and observe which register byte it occupies.
		h2 := newHarness(t, DefaultL1Config())
		h2.store(h2.rowAddr(class, 0), 0x01) // bit 0 of byte 0
		r1 := h2.e.R1(0)[0]
		wantByte := ((0-class)%8 + 8) % 8
		if r1 != uint64(1)<<(uint(wantByte)*8) {
			t.Errorf("class %d: R1 = %#x, want bit 0 of byte %d", class, r1, wantByte)
		}
	}
}
