package core

import (
	"fmt"

	"cppc/internal/bitops"
	"cppc/internal/cache"
)

// Outcome classifies a recovery attempt.
type Outcome int

const (
	// OutcomeCorrected: every detected fault was repaired and re-verified.
	OutcomeCorrected Outcome = iota
	// OutcomeDUE: detected but unrecoverable — the paper's step 7
	// machine-check halt.
	OutcomeDUE
)

func (o Outcome) String() string {
	if o == OutcomeCorrected {
		return "corrected"
	}
	return "DUE"
}

// GranuleRef names a dirty granule.
type GranuleRef struct{ Set, Way, G int }

// Report describes one recovery run.
type Report struct {
	Outcome Outcome
	Faulty  []GranuleRef // every granule found faulty during the sweep
	Method  string       // which path corrected (or gave up): single, check-bits, disjoint, locator, none
}

// faultInfo is the recovery algorithm's working record for one faulty
// dirty granule.
type faultInfo struct {
	set, way, g int
	class, rot  int
	pair        int
	row         int
	syndrome    uint64 // disagreeing parity stripes
}

// RecoverDirty runs the paper's recovery procedure (Sec. 4.4) after a
// parity mismatch was detected on dirty granule (set, way, g). It sweeps
// all dirty granules (step 1, detecting any further faulty ones), then per
// register pair picks the applicable path:
//
//   - a single faulty granule is rebuilt from R1 ^ R2 ^ (XOR of all other
//     rotated dirty granules) (steps 1-2, Sec. 3.2);
//   - several faulty granules whose faulty parity stripes are disjoint are
//     each rebuilt from the stripes the registers attribute to them
//     (step 4);
//   - otherwise the fault is treated as a spatial MBE: the fault locator
//     (Sec. 4.5) searches for the unique placement of flipped bits inside
//     one byte column or two adjacent byte columns that explains R3, the
//     faulty parity stripes and the rotation classes (steps 5-6).
//
// Every correction is re-verified against the stored parity; anything that
// fails, is out of spatial range, or is ambiguous becomes a DUE (step 7).
func (e *Engine) RecoverDirty(set, way, g int) Report {
	e.Events.Recoveries++

	// Sec. 4.9: the registers are about to be read — check their own
	// parity first. A corrupted register cannot reconstruct anything; it
	// is scrubbed from the cache's dirty data, but since the triggering
	// granule is itself faulty the combined event is unrecoverable.
	if !e.checkRegistersBeforeRecovery() {
		e.Events.DUEs++
		return Report{Outcome: OutcomeDUE, Method: "register-scrub"}
	}

	// Step 1: sweep every dirty granule once, accumulating the rotated
	// XOR per pair and parity-checking each granule on the way.
	acc := make([][]uint64, e.Cfg.RegisterPairs)
	for p := range acc {
		acc[p] = make([]uint64, e.granuleWords)
	}
	byPair := make([][]faultInfo, e.Cfg.RegisterPairs)
	triggerSeen := false
	e.C.ForEachDirtyGranule(func(fs, fw, fg int, ln *cache.Line) {
		e.Events.SweptGranules++
		class := e.ClassOf(fs, fw, fg)
		pair := e.Cfg.PairOf(class)
		rot := e.Cfg.RotationOf(class)
		fold(acc[pair], e.GranuleData(ln, fg), rot)
		if syn := e.CheckSyndrome(fs, fw, fg); syn != 0 {
			byPair[pair] = append(byPair[pair], faultInfo{
				set: fs, way: fw, g: fg,
				class: class, rot: rot, pair: pair,
				row:      e.C.Geom.CoordOf(fs, fw, fg*e.granuleWords).Row,
				syndrome: syn,
			})
			if fs == set && fw == way && fg == g {
				triggerSeen = true
			}
		}
	})
	if !triggerSeen {
		// The triggering granule is no longer dirty or no longer faulty —
		// e.g. the caller raced recovery with an eviction. Nothing to do.
		return Report{Outcome: OutcomeCorrected, Method: "none"}
	}

	rep := Report{Outcome: OutcomeCorrected}
	for pair := range byPair {
		faults := byPair[pair]
		if len(faults) == 0 {
			continue
		}
		for _, f := range faults {
			rep.Faulty = append(rep.Faulty, GranuleRef{f.set, f.way, f.g})
		}
		// R3 = R1 ^ R2 ^ (rotated XOR of all dirty granules, faulty
		// included): the XOR of the rotated error masks (Sec. 4.5).
		r3 := make([]uint64, e.granuleWords)
		for j := range r3 {
			r3[j] = e.r1[pair][j] ^ e.r2[pair][j] ^ acc[pair][j]
		}
		method, ok := e.recoverPair(faults, r3)
		if rep.Method == "" || rep.Method == "none" {
			rep.Method = method
		} else if method != rep.Method {
			rep.Method = rep.Method + "+" + method
		}
		if !ok {
			rep.Outcome = OutcomeDUE
		}
	}
	if rep.Outcome == OutcomeDUE {
		e.Events.DUEs++
	}
	return rep
}

// recoverPair repairs the faulty granules of one register pair. It returns
// the correction path taken and whether every fault was repaired and
// re-verified.
func (e *Engine) recoverPair(faults []faultInfo, r3 []uint64) (string, bool) {
	// Single faulty granule: steps 1-2.
	if len(faults) == 1 {
		f := faults[0]
		mask := unfold(r3, f.rot)
		if allZero(mask) {
			// The data matches the registers exactly: the stored parity
			// bits themselves are corrupted. Rewrite them.
			e.EncodeCheck(f.set, f.way, f.g)
			e.Events.CorrectedCheck++
			return "check-bits", true
		}
		e.applyMask(f, mask)
		if e.CheckSyndrome(f.set, f.way, f.g) != 0 {
			return "single", false
		}
		e.Events.CorrectedSingle++
		return "single", true
	}

	// Step 3: do the faulty granules share any faulty parity stripe?
	disjoint := true
	for i := 0; i < len(faults) && disjoint; i++ {
		for k := i + 1; k < len(faults); k++ {
			if faults[i].syndrome&faults[k].syndrome != 0 {
				disjoint = false
				break
			}
		}
	}

	if disjoint {
		// Step 4: every faulty granule owns its faulty stripes exclusively,
		// so the bits R3 carries in those stripe columns belong to it.
		for _, f := range faults {
			var stripeCols uint64
			for _, s := range bitops.FaultyStripes(f.syndrome, e.Cfg.ParityDegree) {
				stripeCols |= bitops.StripeMask(s, e.Cfg.ParityDegree)
			}
			cand := unfold(r3, f.rot)
			mask := make([]uint64, e.granuleWords)
			for j := range mask {
				mask[j] = cand[j] & stripeCols
			}
			e.applyMask(f, mask)
			if e.CheckSyndrome(f.set, f.way, f.g) != 0 {
				return "disjoint", false
			}
		}
		e.Events.CorrectedDisj++
		return "disjoint", true
	}

	// Step 5: spatial hypothesis — the faulty rows must fit in the 8-row
	// correction window.
	minRow, maxRow := faults[0].row, faults[0].row
	for _, f := range faults[1:] {
		if f.row < minRow {
			minRow = f.row
		}
		if f.row > maxRow {
			maxRow = f.row
		}
	}
	if maxRow-minRow >= 8 {
		return "locator", false
	}

	// Step 6: the fault locator.
	e.Events.LocatorRuns++
	masks, ok := e.locate(faults, r3)
	if !ok {
		return "locator", false
	}
	for i, f := range faults {
		e.applyMask(f, masks[i])
		if e.CheckSyndrome(f.set, f.way, f.g) != 0 {
			return "locator", false
		}
	}
	e.Events.CorrectedSpat++
	return "locator", true
}

// applyMask XORs a correction mask into the granule's stored data.
func (e *Engine) applyMask(f faultInfo, mask []uint64) {
	ln := e.C.Line(f.set, f.way)
	data := e.GranuleData(ln, f.g)
	for j := range data {
		data[j] ^= mask[j]
	}
}

func allZero(v []uint64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func fmtMasks(masks [][]uint64) string {
	return fmt.Sprintf("%x", masks)
}
