package core

import "testing"

func TestRegisterParityTracksFolds(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.e.EnableRegisterParity()
	for i := 0; i < 50; i++ {
		h.store(uint64(i*8), uint64(i)*0x9e3779b97f4a7c15)
	}
	if !h.e.RegisterParityOK() {
		t.Fatal("register parity drifted under normal folds")
	}
}

func TestRegisterFaultDetectedAndScrubbed(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.e.EnableRegisterParity()
	h.store(0x10, 0x1234)
	h.store(0x50, 0x5678)

	// A strike on R1 alone: detectable by the register parity, repairable
	// by scrubbing because the dirty data is intact.
	h.e.FlipRegisterBits(0, 1, 0, 1<<7)
	if h.e.RegisterParityOK() {
		t.Fatal("register fault undetected")
	}
	h.e.ScrubRegisters()
	h.e.reencodeRegisterParity()
	if !h.e.RegisterParityOK() {
		t.Fatal("scrub did not restore register parity")
	}
	h.mustInvariant()

	// Data recovery still works afterwards.
	h.flip(0x10, 1<<3)
	if rep := h.recoverAt(0x10); rep.Outcome != OutcomeCorrected {
		t.Fatalf("post-scrub recovery: %+v", rep)
	}
	if got, _ := h.load(0x10); got != 0x1234 {
		t.Fatalf("value = %#x", got)
	}
}

func TestRegisterFaultPlusDataFaultIsDUE(t *testing.T) {
	// Sec. 4.9's caveat: a register fault is recoverable only if no dirty
	// word is simultaneously faulty. Both at once must be a DUE, not a
	// silent miscorrection.
	h := newHarness(t, DefaultL1Config())
	h.e.EnableRegisterParity()
	h.store(0x10, 0xaaaa)
	h.e.FlipRegisterBits(0, 2, 0, 1<<5) // R2 corrupted
	h.flip(0x10, 1<<9)                  // and a dirty word too
	rep := h.recoverAt(0x10)
	if rep.Outcome != OutcomeDUE || rep.Method != "register-scrub" {
		t.Fatalf("report = %+v", rep)
	}
	if h.e.Events.RegisterScrubs != 1 {
		t.Fatalf("events = %+v", h.e.Events)
	}
}

func TestRegisterParityDisabledByDefault(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(0x10, 1)
	h.e.FlipRegisterBits(0, 1, 0, 1)
	// Without self-protection the check is vacuous...
	if !h.e.RegisterParityOK() {
		t.Fatal("disabled register parity should report OK")
	}
	// ...and a recovery silently uses the corrupted register: the
	// correction fails its parity re-verification and becomes a DUE.
	h.flip(0x10, 1<<3)
	if rep := h.recoverAt(0x10); rep.Outcome != OutcomeDUE {
		t.Fatalf("report = %+v", rep)
	}
}
