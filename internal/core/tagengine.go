package core

import (
	"fmt"

	"cppc/internal/bitops"
	"cppc/internal/cache"
)

// TagEngine extends the CPPC idea to the cache tag array — the paper's
// Sec. 7 future-work item: "For the tags, the concept of dirty vs. clean
// data does not exist. Read-before-write operations are not needed. Tags
// are read-only until they are replaced."
//
// T1 accumulates the (rotated) tag of every line installed; T2 the tag of
// every line removed (replacement or invalidation). T1 ^ T2 is therefore
// the XOR of all currently valid tags, and a tag whose parity check fails
// is rebuilt by XORing T1, T2 and every other valid tag. Rotation classes
// and register pairs work exactly as for data, covering spatial MBEs in
// the tag array.
type TagEngine struct {
	Cfg Config
	C   *cache.Cache

	t1, t2 [][]uint64 // [pair][0]: tags fit one word

	// check holds the per-line tag parity bits, indexed [set][way].
	check [][]uint64

	Events Events
}

// NewTagEngine attaches tag protection to c.
func NewTagEngine(c *cache.Cache, cfg Config) (*TagEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &TagEngine{Cfg: cfg, C: c}
	e.t1 = make([][]uint64, cfg.RegisterPairs)
	e.t2 = make([][]uint64, cfg.RegisterPairs)
	for p := range e.t1 {
		e.t1[p] = make([]uint64, 1)
		e.t2[p] = make([]uint64, 1)
	}
	e.check = make([][]uint64, c.Cfg.Sets())
	for s := range e.check {
		e.check[s] = make([]uint64, c.Cfg.Ways)
	}
	return e, nil
}

// MustNewTagEngine is NewTagEngine that panics on config errors.
func MustNewTagEngine(c *cache.Cache, cfg Config) *TagEngine {
	e, err := NewTagEngine(c, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// classOf maps a line to its rotation class: the physical row of its
// first data word stands in for the tag entry's row (tag and data arrays
// share the row structure).
func (e *TagEngine) classOf(set, way int) int { return e.C.Geom.ClassOf(set, way, 0) }

// foldTag XORs a rotated tag into a register.
func (e *TagEngine) foldTag(reg [][]uint64, set, way int, tag uint64) {
	class := e.classOf(set, way)
	reg[e.Cfg.PairOf(class)][0] ^= bitops.RotrBytes(tag, e.Cfg.RotationOf(class))
	e.Events.Folds++
}

// OnInstall records a line installation: oldValid/oldTag describe the
// previous occupant (folded out through T2), tag the new one (into T1).
// Call after the cache's Install. The tag parity is (re)encoded.
func (e *TagEngine) OnInstall(set, way int, oldValid bool, oldTag, tag uint64) {
	if oldValid {
		e.foldTag(e.t2, set, way, oldTag)
	}
	e.foldTag(e.t1, set, way, tag)
	e.EncodeTag(set, way)
}

// OnInvalidate records a line leaving without replacement.
func (e *TagEngine) OnInvalidate(set, way int, tag uint64) {
	e.foldTag(e.t2, set, way, tag)
}

// EncodeTag recomputes the stored tag parity for a line.
func (e *TagEngine) EncodeTag(set, way int) {
	e.check[set][way] = bitops.Parity(e.C.Line(set, way).Tag, e.Cfg.ParityDegree)
}

// TagSyndrome returns the disagreeing parity stripes for a line's tag.
func (e *TagEngine) TagSyndrome(set, way int) uint64 {
	return e.check[set][way] ^ bitops.Parity(e.C.Line(set, way).Tag, e.Cfg.ParityDegree)
}

// FlipTagBits injects a fault into a stored tag.
func (e *TagEngine) FlipTagBits(set, way int, mask uint64) {
	e.C.Line(set, way).Tag ^= mask
}

// CheckInvariant verifies T1 ^ T2 against a sweep of the valid tags.
func (e *TagEngine) CheckInvariant() error {
	acc := make([]uint64, e.Cfg.RegisterPairs)
	e.C.ForEachValid(func(set, way int, ln *cache.Line) {
		class := e.classOf(set, way)
		acc[e.Cfg.PairOf(class)] ^= bitops.RotrBytes(ln.Tag, e.Cfg.RotationOf(class))
	})
	for p := 0; p < e.Cfg.RegisterPairs; p++ {
		if got := e.t1[p][0] ^ e.t2[p][0]; got != acc[p] {
			return errTagInvariant{pair: p, reg: got, sweep: acc[p]}
		}
	}
	return nil
}

type errTagInvariant struct {
	pair       int
	reg, sweep uint64
}

func (e errTagInvariant) Error() string {
	return fmt.Sprintf("tagcppc: pair %d registers %#x, tag sweep %#x", e.pair, e.reg, e.sweep)
}

// RecoverTag rebuilds a faulty tag (detected via TagSyndrome) from the
// registers and every other valid tag. Multi-tag faults follow the same
// paths as data recovery in miniature: a single faulty tag per pair is
// rebuilt directly; anything else is a DUE (tags have no locator in the
// paper's sketch).
func (e *TagEngine) RecoverTag(set, way int) Report {
	e.Events.Recoveries++
	acc := make([]uint64, e.Cfg.RegisterPairs)
	type ref struct{ set, way int }
	var faulty []ref
	e.C.ForEachValid(func(s, w int, ln *cache.Line) {
		e.Events.SweptGranules++
		class := e.classOf(s, w)
		acc[e.Cfg.PairOf(class)] ^= bitops.RotrBytes(ln.Tag, e.Cfg.RotationOf(class))
		if e.TagSyndrome(s, w) != 0 {
			faulty = append(faulty, ref{s, w})
		}
	})
	rep := Report{Outcome: OutcomeCorrected, Method: "tag"}
	byPair := map[int][]ref{}
	for _, f := range faulty {
		p := e.Cfg.PairOf(e.classOf(f.set, f.way))
		byPair[p] = append(byPair[p], f)
		rep.Faulty = append(rep.Faulty, GranuleRef{f.set, f.way, 0})
	}
	for p, fs := range byPair {
		if len(fs) != 1 {
			rep.Outcome = OutcomeDUE
			e.Events.DUEs++
			continue
		}
		f := fs[0]
		class := e.classOf(f.set, f.way)
		residue := e.t1[p][0] ^ e.t2[p][0] ^ acc[p]
		mask := bitops.RotlBytes(residue, e.Cfg.RotationOf(class))
		if mask == 0 {
			// Tag intact; the stored parity bits were hit.
			e.EncodeTag(f.set, f.way)
			e.Events.CorrectedCheck++
			continue
		}
		e.C.Line(f.set, f.way).Tag ^= mask
		if e.TagSyndrome(f.set, f.way) != 0 {
			rep.Outcome = OutcomeDUE
			e.Events.DUEs++
			continue
		}
		e.Events.CorrectedSingle++
	}
	return rep
}
