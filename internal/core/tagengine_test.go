package core

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
)

// tagHarness drives a cache + TagEngine through installs and
// invalidations the way a controller would.
type tagHarness struct {
	t   *testing.T
	c   *cache.Cache
	e   *TagEngine
	mem *cache.Memory
}

func newTagHarness(t *testing.T, cfg Config) *tagHarness {
	t.Helper()
	ccfg, err := cache.Config{
		Name: "tagtest", SizeBytes: 1024, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(ccfg)
	return &tagHarness{t: t, c: c, e: MustNewTagEngine(c, cfg), mem: cache.NewMemory(32, 100)}
}

// touch brings addr into the cache through the tag engine's hooks.
func (h *tagHarness) touch(addr uint64) {
	set, way := h.c.Probe(addr)
	if way >= 0 {
		h.c.Touch(set, way)
		return
	}
	way = h.c.Victim(set)
	ln := h.c.Line(set, way)
	oldValid, oldTag := ln.Valid, ln.Tag
	buf := make([]uint64, h.c.Cfg.BlockWords())
	h.mem.FetchBlock(addr, buf, 0)
	h.c.Install(set, way, addr, buf)
	h.e.OnInstall(set, way, oldValid, oldTag, h.c.Line(set, way).Tag)
}

func TestTagInvariantUnderChurn(t *testing.T) {
	h := newTagHarness(t, DefaultL1Config())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		h.touch(uint64(rng.Intn(4096)) * 32) // 128KB over a 1KB cache: heavy churn
	}
	if err := h.e.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestTagInvalidateMaintainsInvariant(t *testing.T) {
	h := newTagHarness(t, DefaultL1Config())
	h.touch(0x40)
	set, way := h.c.Probe(0x40)
	h.e.OnInvalidate(set, way, h.c.Line(set, way).Tag)
	h.c.Invalidate(set, way)
	if err := h.e.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestTagSingleBitRecovery(t *testing.T) {
	h := newTagHarness(t, DefaultL1Config())
	// Consecutive blocks fill distinct sets, so nothing evicts.
	for i := 0; i < 16; i++ {
		h.touch(uint64(i) * 32)
	}
	set, way := h.c.Probe(3 * 32)
	want := h.c.Line(set, way).Tag
	h.e.FlipTagBits(set, way, 1<<9)
	if h.e.TagSyndrome(set, way) == 0 {
		t.Fatal("tag fault undetected")
	}
	rep := h.e.RecoverTag(set, way)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	if got := h.c.Line(set, way).Tag; got != want {
		t.Fatalf("tag = %#x, want %#x", got, want)
	}
	if h.e.TagSyndrome(set, way) != 0 {
		t.Fatal("syndrome after recovery")
	}
}

func TestTagMultiBitSingleEntryRecovery(t *testing.T) {
	h := newTagHarness(t, DefaultL1Config())
	for i := 0; i < 8; i++ {
		h.touch(uint64(i) * 32)
	}
	set, way := h.c.Probe(5 * 32)
	want := h.c.Line(set, way).Tag
	h.e.FlipTagBits(set, way, 0b111) // 3 bits, distinct stripes
	rep := h.e.RecoverTag(set, way)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	if got := h.c.Line(set, way).Tag; got != want {
		t.Fatalf("tag = %#x, want %#x", got, want)
	}
}

func TestTagCheckBitFault(t *testing.T) {
	h := newTagHarness(t, DefaultL1Config())
	h.touch(0x40)
	set, way := h.c.Probe(0x40)
	h.e.check[set][way] ^= 0b10
	rep := h.e.RecoverTag(set, way)
	if rep.Outcome != OutcomeCorrected || h.e.Events.CorrectedCheck != 1 {
		t.Fatalf("report = %+v events = %+v", rep, h.e.Events)
	}
}

func TestTagTwoFaultsSamePairIsDUE(t *testing.T) {
	// One register pair: two simultaneously faulty tags cannot both be
	// rebuilt (no tag locator).
	h := newTagHarness(t, Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false})
	for i := 0; i < 8; i++ {
		h.touch(uint64(i) * 32)
	}
	s1, w1 := h.c.Probe(1 * 32)
	s2, w2 := h.c.Probe(2 * 32)
	h.e.FlipTagBits(s1, w1, 1<<3)
	h.e.FlipTagBits(s2, w2, 1<<4)
	if rep := h.e.RecoverTag(s1, w1); rep.Outcome != OutcomeDUE {
		t.Fatalf("report = %+v", rep)
	}
}

func TestTagTwoFaultsDifferentPairsRecovered(t *testing.T) {
	// Eight pairs: entries in different rotation classes recover
	// independently, like data granules.
	h := newTagHarness(t, FullCorrectionConfig())
	for i := 0; i < 16; i++ {
		h.touch(uint64(i) * 32)
	}
	// Two entries in different sets => different rows => different pairs.
	s1, w1 := h.c.Probe(1 * 32)
	s2, w2 := h.c.Probe(4 * 32)
	if h.e.classOf(s1, w1) == h.e.classOf(s2, w2) {
		t.Skip("picked entries share a class; layout changed")
	}
	want1, want2 := h.c.Line(s1, w1).Tag, h.c.Line(s2, w2).Tag
	h.e.FlipTagBits(s1, w1, 1<<3)
	h.e.FlipTagBits(s2, w2, 1<<7)
	if rep := h.e.RecoverTag(s1, w1); rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	if h.c.Line(s1, w1).Tag != want1 || h.c.Line(s2, w2).Tag != want2 {
		t.Fatal("tags not both restored")
	}
}

func TestTagEngineRejectsBadConfig(t *testing.T) {
	c := cache.New(cache.L1DConfig())
	if _, err := NewTagEngine(c, Config{ParityDegree: 5, RegisterPairs: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTagInvariantErrorMessage(t *testing.T) {
	h := newTagHarness(t, DefaultL1Config())
	h.touch(0x40)
	h.e.t1[0][0] ^= 0xff
	err := h.e.CheckInvariant()
	if err == nil || err.Error() == "" {
		t.Fatal("corrupted register not reported")
	}
}
