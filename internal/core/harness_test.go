package core

import (
	"testing"

	"cppc/internal/cache"
)

// harness drives an Engine the way the cache controller does: miss
// handling with write-backs, fills, and the store sequence (capture old
// data, write, fold).
type harness struct {
	t   *testing.T
	c   *cache.Cache
	e   *Engine
	mem *cache.Memory
	now uint64
}

// newHarness builds a small direct-mapped cache (16 sets x 32B blocks, one
// block per physical row) so that consecutive blocks occupy vertically
// adjacent rows, which makes spatial-fault placement straightforward.
func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	ccfg, err := cache.Config{
		Name: "test", SizeBytes: 512, Ways: 1, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(ccfg)
	return &harness{t: t, c: c, e: MustNew(c, cfg), mem: cache.NewMemory(32, 100)}
}

// newL2Harness builds a small L2-style cache: dirty granule = whole 32B
// block, one block per row.
func newL2Harness(t *testing.T, cfg Config) *harness {
	t.Helper()
	ccfg, err := cache.Config{
		Name: "testL2", SizeBytes: 1024, Ways: 1, BlockBytes: 32,
		DirtyGranuleWords: 4, HitLatencyCycles: 8,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(ccfg)
	return &harness{t: t, c: c, e: MustNew(c, cfg), mem: cache.NewMemory(32, 100)}
}

// ensure brings the block holding addr into the cache, write-backs
// included, and returns its coordinates.
func (h *harness) ensure(addr uint64) (set, way int) {
	set, way = h.c.Probe(addr)
	if way >= 0 {
		h.c.Touch(set, way)
		return set, way
	}
	way = h.c.Victim(set)
	ln := h.c.Line(set, way)
	if ln.Valid && ln.DirtyAny() {
		h.e.OnEvictBlock(set, way)
		h.mem.WriteBackBlock(h.c.BlockAddr(set, way), ln.Data, h.now)
	}
	buf := make([]uint64, h.c.Cfg.BlockWords())
	h.mem.FetchBlock(addr, buf, h.now)
	h.c.Install(set, way, addr, buf)
	h.e.OnFill(set, way)
	return set, way
}

// store performs a word store through the engine.
func (h *harness) store(addr, val uint64) {
	h.now++
	set, way := h.ensure(addr)
	_, _, word := h.c.Decompose(addr)
	g := word / h.e.GranuleWords()
	ln := h.c.Line(set, way)
	old := append([]uint64(nil), h.e.GranuleData(ln, g)...)
	wasDirty := ln.Dirty[g]
	ln.Data[word] = val
	h.e.OnStore(set, way, g, old, wasDirty, false, h.now)
}

// storeBlock writes a whole granule (the L2 write-back path).
func (h *harness) storeBlock(addr uint64, vals []uint64) {
	h.now++
	set, way := h.ensure(addr)
	_, _, word := h.c.Decompose(addr)
	g := word / h.e.GranuleWords()
	ln := h.c.Line(set, way)
	old := append([]uint64(nil), h.e.GranuleData(ln, g)...)
	wasDirty := ln.Dirty[g]
	copy(h.e.GranuleData(ln, g), vals)
	h.e.OnStore(set, way, g, old, wasDirty, false, h.now)
}

// load reads a word, returning its value and the granule parity syndrome.
func (h *harness) load(addr uint64) (uint64, uint64) {
	h.now++
	set, way := h.ensure(addr)
	_, _, word := h.c.Decompose(addr)
	g := word / h.e.GranuleWords()
	syn := h.e.CheckSyndrome(set, way, g)
	return h.c.Line(set, way).Data[word], syn
}

// locate returns the coordinates of a resident word.
func (h *harness) locate(addr uint64) (set, way, word, g int) {
	set, way = h.c.Probe(addr)
	if way < 0 {
		h.t.Fatalf("addr %#x not resident", addr)
	}
	_, _, word = h.c.Decompose(addr)
	return set, way, word, word / h.e.GranuleWords()
}

// flip injects a fault into the stored data of a resident word.
func (h *harness) flip(addr uint64, mask uint64) {
	set, way, word, _ := h.locate(addr)
	h.c.FlipBits(set, way, word, mask)
}

// recoverAt triggers recovery for the granule holding addr.
func (h *harness) recoverAt(addr uint64) Report {
	set, way, _, g := h.locate(addr)
	return h.e.RecoverDirty(set, way, g)
}

// mustInvariant fails the test if the register invariant is broken.
func (h *harness) mustInvariant() {
	h.t.Helper()
	if err := h.e.CheckInvariant(); err != nil {
		h.t.Fatal(err)
	}
}

// rowAddr returns the address of word `word` of the block on physical row
// r (direct-mapped, one block per row: row == set == block index).
func (h *harness) rowAddr(row, word int) uint64 {
	return uint64(row*h.c.Cfg.BlockBytes + word*8)
}
