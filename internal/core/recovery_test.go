package core

import (
	"math/rand"
	"testing"
)

// TestFigure3SingleBitRecovery reproduces the paper's Sec. 3.3 example:
// two stores, a particle strike on the MSB of the first word, recovery by
// XORing R1, R2 and the other dirty word.
func TestFigure3SingleBitRecovery(t *testing.T) {
	h := newHarness(t, Config{ParityDegree: 1, RegisterPairs: 1}) // basic CPPC
	w0 := h.rowAddr(0, 0)
	w1 := h.rowAddr(0, 1) // same block: both in the dirty set
	h.store(w0, 0x0000)
	h.store(w1, 0x8000_0000_0000_0000)

	h.flip(w0, 1<<63) // MSB of Word0 flips 0 -> 1
	if _, syn := h.load(w0); syn == 0 {
		t.Fatal("parity failed to detect the flip")
	}
	rep := h.recoverAt(w0)
	if rep.Outcome != OutcomeCorrected || rep.Method != "single" {
		t.Fatalf("report = %+v", rep)
	}
	if got, syn := h.load(w0); got != 0 || syn != 0 {
		t.Fatalf("recovered Word0 = %#x (syndrome %#x), want 0", got, syn)
	}
}

// TestFigure4BasicCPPCFailsVerticalMBE reproduces Sec. 4.2's negative
// example: without byte shifting, a vertical 2-bit fault hitting the same
// bit of two vertically adjacent dirty words is unrecoverable — the two
// flips cancel inside R1 ^ R2.
func TestFigure4BasicCPPCFailsVerticalMBE(t *testing.T) {
	h := newHarness(t, Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false})
	a := h.rowAddr(0, 0) // row 0
	b := h.rowAddr(1, 0) // row 1, vertically adjacent
	h.store(a, 0)
	h.store(b, 0x8000_0000_0000_0000)

	h.flip(a, 1<<63)
	h.flip(b, 1<<63)
	rep := h.recoverAt(a)
	if rep.Outcome != OutcomeDUE {
		t.Fatalf("basic CPPC corrected a vertical MBE: %+v", rep)
	}
}

// TestFigure5ByteShiftingCorrectsVerticalMBE is the positive counterpart
// (Sec. 4.2): with byte shifting the same vertical fault is corrected.
func TestFigure5ByteShiftingCorrectsVerticalMBE(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	a := h.rowAddr(0, 0)
	b := h.rowAddr(1, 0)
	h.store(a, 0)
	h.store(b, 0x8000_0000_0000_0000)

	h.flip(a, 1<<63)
	h.flip(b, 1<<63)
	rep := h.recoverAt(a)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	if got, syn := h.load(a); got != 0 || syn != 0 {
		t.Fatalf("Word0 = %#x syn %#x", got, syn)
	}
	if got, syn := h.load(b); got != 0x8000_0000_0000_0000 || syn != 0 {
		t.Fatalf("Word1 = %#x syn %#x", got, syn)
	}
}

// TestVerticalColumnSixRows corrects a 6-high vertical fault: the same
// bit flipped in 6 vertically adjacent dirty words. With one register
// pair this is the tallest vertical column with a unique attribution.
func TestVerticalColumnSixRows(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	want := make([]uint64, 6)
	for r := 0; r < 6; r++ {
		want[r] = uint64(r) * 0x0101_0101_0101_0101
		h.store(h.rowAddr(r, 0), want[r])
	}
	for r := 0; r < 6; r++ {
		h.flip(h.rowAddr(r, 0), 1<<17)
	}
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	for r := 0; r < 6; r++ {
		if got, syn := h.load(h.rowAddr(r, 0)); got != want[r] || syn != 0 {
			t.Fatalf("row %d = %#x (syn %#x), want %#x", r, got, syn, want[r])
		}
	}
}

// TestVerticalColumnTallDegeneracy documents a coverage boundary the
// paper's Sec. 4.6 examples do not enumerate: a vertical column 7 or 8
// rows high saturates enough rotation classes that (by mod-8 wraparound)
// a second spatially valid byte-column attribution exists. The residue
// information is genuinely ambiguous, so a single pair yields a DUE; two
// pairs split the column and correct it.
func TestVerticalColumnTallDegeneracy(t *testing.T) {
	run := func(rows, pairs int) Report {
		h := newHarness(t, Config{ParityDegree: 8, RegisterPairs: pairs, ByteShifting: true})
		for r := 0; r < rows; r++ {
			h.store(h.rowAddr(r, 0), uint64(r))
		}
		for r := 0; r < rows; r++ {
			h.flip(h.rowAddr(r, 0), 1<<17)
		}
		return h.recoverAt(h.rowAddr(0, 0))
	}
	for _, rows := range []int{7, 8} {
		if rep := run(rows, 1); rep.Outcome != OutcomeDUE {
			t.Fatalf("%d rows, one pair: want DUE, got %+v", rows, rep)
		}
		if rep := run(rows, 2); rep.Outcome != OutcomeCorrected {
			t.Fatalf("%d rows, two pairs: want corrected, got %+v", rows, rep)
		}
	}
}

// TestHorizontalCrossWordBoundary reproduces the Sec. 3.6 example: a 7-bit
// horizontal fault across bits 62-63 of the left word and bits 0-4 of the
// right word. The two words' faulty parity stripes are disjoint, so the
// basic CPPC with interleaved parity corrects it (step 4).
func TestHorizontalCrossWordBoundary(t *testing.T) {
	h := newHarness(t, Config{ParityDegree: 8, RegisterPairs: 1, ByteShifting: false})
	left := h.rowAddr(3, 0)
	right := h.rowAddr(3, 1)
	h.store(left, 0x1111_2222_3333_4444)
	h.store(right, 0x5555_6666_7777_8888)

	h.flip(left, uint64(0b11)<<62) // bits 62, 63: stripes 6, 7
	h.flip(right, 0b11111)         // bits 0-4: stripes 0-4
	rep := h.recoverAt(left)
	if rep.Outcome != OutcomeCorrected || rep.Method != "disjoint" {
		t.Fatalf("report = %+v", rep)
	}
	if got, _ := h.load(left); got != 0x1111_2222_3333_4444 {
		t.Fatalf("left = %#x", got)
	}
	if got, _ := h.load(right); got != 0x5555_6666_7777_8888 {
		t.Fatalf("right = %#x", got)
	}
}

// TestSquare8x8CrossingWordBoundary: an 8x8 square whose columns straddle
// a word boundary, with byte shifting — 16 faulty words, located via the
// cross-boundary hypothesis.
func TestSquare2x2CrossingWordBoundary(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	vals := map[uint64]uint64{}
	for r := 0; r < 2; r++ {
		for w := 0; w < 2; w++ {
			addr := h.rowAddr(r, w)
			vals[addr] = rand.New(rand.NewSource(int64(r*2 + w))).Uint64()
			h.store(addr, vals[addr])
		}
	}
	// 2x2 square at bit columns 63-64 of each row: bit 63 of word 0, bit 0
	// of word 1.
	for r := 0; r < 2; r++ {
		h.flip(h.rowAddr(r, 0), 1<<63)
		h.flip(h.rowAddr(r, 1), 1)
	}
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	for addr, want := range vals {
		if got, syn := h.load(addr); got != want || syn != 0 {
			t.Fatalf("addr %#x = %#x (syn %#x), want %#x", addr, got, syn, want)
		}
	}
}

// TestFull8x8OnePairIsDUE reproduces the first Sec. 4.6 corner case: a
// full 8x8 fault saturates every parity bit and every R3 bit, leaving no
// way to attribute bits to words — a DUE with one register pair.
func TestFull8x8OnePairIsDUE(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	for r := 0; r < 8; r++ {
		h.store(h.rowAddr(r, 0), uint64(r)<<32)
	}
	for r := 0; r < 8; r++ {
		h.flip(h.rowAddr(r, 0), 0xff<<16) // byte 2 of every row: 8x8 square
	}
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeDUE {
		t.Fatalf("8x8 with one pair unexpectedly %v (method %s)", rep.Outcome, rep.Method)
	}
}

// TestFull8x8TwoPairsCorrected: the Sec. 4.6 fix — with two register pairs
// the 8x8 fault splits into two 4x8 faults in different pairs, both
// correctable.
func TestFull8x8TwoPairsCorrected(t *testing.T) {
	h := newHarness(t, Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true})
	want := make([]uint64, 8)
	for r := 0; r < 8; r++ {
		want[r] = uint64(r) << 32
		h.store(h.rowAddr(r, 0), want[r])
	}
	for r := 0; r < 8; r++ {
		h.flip(h.rowAddr(r, 0), 0xff<<16)
	}
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	for r := 0; r < 8; r++ {
		if got, _ := h.load(h.rowAddr(r, 0)); got != want[r] {
			t.Fatalf("row %d = %#x, want %#x", r, got, want[r])
		}
	}
}

// TestRows4ApartOnePairIsDUE reproduces the second Sec. 4.6 corner case:
// faults in the same byte of a class-0 and a class-4 word are ambiguous
// with one pair (byte 0 vs byte 4 placement cannot be distinguished).
func TestRows4ApartOnePairIsDUE(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(h.rowAddr(0, 0), 0xa)
	h.store(h.rowAddr(4, 0), 0xb)
	h.flip(h.rowAddr(0, 0), 1<<3) // byte 0
	h.flip(h.rowAddr(4, 0), 1<<3) // byte 0, class 4
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeDUE {
		t.Fatalf("class-0/class-4 aliasing unexpectedly %v", rep.Outcome)
	}
}

// TestRows4ApartTwoPairsCorrected: with two pairs, classes 0 and 4 live in
// different pairs; each becomes a trivially correctable single fault.
func TestRows4ApartTwoPairsCorrected(t *testing.T) {
	h := newHarness(t, Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true})
	h.store(h.rowAddr(0, 0), 0xa)
	h.store(h.rowAddr(4, 0), 0xb)
	h.flip(h.rowAddr(0, 0), 1<<3)
	h.flip(h.rowAddr(4, 0), 1<<3)
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	if got, _ := h.load(h.rowAddr(0, 0)); got != 0xa {
		t.Fatalf("row 0 = %#x", got)
	}
	if got, _ := h.load(h.rowAddr(4, 0)); got != 0xb {
		t.Fatalf("row 4 = %#x", got)
	}
}

// TestTemporalAliasingSDC reproduces the Sec. 4.7 hazard: two *temporal*
// single-bit faults — bit 56 of a class-0 word and bit 8 of a class-1 word
// — present the registers with a pattern indistinguishable from a spatial
// fault in bit 0 of both words. The locator confidently "corrects" the
// wrong bits, converting a 2-bit DUE into a 4-bit silent data corruption.
func TestTemporalAliasingSDC(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	a := h.rowAddr(0, 0)
	b := h.rowAddr(1, 0)
	h.store(a, 0)
	h.store(b, 0)
	h.flip(a, 1<<56)
	h.flip(b, 1<<8)
	rep := h.recoverAt(a)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("aliasing case did not mis-correct: %+v", rep)
	}
	// The locator flipped bit 0 of both words instead; each word now has
	// both its real fault and the miscorrection: 4 corrupted bits, parity
	// silent.
	gotA, synA := h.load(a)
	gotB, synB := h.load(b)
	if synA != 0 || synB != 0 {
		t.Fatalf("miscorrection should be parity-silent: %#x %#x", synA, synB)
	}
	if gotA != (1<<56|1) || gotB != (1<<8|1) {
		t.Fatalf("unexpected SDC pattern: a=%#x b=%#x", gotA, gotB)
	}
}

// TestTemporalAliasingEliminatedBy8Pairs: Sec. 4.7/4.11 — with 8 register
// pairs (one per class) the two faults land in different pairs and are
// each corrected exactly.
func TestTemporalAliasingEliminatedBy8Pairs(t *testing.T) {
	h := newHarness(t, FullCorrectionConfig())
	a := h.rowAddr(0, 0)
	b := h.rowAddr(1, 0)
	h.store(a, 0)
	h.store(b, 0)
	h.flip(a, 1<<56)
	h.flip(b, 1<<8)
	rep := h.recoverAt(a)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	if got, _ := h.load(a); got != 0 {
		t.Fatalf("a = %#x, want 0", got)
	}
	if got, _ := h.load(b); got != 0 {
		t.Fatalf("b = %#x, want 0", got)
	}
}

// TestCheckBitFaultRepaired: a fault in the stored parity bits themselves
// is recognized (the data matches the registers) and the check bits are
// rewritten.
func TestCheckBitFaultRepaired(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(0x20, 0x1234)
	set, way, word, _ := h.locate(0x20)
	h.c.FlipCheckBits(set, way, word, 0b101)
	if _, syn := h.load(0x20); syn == 0 {
		t.Fatal("check-bit fault undetected")
	}
	rep := h.recoverAt(0x20)
	if rep.Outcome != OutcomeCorrected || rep.Method != "check-bits" {
		t.Fatalf("report = %+v", rep)
	}
	if got, syn := h.load(0x20); got != 0x1234 || syn != 0 {
		t.Fatalf("after repair: %#x syn %#x", got, syn)
	}
	if h.e.Events.CorrectedCheck != 1 {
		t.Fatalf("CorrectedCheck = %d", h.e.Events.CorrectedCheck)
	}
}

// TestOddMultiBitSingleWord: the basic CPPC corrects any odd number of
// flips confined to one dirty word (Sec. 3.4) — and, because recovery
// rebuilds the whole word, even numbers too once another stripe detects.
func TestOddMultiBitSingleWord(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(0x60, 0xdeadbeef)
	h.flip(0x60, 1|1<<9|1<<18|1<<27|1<<36) // 5 flips, stripes 0,1,2,3,4
	rep := h.recoverAt(0x60)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	if got, _ := h.load(0x60); got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
}

// TestFaultAcrossPairsRecoversBoth: faults in two granules protected by
// different pairs are both repaired in a single recovery run.
func TestFaultAcrossPairsRecoversBoth(t *testing.T) {
	h := newHarness(t, Config{ParityDegree: 8, RegisterPairs: 4, ByteShifting: true})
	a := h.rowAddr(0, 0) // class 0 -> pair 0
	b := h.rowAddr(3, 0) // class 3 -> pair 1
	h.store(a, 0x1111)
	h.store(b, 0x2222)
	h.flip(a, 1<<7)
	h.flip(b, 1<<13)
	rep := h.recoverAt(a)
	if rep.Outcome != OutcomeCorrected || len(rep.Faulty) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if got, _ := h.load(a); got != 0x1111 {
		t.Fatalf("a = %#x", got)
	}
	if got, _ := h.load(b); got != 0x2222 {
		t.Fatalf("b = %#x", got)
	}
}

// TestDistanceOver8IsDUE: step 5 of the recovery procedure — shared faulty
// stripes in rows more than 8 apart exceed the correction range.
func TestDistanceOver8IsDUE(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(h.rowAddr(0, 0), 1)
	h.store(h.rowAddr(8, 0), 2) // distance 8: same class, out of range
	h.flip(h.rowAddr(0, 0), 1<<5)
	h.flip(h.rowAddr(8, 0), 1<<5)
	rep := h.recoverAt(h.rowAddr(0, 0))
	if rep.Outcome != OutcomeDUE {
		t.Fatalf("distance-8 same-stripe fault unexpectedly %v", rep.Outcome)
	}
}

// TestRecoveryOnCleanedGranuleIsNoop: if the triggering granule was
// evicted or cleaned between detection and recovery, the procedure is a
// no-op instead of corrupting state.
func TestRecoveryOnCleanedGranuleIsNoop(t *testing.T) {
	h := newHarness(t, DefaultL1Config())
	h.store(0x10, 7)
	set, way, _, g := h.locate(0x10)
	h.e.OnRemoveDirty(set, way, g) // granule no longer dirty
	rep := h.e.RecoverDirty(set, way, g)
	if rep.Outcome != OutcomeCorrected || rep.Method != "none" {
		t.Fatalf("report = %+v", rep)
	}
}

// TestL2BlockGranuleRecovery: the L2 CPPC with block-sized registers
// recovers a fault in a dirty block.
func TestL2BlockGranuleRecovery(t *testing.T) {
	h := newL2Harness(t, DefaultL2Config())
	want := []uint64{0x11, 0x22, 0x33, 0x44}
	h.storeBlock(0x100, want)
	h.storeBlock(0x200, []uint64{9, 9, 9, 9})
	set, way, _, _ := h.locate(0x100)
	h.c.FlipBits(set, way, 2, 1<<11) // word 2 of the block
	rep := h.e.RecoverDirty(set, way, 0)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	for j, w := range want {
		if got := h.c.Line(set, way).Data[j]; got != w {
			t.Fatalf("word %d = %#x, want %#x", j, got, w)
		}
	}
}

// TestL2VerticalMBERecovery: vertical fault across two adjacent L2 blocks
// (different rotation classes), corrected by byte shifting at block width.
func TestL2VerticalMBERecovery(t *testing.T) {
	h := newL2Harness(t, DefaultL2Config())
	a := []uint64{0xa0, 0xa1, 0xa2, 0xa3}
	b := []uint64{0xb0, 0xb1, 0xb2, 0xb3}
	h.storeBlock(0x000, a) // row 0
	h.storeBlock(0x020, b) // row 1
	s0, w0, _, _ := h.locate(0x000)
	s1, w1, _, _ := h.locate(0x020)
	h.c.FlipBits(s0, w0, 1, 1<<4) // word 1, bit 4 of both rows
	h.c.FlipBits(s1, w1, 1, 1<<4)
	rep := h.e.RecoverDirty(s0, w0, 0)
	if rep.Outcome != OutcomeCorrected {
		t.Fatalf("report = %+v", rep)
	}
	for j := range a {
		if got := h.c.Line(s0, w0).Data[j]; got != a[j] {
			t.Fatalf("block a word %d = %#x", j, got)
		}
		if got := h.c.Line(s1, w1).Data[j]; got != b[j] {
			t.Fatalf("block b word %d = %#x", j, got)
		}
	}
}

// TestRandomSpatialSquares exercises the locator over random square
// faults up to 8x8 anchored at random positions, with two register pairs
// (the Sec. 4.6 recommended configuration): everything inside an 8x8
// square must be corrected.
func TestRandomSpatialSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		h := newHarness(t, Config{ParityDegree: 8, RegisterPairs: 2, ByteShifting: true})
		// Make every word of rows 0-11 dirty with random data.
		want := map[uint64]uint64{}
		for r := 0; r < 12; r++ {
			for w := 0; w < 4; w++ {
				addr := h.rowAddr(r, w)
				v := rng.Uint64()
				want[addr] = v
				h.store(addr, v)
			}
		}
		hgt := 1 + rng.Intn(8)
		wid := 1 + rng.Intn(8)
		if hgt == 1 && wid == 1 {
			wid = 2
		}
		row0 := rng.Intn(12 - hgt + 1)
		col0 := rng.Intn(h.c.Geom.RowBits() - wid + 1)
		// Inject the square.
		touched := map[uint64]bool{}
		for dr := 0; dr < hgt; dr++ {
			for dc := 0; dc < wid; dc++ {
				bc := col0 + dc
				addr := h.rowAddr(row0+dr, bc/64)
				h.flip(addr, 1<<uint(bc%64))
				touched[addr] = true
			}
		}
		// Trigger recovery from the first touched word.
		var first uint64
		for addr := range touched {
			first = addr
			break
		}
		rep := h.recoverAt(first)
		if rep.Outcome != OutcomeCorrected {
			t.Fatalf("trial %d: %dx%d at (%d,%d): %+v", trial, hgt, wid, row0, col0, rep)
		}
		for addr, v := range want {
			if got, syn := h.load(addr); got != v || syn != 0 {
				t.Fatalf("trial %d: addr %#x = %#x (syn %#x), want %#x", trial, addr, got, syn, v)
			}
		}
	}
}
