package core

import "cppc/internal/bitops"

// Sec. 4.9 asks what happens when R1 or R2 themselves take a hit, and
// sketches the answer implemented here: protect the registers with parity
// bits, check them whenever the registers are read (i.e. at the start of
// every recovery), and on a mismatch rebuild the register state from the
// dirty data in the cache — valid provided no dirty word is
// simultaneously faulty.

// EnableRegisterParity turns on register self-checking. Parity is
// (re)computed over the current register contents; subsequent folds keep
// it current.
func (e *Engine) EnableRegisterParity() {
	e.regParity = true
	e.reencodeRegisterParity()
}

// reencodeRegisterParity recomputes the stored parity for all registers.
func (e *Engine) reencodeRegisterParity() {
	e.r1Par = make([][]uint64, len(e.r1))
	e.r2Par = make([][]uint64, len(e.r2))
	for p := range e.r1 {
		e.r1Par[p] = make([]uint64, e.granuleWords)
		e.r2Par[p] = make([]uint64, e.granuleWords)
		for j := range e.r1[p] {
			e.r1Par[p][j] = bitops.Parity(e.r1[p][j], e.Cfg.ParityDegree)
			e.r2Par[p][j] = bitops.Parity(e.r2[p][j], e.Cfg.ParityDegree)
		}
	}
}

// RegisterParityOK verifies every register against its stored parity.
func (e *Engine) RegisterParityOK() bool {
	if !e.regParity {
		return true
	}
	for p := range e.r1 {
		for j := range e.r1[p] {
			if e.r1Par[p][j] != bitops.Parity(e.r1[p][j], e.Cfg.ParityDegree) {
				return false
			}
			if e.r2Par[p][j] != bitops.Parity(e.r2[p][j], e.Cfg.ParityDegree) {
				return false
			}
		}
	}
	return true
}

// checkRegistersBeforeRecovery is called at the start of every recovery:
// a corrupted register would silently produce a wrong reconstruction, so
// it must be caught first. Scrubbing rebuilds the register state from the
// cache's dirty data (Sec. 4.9: "it can be recovered by XORing all the
// dirty words of the cache provided there is no fault in the dirty words
// of the cache") — and since the triggering granule *is* faulty, recovery
// after a register fault plus a data fault is declared a DUE.
func (e *Engine) checkRegistersBeforeRecovery() bool {
	if !e.regParity || e.RegisterParityOK() {
		return true
	}
	e.Events.RegisterScrubs++
	e.ScrubRegisters()
	e.reencodeRegisterParity()
	return false
}
