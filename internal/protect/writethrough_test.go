package protect

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
)

func TestWriteThroughNeverDirty(t *testing.T) {
	c := testCache()
	mem := cache.NewMemory(32, 100)
	ct := NewController(c, NewParity1D(c, 8), mem)
	ct.SetWriteThrough(true)
	rng := rand.New(rand.NewSource(7))
	var now uint64
	golden := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		now++
		addr := uint64(rng.Intn(256)) * 8
		v := rng.Uint64()
		golden[addr] = v
		ct.Store(addr, v, now)
		if c.DirtyGranuleCount() != 0 {
			t.Fatal("write-through cache accumulated dirty data")
		}
	}
	// Every store is already in memory — no flush needed.
	for addr, v := range golden {
		if got := mem.ReadWord(addr); got != v {
			t.Fatalf("memory %#x = %#x, want %#x", addr, got, v)
		}
	}
}

// TestWriteThroughParityFullyProtects is the paper's Sec. 1 observation:
// with write-through, plain parity recovers *every* fault, because every
// word has a backup below.
func TestWriteThroughParityFullyProtects(t *testing.T) {
	c := testCache()
	mem := cache.NewMemory(32, 100)
	ct := NewController(c, NewParity1D(c, 8), mem)
	ct.SetWriteThrough(true)
	rng := rand.New(rand.NewSource(9))
	var now uint64
	golden := map[uint64]uint64{}
	for i := 0; i < 1000; i++ {
		now++
		addr := uint64(rng.Intn(256)) * 8
		v := rng.Uint64()
		golden[addr] = v
		ct.Store(addr, v, now)
	}
	// Strike 20 random resident words; all must recover by refetch.
	struck := 0
	c.ForEachValid(func(set, way int, ln *cache.Line) {
		if struck < 20 {
			c.FlipBits(set, way, struck%4, 1<<uint(rng.Intn(64)))
			struck++
		}
	})
	for addr, v := range golden {
		now++
		res := ct.Load(addr, now)
		if res.Value != v {
			t.Fatalf("load %#x = %#x, want %#x", addr, res.Value, v)
		}
		if ct.Halted {
			t.Fatal("write-through parity cache halted — nothing should be fatal")
		}
	}
	if ct.Stats.UnrecoverableDUE != 0 {
		t.Fatalf("DUEs in a write-through parity cache: %+v", ct.Stats)
	}
}

// The contrast: the same strikes against a write-back parity cache kill
// the program (the paper's motivation).
func TestWriteBackParityDiesWhereWriteThroughSurvives(t *testing.T) {
	c := testCache()
	ct := NewController(c, NewParity1D(c, 8), cache.NewMemory(32, 100))
	ct.Store(0x40, 0xdead, 1)
	flipData(ct, 0x40, 1<<5)
	if res := ct.Load(0x40, 2); res.Fault != FaultDUE {
		t.Fatalf("write-back dirty fault = %v, want DUE", res.Fault)
	}
}
