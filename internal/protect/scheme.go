// Package protect implements the four cache-protection schemes the paper
// evaluates (Sec. 6) behind a common Scheme interface, plus the Controller
// that drives a protected cache: hit/miss handling, write-backs through
// the protection hooks, fault detection on loads, and the recovery paths.
//
// Controllers implement cache.Backing, so an L1 controller can sit on top
// of an L2 controller which sits on memory — each level with its own
// protection scheme, as in the paper's two-level evaluations.
package protect

// Kind enumerates the evaluated schemes.
type Kind int

const (
	// KindParity1D: interleaved parity, detection only; dirty faults are
	// fatal (the baseline of Figs. 10-12 and Table 3).
	KindParity1D Kind = iota
	// KindSECDED: word-level SECDED with 8-way physical bit interleaving
	// at L1, block-level SECDED at L2.
	KindSECDED
	// KindTwoDim: 8-way horizontal interleaved parity plus one vertical
	// parity row for the whole cache; read-before-write on every store
	// and every miss.
	KindTwoDim
	// KindCPPC: the paper's scheme.
	KindCPPC
)

func (k Kind) String() string {
	switch k {
	case KindParity1D:
		return "parity-1d"
	case KindSECDED:
		return "secded"
	case KindTwoDim:
		return "parity-2d"
	case KindCPPC:
		return "cppc"
	}
	return "unknown"
}

// EventResetter is implemented by schemes that accumulate engine event
// counters (CPPC's fold/recovery counts). ResetEvents zeroes them at a
// measurement boundary so that counters read after a run cover exactly
// the instructions run since the reset — the warmup boundary of the
// energy experiments, where cache stats are reset the same way.
type EventResetter interface {
	ResetEvents()
}

// FaultStatus classifies what a load encountered.
type FaultStatus int

const (
	// FaultNone: no fault detected.
	FaultNone FaultStatus = iota
	// FaultCorrectedClean: a fault in clean data, repaired by re-fetching
	// from the next level.
	FaultCorrectedClean
	// FaultCorrectedDirty: a fault in dirty data, repaired by the scheme's
	// correction machinery.
	FaultCorrectedDirty
	// FaultDUE: detected, unrecoverable — machine check.
	FaultDUE
)

func (f FaultStatus) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultCorrectedClean:
		return "corrected-clean"
	case FaultCorrectedDirty:
		return "corrected-dirty"
	case FaultDUE:
		return "DUE"
	}
	return "unknown"
}

// Scheme is one protection policy attached to a cache. The Controller
// calls the hooks; set/way/granule coordinates refer to the controller's
// cache.
// LineVerifier is an optional Scheme extension: schemes whose granule
// verify is a pure syndrome check can prove a whole clean line verifies
// in one pass, letting the controller's block-fetch path skip the
// per-granule dispatch loop entirely. VerifyLineClean must return true
// only when VerifyGranule would return (FaultNone, false) for every
// granule of the line.
type LineVerifier interface {
	VerifyLineClean(set, way int) bool
}

type Scheme interface {
	Kind() Kind
	Name() string

	// CheckBitsPerGranule is the stored check-bit overhead per dirty
	// granule, for area accounting.
	CheckBitsPerGranule() int

	// BitlineFactor scales bitline energy per access: 8 for physically
	// bit-interleaved SECDED at L1 (Sec. 6.2), 1 otherwise.
	BitlineFactor() float64

	// OnFill (re)encodes check state for a freshly installed clean block.
	OnFill(set, way int)

	// VerifyGranule checks granule g, attempting correction of dirty data
	// where the scheme supports it. needRefetch is true when the granule
	// is clean-but-faulty and must be re-fetched by the controller.
	VerifyGranule(set, way, g int, now uint64) (status FaultStatus, needRefetch bool)

	// StoreNeedsOldData reports whether a store to granule g must first
	// read the old contents (the read-before-write).
	StoreNeedsOldData(set, way, g int) bool

	// OnStore is called after the cache line holds the new data; old is
	// the previous granule contents (nil unless StoreNeedsOldData or the
	// controller captured it anyway) and wasDirty the previous state.
	// old, when non-nil, is a scratch view valid only for the duration of
	// the call: schemes must fold or copy it before returning.
	//
	// oldVerified reports that the granule passed the fault checker in
	// this same access, after which old was captured (the word-store
	// read-before-write path): the stored check bits are then known
	// consistent with old, which lets schemes maintain them incrementally
	// (check ^= Parity(old^new)) instead of re-walking the granule. It is
	// false on the block write-back path, where old is captured without a
	// verify.
	OnStore(set, way, g int, old []uint64, wasDirty, oldVerified bool, now uint64)

	// OnEvict is called before a block leaves the cache (write-back or
	// invalidation), while its data is still resident.
	OnEvict(set, way int, now uint64)

	// OnRefetchGranule is called after the controller refreshed a *clean*
	// granule in place from the next level (clean-fault recovery). old is
	// the granule's previous (possibly corrupted) contents; the line now
	// holds the refreshed data.
	OnRefetchGranule(set, way, g int, old []uint64)

	// OnDowngrade is called when a block's dirty data has been written
	// back but the block stays resident (a coherence M->S downgrade): the
	// scheme must stop treating the granules as dirty, without removing
	// the block from any whole-cache structures.
	OnDowngrade(set, way int, now uint64)

	// FillNeedsOldLine reports whether a miss fill must first read the
	// victim line in its entirety (two-dimensional parity, Sec. 2).
	FillNeedsOldLine() bool
}
