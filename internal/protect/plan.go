package protect

// Port-usage planning: the timing core needs to know, *before* a store
// executes, whether it must wait for a read-before-write and how many
// read-port slots the access books. The answers depend on scheme policy
// and cache state (hit/miss, granule dirtiness, victim validity), so the
// logic lives here with the controller rather than in each timing model.

// PlanStoreRBW inspects the cache state to predict a store's
// read-before-write behaviour: whether the store must wait for the read
// to complete (two-dimensional parity) and how many read-port word-slots
// it needs. A CPPC store to a dirty granule steals one slot but does not
// wait (Sec. 3.1); a 2D-parity miss additionally books the whole-line
// victim read (Sec. 2).
func (ct *Controller) PlanStoreRBW(addr uint64) (wait bool, words int) {
	set, way := ct.C.Probe(addr)
	hit := way >= 0
	switch ct.Scheme.Kind() {
	case KindCPPC:
		if hit {
			_, _, word := ct.C.Decompose(addr)
			g := ct.C.GranuleOf(word)
			if ct.C.Line(set, way).Dirty[g] {
				return false, 1
			}
		}
		return false, 0
	case KindTwoDim:
		words = 1
		if !hit {
			// Miss under 2D parity: the victim line must be read out.
			// The data array reads a whole row per access, so this is one
			// extra port cycle (its energy is a full line, accounted in
			// Stats.RBWOnMissLines).
			vict := ct.C.Victim(set)
			if ct.C.Line(set, vict).Valid {
				words++
			}
		}
		return true, words
	default:
		return false, 0
	}
}

// PlanLoadVictimRead returns the extra read-port cycles a load at addr
// needs before its access: two-dimensional parity reads the whole victim
// line out through the read port on a miss.
func (ct *Controller) PlanLoadVictimRead(addr uint64) int {
	if ct.Scheme.Kind() != KindTwoDim {
		return 0
	}
	set, way := ct.C.Probe(addr)
	if way >= 0 {
		return 0
	}
	if ct.C.Line(set, ct.C.Victim(set)).Valid {
		return 1 // one wide array read of the victim line
	}
	return 0
}
