package protect

import (
	"fmt"

	"cppc/internal/cache"
	"cppc/internal/core"
)

// CPPCScheme adapts the core CPPC engine to the Scheme interface. Its
// distinguishing costs and capabilities:
//
//   - read-before-write only on stores to already-dirty granules
//     (Sec. 3.1), versus every store for two-dimensional parity;
//   - dirty-data correction through the register pairs, with spatial MBE
//     coverage when byte shifting or extra pairs are configured;
//   - clean faults repaired by re-fetch, like plain parity.
type CPPCScheme struct {
	C      *cache.Cache
	Engine *core.Engine
}

// NewCPPC attaches a CPPC engine with the given configuration.
func NewCPPC(c *cache.Cache, cfg core.Config) (*CPPCScheme, error) {
	e, err := core.New(c, cfg)
	if err != nil {
		return nil, err
	}
	return &CPPCScheme{C: c, Engine: e}, nil
}

// MustCPPC is NewCPPC that panics on configuration errors.
func MustCPPC(c *cache.Cache, cfg core.Config) *CPPCScheme {
	s, err := NewCPPC(c, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *CPPCScheme) Kind() Kind { return KindCPPC }
func (s *CPPCScheme) Name() string {
	suffix := ""
	if s.Engine.Cfg.SilentStoreElision {
		suffix = "-silent"
	}
	return fmt.Sprintf("cppc-p%d-r%d%s", s.Engine.Cfg.ParityDegree, s.Engine.Cfg.RegisterPairs, suffix)
}
func (s *CPPCScheme) CheckBitsPerGranule() int { return s.Engine.Cfg.ParityDegree }
func (s *CPPCScheme) BitlineFactor() float64   { return 1 }
func (s *CPPCScheme) FillNeedsOldLine() bool   { return false }

func (s *CPPCScheme) OnFill(set, way int) { s.Engine.OnFill(set, way) }

func (s *CPPCScheme) VerifyGranule(set, way, g int, _ uint64) (FaultStatus, bool) {
	if s.Engine.CheckSyndrome(set, way, g) == 0 {
		return FaultNone, false
	}
	if !s.C.Line(set, way).Dirty[g] {
		return FaultCorrectedClean, true
	}
	rep := s.Engine.RecoverDirty(set, way, g)
	if rep.Outcome == core.OutcomeCorrected {
		return FaultCorrectedDirty, false
	}
	return FaultDUE, false
}

// VerifyLineClean implements LineVerifier: a zero OR across every
// granule's syndrome proves the per-granule verify loop would be a
// complete no-op for a clean line.
func (s *CPPCScheme) VerifyLineClean(set, way int) bool {
	return s.Engine.LineSyndromeOr(set, way) == 0
}

// StoreNeedsOldData: only stores to already-dirty granules pay the
// read-before-write (the old value must be folded into R2).
func (s *CPPCScheme) StoreNeedsOldData(set, way, g int) bool {
	return s.C.Line(set, way).Dirty[g]
}

func (s *CPPCScheme) OnStore(set, way, g int, old []uint64, wasDirty, oldVerified bool, now uint64) {
	s.Engine.OnStore(set, way, g, old, wasDirty, oldVerified, now)
}

// ResetEvents implements EventResetter: it zeroes the engine's event
// counters (folds, recoveries, ...) without touching any protection
// state, so a measurement window can start counting from zero.
func (s *CPPCScheme) ResetEvents() { s.Engine.Events = core.Events{} }

// OnEvict verifies departing dirty granules (recovering latent faults so
// they are not written back corrupted, and so R2 absorbs correct data),
// then folds them into R2.
func (s *CPPCScheme) OnEvict(set, way int, _ uint64) {
	ln := s.C.Line(set, way)
	for g, d := range ln.Dirty {
		if d && s.Engine.CheckSyndrome(set, way, g) != 0 {
			s.Engine.RecoverDirty(set, way, g)
		}
	}
	s.Engine.OnEvictBlock(set, way)
}

// OnRefetchGranule re-encodes parity; the registers are untouched because
// clean data is never folded into them.
func (s *CPPCScheme) OnRefetchGranule(set, way, g int, _ []uint64) {
	s.Engine.EncodeCheck(set, way, g)
}

// OnDowngrade folds the departing dirty data out of the registers (it is
// clean now — the next level holds a copy) while the block stays
// resident. Latent faults are recovered first so R2 absorbs true values,
// exactly as on eviction.
func (s *CPPCScheme) OnDowngrade(set, way int, now uint64) {
	s.OnEvict(set, way, now)
}
