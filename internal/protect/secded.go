package protect

import (
	"cppc/internal/cache"
	"cppc/internal/parity"
)

// SECDEDScheme protects each dirty granule with an extended Hamming code:
// (72,64) per word at L1 (combined with 8-way physical bit interleaving,
// which shows up as an 8x bitline energy factor, Sec. 6.2), a single
// block-level code at L2.
type SECDEDScheme struct {
	C    *cache.Cache
	code *parity.Hamming
	// Interleaved models physical bit interleaving (L1 configuration):
	// it affects energy only, correction capability is per-codeword.
	Interleaved bool
}

// NewSECDED attaches a SECDED code sized to the cache's dirty granule.
func NewSECDED(c *cache.Cache, interleaved bool) *SECDEDScheme {
	return &SECDEDScheme{
		C:           c,
		code:        parity.MustHamming(c.Cfg.DirtyGranuleWords * 64),
		Interleaved: interleaved,
	}
}

func (s *SECDEDScheme) Kind() Kind               { return KindSECDED }
func (s *SECDEDScheme) Name() string             { return s.code.Name() }
func (s *SECDEDScheme) CheckBitsPerGranule() int { return s.code.CheckBits() }
func (s *SECDEDScheme) BitlineFactor() float64 {
	if s.Interleaved {
		return 8
	}
	return 1
}
func (s *SECDEDScheme) FillNeedsOldLine() bool { return false }

func (s *SECDEDScheme) granule(set, way, g int) []uint64 {
	gw := s.C.Cfg.DirtyGranuleWords
	return s.C.Line(set, way).Data[g*gw : (g+1)*gw]
}

func (s *SECDEDScheme) encode(set, way, g int) {
	gw := s.C.Cfg.DirtyGranuleWords
	s.C.Line(set, way).Check[g*gw] = s.code.Encode(s.granule(set, way, g))
}

func (s *SECDEDScheme) OnFill(set, way int) {
	for g := 0; g < s.C.Granules(); g++ {
		s.encode(set, way, g)
	}
}

func (s *SECDEDScheme) VerifyGranule(set, way, g int, _ uint64) (FaultStatus, bool) {
	gw := s.C.Cfg.DirtyGranuleWords
	ln := s.C.Line(set, way)
	data := s.granule(set, way, g)
	res := s.code.Decode(data, ln.Check[g*gw])
	switch res.Outcome {
	case parity.SECDEDClean:
		return FaultNone, false
	case parity.SECDEDCorrectedData:
		data[res.DataBit/64] ^= 1 << uint(res.DataBit%64)
		if ln.Dirty[g] {
			return FaultCorrectedDirty, false
		}
		return FaultCorrectedClean, false
	case parity.SECDEDCorrectedCheck:
		s.encode(set, way, g)
		if ln.Dirty[g] {
			return FaultCorrectedDirty, false
		}
		return FaultCorrectedClean, false
	default: // double error
		if ln.Dirty[g] {
			return FaultDUE, false
		}
		return FaultCorrectedClean, true
	}
}

func (s *SECDEDScheme) StoreNeedsOldData(int, int, int) bool { return false }

func (s *SECDEDScheme) OnStore(set, way, g int, _ []uint64, _, _ bool, now uint64) {
	gw := s.C.Cfg.DirtyGranuleWords
	s.C.MarkDirty(set, way, g*gw, now)
	s.encode(set, way, g)
}

func (s *SECDEDScheme) OnEvict(set, way int, _ uint64) {
	ln := s.C.Line(set, way)
	for g := range ln.Dirty {
		s.C.MarkClean(set, way, g)
	}
}

// OnRefetchGranule re-encodes the code for the refreshed granule.
func (s *SECDEDScheme) OnRefetchGranule(set, way, g int, _ []uint64) {
	s.encode(set, way, g)
}

// OnDowngrade marks the line clean.
func (s *SECDEDScheme) OnDowngrade(set, way int, _ uint64) {
	for g := range s.C.Line(set, way).Dirty {
		s.C.MarkClean(set, way, g)
	}
}
