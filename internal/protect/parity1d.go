package protect

import (
	"fmt"

	"cppc/internal/bitops"
	"cppc/internal/cache"
)

// wordParity computes degree-way interleaved parity of one word,
// dispatching to the unrolled kernel for the paper's evaluated degree.
func wordParity(w uint64, degree int) uint64 {
	if degree == 8 {
		return bitops.Parity8(w)
	}
	return bitops.Parity(w, degree)
}

// granuleParity computes degree-way interleaved parity over a granule.
// Interleaved parity is linear and stripe-aligned across words, so the
// words fold into one XOR first (multi-accumulator FoldLine, breaking
// the serial XOR chain) and a single SWAR kernel finishes.
func granuleParity(data []uint64, degree int) uint64 {
	// Single-word granules skip the line fold so Parity8 can inline.
	if len(data) == 1 && degree == 8 {
		return bitops.Parity8(data[0])
	}
	return bitops.FoldLineParity(data, degree)
}

// Parity1D is the baseline: interleaved parity per granule, detection
// only. Faults in clean data are repaired by re-fetching; faults in dirty
// data halt the program (Sec. 1: "an exception is taken whenever a fault
// is detected in a dirty block").
type Parity1D struct {
	C      *cache.Cache
	Degree int
}

// NewParity1D attaches degree-way interleaved parity to c.
func NewParity1D(c *cache.Cache, degree int) *Parity1D {
	return &Parity1D{C: c, Degree: degree}
}

func (p *Parity1D) Kind() Kind { return KindParity1D }
func (p *Parity1D) Name() string {
	return fmt.Sprintf("parity-1d-%dway", p.Degree)
}
func (p *Parity1D) CheckBitsPerGranule() int { return p.Degree }
func (p *Parity1D) BitlineFactor() float64   { return 1 }
func (p *Parity1D) FillNeedsOldLine() bool   { return false }

func (p *Parity1D) granule(set, way, g int) []uint64 {
	gw := p.C.Cfg.DirtyGranuleWords
	return p.C.Line(set, way).Data[g*gw : (g+1)*gw]
}

func (p *Parity1D) encode(set, way, g int) {
	gw := p.C.Cfg.DirtyGranuleWords
	p.C.Line(set, way).Check[g*gw] = granuleParity(p.granule(set, way, g), p.Degree)
}

func (p *Parity1D) OnFill(set, way int) {
	for g := 0; g < p.C.Granules(); g++ {
		p.encode(set, way, g)
	}
}

func (p *Parity1D) VerifyGranule(set, way, g int, _ uint64) (FaultStatus, bool) {
	gw := p.C.Cfg.DirtyGranuleWords
	ln := p.C.Line(set, way)
	if ln.Check[g*gw] == granuleParity(p.granule(set, way, g), p.Degree) {
		return FaultNone, false
	}
	if ln.Dirty[g] {
		return FaultDUE, false
	}
	return FaultCorrectedClean, true
}

// VerifyLineClean implements LineVerifier: every granule's stored parity
// matches a recompute.
func (p *Parity1D) VerifyLineClean(set, way int) bool {
	gw := p.C.Cfg.DirtyGranuleWords
	ln := p.C.Line(set, way)
	for g := 0; g < p.C.Granules(); g++ {
		if ln.Check[g*gw] != granuleParity(ln.Data[g*gw:(g+1)*gw], p.Degree) {
			return false
		}
	}
	return true
}

func (p *Parity1D) StoreNeedsOldData(int, int, int) bool { return false }

func (p *Parity1D) OnStore(set, way, g int, _ []uint64, _, _ bool, now uint64) {
	gw := p.C.Cfg.DirtyGranuleWords
	p.C.MarkDirty(set, way, g*gw, now)
	p.encode(set, way, g)
}

func (p *Parity1D) OnEvict(set, way int, _ uint64) {
	// Detection-only: nothing to fold; dirty bits are cleared by the
	// controller's install/invalidate.
	ln := p.C.Line(set, way)
	for g := range ln.Dirty {
		p.C.MarkClean(set, way, g)
	}
}

// OnRefetchGranule re-encodes parity for the refreshed granule.
func (p *Parity1D) OnRefetchGranule(set, way, g int, _ []uint64) {
	p.encode(set, way, g)
}

// OnDowngrade marks the line clean; detection-only parity has no dirty
// bookkeeping beyond the bits themselves.
func (p *Parity1D) OnDowngrade(set, way int, _ uint64) {
	for g := range p.C.Line(set, way).Dirty {
		p.C.MarkClean(set, way, g)
	}
}
