package protect

import (
	"fmt"

	"cppc/internal/bitops"
	"cppc/internal/cache"
	"cppc/internal/parity"
)

// TwoDim is the two-dimensional parity cache of Kim et al. [12] in the
// configuration the paper evaluates: 8-way horizontal interleaved parity
// per granule for detection, plus a single vertical parity row (the XOR of
// every valid word in the cache) for correction.
//
// Keeping the vertical row current costs a read-before-write on every
// store and a whole-line read on every miss fill — the energy overheads of
// Figs. 11 and 12.
type TwoDim struct {
	C      *cache.Cache
	Degree int
	V      parity.Vertical
}

// NewTwoDim attaches two-dimensional parity to c.
func NewTwoDim(c *cache.Cache, degree int) *TwoDim {
	return &TwoDim{C: c, Degree: degree}
}

func (t *TwoDim) Kind() Kind               { return KindTwoDim }
func (t *TwoDim) Name() string             { return fmt.Sprintf("parity-2d-%dway", t.Degree) }
func (t *TwoDim) CheckBitsPerGranule() int { return t.Degree }
func (t *TwoDim) BitlineFactor() float64   { return 1 }
func (t *TwoDim) FillNeedsOldLine() bool   { return true }

func (t *TwoDim) granule(set, way, g int) []uint64 {
	gw := t.C.Cfg.DirtyGranuleWords
	return t.C.Line(set, way).Data[g*gw : (g+1)*gw]
}

func (t *TwoDim) encode(set, way, g int) {
	gw := t.C.Cfg.DirtyGranuleWords
	t.C.Line(set, way).Check[g*gw] = granuleParity(t.granule(set, way, g), t.Degree)
}

// OnFill inserts the new line's words into the vertical row and encodes
// horizontal parity. The departing line's words were removed by OnEvict.
func (t *TwoDim) OnFill(set, way int) {
	ln := t.C.Line(set, way)
	for _, w := range ln.Data {
		t.V.Insert(w)
	}
	for g := 0; g < t.C.Granules(); g++ {
		t.encode(set, way, g)
	}
}

// OnEvict removes every word of the departing line from the vertical row.
func (t *TwoDim) OnEvict(set, way int, _ uint64) {
	ln := t.C.Line(set, way)
	for _, w := range ln.Data {
		t.V.Remove(w)
	}
	for g := range ln.Dirty {
		t.C.MarkClean(set, way, g)
	}
}

// StoreNeedsOldData: the defining cost — every store reads the old data
// first so the vertical row can be updated.
func (t *TwoDim) StoreNeedsOldData(int, int, int) bool { return true }

func (t *TwoDim) OnStore(set, way, g int, old []uint64, _, oldVerified bool, now uint64) {
	gw := t.C.Cfg.DirtyGranuleWords
	data := t.granule(set, way, g)
	for j := range data {
		t.V.Write(old[j], data[j])
	}
	t.C.MarkDirty(set, way, g*gw, now)
	if oldVerified {
		// The read-before-write just verified the granule, so the stored
		// check bits equal granuleParity(old) and can be maintained
		// incrementally; see Scheme.OnStore.
		delta := bitops.FoldLineDelta(old, data)
		t.C.Line(set, way).Check[g*gw] ^= wordParity(delta, t.Degree)
		return
	}
	t.encode(set, way, g)
}

// VerifyGranule: horizontal parity detects; a clean faulty granule is
// re-fetched; a dirty one is reconstructed from the vertical row, which
// works for exactly one faulty word in the whole cache.
func (t *TwoDim) VerifyGranule(set, way, g int, _ uint64) (FaultStatus, bool) {
	gw := t.C.Cfg.DirtyGranuleWords
	ln := t.C.Line(set, way)
	if ln.Check[g*gw] == granuleParity(t.granule(set, way, g), t.Degree) {
		return FaultNone, false
	}
	if !ln.Dirty[g] {
		return FaultCorrectedClean, true
	}
	if t.reconstruct(set, way, g) {
		return FaultCorrectedDirty, false
	}
	return FaultDUE, false
}

// reconstruct repairs one faulty word of granule g from the vertical row.
// It XORs every other valid word in the cache (checking their horizontal
// parity on the way: a second faulty granule anywhere makes the single
// vertical row insufficient), then tries each word of the granule as the
// faulty one and accepts the unique candidate that restores parity.
func (t *TwoDim) reconstruct(set, way, g int) bool {
	gw := t.C.Cfg.DirtyGranuleWords
	target := t.C.Line(set, way)
	secondFault := false
	var othersXor uint64
	t.C.ForEachValid(func(s, w int, ln *cache.Line) {
		for gg := 0; gg < t.C.Granules(); gg++ {
			data := ln.Data[gg*gw : (gg+1)*gw]
			if s == set && w == way && gg == g {
				continue // target granule handled per candidate below
			}
			if ln.Check[gg*gw] != granuleParity(data, t.Degree) {
				secondFault = true
			}
			othersXor ^= bitops.FoldLine(data)
		}
	})
	if secondFault {
		return false
	}

	data := t.granule(set, way, g)
	stored := target.Check[g*gw]
	corrected := -1
	var value uint64
	granXor := bitops.FoldLine(data)
	for cand := 0; cand < gw; cand++ {
		// XOR of all words except the candidate = othersXor ^ (granule
		// words other than cand).
		x := othersXor ^ granXor ^ data[cand]
		rec := t.V.Reconstruct(x)
		// Accept if replacing the candidate restores horizontal parity.
		saved := data[cand]
		data[cand] = rec
		ok := granuleParity(data, t.Degree) == stored
		data[cand] = saved
		if ok && rec != saved {
			if corrected >= 0 {
				return false // ambiguous
			}
			corrected, value = cand, rec
		}
	}
	if corrected < 0 {
		return false
	}
	data[corrected] = value
	return true
}

// OnRefetchGranule swaps the granule's old (corrupted) words for the
// refreshed ones in the vertical parity row and re-encodes the
// horizontal parity.
func (t *TwoDim) OnRefetchGranule(set, way, g int, old []uint64) {
	data := t.granule(set, way, g)
	for j := range data {
		t.V.Write(old[j], data[j])
	}
	t.encode(set, way, g)
}

// OnDowngrade marks the line clean; the vertical row keeps covering the
// still-resident words.
func (t *TwoDim) OnDowngrade(set, way int, _ uint64) {
	for g := range t.C.Line(set, way).Dirty {
		t.C.MarkClean(set, way, g)
	}
}
