package protect

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
)

// runWithEW runs a store-heavy workload and returns average dirty
// fraction and write-back count.
func runWithEW(t *testing.T, interval uint64, batch int) (dirty float64, wbs uint64, ct *Controller) {
	t.Helper()
	c := testCache()
	mem := cache.NewMemory(32, 100)
	ct = NewController(c, MustCPPC(c, core.DefaultL1Config()), mem)
	ct.SetSampleInterval(16)
	ct.SetEarlyWriteback(interval, batch)
	rng := rand.New(rand.NewSource(3))
	var now uint64
	golden := map[uint64]uint64{}
	for i := 0; i < 8000; i++ {
		now++
		addr := uint64(rng.Intn(256)) * 8
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			golden[addr] = v
			ct.Store(addr, v, now)
		} else if want, ok := golden[addr]; ok {
			if res := ct.Load(addr, now); res.Value != want {
				t.Fatalf("load %#x = %#x want %#x", addr, res.Value, want)
			}
		}
	}
	// Values survive in memory after a flush.
	ct.Flush(now + 1)
	for addr, v := range golden {
		if got := mem.ReadWord(addr); got != v {
			t.Fatalf("memory %#x = %#x want %#x", addr, got, v)
		}
	}
	return c.DirtyFraction(), ct.Stats.WriteBack, ct
}

// TestEarlyWritebackShrinksDirtyPopulation: the [2,15] trade-off — less
// dirty data (better parity-MTTF) for more write-back traffic.
func TestEarlyWritebackShrinksDirtyPopulation(t *testing.T) {
	dirtyOff, wbOff, ctOff := runWithEW(t, 0, 0)
	dirtyOn, wbOn, ctOn := runWithEW(t, 64, 4)
	if dirtyOn >= dirtyOff {
		t.Errorf("early WB did not shrink dirty data: %.3f vs %.3f", dirtyOn, dirtyOff)
	}
	if wbOn <= wbOff {
		t.Errorf("early WB did not add write-backs: %d vs %d", wbOn, wbOff)
	}
	if ctOn.EarlyWriteBacks == 0 {
		t.Error("EarlyWriteBacks not counted")
	}
	if ctOff.EarlyWriteBacks != 0 {
		t.Error("disabled policy wrote back early")
	}
	// CPPC registers stay consistent under the policy.
	if err := ctOn.Scheme.(*CPPCScheme).Engine.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestEarlyWritebackRecoversLatentFaults: downgrading a dirty block with
// a latent fault verifies and repairs it before the data leaves.
func TestEarlyWritebackRecoversLatentFault(t *testing.T) {
	c := testCache()
	mem := cache.NewMemory(32, 100)
	ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), mem)
	ct.SetEarlyWriteback(4, 16)
	ct.Store(0x40, 0xfacade, 1)
	flipData(ct, 0x40, 1<<13)
	// A few more accesses trigger the policy, which downgrades 0x40.
	for i := 0; i < 8; i++ {
		ct.Load(0x100+uint64(i*8), uint64(2+i))
	}
	if got := mem.ReadWord(0x40); got != 0xfacade {
		t.Fatalf("early write-back shipped corrupted data: %#x", got)
	}
}
