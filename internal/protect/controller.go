package protect

import (
	"cppc/internal/cache"
)

// Controller drives one protected cache level: address decomposition,
// hit/miss handling, LRU, write-backs, fills, the protection hooks, and
// event statistics. It implements cache.Backing so levels stack.
type Controller struct {
	C      *cache.Cache
	Scheme Scheme
	// lv is Scheme's LineVerifier view, or nil: resolved once at
	// construction so the fetch path pays no per-call type assertion.
	lv    LineVerifier
	Next  cache.Backing
	Stats cache.Stats

	// sampleEvery controls dirty-occupancy sampling (Table 2); a sample
	// is taken every N accesses. 0 disables sampling. sampleLeft counts
	// down to the next sample (a decrement instead of a per-access modulo,
	// which is a hardware division).
	sampleEvery uint64
	sampleLeft  uint64
	accessCount uint64

	// Early write-back (the related-work technique of [2, 15], Sec. 2):
	// every ewInterval accesses, up to ewBatch dirty blocks are written
	// back and downgraded to clean, shrinking the vulnerable dirty
	// population at the cost of extra write-back traffic. 0 disables.
	ewInterval uint64
	ewBatch    int
	ewCursor   int // round-robin set scan position
	// EarlyWriteBacks counts blocks cleaned by the policy.
	EarlyWriteBacks uint64

	// Scrubbing: every scrubInterval accesses, scrubBatch granules are
	// verified (and repaired) in the background, round-robin. Scrubbing
	// shortens the window during which a latent fault can pair with a
	// second one — the Tavg term of the Sec. 6.3 reliability model.
	scrubInterval uint64
	scrubBatch    int
	scrubSet      int
	scrubWay      int
	scrubGranule  int
	// ScrubsPerformed counts granule verifications done by the scrubber.
	ScrubsPerformed uint64

	// writeThrough makes every store propagate to the next level
	// immediately, so lines never hold dirty data: the Sec. 1 baseline in
	// which plain parity is fully sufficient ("parity bits are very
	// effective in L1 write-through caches because they detect faults
	// recoverable from the L2 cache").
	writeThrough bool

	// Halted is set when a DUE occurred (the paper halts the program and
	// raises a machine check); the simulator surfaces it to the caller.
	Halted bool

	// Scratch buffers keeping the access hot path allocation-free. Each
	// has exactly one live use at a time: fillBuf holds fill data inside
	// ensure, refetchBuf/refetchOld live inside refetch, and oldBuf holds
	// the displaced old granule between its capture and the OnStore hook
	// (which must not retain it — see Scheme.OnStore). Calls into the
	// next level recurse into *that* controller's buffers, never back
	// into these.
	fillBuf    []uint64
	refetchBuf []uint64
	refetchOld []uint64
	oldBuf     []uint64
}

// NewController wires a cache, a scheme and a backing level together.
func NewController(c *cache.Cache, s Scheme, next cache.Backing) *Controller {
	ct := &Controller{
		C: c, Scheme: s, Next: next, sampleEvery: 256, sampleLeft: 256,
	}
	ct.lv, _ = s.(LineVerifier)
	// One backing array for the four scratch buffers: they are distinct
	// regions of it, so the aliasing rules in the field comments still hold.
	bw, gw := c.BlockWords(), c.GranuleWords()
	scratch := make([]uint64, 2*bw+2*gw)
	ct.fillBuf, scratch = scratch[:bw:bw], scratch[bw:]
	ct.refetchBuf, scratch = scratch[:bw:bw], scratch[bw:]
	ct.refetchOld, scratch = scratch[:gw:gw], scratch[gw:]
	ct.oldBuf = scratch
	return ct
}

// SetSampleInterval adjusts dirty-occupancy sampling (0 disables).
func (ct *Controller) SetSampleInterval(n uint64) {
	ct.sampleEvery = n
	ct.sampleLeft = n
}

// SetWriteThrough switches the controller to write-through operation:
// stores update the cache and the next level together, and nothing is
// ever dirty.
func (ct *Controller) SetWriteThrough(on bool) { ct.writeThrough = on }

// AccessResult reports what one load or store did, for the timing and
// energy models.
type AccessResult struct {
	Hit          bool
	Value        uint64 // loaded value (loads only)
	Latency      int    // cycles: hit latency plus any miss penalty
	ReadPortOps  int    // data-array read-port operations used
	WritePortOps int    // data-array write-port operations used
	Fault        FaultStatus
	WroteBack    bool // a dirty victim was pushed to the next level
}

// SetEarlyWriteback enables the early write-back policy: every interval
// accesses, up to batch dirty blocks are cleaned. interval 0 disables.
func (ct *Controller) SetEarlyWriteback(interval uint64, batch int) {
	ct.ewInterval = interval
	ct.ewBatch = batch
}

func (ct *Controller) tick() {
	ct.accessCount++
	if ct.sampleEvery > 0 {
		if ct.sampleLeft--; ct.sampleLeft == 0 {
			ct.sampleLeft = ct.sampleEvery
			ct.C.SampleDirtyOccupancy()
		}
	}
	if ct.ewInterval > 0 && ct.accessCount%ct.ewInterval == 0 {
		ct.earlyWriteback(ct.accessCount)
	}
	if ct.scrubInterval > 0 && ct.accessCount%ct.scrubInterval == 0 {
		ct.scrub(ct.accessCount)
	}
}

// SetScrubbing enables the background scrubber: every interval accesses,
// batch granules are verified round-robin. interval 0 disables.
func (ct *Controller) SetScrubbing(interval uint64, batch int) {
	ct.scrubInterval = interval
	ct.scrubBatch = batch
}

// scrub verifies the next batch of granules in array order.
func (ct *Controller) scrub(now uint64) {
	var res AccessResult
	for i := 0; i < ct.scrubBatch; i++ {
		if ct.C.Line(ct.scrubSet, ct.scrubWay).Valid {
			ct.ScrubsPerformed++
			ct.verifyOnRead(ct.scrubSet, ct.scrubWay, ct.scrubGranule, now, &res)
		}
		ct.scrubGranule++
		if ct.scrubGranule == ct.C.Granules() {
			ct.scrubGranule = 0
			ct.scrubWay++
			if ct.scrubWay == ct.C.Ways() {
				ct.scrubWay = 0
				ct.scrubSet = (ct.scrubSet + 1) % ct.C.Sets()
			}
		}
	}
}

// earlyWriteback scans sets round-robin and cleans up to ewBatch dirty
// blocks.
func (ct *Controller) earlyWriteback(now uint64) {
	cleaned := 0
	sets := ct.C.Sets()
	for scanned := 0; scanned < sets && cleaned < ct.ewBatch; scanned++ {
		set := ct.ewCursor
		ct.ewCursor = (ct.ewCursor + 1) % sets
		for way := 0; way < ct.C.Cfg.Ways && cleaned < ct.ewBatch; way++ {
			ln := ct.C.Line(set, way)
			if !ln.Valid || !ln.DirtyAny() {
				continue
			}
			var res AccessResult
			ct.verifyDirtyGranules(set, way, now, &res)
			ct.Scheme.OnDowngrade(set, way, now)
			ct.Next.WriteBackBlock(ct.C.BlockAddr(set, way), ln.Data, now)
			ct.Stats.WriteBack++
			ct.EarlyWriteBacks++
			cleaned++
		}
	}
}

// ensure brings the block holding addr into the cache, handling
// eviction/write-back and fill hooks; it reports whether it hit and the
// accumulated miss penalty and port usage.
func (ct *Controller) ensure(addr uint64, now uint64, res *AccessResult) (set, way int) {
	tag, set, _ := ct.C.Decompose(addr)
	return set, ct.ensureWay(addr, tag, set, now, res)
}

// ensureWay is ensure for a pre-decomposed address: the entry points
// decompose once and share the (tag, set, word) split with the rest of
// the access path.
func (ct *Controller) ensureWay(addr, tag uint64, set int, now uint64, res *AccessResult) (way int) {
	way = ct.C.ProbeTS(tag, set)
	if way >= 0 {
		ct.C.Touch(set, way)
		res.Hit = true
		return way
	}
	ct.Stats.Misses++
	way = ct.C.Victim(set)
	ln := ct.C.Line(set, way)

	if ct.Scheme.FillNeedsOldLine() && ln.Valid {
		// Two-dimensional parity must read the whole victim line to take
		// it out of the vertical parity row (Sec. 2): one wide array read
		// (the energy of a full line, counted in RBWOnMissLines).
		ct.Stats.ReadBeforeWrite++
		ct.Stats.RBWOnMissLines++
		res.ReadPortOps++
	}
	if ln.Valid && ln.DirtyAny() {
		ct.verifyDirtyGranules(set, way, now, res)
		ct.Scheme.OnEvict(set, way, now)
		ct.Next.WriteBackBlock(ct.C.BlockAddr(set, way), ln.Data, now)
		ct.Stats.WriteBack++
		res.WroteBack = true
	} else if ln.Valid {
		ct.Scheme.OnEvict(set, way, now)
	}

	res.Latency += ct.Next.FetchBlock(addr, ct.fillBuf, now)
	ct.C.Install(set, way, addr, ct.fillBuf)
	ct.Scheme.OnFill(set, way)
	ct.Stats.Fills++
	res.WritePortOps++ // one wide array write fills the line
	return way
}

// refetch refreshes the *clean* granules of a resident block from the
// next level (the clean-fault recovery path: "converted to a miss",
// Sec. 3.2). Dirty granules hold the only copy of their data and are left
// untouched.
func (ct *Controller) refetch(set, way int, now uint64) int {
	addr := ct.C.BlockAddr(set, way)
	lat := ct.Next.FetchBlock(addr, ct.refetchBuf, now)
	ln := ct.C.Line(set, way)
	gw := ct.C.GranuleWords()
	for g := 0; g < ct.C.Granules(); g++ {
		if ln.Dirty[g] {
			continue
		}
		old := ct.refetchOld[:gw]
		copy(old, ln.Data[g*gw:(g+1)*gw])
		copy(ln.Data[g*gw:(g+1)*gw], ct.refetchBuf[g*gw:(g+1)*gw])
		ct.Scheme.OnRefetchGranule(set, way, g, old)
	}
	ct.Stats.CleanRefetches++
	return lat
}

// verifyDirtyGranules passes every granule of a block about to be written
// back through the fault checker. The eviction read is a read like any
// other: silently writing back a corrupted dirty granule converts a
// detectable fault into an SDC at the next level — and so does a
// corrupted *clean* granule riding along in the block-granular write-back
// (a clean faulty granule is refreshed from the next level first).
func (ct *Controller) verifyDirtyGranules(set, way int, now uint64, res *AccessResult) {
	for g := 0; g < ct.C.Granules(); g++ {
		ct.verifyOnRead(set, way, g, now, res)
	}
}

// verifyOnRead runs the detection/recovery path for a granule whose data
// is being read — by a demand load, a read-before-write, or a sub-word
// read-modify-write. Any read must pass the checker: folding a latently
// corrupted old value into the registers would poison them silently.
func (ct *Controller) verifyOnRead(set, way, g int, now uint64, res *AccessResult) {
	// Persistent faults live in the array, not the stored value: consult
	// the fault plane before the checker so a stuck-at or flickering cell
	// re-corrupts whatever an earlier correction, refetch or scrub wrote.
	ct.C.ReassertGranule(set, way, g)
	status, needRefetch := ct.Scheme.VerifyGranule(set, way, g, now)
	res.Fault = status
	switch {
	case status == FaultDUE:
		ct.Stats.FaultsDetected++
		ct.Stats.UnrecoverableDUE++
		ct.Halted = true
	case needRefetch:
		ct.Stats.FaultsDetected++
		res.Latency += ct.refetch(set, way, now)
		res.Fault = FaultCorrectedClean
		ct.Stats.FaultsCorrected++
	case status != FaultNone:
		ct.Stats.FaultsDetected++
		ct.Stats.FaultsCorrected++
	}
}

// Load performs a word load at addr.
func (ct *Controller) Load(addr, now uint64) AccessResult {
	var res AccessResult
	ct.LoadInto(addr, now, &res)
	return res
}

// LoadInto is Load writing into a caller-provided result, saving the
// by-value struct copy in the core's per-instruction loop. *res must be
// zeroed.
func (ct *Controller) LoadInto(addr, now uint64, res *AccessResult) {
	ct.tick()
	ct.Stats.Loads++
	res.Latency = ct.C.Cfg.HitLatencyCycles
	res.ReadPortOps++
	tag, set, word := ct.C.Decompose(addr)
	way := ct.ensureWay(addr, tag, set, now, res)
	if res.Hit {
		ct.Stats.LoadHits++
	}
	g := ct.C.GranuleOf(word)
	ln := ct.C.Line(set, way)
	ct.C.TouchDirtyG(ln, g, now)

	ct.verifyOnRead(set, way, g, now, res)
	res.Value = ln.Data[word]
}

// LoadResidentInto is LoadInto for a block the caller has just probed
// resident at (set, way) — the multiprocessor's pure-local-hit path
// skips the second probe. The body mirrors LoadInto's hit branch
// exactly and must stay in lockstep with it.
func (ct *Controller) LoadResidentInto(set, way int, addr, now uint64, res *AccessResult) {
	ct.tick()
	ct.Stats.Loads++
	res.Latency = ct.C.Cfg.HitLatencyCycles
	res.ReadPortOps++
	ct.C.Touch(set, way)
	res.Hit = true
	ct.Stats.LoadHits++
	_, _, word := ct.C.Decompose(addr)
	g := ct.C.GranuleOf(word)
	ln := ct.C.Line(set, way)
	ct.C.TouchDirtyG(ln, g, now)

	ct.verifyOnRead(set, way, g, now, res)
	res.Value = ln.Data[word]
}

// StoreResidentInto is StoreInto for a block the caller has just probed
// resident at (set, way); it mirrors StoreInto's hit branch exactly and
// must stay in lockstep with it.
func (ct *Controller) StoreResidentInto(set, way int, addr, val, now uint64, res *AccessResult) {
	ct.tick()
	ct.Stats.Stores++
	res.Latency = ct.C.Cfg.HitLatencyCycles
	res.WritePortOps++
	ct.C.Touch(set, way)
	res.Hit = true
	ct.Stats.StoreHits++
	_, _, word := ct.C.Decompose(addr)
	g := ct.C.GranuleOf(word)
	ln := ct.C.Line(set, way)
	ct.C.TouchDirtyG(ln, g, now)

	wasDirty := ln.Dirty[g]
	var old []uint64
	if ct.Scheme.StoreNeedsOldData(set, way, g) {
		// See StoreInto: the read-before-write passes the fault checker
		// before the old value is folded into the registers.
		ct.verifyOnRead(set, way, g, now, res)
		old = ct.oldBuf[:len(ct.granule(ln, g))]
		copy(old, ct.granule(ln, g))
		ct.Stats.ReadBeforeWrite++
		res.ReadPortOps++
	}
	oldVerified := old != nil && res.Fault != FaultDUE
	ln.Data[word] = val
	ct.Scheme.OnStore(set, way, g, old, wasDirty, oldVerified, now)
	if ct.writeThrough {
		ct.Next.WriteBackBlock(ct.C.BlockAddr(set, way), ln.Data, now)
		ct.Scheme.OnDowngrade(set, way, now)
	}
}

// Store performs a word store at addr (write-allocate).
func (ct *Controller) Store(addr, val, now uint64) AccessResult {
	var res AccessResult
	ct.StoreInto(addr, val, now, &res)
	return res
}

// StoreInto is Store writing into a caller-provided result; *res must be
// zeroed.
func (ct *Controller) StoreInto(addr, val, now uint64, res *AccessResult) {
	ct.tick()
	ct.Stats.Stores++
	res.Latency = ct.C.Cfg.HitLatencyCycles
	res.WritePortOps++
	tag, set, word := ct.C.Decompose(addr)
	way := ct.ensureWay(addr, tag, set, now, res)
	if res.Hit {
		ct.Stats.StoreHits++
	}
	g := ct.C.GranuleOf(word)
	ln := ct.C.Line(set, way)
	ct.C.TouchDirtyG(ln, g, now)

	wasDirty := ln.Dirty[g]
	var old []uint64
	if ct.Scheme.StoreNeedsOldData(set, way, g) {
		// The read-before-write passes through the fault checker like any
		// other read: a latent fault in the old value must be recovered
		// *before* it is folded into the registers.
		ct.verifyOnRead(set, way, g, now, res)
		old = ct.oldBuf[:len(ct.granule(ln, g))]
		copy(old, ct.granule(ln, g))
		ct.Stats.ReadBeforeWrite++
		res.ReadPortOps++
	}
	// The old value just passed the fault checker (unless recovery failed
	// with a DUE), so schemes may maintain check bits incrementally.
	oldVerified := old != nil && res.Fault != FaultDUE
	ln.Data[word] = val
	ct.Scheme.OnStore(set, way, g, old, wasDirty, oldVerified, now)
	if ct.writeThrough {
		// The store reaches the next level immediately; the line carries
		// no unique data and reverts to clean.
		ct.Next.WriteBackBlock(ct.C.BlockAddr(set, way), ln.Data, now)
		ct.Scheme.OnDowngrade(set, way, now)
	}
}

// StoreSub performs a sub-word store of `size` bytes (1, 2, 4 or 8) at
// addr, which must be size-aligned. Per-word check bits force a
// read-modify-write of the containing 64-bit word (Sec. 3.1: "On a byte
// Store, the new byte is XORed with the corresponding byte of R1 ... and
// the old byte ... with R2"); algebraically, folding the merged old/new
// words gives the registers the identical R1^R2 contribution, so the
// scheme hooks see an ordinary word store of the merged value.
func (ct *Controller) StoreSub(addr, val uint64, size int, now uint64) AccessResult {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic("protect: sub-word store size must be 1, 2, 4 or 8")
	}
	if addr%uint64(size) != 0 {
		panic("protect: misaligned sub-word store")
	}
	if size == 8 {
		return ct.Store(addr, val, now)
	}
	ct.tick()
	ct.Stats.Stores++
	var res AccessResult
	res.Latency = ct.C.Cfg.HitLatencyCycles
	res.WritePortOps++
	wordAddr := addr &^ 7
	set, way := ct.ensure(wordAddr, now, &res)
	if res.Hit {
		ct.Stats.StoreHits++
	}
	_, _, word := ct.C.Decompose(wordAddr)
	g := ct.C.GranuleOf(word)
	ct.C.TouchDirty(set, way, word, now)

	ln := ct.C.Line(set, way)
	wasDirty := ln.Dirty[g]
	// The RMW read: needed to rebuild the word's check bits regardless of
	// scheme; it doubles as the scheme's read-before-write data. Like any
	// read it passes the fault checker first — merging a sub-word value
	// into a corrupted word would silently keep the corruption.
	ct.verifyOnRead(set, way, g, now, &res)
	ct.Stats.SubWordRMW++
	res.ReadPortOps++
	old := ct.oldBuf[:len(ct.granule(ln, g))]
	copy(old, ct.granule(ln, g))
	if ct.Scheme.StoreNeedsOldData(set, way, g) {
		ct.Stats.ReadBeforeWrite++ // satisfied by the same RMW read
	}
	// Merge the sub-word value into the 64-bit word.
	shift := uint((addr & 7) * 8)
	var mask uint64
	if size == 8 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1)<<(uint(size)*8) - 1) << shift
	}
	ln.Data[word] = (ln.Data[word] &^ mask) | ((val << shift) & mask)
	ct.Scheme.OnStore(set, way, g, old, wasDirty, res.Fault != FaultDUE, now)
	return res
}

// granule returns the data slice of granule g.
func (ct *Controller) granule(ln *cache.Line, g int) []uint64 {
	gw := ct.C.GranuleWords()
	return ln.Data[g*gw : (g+1)*gw]
}

// FetchBlock implements cache.Backing: an upper level reads a whole block
// through this controller. Resident granules are verified (and repaired)
// on the way out.
func (ct *Controller) FetchBlock(addr uint64, dst []uint64, now uint64) int {
	ct.tick()
	ct.Stats.Loads++
	var res AccessResult
	res.Latency = ct.C.Cfg.HitLatencyCycles
	set, way := ct.ensure(addr, now, &res)
	if res.Hit {
		ct.Stats.LoadHits++
	}
	ln := ct.C.Line(set, way)
	ct.C.ReassertLine(set, way)
	// Clean line, clean syndromes: the loop below would be a complete
	// no-op (TouchDirtyG skips clean granules, FaultNone takes no branch),
	// and the scheme can prove that in one pass.
	if ct.lv != nil && !ln.DirtyAny() && ct.lv.VerifyLineClean(set, way) {
		copy(dst, ln.Data)
		return res.Latency
	}
	for g := 0; g < ct.C.Granules(); g++ {
		ct.C.TouchDirtyG(ln, g, now)
		status, needRefetch := ct.Scheme.VerifyGranule(set, way, g, now)
		switch {
		case status == FaultDUE:
			ct.Stats.FaultsDetected++
			ct.Stats.UnrecoverableDUE++
			ct.Halted = true
		case needRefetch:
			ct.Stats.FaultsDetected++
			res.Latency += ct.refetch(set, way, now)
			ct.Stats.FaultsCorrected++
		case status != FaultNone:
			ct.Stats.FaultsDetected++
			ct.Stats.FaultsCorrected++
		}
	}
	copy(dst, ln.Data)
	return res.Latency
}

// WriteBackBlock implements cache.Backing: an upper level pushes a dirty
// block down into this controller (write-allocate).
func (ct *Controller) WriteBackBlock(addr uint64, src []uint64, now uint64) {
	ct.tick()
	ct.Stats.Stores++
	var res AccessResult
	set, way := ct.ensure(addr, now, &res)
	if res.Hit {
		ct.Stats.StoreHits++
	}
	ln := ct.C.Line(set, way)
	gw := ct.C.GranuleWords()
	for g := 0; g < ct.C.Granules(); g++ {
		ct.C.TouchDirtyG(ln, g, now)
		wasDirty := ln.Dirty[g]
		var old []uint64
		if ct.Scheme.StoreNeedsOldData(set, way, g) {
			old = ct.oldBuf[:gw]
			copy(old, ct.granule(ln, g))
			ct.Stats.ReadBeforeWrite++
		}
		copy(ct.granule(ln, g), src[g*gw:(g+1)*gw])
		// The old value was captured without passing the fault checker, so
		// check bits must be recomputed from scratch (oldVerified=false): a
		// latent fault would otherwise surface as a spurious detection.
		ct.Scheme.OnStore(set, way, g, old, wasDirty, false, now)
	}
}

// Flush writes every dirty block back to the next level (used at the end
// of simulations so golden comparisons see all data).
func (ct *Controller) Flush(now uint64) {
	type ref struct{ set, way int }
	var dirty []ref
	ct.C.ForEachValid(func(set, way int, ln *cache.Line) {
		if ln.DirtyAny() {
			dirty = append(dirty, ref{set, way})
		}
	})
	for _, r := range dirty {
		ln := ct.C.Line(r.set, r.way)
		var res AccessResult
		ct.verifyDirtyGranules(r.set, r.way, now, &res)
		ct.Scheme.OnEvict(r.set, r.way, now)
		ct.Next.WriteBackBlock(ct.C.BlockAddr(r.set, r.way), ln.Data, now)
		ct.Stats.WriteBack++
		ct.C.Invalidate(r.set, r.way)
	}
}

// FlushBlock writes the dirty data of a resident block back to the next
// level and downgrades it to clean, keeping it resident (the coherence
// M->S transition). Reports whether a write-back happened.
func (ct *Controller) FlushBlock(addr, now uint64) bool {
	set, way := ct.C.Probe(addr)
	if way < 0 {
		return false
	}
	ln := ct.C.Line(set, way)
	if !ln.DirtyAny() {
		return false
	}
	var res AccessResult
	ct.verifyDirtyGranules(set, way, now, &res)
	ct.Scheme.OnDowngrade(set, way, now)
	ct.Next.WriteBackBlock(ct.C.BlockAddr(set, way), ln.Data, now)
	ct.Stats.WriteBack++
	return true
}

// InvalidateBlock removes a resident block (the coherence invalidation on
// a remote write), writing dirty data back first. Reports whether the
// block was resident.
func (ct *Controller) InvalidateBlock(addr, now uint64) bool {
	set, way := ct.C.Probe(addr)
	if way < 0 {
		return false
	}
	ln := ct.C.Line(set, way)
	if ln.DirtyAny() {
		var res AccessResult
		ct.verifyDirtyGranules(set, way, now, &res)
		ct.Scheme.OnEvict(set, way, now)
		ct.Next.WriteBackBlock(ct.C.BlockAddr(set, way), ln.Data, now)
		ct.Stats.WriteBack++
	} else {
		ct.Scheme.OnEvict(set, way, now)
	}
	ct.C.Invalidate(set, way)
	return true
}
