package protect

import (
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
)

func TestScrubberRepairsLatentFault(t *testing.T) {
	c := testCache()
	mem := cache.NewMemory(32, 100)
	ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), mem)
	ct.SetScrubbing(4, 64) // aggressive: a few accesses sweep everything

	ct.Store(0x40, 0xbeef, 1)
	flipData(ct, 0x40, 1<<11)
	// Touch unrelated lines; the scrubber should find and repair the
	// fault without 0x40 ever being accessed.
	for i := 0; i < 32; i++ {
		ct.Load(0x1000+uint64(i*8), uint64(2+i))
	}
	if ct.Stats.FaultsCorrected == 0 || ct.ScrubsPerformed == 0 {
		t.Fatalf("scrubber idle: %+v scrubs=%d", ct.Stats, ct.ScrubsPerformed)
	}
	set, way := c.Probe(0x40)
	if c.Line(set, way).Data[0] != 0xbeef {
		t.Fatal("latent fault not repaired by scrubbing")
	}
}

func TestScrubberDisabledByDefault(t *testing.T) {
	c := testCache()
	ct := NewController(c, NewParity1D(c, 8), cache.NewMemory(32, 100))
	ct.Store(0x40, 1, 1)
	for i := 0; i < 64; i++ {
		ct.Load(0x1000+uint64(i*8), uint64(2+i))
	}
	if ct.ScrubsPerformed != 0 {
		t.Fatal("scrubber ran without being enabled")
	}
}

// TestScrubbingExtendsMCLifetime is the reliability payoff: with the
// latent window shortened, the same fault rate yields a longer measured
// lifetime. (Statistical, but with a wide margin.)
func TestScrubbingExtendsMCLifetime(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo lifetimes")
	}
	// Handled in internal/fault's MC via the WithScrubbing option; here a
	// direct spot check: two identical fault sequences, one scrubbed.
	run := func(scrub bool) (detected uint64) {
		c := testCache()
		mem := cache.NewMemory(32, 100)
		ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), mem)
		if scrub {
			ct.SetScrubbing(2, 16)
		}
		ct.Store(0x40, 1, 1)
		flipData(ct, 0x40, 1<<5)
		for i := 0; i < 16; i++ {
			ct.Load(0x2000+uint64(i*8), uint64(2+i))
		}
		return ct.Stats.FaultsDetected
	}
	if run(true) == 0 {
		t.Error("scrubbed run never detected the latent fault")
	}
	if run(false) != 0 {
		t.Error("unscrubbed run detected a fault it never read")
	}
}
