package protect

import (
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
)

// fixture builds a controller with one dirty word and one clean word
// resident, returning their addresses.
func fixture(t *testing.T, mk func(*cache.Cache) Scheme) (ct *Controller, dirtyAddr, cleanAddr uint64) {
	t.Helper()
	c := testCache()
	mem := cache.NewMemory(32, 100)
	mem.WriteWord(0x100, 0xc1ea) // golden value for the clean word
	ct = NewController(c, mk(c), mem)
	ct.Store(0x40, 0xd1277, 1) // dirty
	ct.Load(0x100, 2)          // clean
	return ct, 0x40, 0x100
}

func flipData(ct *Controller, addr uint64, mask uint64) {
	set, way := ct.C.Probe(addr)
	_, _, word := ct.C.Decompose(addr)
	ct.C.FlipBits(set, way, word, mask)
}

// TestCleanFaultRefetchAllSchemes: a fault in clean data is repaired by
// re-fetching from the next level under every scheme.
func TestCleanFaultRefetch(t *testing.T) {
	for _, mk := range []func(*cache.Cache) Scheme{
		func(c *cache.Cache) Scheme { return NewParity1D(c, 8) },
		func(c *cache.Cache) Scheme { return NewTwoDim(c, 8) },
		func(c *cache.Cache) Scheme { return MustCPPC(c, core.DefaultL1Config()) },
	} {
		ct, _, clean := fixture(t, mk)
		flipData(ct, clean, 1<<9)
		res := ct.Load(clean, 10)
		if res.Fault != FaultCorrectedClean || res.Value != 0xc1ea {
			t.Fatalf("%s: %+v", ct.Scheme.Name(), res)
		}
		if ct.Stats.CleanRefetches != 1 {
			t.Fatalf("%s: refetches = %d", ct.Scheme.Name(), ct.Stats.CleanRefetches)
		}
		// Clean fault again after refetch: cache self-heals.
		if res := ct.Load(clean, 11); res.Fault != FaultNone {
			t.Fatalf("%s: fault persists: %+v", ct.Scheme.Name(), res)
		}
	}
}

// TestCleanMultiBitSECDEDRefetch: SECDED corrects a single clean bit in
// place and refetches clean double faults.
func TestSECDEDFaultPaths(t *testing.T) {
	ct, dirty, clean := fixture(t, func(c *cache.Cache) Scheme { return NewSECDED(c, true) })

	flipData(ct, clean, 1<<3)
	if res := ct.Load(clean, 10); res.Fault != FaultCorrectedClean || res.Value != 0xc1ea {
		t.Fatalf("clean single: %+v", res)
	}
	flipData(ct, clean, 1<<3|1<<40)
	if res := ct.Load(clean, 11); res.Fault != FaultCorrectedClean || res.Value != 0xc1ea {
		t.Fatalf("clean double: %+v", res)
	}
	flipData(ct, dirty, 1<<3)
	if res := ct.Load(dirty, 12); res.Fault != FaultCorrectedDirty || res.Value != 0xd1277 {
		t.Fatalf("dirty single: %+v", res)
	}
	flipData(ct, dirty, 1<<3|1<<40)
	if res := ct.Load(dirty, 13); res.Fault != FaultDUE {
		t.Fatalf("dirty double: %+v", res)
	}
	if !ct.Halted {
		t.Fatal("controller not halted after DUE")
	}
}

// TestParity1DDirtyFaultIsFatal: the baseline loses dirty data.
func TestParity1DDirtyFaultIsFatal(t *testing.T) {
	ct, dirty, _ := fixture(t, func(c *cache.Cache) Scheme { return NewParity1D(c, 8) })
	flipData(ct, dirty, 1<<3)
	if res := ct.Load(dirty, 10); res.Fault != FaultDUE {
		t.Fatalf("result = %+v", res)
	}
	if ct.Stats.UnrecoverableDUE != 1 || !ct.Halted {
		t.Fatalf("stats = %+v halted=%v", ct.Stats, ct.Halted)
	}
}

// TestCPPCDirtyFaultCorrected: the headline capability.
func TestCPPCDirtyFaultCorrected(t *testing.T) {
	ct, dirty, _ := fixture(t, func(c *cache.Cache) Scheme { return MustCPPC(c, core.DefaultL1Config()) })
	flipData(ct, dirty, 1<<3|1<<12|1<<22) // 3-bit temporal fault in one word
	res := ct.Load(dirty, 10)
	if res.Fault != FaultCorrectedDirty || res.Value != 0xd1277 {
		t.Fatalf("result = %+v", res)
	}
	if ct.Stats.FaultsCorrected != 1 {
		t.Fatalf("stats = %+v", ct.Stats)
	}
}

// TestTwoDimDirtyFaultCorrected: vertical parity rebuilds a single faulty
// dirty word, including multi-bit corruption.
func TestTwoDimDirtyFaultCorrected(t *testing.T) {
	ct, dirty, _ := fixture(t, func(c *cache.Cache) Scheme { return NewTwoDim(c, 8) })
	flipData(ct, dirty, 0x1f<<8) // 5 flips in distinct stripes: detectable
	res := ct.Load(dirty, 10)
	if res.Fault != FaultCorrectedDirty || res.Value != 0xd1277 {
		t.Fatalf("result = %+v", res)
	}
}

// TestTwoDimTwoFaultyWordsIsDUE: one vertical row cannot rebuild two
// faulty words.
func TestTwoDimTwoFaultyWordsIsDUE(t *testing.T) {
	ct, dirty, _ := fixture(t, func(c *cache.Cache) Scheme { return NewTwoDim(c, 8) })
	ct.Store(0x80, 0xbeef, 3) // second dirty word
	flipData(ct, dirty, 1<<3)
	flipData(ct, 0x80, 1<<3)
	if res := ct.Load(dirty, 10); res.Fault != FaultDUE {
		t.Fatalf("result = %+v", res)
	}
}

// TestCPPCEvictionRecoversLatentFault: a latent fault in a dirty block is
// repaired before write-back, so the next level receives correct data and
// R2 absorbs the true value.
func TestCPPCEvictionRecoversLatentFault(t *testing.T) {
	c := testCache()
	mem := cache.NewMemory(32, 100)
	ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), mem)
	ct.Store(0x40, 0xfeed, 1)
	flipData(ct, 0x40, 1<<5)
	// Force eviction via two conflicting fills.
	stride := uint64(c.Cfg.Sets() * c.Cfg.BlockBytes)
	ct.Load(0x40+stride, 2)
	ct.Load(0x40+2*stride, 3)
	if got := mem.ReadWord(0x40); got != 0xfeed {
		t.Fatalf("written-back value = %#x, want 0xfeed", got)
	}
	if err := ct.Scheme.(*CPPCScheme).Engine.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestCPPCCleanFaultDoesNotTouchRegisters: refetching clean data must not
// disturb the register invariant.
func TestCPPCCleanFaultDoesNotTouchRegisters(t *testing.T) {
	ct, _, clean := fixture(t, func(c *cache.Cache) Scheme { return MustCPPC(c, core.DefaultL1Config()) })
	flipData(ct, clean, 1<<30)
	ct.Load(clean, 10)
	if err := ct.Scheme.(*CPPCScheme).Engine.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestL2CPPCBlockFaultViaHierarchy: corrupt a dirty block resident in the
// L2; an L1 miss fetching through recovers it transparently.
func TestL2CPPCBlockFaultViaHierarchy(t *testing.T) {
	l2c := cache.New(cache.L2Config())
	l2 := NewController(l2c, MustCPPC(l2c, core.DefaultL2Config()), cache.NewMemory(32, 200))
	l1c := cache.New(cache.L1DConfig())
	l1 := NewController(l1c, MustCPPC(l1c, core.DefaultL1Config()), l2)

	l1.Store(0x1000, 0xabcd, 1)
	// Push the dirty block out of L1 into L2.
	stride := uint64(l1c.Cfg.Sets() * l1c.Cfg.BlockBytes)
	l1.Load(0x1000+stride, 2)
	l1.Load(0x1000+2*stride, 3)
	set, way := l2c.Probe(0x1000)
	if way < 0 {
		t.Fatal("block not in L2")
	}
	if !l2c.Line(set, way).DirtyAny() {
		t.Fatal("block not dirty in L2")
	}
	l2c.FlipBits(set, way, 0, 1<<7)
	// L1 re-fetches through L2: the L2 CPPC must hand back corrected data.
	res := l1.Load(0x1000, 4)
	if res.Value != 0xabcd {
		t.Fatalf("value through hierarchy = %#x", res.Value)
	}
	if l2.Stats.FaultsCorrected != 1 {
		t.Fatalf("L2 stats = %+v", l2.Stats)
	}
}
