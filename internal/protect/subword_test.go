package protect

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
)

func TestStoreSubMergesBytes(t *testing.T) {
	c := testCache()
	ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), cache.NewMemory(32, 100))
	ct.Store(0x40, 0x1111_2222_3333_4444, 1)
	ct.StoreSub(0x40, 0xAB, 1, 2)       // byte 0
	ct.StoreSub(0x43, 0xCD, 1, 3)       // byte 3
	ct.StoreSub(0x44, 0xBEEF, 2, 4)     // halfword at offset 4
	ct.StoreSub(0x40+8+4, 0xF00D, 4, 5) // word-32 in the next word
	if got := ct.Load(0x40, 6).Value; got != 0x1111_BEEF_CD33_44AB {
		t.Fatalf("merged word = %#x", got)
	}
	if got := ct.Load(0x48, 7).Value; got>>32 != 0xF00D {
		t.Fatalf("second word = %#x", got)
	}
}

func TestStoreSubKeepsInvariantAndRecovers(t *testing.T) {
	c := testCache()
	sch := MustCPPC(c, core.DefaultL1Config())
	ct := NewController(c, sch, cache.NewMemory(32, 100))
	rng := rand.New(rand.NewSource(5))
	var now uint64
	for i := 0; i < 3000; i++ {
		now++
		addr := uint64(rng.Intn(512)) * 8
		size := []int{1, 2, 4, 8}[rng.Intn(4)]
		sub := addr + uint64(rng.Intn(8/size)*size)
		ct.StoreSub(sub, rng.Uint64(), size, now)
	}
	if err := sch.Engine.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// A fault in a byte-stored dirty word still recovers.
	ct.Store(0x10, 0, now+1)
	ct.StoreSub(0x11, 0x7e, 1, now+2)
	set, way := c.Probe(0x10)
	c.FlipBits(set, way, 2, 1<<4)
	res := ct.Load(0x10, now+3)
	if res.Fault != FaultCorrectedDirty || res.Value != 0x7e00 {
		t.Fatalf("result = %+v", res)
	}
}

func TestStoreSubRMWAccounting(t *testing.T) {
	c := testCache()
	ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), cache.NewMemory(32, 100))
	ct.StoreSub(0x40, 1, 1, 1) // clean word: RMW but no CPPC RBW
	if ct.Stats.SubWordRMW != 1 || ct.Stats.ReadBeforeWrite != 0 {
		t.Fatalf("stats after clean byte store: %+v", ct.Stats)
	}
	ct.StoreSub(0x41, 2, 1, 2) // now dirty: RMW doubles as the RBW
	if ct.Stats.SubWordRMW != 2 || ct.Stats.ReadBeforeWrite != 1 {
		t.Fatalf("stats after dirty byte store: %+v", ct.Stats)
	}
	// Full-word path is unchanged.
	ct.StoreSub(0x48, 3, 8, 3)
	if ct.Stats.SubWordRMW != 2 {
		t.Fatalf("word-sized StoreSub counted as RMW: %+v", ct.Stats)
	}
}

func TestStoreSubValidation(t *testing.T) {
	c := testCache()
	ct := NewController(c, NewParity1D(c, 8), cache.NewMemory(32, 100))
	for _, bad := range []struct {
		addr uint64
		size int
	}{{0x41, 2}, {0x42, 4}, {0x40, 3}, {0x40, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StoreSub(%#x, size %d) did not panic", bad.addr, bad.size)
				}
			}()
			ct.StoreSub(bad.addr, 0, bad.size, 1)
		}()
	}
}

func TestStoreSubAllSchemesRoundTrip(t *testing.T) {
	for _, mk := range []func(*cache.Cache) Scheme{
		func(c *cache.Cache) Scheme { return NewParity1D(c, 8) },
		func(c *cache.Cache) Scheme { return NewSECDED(c, true) },
		func(c *cache.Cache) Scheme { return NewTwoDim(c, 8) },
		func(c *cache.Cache) Scheme { return MustCPPC(c, core.DefaultL1Config()) },
	} {
		c := testCache()
		ct := NewController(c, mk(c), cache.NewMemory(32, 100))
		ct.StoreSub(0x40, 0xAA, 1, 1)
		ct.StoreSub(0x46, 0x1234, 2, 2)
		want := uint64(0x1234_0000_0000_00AA)
		if got := ct.Load(0x40, 3); got.Value != want || got.Fault != FaultNone {
			t.Errorf("%s: %#x (fault %v), want %#x", ct.Scheme.Name(), got.Value, got.Fault, want)
		}
	}
}
