package protect

import (
	"math/rand"
	"testing"

	"cppc/internal/cache"
	"cppc/internal/core"
)

func testCache() *cache.Cache {
	cfg, err := cache.Config{
		Name: "t", SizeBytes: 2048, Ways: 2, BlockBytes: 32,
		DirtyGranuleWords: 1, HitLatencyCycles: 2,
	}.Validate()
	if err != nil {
		panic(err)
	}
	return cache.New(cfg)
}

func allSchemes(c *cache.Cache) []Scheme {
	return []Scheme{
		NewParity1D(c, 8),
		NewSECDED(c, true),
		NewTwoDim(c, 8),
		MustCPPC(c, core.DefaultL1Config()),
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindParity1D: "parity-1d", KindSECDED: "secded",
		KindTwoDim: "parity-2d", KindCPPC: "cppc", Kind(9): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	fw := map[FaultStatus]string{
		FaultNone: "none", FaultCorrectedClean: "corrected-clean",
		FaultCorrectedDirty: "corrected-dirty", FaultDUE: "DUE",
		FaultStatus(9): "unknown",
	}
	for f, s := range fw {
		if f.String() != s {
			t.Errorf("fault %d.String() = %q", int(f), f.String())
		}
	}
}

// TestRoundTripAllSchemes: stored values must read back identically under
// every scheme, across hits, misses, evictions and write-backs.
func TestRoundTripAllSchemes(t *testing.T) {
	for _, mk := range []func(*cache.Cache) Scheme{
		func(c *cache.Cache) Scheme { return NewParity1D(c, 8) },
		func(c *cache.Cache) Scheme { return NewSECDED(c, true) },
		func(c *cache.Cache) Scheme { return NewTwoDim(c, 8) },
		func(c *cache.Cache) Scheme { return MustCPPC(c, core.DefaultL1Config()) },
	} {
		c := testCache()
		s := mk(c)
		mem := cache.NewMemory(32, 100)
		ct := NewController(c, s, mem)
		rng := rand.New(rand.NewSource(5))
		golden := map[uint64]uint64{}
		var now uint64
		for op := 0; op < 4000; op++ {
			now++
			addr := uint64(rng.Intn(512)) * 8 // 4KB footprint over a 2KB cache
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				golden[addr] = v
				ct.Store(addr, v, now)
			} else {
				res := ct.Load(addr, now)
				if want, okW := golden[addr]; okW && res.Value != want {
					t.Fatalf("%s: load %#x = %#x, want %#x", s.Name(), addr, res.Value, want)
				}
				if res.Fault != FaultNone {
					t.Fatalf("%s: spurious fault %v", s.Name(), res.Fault)
				}
			}
		}
		if ct.Halted {
			t.Fatalf("%s: halted without faults", s.Name())
		}
		// Flush and verify memory holds the golden image.
		ct.Flush(now)
		for addr, v := range golden {
			if got := mem.ReadWord(addr); got != v {
				t.Fatalf("%s: memory %#x = %#x, want %#x", s.Name(), addr, got, v)
			}
		}
	}
}

func TestHitMissAccounting(t *testing.T) {
	c := testCache()
	ct := NewController(c, NewParity1D(c, 8), cache.NewMemory(32, 100))
	ct.Store(0, 1, 1) // miss, fill
	ct.Load(0, 2)     // hit
	ct.Load(8, 3)     // hit (same block)
	ct.Load(1<<16, 4) // miss
	if ct.Stats.Misses != 2 || ct.Stats.LoadHits != 2 || ct.Stats.StoreHits != 0 {
		t.Fatalf("stats = %+v", ct.Stats)
	}
	if ct.Stats.Fills != 2 {
		t.Fatalf("fills = %d", ct.Stats.Fills)
	}
}

func TestMissLatencyIncludesNextLevel(t *testing.T) {
	c := testCache()
	ct := NewController(c, NewParity1D(c, 8), cache.NewMemory(32, 100))
	res := ct.Load(0, 1)
	if res.Hit || res.Latency != 2+100 {
		t.Fatalf("miss result = %+v", res)
	}
	res = ct.Load(0, 2)
	if !res.Hit || res.Latency != 2 {
		t.Fatalf("hit result = %+v", res)
	}
}

// TestRBWAccounting checks the scheme-defining read-before-write rules:
// CPPC pays only on stores to dirty words; 2D parity on every store and
// on every valid-victim miss; parity/SECDED never.
func TestRBWAccounting(t *testing.T) {
	// CPPC: first store clean (no RBW), second store to same word dirty (RBW).
	c := testCache()
	ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), cache.NewMemory(32, 100))
	ct.Store(0, 1, 1)
	if ct.Stats.ReadBeforeWrite != 0 {
		t.Fatalf("cppc: RBW after clean store = %d", ct.Stats.ReadBeforeWrite)
	}
	res := ct.Store(0, 2, 2)
	if ct.Stats.ReadBeforeWrite != 1 || res.ReadPortOps != 1 {
		t.Fatalf("cppc: RBW after dirty store = %d (ports %d)", ct.Stats.ReadBeforeWrite, res.ReadPortOps)
	}

	// 2D: every store pays.
	c2 := testCache()
	ct2 := NewController(c2, NewTwoDim(c2, 8), cache.NewMemory(32, 100))
	ct2.Store(0, 1, 1)
	ct2.Store(0, 2, 2)
	if ct2.Stats.ReadBeforeWrite != 2 {
		t.Fatalf("2d: RBW = %d, want 2", ct2.Stats.ReadBeforeWrite)
	}
	// And a conflict miss over a valid victim pays a whole-line read.
	stride := uint64(c2.Cfg.Sets() * c2.Cfg.BlockBytes)
	ct2.Load(stride*0, 3)
	ct2.Load(stride*1, 4)
	ct2.Load(stride*2, 5) // evicts a valid line
	if ct2.Stats.RBWOnMissLines == 0 {
		t.Fatal("2d: no whole-line RBW on conflict miss")
	}

	// SECDED and 1D parity: never.
	for _, mk := range []func(*cache.Cache) Scheme{
		func(c *cache.Cache) Scheme { return NewSECDED(c, true) },
		func(c *cache.Cache) Scheme { return NewParity1D(c, 8) },
	} {
		c3 := testCache()
		ct3 := NewController(c3, mk(c3), cache.NewMemory(32, 100))
		ct3.Store(0, 1, 1)
		ct3.Store(0, 2, 2)
		if ct3.Stats.ReadBeforeWrite != 0 {
			t.Fatalf("%s: RBW = %d", ct3.Scheme.Name(), ct3.Stats.ReadBeforeWrite)
		}
	}
}

func TestWriteBackPropagates(t *testing.T) {
	c := testCache()
	mem := cache.NewMemory(32, 100)
	ct := NewController(c, MustCPPC(c, core.DefaultL1Config()), mem)
	stride := uint64(c.Cfg.Sets() * c.Cfg.BlockBytes)
	ct.Store(0x40, 0xdead, 1)
	ct.Load(0x40+stride, 2)
	ct.Load(0x40+2*stride, 3) // evicts the dirty block
	if mem.ReadWord(0x40) != 0xdead {
		t.Fatal("dirty write-back lost")
	}
	if ct.Stats.WriteBack != 1 {
		t.Fatalf("writebacks = %d", ct.Stats.WriteBack)
	}
}

// TestTwoLevelHierarchy stacks an L1 CPPC controller on an L2 CPPC
// controller on memory and checks end-to-end data flow.
func TestTwoLevelHierarchy(t *testing.T) {
	l2c := cache.New(cache.L2Config())
	l2 := NewController(l2c, MustCPPC(l2c, core.DefaultL2Config()), cache.NewMemory(32, 200))
	l1c := cache.New(cache.L1DConfig())
	l1 := NewController(l1c, MustCPPC(l1c, core.DefaultL1Config()), l2)

	rng := rand.New(rand.NewSource(17))
	golden := map[uint64]uint64{}
	var now uint64
	for op := 0; op < 20000; op++ {
		now++
		addr := uint64(rng.Intn(1<<14)) * 8 // 128KB footprint: misses in L1, hits in L2
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			golden[addr] = v
			l1.Store(addr, v, now)
		} else if want, okW := golden[addr]; okW {
			if res := l1.Load(addr, now); res.Value != want {
				t.Fatalf("load %#x = %#x, want %#x", addr, res.Value, want)
			}
		}
	}
	if l2.Stats.Accesses() == 0 {
		t.Fatal("L2 never accessed")
	}
	if err := l1.Scheme.(*CPPCScheme).Engine.CheckInvariant(); err != nil {
		t.Fatalf("L1 invariant: %v", err)
	}
	if err := l2.Scheme.(*CPPCScheme).Engine.CheckInvariant(); err != nil {
		t.Fatalf("L2 invariant: %v", err)
	}
}

func TestSchemeMetadata(t *testing.T) {
	c := testCache()
	for _, s := range allSchemes(c) {
		if s.Name() == "" {
			t.Errorf("%v: empty name", s.Kind())
		}
		if s.CheckBitsPerGranule() <= 0 {
			t.Errorf("%s: non-positive check bits", s.Name())
		}
	}
	if NewSECDED(c, true).BitlineFactor() != 8 {
		t.Error("interleaved SECDED bitline factor should be 8")
	}
	if NewSECDED(c, false).BitlineFactor() != 1 {
		t.Error("non-interleaved SECDED bitline factor should be 1")
	}
}

func TestDirtySamplingThroughController(t *testing.T) {
	c := testCache()
	ct := NewController(c, NewParity1D(c, 8), cache.NewMemory(32, 100))
	ct.SetSampleInterval(1)
	var now uint64
	for i := 0; i < 64; i++ {
		now++
		ct.Store(uint64(i*8), 1, now)
	}
	if c.DirtyFraction() <= 0 {
		t.Fatal("dirty fraction not sampled")
	}
}
