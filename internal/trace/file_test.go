package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	p, _ := ProfileByName("gcc")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, p.NewGen(5), 5000); err != nil {
		t.Fatal(err)
	}
	fs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 5000 {
		t.Fatalf("Len = %d", fs.Len())
	}
	// Replaying yields the identical stream.
	gen := p.NewGen(5)
	for i := 0; i < 5000; i++ {
		want := gen.Next()
		got := fs.Next()
		if got != want {
			t.Fatalf("instruction %d: got %+v want %+v", i, got, want)
		}
	}
	// And then loops.
	gen2 := p.NewGen(5)
	if got, want := fs.Next(), gen2.Next(); got != want {
		t.Fatalf("loop restart: got %+v want %+v", got, want)
	}
}

func TestParseTraceFormat(t *testing.T) {
	src := `
# a comment
L 0x1000 2 0
S 0x2008
B m
B
A
M
F
X
`
	fs, err := ParseTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 8 {
		t.Fatalf("Len = %d", fs.Len())
	}
	in := fs.Next()
	if in.Op != OpLoad || in.Addr != 0x1000 || in.Dep1 != 2 {
		t.Fatalf("load parsed as %+v", in)
	}
	if in := fs.Next(); in.Op != OpStore || in.Addr != 0x2008 {
		t.Fatalf("store parsed as %+v", in)
	}
	if in := fs.Next(); in.Op != OpBranch || !in.Mispredict {
		t.Fatalf("B m parsed as %+v", in)
	}
	if in := fs.Next(); in.Op != OpBranch || in.Mispredict {
		t.Fatalf("B parsed as %+v", in)
	}
	wantOps := []Op{OpInt, OpIntMul, OpFP, OpFPMul}
	for _, w := range wantOps {
		if in := fs.Next(); in.Op != w {
			t.Fatalf("op %v parsed as %+v", w, in)
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	bad := []string{
		"",                 // empty
		"L",                // missing address
		"L 0xzz",           // bad hex
		"L 0x1001",         // misaligned
		"Q 0x1000",         // unknown op
		"S 0x1000 -1 2",    // negative dep
		"L 0x1000 1 bogus", // bad dep
	}
	for _, src := range bad {
		if _, err := ParseTrace(strings.NewReader(src)); err == nil {
			t.Errorf("trace %q accepted", src)
		}
	}
}
