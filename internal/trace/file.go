package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Source produces a dynamic instruction stream. Gen (synthetic) and
// FileSource (recorded traces) both implement it, so the timing model can
// run either.
type Source interface {
	Next() Instr
}

// BatchSource is an optional Source extension: the consumer hands over a
// buffer and gets it refilled in one call, amortising the per-instruction
// interface dispatch. A BatchSource must draw exactly the stream repeated
// Next calls would, so the two access styles can be mixed freely.
type BatchSource interface {
	Source
	NextBatch(dst []Instr) int
}

var (
	_ Source      = (*Gen)(nil)
	_ BatchSource = (*Gen)(nil)
)

// The trace text format, one instruction per line:
//
//	L <hexaddr> [dep1 dep2]    load
//	S <hexaddr> [dep1 dep2]    store
//	B [m] [dep1 dep2]          branch, "m" = mispredicted
//	A | M | F | X [dep1 dep2]  int ALU | int mul | FP ALU | FP mul
//	# ...                      comment
//
// Dependencies are optional producer distances (0 = none).

// WriteTrace serializes n instructions from src.
func WriteTrace(w io.Writer, src Source, n int) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		in := src.Next()
		var err error
		switch in.Op {
		case OpLoad:
			_, err = fmt.Fprintf(bw, "L %#x %d %d\n", in.Addr, in.Dep1, in.Dep2)
		case OpStore:
			_, err = fmt.Fprintf(bw, "S %#x %d %d\n", in.Addr, in.Dep1, in.Dep2)
		case OpBranch:
			if in.Mispredict {
				_, err = fmt.Fprintf(bw, "B m %d %d\n", in.Dep1, in.Dep2)
			} else {
				_, err = fmt.Fprintf(bw, "B %d %d\n", in.Dep1, in.Dep2)
			}
		case OpIntMul:
			_, err = fmt.Fprintf(bw, "M %d %d\n", in.Dep1, in.Dep2)
		case OpFP:
			_, err = fmt.Fprintf(bw, "F %d %d\n", in.Dep1, in.Dep2)
		case OpFPMul:
			_, err = fmt.Fprintf(bw, "X %d %d\n", in.Dep1, in.Dep2)
		default:
			_, err = fmt.Fprintf(bw, "A %d %d\n", in.Dep1, in.Dep2)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseDeps parses an optional trailing "dep1 dep2" pair.
func parseDeps(fields []string, lineNo int, in *Instr) error {
	if len(fields) == 0 {
		return nil
	}
	if len(fields) != 2 {
		return fmt.Errorf("trace line %d: want two dependency fields, got %d", lineNo, len(fields))
	}
	d1, err1 := strconv.Atoi(fields[0])
	d2, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil || d1 < 0 || d2 < 0 {
		return fmt.Errorf("trace line %d: bad dependencies %v", lineNo, fields)
	}
	in.Dep1, in.Dep2 = int32(d1), int32(d2)
	return nil
}

// FileSource replays a recorded trace. When the trace is exhausted it
// loops back to the beginning (SimPoint-style repetition), so any
// instruction budget can be run against any trace length.
type FileSource struct {
	instrs []Instr
	pos    int
}

// ParseTrace reads the whole trace into memory.
func ParseTrace(r io.Reader) (*FileSource, error) {
	var out []Instr
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var in Instr
		switch fields[0] {
		case "L", "S":
			if len(fields) < 2 {
				return nil, fmt.Errorf("trace line %d: %s needs an address", lineNo, fields[0])
			}
			addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad address %q", lineNo, fields[1])
			}
			if addr%8 != 0 {
				return nil, fmt.Errorf("trace line %d: address %#x not word-aligned", lineNo, addr)
			}
			in.Addr = addr
			if fields[0] == "L" {
				in.Op = OpLoad
			} else {
				in.Op = OpStore
			}
			if err := parseDeps(fields[2:], lineNo, &in); err != nil {
				return nil, err
			}
		case "B":
			in.Op = OpBranch
			rest := fields[1:]
			if len(rest) > 0 && rest[0] == "m" {
				in.Mispredict = true
				rest = rest[1:]
			}
			if err := parseDeps(rest, lineNo, &in); err != nil {
				return nil, err
			}
		case "A", "M", "F", "X":
			switch fields[0] {
			case "A":
				in.Op = OpInt
			case "M":
				in.Op = OpIntMul
			case "F":
				in.Op = OpFP
			case "X":
				in.Op = OpFPMul
			}
			if err := parseDeps(fields[1:], lineNo, &in); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("trace line %d: unknown op %q", lineNo, fields[0])
		}
		out = append(out, in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: empty")
	}
	return &FileSource{instrs: out}, nil
}

// Len is the number of recorded instructions.
func (f *FileSource) Len() int { return len(f.instrs) }

// Next implements Source, looping at the end of the recording.
func (f *FileSource) Next() Instr {
	in := f.instrs[f.pos]
	f.pos++
	if f.pos == len(f.instrs) {
		f.pos = 0
	}
	return in
}
