package trace

import "cppc/internal/lfrng"

// The lagged-Fibonacci generator started here and moved to
// internal/lfrng when the fault campaigns picked it up too; these
// aliases keep the trace-local names working. The stream guarantees
// (bit-compatibility with math/rand, frozen across toolchains) are
// documented — and tested — in that package.
type lfRand = lfrng.Rand

// newLFRand returns a generator in the same state as
// rand.New(rand.NewSource(seed)).
func newLFRand(seed int64) *lfRand { return lfrng.New(seed) }

type lfBound = lfrng.Bound

func makeBound(n int) lfBound { return lfrng.MakeBound(n) }
