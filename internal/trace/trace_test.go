package trace

import (
	"testing"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 15 {
		t.Fatalf("want 15 profiles (the paper's benchmark set), got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.LoadFrac+p.StoreFrac+p.BranchFrac >= 1 {
			t.Errorf("%s: fractions exceed 1", p.Name)
		}
		if p.WorkingSetBytes < p.HotBytes || p.HotBytes <= 0 {
			t.Errorf("%s: bad working-set geometry", p.Name)
		}
	}
	for _, name := range []string{"gzip", "mcf", "swim", "applu"} {
		if !seen[name] {
			t.Errorf("missing benchmark %q", name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("mcf"); !ok || p.Name != "mcf" {
		t.Error("mcf lookup failed")
	}
	if _, ok := ProfileByName("nonesuch"); ok {
		t.Error("unknown name found")
	}
}

func TestGenDeterminism(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a, b := p.NewGen(7), p.NewGen(7)
	for i := 0; i < 10000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("instruction %d diverged: %+v vs %+v", i, x, y)
		}
	}
	c := p.NewGen(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical streams")
	}
}

func TestMixMatchesProfile(t *testing.T) {
	p, _ := ProfileByName("gzip")
	g := p.NewGen(1)
	const n = 200000
	var loads, stores, branches int
	for i := 0; i < n; i++ {
		switch g.Next().Op {
		case OpLoad:
			loads++
		case OpStore:
			stores++
		case OpBranch:
			branches++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		frac := float64(got) / n
		if frac < want-0.01 || frac > want+0.01 {
			t.Errorf("%s fraction = %.3f, want ~%.3f", name, frac, want)
		}
	}
	check("load", loads, p.LoadFrac)
	check("store", stores, p.StoreFrac)
	check("branch", branches, p.BranchFrac)
}

func TestAddressesWordAlignedAndBounded(t *testing.T) {
	for _, p := range Profiles() {
		g := p.NewGen(3)
		for i := 0; i < 20000; i++ {
			in := g.Next()
			if in.Op != OpLoad && in.Op != OpStore {
				continue
			}
			if in.Addr%8 != 0 {
				t.Fatalf("%s: unaligned address %#x", p.Name, in.Addr)
			}
			// Loads live in the working set; the store-churn region sits
			// directly above it.
			if in.Addr >= uint64(p.WorkingSetBytes+p.StoreBytes) {
				t.Fatalf("%s: address %#x outside footprint", p.Name, in.Addr)
			}
		}
	}
}

func TestStoreRehitProducesRepeats(t *testing.T) {
	p, _ := ProfileByName("eon") // highest rehit bias
	g := p.NewGen(4)
	seen := map[uint64]int{}
	repeats := 0
	stores := 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Op != OpStore {
			continue
		}
		stores++
		if seen[in.Addr] > 0 {
			repeats++
		}
		seen[in.Addr]++
	}
	if stores == 0 || float64(repeats)/float64(stores) < 0.3 {
		t.Fatalf("store rehit too low: %d/%d", repeats, stores)
	}
}

func TestOpStrings(t *testing.T) {
	names := map[Op]string{
		OpInt: "int", OpIntMul: "imul", OpFP: "fp", OpFPMul: "fmul",
		OpBranch: "branch", OpLoad: "load", OpStore: "store", Op(99): "?",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
}

func TestDependenciesWithinWindow(t *testing.T) {
	p, _ := ProfileByName("swim")
	g := p.NewGen(5)
	for i := 0; i < 10000; i++ {
		in := g.Next()
		if in.Dep1 < 0 || int(in.Dep1) > p.DepDistance {
			t.Fatalf("Dep1 = %d out of range", in.Dep1)
		}
		if in.Dep2 < 0 || int(in.Dep2) > 2*p.DepDistance {
			t.Fatalf("Dep2 = %d out of range", in.Dep2)
		}
	}
}
