package trace

import (
	"strings"
	"testing"
)

// FuzzParseTrace: arbitrary input must never panic; accepted traces must
// replay without panicking.
func FuzzParseTrace(f *testing.F) {
	f.Add("L 0x1000 1 2\nS 0x2000\nB m\nA\n")
	f.Add("# comment only\n")
	f.Add("L")
	f.Add("B m 3 4\nM 1 0\nF\nX 2 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		fs, err := ParseTrace(strings.NewReader(src))
		if err != nil {
			return
		}
		for i := 0; i < fs.Len()+2; i++ {
			in := fs.Next()
			if (in.Op == OpLoad || in.Op == OpStore) && in.Addr%8 != 0 {
				t.Fatalf("parser accepted misaligned address %#x", in.Addr)
			}
		}
	})
}
