// Package trace generates the synthetic instruction streams that stand in
// for the paper's SPEC2000 SimPoints. A Profile controls the memory-access
// behaviour the experiments consume — instruction mix, working-set size,
// locality, store-rehit bias (how often a store lands on an already-dirty
// word), and branch behaviour — and each of the paper's 15 benchmarks gets
// a profile calibrated to land in its published regime (e.g. mcf's ~80% L2
// miss rate, Sec. 6.2).
//
// Generation is deterministic for a given (profile, seed).
package trace

// Op classifies an instruction for the timing model.
type Op uint8

const (
	OpInt Op = iota
	OpIntMul
	OpFP
	OpFPMul
	OpBranch
	OpLoad
	OpStore
)

func (o Op) String() string {
	switch o {
	case OpInt:
		return "int"
	case OpIntMul:
		return "imul"
	case OpFP:
		return "fp"
	case OpFPMul:
		return "fmul"
	case OpBranch:
		return "branch"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	}
	return "?"
}

// Instr is one dynamic instruction. Dep1/Dep2 are producer distances (how
// many instructions back), 0 meaning no register dependency. The struct is
// kept at 16 bytes plus the address — it is copied twice per simulated
// instruction through the batching buffers.
type Instr struct {
	Addr       uint64 // word-aligned effective address (loads/stores)
	Dep1, Dep2 int32
	Op         Op
	Mispredict bool // branches only: this branch flushes the front end
}

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string

	// Instruction mix (fractions of the dynamic stream; the remainder is
	// plain integer ALU work).
	LoadFrac, StoreFrac  float64
	BranchFrac           float64
	FPFrac               float64 // fraction of non-memory work that is FP
	MulFrac              float64 // fraction of ALU work on multipliers
	BranchMispredictRate float64
	DepDistance          int // typical producer distance (ILP proxy)

	// Memory behaviour. Most accesses hit a hot window that drifts slowly
	// across the working set (working-set migration): the drift rate sets
	// the compulsory miss rate and bounds how much dirty data accumulates
	// before eviction.
	WorkingSetBytes int     // total footprint
	HotBytes        int     // read-mostly hot-window size (pins cache residency)
	StoreBytes      int     // region fresh stores sweep through (write churn)
	DriftPer1000    int     // blocks the hot window slides per 1000 memory accesses
	HotFrac         float64 // probability an access goes to the hot window
	SeqFrac         float64 // probability an access continues a stream
	StoreRehit      float64 // probability a store revisits a recent store target (stack)
	LoadRehit       float64 // probability a load reads a recently stored word
}

// Gen produces the dynamic stream. Its state — including the RNG vector
// and the recent-store window — is held inline so a generator costs one
// allocation, and embedding (trace.CoreGen) costs none.
type Gen struct {
	p   Profile
	rng lfRand

	seqAddr      uint64
	storeAddr    uint64 // fresh-store sweep pointer
	hotBase      uint64 // base of the drifting hot window
	driftAcc     int    // fractional drift accumulator (per-mille)
	recentStores [64]uint64
	rsHead       int

	// Draw bounds fixed by the profile, precomputed once (see lfBound).
	depB, dep2B, rsB, hotB, wsB lfBound

	// Cumulative op-mix thresholds, precomputed from the profile so Next
	// compares the mix draw against constants instead of re-summing the
	// fractions per instruction.
	loadT, storeT, branchT float64
}

// NewGen builds a deterministic generator for the profile.
func (p Profile) NewGen(seed int64) *Gen {
	g := new(Gen)
	p.initGen(g, seed)
	return g
}

// initGen (re)initializes g in place — the allocation-free form of NewGen
// used where the Gen is embedded in a larger structure.
func (p Profile) initGen(g *Gen, seed int64) {
	*g = Gen{p: p}
	g.rng.Seed(seed)
	if p.DepDistance > 0 {
		g.depB = makeBound(p.DepDistance)
		g.dep2B = makeBound(p.DepDistance * 2)
	}
	g.rsB = makeBound(len(g.recentStores))
	g.hotB = makeBound(p.HotBytes / 8)
	g.wsB = makeBound(p.WorkingSetBytes / 8)
	g.loadT = p.LoadFrac
	g.storeT = p.LoadFrac + p.StoreFrac
	g.branchT = p.LoadFrac + p.StoreFrac + p.BranchFrac
}

// Next returns the next dynamic instruction.
func (g *Gen) Next() Instr {
	p := &g.p
	r := g.rng.Float64()
	var in Instr
	switch {
	case r < g.loadT:
		in.Op = OpLoad
		in.Addr = g.address(false)
	case r < g.storeT:
		in.Op = OpStore
		in.Addr = g.address(true)
		g.recentStores[g.rsHead] = in.Addr
		if g.rsHead++; g.rsHead == len(g.recentStores) {
			g.rsHead = 0
		}
	case r < g.branchT:
		in.Op = OpBranch
		in.Mispredict = g.rng.Float64() < p.BranchMispredictRate
	default:
		switch {
		case g.rng.Float64() < p.FPFrac:
			if g.rng.Float64() < p.MulFrac {
				in.Op = OpFPMul
			} else {
				in.Op = OpFP
			}
		case g.rng.Float64() < p.MulFrac:
			in.Op = OpIntMul
		default:
			in.Op = OpInt
		}
	}
	// Register dependencies: geometric-ish around DepDistance.
	if p.DepDistance > 0 {
		in.Dep1 = int32(1 + g.rng.IntnBound(g.depB))
		if g.rng.Int31()&1 == 0 {
			in.Dep2 = int32(1 + g.rng.IntnBound(g.dep2B))
		}
	}
	return in
}

// NextBatch fills dst with the next len(dst) instructions and reports how
// many were written (always len(dst): the generator never runs dry). The
// stream is identical to len(dst) successive Next calls.
func (g *Gen) NextBatch(dst []Instr) int {
	for i := range dst {
		dst[i] = g.Next()
	}
	return len(dst)
}

// address draws an effective address per the locality model.
func (g *Gen) address(isStore bool) uint64 {
	p := &g.p
	rehit := p.LoadRehit
	if isStore {
		// Revisiting a recent store target is what creates stores to
		// already-dirty words (CPPC's read-before-write trigger).
		rehit = p.StoreRehit
	}
	if g.rng.Float64() < rehit {
		if a := g.recentStores[g.rng.IntnBound(g.rsB)]; a != 0 {
			return a
		}
	}
	// The hot window drifts across the working set.
	g.driftAcc += p.DriftPer1000
	for g.driftAcc >= 1000 {
		g.driftAcc -= 1000
		g.hotBase += 32 // one cache block
		if g.hotBase+uint64(p.HotBytes) > uint64(p.WorkingSetBytes) {
			g.hotBase = 0
		}
	}

	if isStore {
		// Fresh stores sweep their own churn region (building output):
		// one write-allocate miss per block, then clean-word hits. The
		// swept blocks leave the cache young and fully dirty, which is
		// what keeps the resident dirty fraction near Table 2's regime
		// while the read window pins most of the capacity clean.
		g.storeAddr += 8
		if g.storeAddr >= uint64(p.StoreBytes) {
			g.storeAddr = 0
		}
		// The store region lives above the read working set.
		return uint64(p.WorkingSetBytes) + g.storeAddr
	}

	r := g.rng.Float64()
	switch {
	case r < p.SeqFrac:
		// Stream through the full working set (array sweeps).
		g.seqAddr += 8
		if g.seqAddr >= uint64(p.WorkingSetBytes) {
			g.seqAddr = 0
		}
		return g.seqAddr
	case r < p.SeqFrac+p.HotFrac:
		// Read-mostly hot window (stack reads, hot heap).
		return g.hotBase + uint64(g.rng.IntnBound(g.hotB))*8
	default:
		return uint64(g.rng.IntnBound(g.wsB)) * 8
	}
}
