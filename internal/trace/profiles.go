package trace

// Profiles returns the 15 synthetic benchmarks standing in for the
// SPEC2000 SimPoints of Sec. 6 (the 12 integer and 3 floating-point
// workloads that appear in Figs. 10-12). The numbers are calibrated so
// cache behaviour lands in each benchmark's published regime: mcf misses
// heavily at both levels (~80% in a 1MB L2, Sec. 6.2); the FP codes
// stream through large arrays; eon and crafty are cache-friendly; dirty
// occupancy and dirty re-access intervals average near Table 2's values.
func Profiles() []Profile {
	return []Profile{
		{Name: "gzip", LoadFrac: 0.27, StoreFrac: 0.10, BranchFrac: 0.12, FPFrac: 0, MulFrac: 0.02,
			BranchMispredictRate: 0.06, DepDistance: 8,
			WorkingSetBytes: 640 << 10, HotBytes: 24 << 10, StoreBytes: 576 << 10, DriftPer1000: 15,
			HotFrac: 0.93, SeqFrac: 0.03, StoreRehit: 0.50, LoadRehit: 0.20},
		{Name: "vpr", LoadFrac: 0.33, StoreFrac: 0.12, BranchFrac: 0.11, FPFrac: 0.10, MulFrac: 0.03,
			BranchMispredictRate: 0.08, DepDistance: 7,
			WorkingSetBytes: 640 << 10, HotBytes: 22 << 10, StoreBytes: 640 << 10, DriftPer1000: 16,
			HotFrac: 0.93, SeqFrac: 0.03, StoreRehit: 0.48, LoadRehit: 0.18},
		{Name: "gcc", LoadFrac: 0.31, StoreFrac: 0.12, BranchFrac: 0.15, FPFrac: 0, MulFrac: 0.02,
			BranchMispredictRate: 0.07, DepDistance: 7,
			WorkingSetBytes: 896 << 10, HotBytes: 24 << 10, StoreBytes: 704 << 10, DriftPer1000: 21,
			HotFrac: 0.91, SeqFrac: 0.04, StoreRehit: 0.48, LoadRehit: 0.18},
		{Name: "mcf", LoadFrac: 0.35, StoreFrac: 0.10, BranchFrac: 0.17, FPFrac: 0, MulFrac: 0.01,
			BranchMispredictRate: 0.09, DepDistance: 5,
			WorkingSetBytes: 48 << 20, HotBytes: 16 << 10, StoreBytes: 256 << 10, DriftPer1000: 30,
			HotFrac: 0.55, SeqFrac: 0.02, StoreRehit: 0.30, LoadRehit: 0.08},
		{Name: "crafty", LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.13, FPFrac: 0, MulFrac: 0.03,
			BranchMispredictRate: 0.07, DepDistance: 8,
			WorkingSetBytes: 448 << 10, HotBytes: 26 << 10, StoreBytes: 512 << 10, DriftPer1000: 12,
			HotFrac: 0.94, SeqFrac: 0.02, StoreRehit: 0.52, LoadRehit: 0.22},
		{Name: "parser", LoadFrac: 0.29, StoreFrac: 0.11, BranchFrac: 0.14, FPFrac: 0, MulFrac: 0.02,
			BranchMispredictRate: 0.08, DepDistance: 7,
			WorkingSetBytes: 640 << 10, HotBytes: 24 << 10, StoreBytes: 576 << 10, DriftPer1000: 16,
			HotFrac: 0.93, SeqFrac: 0.03, StoreRehit: 0.48, LoadRehit: 0.18},
		{Name: "eon", LoadFrac: 0.30, StoreFrac: 0.13, BranchFrac: 0.10, FPFrac: 0.30, MulFrac: 0.06,
			BranchMispredictRate: 0.04, DepDistance: 10,
			WorkingSetBytes: 256 << 10, HotBytes: 26 << 10, StoreBytes: 448 << 10, DriftPer1000: 9,
			HotFrac: 0.94, SeqFrac: 0.02, StoreRehit: 0.52, LoadRehit: 0.25},
		{Name: "perlbmk", LoadFrac: 0.31, StoreFrac: 0.12, BranchFrac: 0.14, FPFrac: 0, MulFrac: 0.02,
			BranchMispredictRate: 0.06, DepDistance: 8,
			WorkingSetBytes: 640 << 10, HotBytes: 24 << 10, StoreBytes: 640 << 10, DriftPer1000: 18,
			HotFrac: 0.92, SeqFrac: 0.03, StoreRehit: 0.50, LoadRehit: 0.20},
		{Name: "gap", LoadFrac: 0.29, StoreFrac: 0.11, BranchFrac: 0.12, FPFrac: 0.05, MulFrac: 0.04,
			BranchMispredictRate: 0.05, DepDistance: 9,
			WorkingSetBytes: 896 << 10, HotBytes: 22 << 10, StoreBytes: 704 << 10, DriftPer1000: 21,
			HotFrac: 0.90, SeqFrac: 0.05, StoreRehit: 0.46, LoadRehit: 0.16},
		{Name: "vortex", LoadFrac: 0.32, StoreFrac: 0.13, BranchFrac: 0.13, FPFrac: 0, MulFrac: 0.02,
			BranchMispredictRate: 0.05, DepDistance: 9,
			WorkingSetBytes: 896 << 10, HotBytes: 22 << 10, StoreBytes: 704 << 10, DriftPer1000: 22,
			HotFrac: 0.91, SeqFrac: 0.03, StoreRehit: 0.46, LoadRehit: 0.16},
		{Name: "bzip2", LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.12, FPFrac: 0, MulFrac: 0.02,
			BranchMispredictRate: 0.07, DepDistance: 8,
			WorkingSetBytes: 1536 << 10, HotBytes: 22 << 10, StoreBytes: 640 << 10, DriftPer1000: 19,
			HotFrac: 0.89, SeqFrac: 0.06, StoreRehit: 0.46, LoadRehit: 0.15},
		{Name: "twolf", LoadFrac: 0.31, StoreFrac: 0.11, BranchFrac: 0.13, FPFrac: 0.08, MulFrac: 0.03,
			BranchMispredictRate: 0.08, DepDistance: 6,
			WorkingSetBytes: 448 << 10, HotBytes: 24 << 10, StoreBytes: 512 << 10, DriftPer1000: 13,
			HotFrac: 0.93, SeqFrac: 0.02, StoreRehit: 0.50, LoadRehit: 0.20},
		{Name: "swim", LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.03, FPFrac: 0.80, MulFrac: 0.20,
			BranchMispredictRate: 0.01, DepDistance: 16,
			WorkingSetBytes: 16 << 20, HotBytes: 64 << 10, StoreBytes: 1 << 20, DriftPer1000: 18,
			HotFrac: 0.40, SeqFrac: 0.50, StoreRehit: 0.20, LoadRehit: 0.05},
		{Name: "mgrid", LoadFrac: 0.30, StoreFrac: 0.09, BranchFrac: 0.03, FPFrac: 0.85, MulFrac: 0.25,
			BranchMispredictRate: 0.01, DepDistance: 16,
			WorkingSetBytes: 8 << 20, HotBytes: 64 << 10, StoreBytes: 768 << 10, DriftPer1000: 15,
			HotFrac: 0.45, SeqFrac: 0.45, StoreRehit: 0.20, LoadRehit: 0.05},
		{Name: "applu", LoadFrac: 0.29, StoreFrac: 0.11, BranchFrac: 0.03, FPFrac: 0.80, MulFrac: 0.25,
			BranchMispredictRate: 0.01, DepDistance: 15,
			WorkingSetBytes: 8 << 20, HotBytes: 64 << 10, StoreBytes: 768 << 10, DriftPer1000: 15,
			HotFrac: 0.45, SeqFrac: 0.43, StoreRehit: 0.25, LoadRehit: 0.05},
	}
}

// ProfileByName looks a profile up; ok is false when the name is unknown.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
