package trace

// Per-core trace sources for the Sec. 7 multiprocessor runs. Every core
// draws from the same profile but its own deterministic stream; a
// configurable fraction of each core's memory accesses lands in a region
// shared by all cores, the rest in a private per-core copy of the
// footprint. Address offsets are multiples of 1MB, so set-index bits are
// preserved and a private stream behaves exactly like the unshifted
// profile (only tags differ) — which makes the 1-core private run a clean
// slowdown baseline.

// coreStride rounds span up to a 1MB multiple: big enough to keep
// per-core regions disjoint, aligned so L1/L2 set mapping is unchanged.
func coreStride(span int) uint64 {
	const mb = 1 << 20
	return (uint64(span) + mb - 1) &^ uint64(mb-1)
}

// CoreGen is one core's stream: the profile generator plus a sharing
// coin, both held inline so a whole set of per-core generators is one
// backing allocation. It implements Source and BatchSource.
type CoreGen struct {
	gen        Gen
	coin       lfRand
	sharedFrac float64
	offset     uint64 // base of this core's private region
}

// NewCoreGens builds one deterministic generator per core. sharedFrac is
// the probability a memory access targets the shared region (the
// profile's base footprint); everything else goes to the core's private
// copy. Same (profile, cores, sharedFrac, seed) ⇒ identical streams.
func (p Profile) NewCoreGens(cores int, sharedFrac float64, seed int64) []*CoreGen {
	stride := coreStride(p.WorkingSetBytes + p.StoreBytes)
	backing := make([]CoreGen, cores)
	gens := make([]*CoreGen, cores)
	for i := range backing {
		g := &backing[i]
		s := seed + int64(i)*0x9e3779b9 // distinct per-core seeds
		p.initGen(&g.gen, s)
		g.coin.seed(s ^ 0x5deece66d)
		g.sharedFrac = sharedFrac
		g.offset = uint64(i+1) * stride
		gens[i] = g
	}
	return gens
}

// Next returns the next dynamic instruction, relocating private memory
// accesses into the core's own region.
func (g *CoreGen) Next() Instr {
	in := g.gen.Next()
	if in.Op == OpLoad || in.Op == OpStore {
		// One coin flip per memory access keeps the underlying generator's
		// draw sequence untouched, so the shared and private sub-streams
		// stay profile-shaped.
		if g.coin.Float64() >= g.sharedFrac {
			in.Addr += g.offset
		}
	}
	return in
}

// NextBatch implements BatchSource: identical to len(dst) Next calls.
func (g *CoreGen) NextBatch(dst []Instr) int {
	for i := range dst {
		dst[i] = g.Next()
	}
	return len(dst)
}

var (
	_ Source      = (*CoreGen)(nil)
	_ BatchSource = (*CoreGen)(nil)
)
