package trace

// Per-core trace sources for the Sec. 7 multiprocessor runs. Every core
// draws from the same profile but its own deterministic stream; a
// configurable fraction of each core's memory accesses lands in a region
// shared by all cores, the rest in a private per-core copy of the
// footprint. Address offsets are multiples of 1MB, so set-index bits are
// preserved and a private stream behaves exactly like the unshifted
// profile (only tags differ) — which makes the 1-core private run a clean
// slowdown baseline.

// coreStride rounds span up to a 1MB multiple: big enough to keep
// per-core regions disjoint, aligned so L1/L2 set mapping is unchanged.
func coreStride(span int) uint64 {
	const mb = 1 << 20
	return (uint64(span) + mb - 1) &^ uint64(mb-1)
}

// relocKey identifies one core's fully relocated stream: the base
// (profile, seed) stream with the sharing coin applied. The stride is a
// pure function of the profile, so it is not part of the key.
type relocKey struct {
	p    Profile
	seed int64
	core int
	frac float64
}

// relocGen is the live generator behind a relocated stream: the
// memoized base reader plus the sharing coin. It runs only inside the
// memo (materializing the relocated prefix once per key) and when a
// reader forks past the prefix cap.
type relocGen struct {
	base       *MemoGen
	coin       lfRand
	sharedFrac float64
	offset     uint64 // base of this core's private region
}

// NextBatch draws the base stream in one memo copy, then applies the
// coin in stream order — the two RNGs never interleave state, so the
// result matches a per-instruction interleaving exactly. One flip per
// memory access keeps the base generator's draw sequence untouched, so
// the shared and private sub-streams stay profile-shaped.
func (g *relocGen) NextBatch(dst []Instr) int {
	g.base.NextBatch(dst)
	for i := range dst {
		in := &dst[i]
		if in.Op == OpLoad || in.Op == OpStore {
			if g.coin.Float64() >= g.sharedFrac {
				in.Addr += g.offset
			}
		}
	}
	return len(dst)
}

func (g *relocGen) clone() memoSource {
	c := *g
	c.base = g.base.cloneReader()
	return &c
}

// CoreGen is one core's stream: the base stream with the sharing coin
// applied, read through the process-wide memo. The *relocated* stream is
// memoized — keyed by (profile, seed, core, fraction) — so a cell that
// repeats a configuration (benchmark iterations, scheme comparisons on
// the same trace) serves every core's instructions as a straight prefix
// copy, with no per-instruction RNG work at all. It implements Source
// and BatchSource.
type CoreGen struct {
	MemoGen
}

// NewCoreGens builds one deterministic generator per core. sharedFrac is
// the probability a memory access targets the shared region (the
// profile's base footprint); everything else goes to the core's private
// copy. Same (profile, cores, sharedFrac, seed) ⇒ identical streams.
func (p Profile) NewCoreGens(cores int, sharedFrac float64, seed int64) []*CoreGen {
	backing := make([]CoreGen, cores)
	gens := make([]*CoreGen, cores)
	for i := range backing {
		gens[i] = p.initCoreGen(&backing[i], i, sharedFrac, seed)
	}
	return gens
}

// initCoreGen builds core i's generator in place.
func (p Profile) initCoreGen(g *CoreGen, i int, sharedFrac float64, seed int64) *CoreGen {
	stride := coreStride(p.WorkingSetBytes + p.StoreBytes)
	s := seed + int64(i)*0x9e3779b9 // distinct per-core seeds
	stream := getStream(relocKey{p, s, i, sharedFrac}, func() memoSource {
		r := &relocGen{
			base:       p.NewMemoGen(s),
			sharedFrac: sharedFrac,
			offset:     uint64(i+1) * stride,
		}
		r.coin.Seed(s ^ 0x5deece66d)
		return r
	})
	g.MemoGen = MemoGen{s: stream}
	return g
}

var (
	_ Source      = (*CoreGen)(nil)
	_ BatchSource = (*CoreGen)(nil)
)
