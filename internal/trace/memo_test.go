package trace

import (
	"sync"
	"testing"
)

// TestMemoGenMatchesGen checks that a memoized reader produces exactly
// the plain generator's stream, across mixed batch sizes and many
// readers of the same stream.
func TestMemoGenMatchesGen(t *testing.T) {
	p, ok := ProfileByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	const n = 3 * memoGrowChunk
	ref := make([]Instr, n)
	p.NewGen(42).NextBatch(ref)

	for reader := 0; reader < 3; reader++ {
		m := p.NewMemoGen(42)
		got := make([]Instr, 0, n)
		buf := make([]Instr, 0)
		// Odd batch sizes exercise partial-chunk extension.
		for _, sz := range []int{1, 7, 256, 1000, memoGrowChunk, n} {
			if len(got)+sz > n {
				sz = n - len(got)
			}
			buf = append(buf[:0], make([]Instr, sz)...)
			if w := m.NextBatch(buf); w != sz {
				t.Fatalf("reader %d: NextBatch wrote %d, want %d", reader, w, sz)
			}
			got = append(got, buf...)
		}
		for len(got) < n {
			got = append(got, m.Next())
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("reader %d: instr %d = %+v, want %+v", reader, i, got[i], ref[i])
			}
		}
	}
}

// TestMemoGenForksPastCap drives a reader across the memoized-prefix
// cap and checks the forked tail continues the exact stream.
func TestMemoGenForksPastCap(t *testing.T) {
	p, ok := ProfileByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	const past = 2500
	ref := make([]Instr, memoMaxInstrs+past)
	p.NewGen(7).NextBatch(ref)

	m := p.NewMemoGen(7)
	got := make([]Instr, len(ref))
	// A batch straddling the cap boundary must split cleanly.
	for pos := 0; pos < len(got); {
		sz := 999
		if pos+sz > len(got) {
			sz = len(got) - pos
		}
		m.NextBatch(got[pos : pos+sz])
		pos += sz
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("instr %d = %+v, want %+v (cap %d)", i, got[i], ref[i], memoMaxInstrs)
		}
	}
}

// TestMemoGenConcurrentReaders extends one stream from many goroutines
// at once; run under -race this checks the snapshot discipline, and the
// content check that concurrent extension stays bit-exact.
func TestMemoGenConcurrentReaders(t *testing.T) {
	p, ok := ProfileByName("swim")
	if !ok {
		t.Fatal("swim profile missing")
	}
	const n = 2*memoGrowChunk + 123
	ref := make([]Instr, n)
	p.NewGen(11).NextBatch(ref)

	var wg sync.WaitGroup
	errs := make([]int, 8)
	for r := 0; r < len(errs); r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := p.NewMemoGen(11)
			got := make([]Instr, n)
			for pos := 0; pos < n; {
				sz := 300 + 37*r // readers advance at different strides
				if pos+sz > n {
					sz = n - pos
				}
				m.NextBatch(got[pos : pos+sz])
				pos += sz
			}
			errs[r] = -1
			for i := range ref {
				if got[i] != ref[i] {
					errs[r] = i
					return
				}
			}
		}()
	}
	wg.Wait()
	for r, e := range errs {
		if e != -1 {
			t.Fatalf("reader %d diverged at instr %d", r, e)
		}
	}
}

// TestCoreGenMemoMatchesStream pins the CoreGen rewiring: the memoized
// per-core stream with batch-applied relocation must equal the
// reference construction (a plain Gen drawn per instruction with the
// coin interleaved), for sharing fractions on both sides of the coin.
func TestCoreGenMemoMatchesStream(t *testing.T) {
	p, ok := ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	for _, frac := range []float64{0, 0.3, 1} {
		gens := p.NewCoreGens(3, frac, 5)
		stride := coreStride(p.WorkingSetBytes + p.StoreBytes)
		for i, g := range gens {
			s := int64(5) + int64(i)*0x9e3779b9
			base := p.NewGen(s)
			var coin lfRand
			coin.Seed(s ^ 0x5deece66d)

			const n = 700
			got := make([]Instr, n)
			g.NextBatch(got)
			for j := 0; j < n; j++ {
				want := base.Next()
				if want.Op == OpLoad || want.Op == OpStore {
					if coin.Float64() >= frac {
						want.Addr += uint64(i+1) * stride
					}
				}
				if got[j] != want {
					t.Fatalf("frac %v core %d instr %d = %+v, want %+v", frac, i, j, got[j], want)
				}
			}
		}
	}
}
