package trace

import "sync"

// Stream memoization. Generation is deterministic for a given
// (profile, seed), and the experiments re-draw the same stream many
// times over: Fig. 10 runs three protection schemes per benchmark, the
// L3 study three placements, the Sec. 7 sweep shares per-core base
// streams across cell sizes and sharing fractions, and benchmark
// iterations repeat whole cells. A memoized stream materializes the
// instruction prefix once, process-wide, and every subsequent reader
// copies it instead of re-running the generator — bit-identical by
// construction, since the memo holds exactly the stream the generator
// would produce.
const (
	// memoMaxStreams bounds how many distinct streams stay resident;
	// past it, eviction recycles an arbitrary slot so a seed sweep
	// cannot pin unbounded memory.
	memoMaxStreams = 32
	// memoMaxInstrs bounds the materialized prefix per stream (~6MB).
	// Readers that outrun it fork the parked generator by value and
	// continue privately.
	memoMaxInstrs = 1 << 18
	// memoGrowChunk batches prefix extension so alternating readers do
	// not generate one tiny append per demand.
	memoGrowChunk = 4096
)

// memoSource is a deterministic batch generator with pure value state:
// clone returns an independent continuation so a reader that outruns
// the memoized prefix can fork the parked generator and keep drawing
// the exact stream privately.
type memoSource interface {
	NextBatch(dst []Instr) int
	clone() memoSource
}

// clone implements memoSource for the plain generator: Gen is pure
// value state (the lagged-Fibonacci vector is an inline array), so a
// struct copy is an independent continuation.
func (g *Gen) clone() memoSource {
	c := *g
	return &c
}

// memoKey identifies a base (profile, seed) stream. Profile is
// comparable (scalars plus the name), so the struct is directly usable
// as a map key. Relocated per-core streams use relocKey (multicore.go);
// the table is keyed by `any` to hold both.
type memoKey struct {
	p    Profile
	seed int64
}

// memoStream is one shared stream: the append-only materialized prefix
// and the generator parked at its end. Prefix elements are never
// mutated after they are published, so readers may hold slice snapshots
// taken under the lock and copy from them lock-free.
type memoStream struct {
	mu     sync.Mutex
	instrs []Instr
	gen    memoSource
}

// extend materializes the prefix to at least want instructions (clamped
// to memoMaxInstrs) and returns a snapshot of it.
func (s *memoStream) extend(want int) []Instr {
	if want > memoMaxInstrs {
		want = memoMaxInstrs
	}
	s.mu.Lock()
	for len(s.instrs) < want {
		grow := want - len(s.instrs)
		if grow < memoGrowChunk {
			grow = memoGrowChunk
		}
		if rem := memoMaxInstrs - len(s.instrs); grow > rem {
			grow = rem
		}
		old := len(s.instrs)
		s.instrs = append(s.instrs, make([]Instr, grow)...)
		s.gen.NextBatch(s.instrs[old:])
	}
	snap := s.instrs
	s.mu.Unlock()
	return snap
}

// forkGen returns an independent copy of the parked generator. Callers
// only fork once the prefix is full, so the copy sits at exactly
// memoMaxInstrs — the position the caller has consumed up to.
func (s *memoStream) forkGen() memoSource {
	s.mu.Lock()
	g := s.gen.clone()
	s.mu.Unlock()
	return g
}

var (
	memoMu      sync.Mutex
	memoStreams = map[any]*memoStream{}
)

// getStream returns the resident stream for key, creating it with mk's
// generator if absent. When the table is full an arbitrary resident
// stream is recycled; readers already attached keep working unshared.
// mk runs outside the table lock — a relocated stream's generator
// itself attaches to its base stream through this same table — so two
// concurrent creators may both run it; the loser's (identical,
// deterministic) generator is discarded.
func getStream(key any, mk func() memoSource) *memoStream {
	memoMu.Lock()
	s := memoStreams[key]
	memoMu.Unlock()
	if s != nil {
		return s
	}
	gen := mk()
	memoMu.Lock()
	if s = memoStreams[key]; s == nil {
		if len(memoStreams) >= memoMaxStreams {
			for evict := range memoStreams {
				delete(memoStreams, evict)
				break
			}
		}
		s = &memoStream{gen: gen}
		memoStreams[key] = s
	}
	memoMu.Unlock()
	return s
}

// MemoGen reads one memoized stream. It implements Source and
// BatchSource and produces exactly the stream its generator would; the
// memo only changes who runs the generator, never what it emits. A
// MemoGen is single-consumer like Gen (distinct MemoGens over the same
// stream may run concurrently).
type MemoGen struct {
	s      *memoStream
	prefix []Instr // local snapshot of the materialized prefix
	pos    int
	tail   memoSource // private continuation past the memoized prefix
}

// NewMemoGen builds a reader for the profile's seed stream, sharing the
// materialized prefix with every other reader of the same (profile,
// seed).
func (p Profile) NewMemoGen(seed int64) *MemoGen {
	s := getStream(memoKey{p, seed}, func() memoSource {
		g := new(Gen)
		p.initGen(g, seed)
		return g
	})
	return &MemoGen{s: s}
}

// cloneReader returns an independent reader at the same position (used
// when a relocated stream parks a MemoGen inside its generator and must
// fork it).
func (m *MemoGen) cloneReader() *MemoGen {
	c := *m
	if m.tail != nil {
		c.tail = m.tail.clone()
	}
	return &c
}

// NextBatch implements BatchSource: identical to len(dst) Next calls.
func (m *MemoGen) NextBatch(dst []Instr) int {
	n := len(dst)
	filled := 0
	if m.pos < memoMaxInstrs && m.tail == nil {
		if m.pos+n > len(m.prefix) {
			m.prefix = m.s.extend(m.pos + n)
		}
		filled = copy(dst, m.prefix[m.pos:])
		m.pos += filled
	}
	if filled < n {
		if m.tail == nil {
			m.tail = m.s.forkGen()
		}
		m.tail.NextBatch(dst[filled:])
	}
	return n
}

// Next implements Source.
func (m *MemoGen) Next() Instr {
	var buf [1]Instr
	m.NextBatch(buf[:])
	return buf[0]
}

var (
	_ Source      = (*MemoGen)(nil)
	_ BatchSource = (*MemoGen)(nil)
)
