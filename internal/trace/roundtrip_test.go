package trace_test

import (
	"bytes"
	"testing"

	"cppc/internal/experiments"
	"cppc/internal/trace"
)

// TestTraceRoundTripStream asserts that WriteTrace followed by ParseTrace
// reproduces the generator's instruction stream exactly — every opcode,
// address, dependency distance and mispredict flag.
func TestTraceRoundTripStream(t *testing.T) {
	const n = 50_000
	for _, prof := range trace.Profiles()[:4] {
		var buf bytes.Buffer
		if err := trace.WriteTrace(&buf, prof.NewGen(7), n); err != nil {
			t.Fatalf("%s: WriteTrace: %v", prof.Name, err)
		}
		fs, err := trace.ParseTrace(&buf)
		if err != nil {
			t.Fatalf("%s: ParseTrace: %v", prof.Name, err)
		}
		if fs.Len() != n {
			t.Fatalf("%s: recorded %d instructions, want %d", prof.Name, fs.Len(), n)
		}
		ref := prof.NewGen(7)
		for i := 0; i < n; i++ {
			want, got := ref.Next(), fs.Next()
			if want != got {
				t.Fatalf("%s: instruction %d diverged: recorded %+v, replayed %+v",
					prof.Name, i, want, got)
			}
		}
	}
}

// TestTraceRoundTripCPI asserts that replaying a recorded trace through
// the full timing model reproduces the generator's CPI and cache
// statistics bit-for-bit at the quick budget.
func TestTraceRoundTripCPI(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-budget simulation")
	}
	b := experiments.QuickBudget()
	prof, ok := trace.ProfileByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}

	// Record exactly the instructions the warm+measure run will consume,
	// so the replay never wraps around.
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, prof.NewGen(b.Seed), b.Warmup+b.Measure); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	fs, err := trace.ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}

	direct := experiments.SimulateSource(prof.Name, prof.NewGen(b.Seed), experiments.CPPC, b)
	replay := experiments.SimulateSource(prof.Name, fs, experiments.CPPC, b)

	if direct.CPI != replay.CPI {
		t.Fatalf("CPI diverged: generated %.6f, replayed %.6f", direct.CPI, replay.CPI)
	}
	if direct.L1 != replay.L1 || direct.L2 != replay.L2 {
		t.Fatalf("cache stats diverged:\n gen L1 %+v L2 %+v\n rep L1 %+v L2 %+v",
			direct.L1, direct.L2, replay.L1, replay.L2)
	}
	if direct.Folds != replay.Folds {
		t.Fatalf("CPPC fold counts diverged: %+v vs %+v", direct.Folds, replay.Folds)
	}
}
