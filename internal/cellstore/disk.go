package cellstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is the persistent tier: one file per cell hash under dir, written
// atomically (temp file + rename) so a crash never leaves a torn entry
// visible. Nothing is preloaded — a restarted daemon warm-starts lazily,
// paying one file read per first Get of a surviving cell. The tier is
// size-bounded: Put evicts the oldest entries (by modification time at
// startup, then insertion order) until the directory fits maxBytes
// again. One daemon owns a directory at a time; sharing a dir between
// live processes is not supported (the fleet protocol is how daemons
// share results).
type Disk struct {
	dir      string
	maxBytes int64

	mu     sync.Mutex
	inited bool
	sizes  map[string]int64 // hash -> file size, for GC accounting
	order  []string         // eviction order, oldest first
	bytes  int64
	hits   uint64
	misses uint64
}

// DefaultDiskMaxBytes bounds a disk tier that was not given an explicit
// budget: 1 GiB, thousands of suites' worth of cells.
const DefaultDiskMaxBytes = 1 << 30

// NewDisk builds (and creates, if needed) a disk tier rooted at dir.
// maxBytes <= 0 means DefaultDiskMaxBytes.
func NewDisk(dir string, maxBytes int64) (*Disk, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellstore: create %s: %w", dir, err)
	}
	return &Disk{dir: dir, maxBytes: maxBytes, sizes: make(map[string]int64)}, nil
}

// Get reads the entry straight off disk; it needs no index, so a
// restarted daemon serves surviving cells before ever scanning the dir.
func (d *Disk) Get(hash string) ([]byte, bool) {
	if !validHash(hash) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(d.dir, hash))
	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil {
		d.misses++
		return nil, false
	}
	d.hits++
	return data, true
}

// Put writes the entry atomically and GCs the tier back under its byte
// budget. Write or rename failures drop the entry silently (the memory
// tier above still has it; the cell can always be recomputed).
func (d *Disk) Put(hash string, data []byte) {
	if !validHash(hash) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIndexLocked()
	if _, ok := d.sizes[hash]; ok {
		return // content-addressed: an existing entry is already correct
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(d.dir, hash)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.sizes[hash] = int64(len(data))
	d.order = append(d.order, hash)
	d.bytes += int64(len(data))
	// Evict oldest-first until we fit again; the entry just written is
	// kept even if it alone exceeds the budget (churning it would make
	// the tier useless for large cells).
	for d.bytes > d.maxBytes && len(d.order) > 1 {
		oldest := d.order[0]
		d.order = d.order[1:]
		os.Remove(filepath.Join(d.dir, oldest))
		d.bytes -= d.sizes[oldest]
		delete(d.sizes, oldest)
	}
}

// ensureIndexLocked scans the directory once, on the first write (or
// stats call), so restarts account for surviving entries without an
// upfront load of their contents. Entries are ordered by modification
// time: the GC continues evicting oldest-first across restarts. Stray
// temp files from a crash are removed.
func (d *Disk) ensureIndexLocked() {
	if d.inited {
		return
	}
	d.inited = true
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type file struct {
		hash  string
		size  int64
		mtime int64
	}
	var files []file
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(d.dir, name))
			continue
		}
		if !validHash(name) || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{hash: name, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		d.sizes[f.hash] = f.size
		d.order = append(d.order, f.hash)
		d.bytes += f.size
	}
}

func (d *Disk) Stats() []Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIndexLocked()
	return []Stats{{Tier: "disk", Hits: d.hits, Misses: d.misses, Entries: len(d.sizes), Bytes: d.bytes}}
}

func (d *Disk) Close() error { return nil }
