// Package cellstore is the storage seam under the daemon's cell cache:
// a content-addressed byte store keyed by a cell spec's canonical hash.
// The service composes tiers of it — a bounded in-memory tier in front
// of a disk tier that survives restarts, with fleet peers consulted
// behind the same seam — so the planner → run queue → delivery path
// never knows where a cell result came from.
//
// Values are opaque bytes (the service's canonical cell encoding); keys
// are 64-char lowercase hex SHA-256 strings. Stores are safe for
// concurrent use.
package cellstore

// Stats describes one tier for /metrics.
type Stats struct {
	Tier    string `json:"tier"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// Store is one cache tier (or a composition of tiers). Get and Put never
// fail loudly: a tier that cannot serve a key reports a miss, a tier
// that cannot persist a value drops it — callers always have the
// authoritative fallback of recomputing the cell.
type Store interface {
	// Get returns the stored bytes for hash, or ok == false.
	Get(hash string) ([]byte, bool)
	// Put stores data under hash. Existing entries are overwritten
	// (results are content-addressed by spec, so rewrites are idempotent).
	Put(hash string, data []byte)
	// Stats returns one entry per concrete tier, outermost first.
	Stats() []Stats
	// Close releases tier resources (no-op for memory).
	Close() error
}

// validHash reports whether h is a well-formed cell hash: exactly 64
// lowercase hex characters. The disk tier uses hashes as file names and
// the fleet protocol accepts them from the network, so anything else is
// rejected before it can touch a path.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ValidHash is validHash for other packages (the fleet HTTP handlers
// validate client-supplied hashes with the same rule).
func ValidHash(h string) bool { return validHash(h) }

// Tiered composes stores into one read-through, write-through cache.
// Get tries each tier in order and backfills every earlier tier on a
// hit; Put writes through to all tiers.
type Tiered struct {
	tiers []Store
}

// NewTiered composes tiers, fastest first.
func NewTiered(tiers ...Store) *Tiered {
	return &Tiered{tiers: tiers}
}

func (t *Tiered) Get(hash string) ([]byte, bool) {
	for i, tier := range t.tiers {
		if data, ok := tier.Get(hash); ok {
			for j := 0; j < i; j++ {
				t.tiers[j].Put(hash, data)
			}
			return data, true
		}
	}
	return nil, false
}

func (t *Tiered) Put(hash string, data []byte) {
	for _, tier := range t.tiers {
		tier.Put(hash, data)
	}
}

func (t *Tiered) Stats() []Stats {
	var out []Stats
	for _, tier := range t.tiers {
		out = append(out, tier.Stats()...)
	}
	return out
}

func (t *Tiered) Close() error {
	var first error
	for _, tier := range t.tiers {
		if err := tier.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
