package cellstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func h(i int) string { return fmt.Sprintf("%064x", i) }

// TestMemoryEvictionOrder pins the FIFO contract the service relies on:
// the oldest insertion leaves first, and overwriting an existing entry
// neither evicts nor reorders.
func TestMemoryEvictionOrder(t *testing.T) {
	m := NewMemory(3)
	for i := 0; i < 3; i++ {
		m.Put(h(i), []byte{byte(i)})
	}
	m.Put(h(0), []byte{42}) // overwrite: no eviction
	if _, ok := m.Get(h(0)); !ok {
		t.Fatalf("overwrite evicted the entry it replaced")
	}
	m.Put(h(3), nil) // h(0) is still the oldest insertion
	if _, ok := m.Get(h(0)); ok {
		t.Fatalf("oldest entry survived eviction")
	}
	for i := 1; i <= 3; i++ {
		if _, ok := m.Get(h(i)); !ok {
			t.Fatalf("entry %d evicted out of order", i)
		}
	}
	st := m.Stats()[0]
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
}

// TestMemoryBoundHolds covers the >= eviction rule: even if the store
// somehow ends up over its bound (a future config change shrinking max),
// the next put drains it back under, instead of only ever evicting when
// exactly full.
func TestMemoryBoundHolds(t *testing.T) {
	m := NewMemory(8)
	for i := 0; i < 8; i++ {
		m.Put(h(i), []byte{1})
	}
	m.max = 3 // simulate a shrunk bound
	m.Put(h(100), []byte{1})
	if got := m.Stats()[0].Entries; got > 3 {
		t.Fatalf("store holds %d entries after bound shrank to 3", got)
	}
	if _, ok := m.Get(h(100)); !ok {
		t.Fatalf("newest entry evicted")
	}
}

// TestMemoryConcurrent hammers get/put from many goroutines (run under
// the CI race job) and checks the hit/miss counters stay consistent
// with the number of lookups issued.
func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory(64)
	const workers, ops = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := h((w*ops + i) % 100)
				if i%2 == 0 {
					m.Put(k, []byte{byte(i)})
				} else {
					m.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()[0]
	if st.Hits+st.Misses != workers*ops/2 {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, workers*ops/2)
	}
	if st.Entries > 64 {
		t.Fatalf("bound exceeded: %d entries", st.Entries)
	}
}

// TestDiskPutGetWarmRestart covers the persistence contract: a second
// Disk over the same directory serves entries written by the first,
// lazily, without any preload step.
func TestDiskPutGetWarmRestart(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("cell result bytes")
	d1.Put(h(1), want)
	if got, ok := d1.Get(h(1)); !ok || !bytes.Equal(got, want) {
		t.Fatalf("get after put = %q, %v", got, ok)
	}

	d2, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d2.Get(h(1)); !ok || !bytes.Equal(got, want) {
		t.Fatalf("warm restart get = %q, %v", got, ok)
	}
	if st := d2.Stats()[0]; st.Entries != 1 || st.Bytes != int64(len(want)) {
		t.Fatalf("restart index = %+v", st)
	}
	if _, ok := d2.Get(h(2)); ok {
		t.Fatalf("phantom entry")
	}
}

// TestDiskGC bounds the tier: puts beyond maxBytes evict the oldest
// files, on the index carried across a restart too.
func TestDiskGC(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 40)
	for i := 0; i < 4; i++ {
		d.Put(h(i), blob)
	}
	// 4*40 = 160 > 100: the two oldest must be gone.
	for i := 0; i < 2; i++ {
		if _, ok := d.Get(h(i)); ok {
			t.Fatalf("entry %d survived GC", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok := d.Get(h(i)); !ok {
			t.Fatalf("entry %d evicted too early", i)
		}
	}
	if st := d.Stats()[0]; st.Bytes > 100 {
		t.Fatalf("tier over budget: %d bytes", st.Bytes)
	}
	// No stray temp files, and only entry files remain.
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if !ValidHash(f.Name()) {
			t.Fatalf("stray file %q in store dir", f.Name())
		}
	}
}

// TestDiskRejectsBadHashes keeps client-supplied hashes from touching
// paths: anything but 64 lowercase hex chars is a miss / dropped put.
func TestDiskRejectsBadHashes(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "..", "../escape", "ABCDEF", h(1)[:63], h(1) + "0"} {
		d.Put(bad, []byte("x"))
		if _, ok := d.Get(bad); ok {
			t.Fatalf("bad hash %q accepted", bad)
		}
	}
	if files, _ := os.ReadDir(dir); len(files) != 0 {
		t.Fatalf("bad hashes left files behind")
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); err == nil {
		t.Fatalf("path escaped the store dir")
	}
}

// TestTiered covers read-through with backfill and write-through: a disk
// hit lands in the memory tier, and a put reaches both.
func TestTiered(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(8)
	ts := NewTiered(mem, disk)

	disk.Put(h(1), []byte("from disk"))
	if got, ok := ts.Get(h(1)); !ok || string(got) != "from disk" {
		t.Fatalf("tiered get = %q, %v", got, ok)
	}
	if _, ok := mem.Get(h(1)); !ok {
		t.Fatalf("disk hit not backfilled into memory")
	}

	ts.Put(h(2), []byte("both"))
	if _, ok := mem.Get(h(2)); !ok {
		t.Fatalf("put missed the memory tier")
	}
	if _, ok := disk.Get(h(2)); !ok {
		t.Fatalf("put missed the disk tier")
	}

	st := ts.Stats()
	if len(st) != 2 || st[0].Tier != "memory" || st[1].Tier != "disk" {
		t.Fatalf("tier stats = %+v", st)
	}
}
