package cellstore

import "sync"

// Memory is the bounded in-memory tier: the daemon's old cellCache
// behind the Store seam. Eviction is FIFO by insertion — the workload is
// "regenerate the same figures again", where recency matters much less
// than simply retaining the recent working set. The eviction loop runs
// while the store is at or over its bound, so shrinking the bound (or a
// future config change) can never leave it oversized.
type Memory struct {
	mu      sync.Mutex
	max     int
	entries map[string][]byte
	order   []string
	bytes   int64
	hits    uint64
	misses  uint64
}

// NewMemory builds a memory tier holding at most max entries (<= 0 means
// 1024, the old cell cache default).
func NewMemory(max int) *Memory {
	if max <= 0 {
		max = 1024
	}
	return &Memory{max: max, entries: make(map[string][]byte)}
}

func (m *Memory) Get(hash string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.entries[hash]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return data, ok
}

func (m *Memory) Put(hash string, data []byte) {
	if !validHash(hash) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.entries[hash]; ok {
		m.bytes += int64(len(data)) - int64(len(old))
		m.entries[hash] = data
		return
	}
	for len(m.order) >= m.max {
		oldest := m.order[0]
		m.order = m.order[1:]
		m.bytes -= int64(len(m.entries[oldest]))
		delete(m.entries, oldest)
	}
	m.entries[hash] = data
	m.order = append(m.order, hash)
	m.bytes += int64(len(data))
}

func (m *Memory) Stats() []Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return []Stats{{Tier: "memory", Hits: m.hits, Misses: m.misses, Entries: len(m.entries), Bytes: m.bytes}}
}

func (m *Memory) Close() error { return nil }
