package reliability

import (
	"math"
	"testing"
)

// within checks got is inside [want/factor, want*factor] — the right
// criterion for MTTFs spanning 20 orders of magnitude.
func within(t *testing.T, name string, got, want, factor float64) {
	t.Helper()
	if got < want/factor || got > want*factor {
		t.Errorf("%s = %.3g years, want %.3g within %.1fx", name, got, want, factor)
	}
}

func TestValidate(t *testing.T) {
	if err := PaperL1Params().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperL1Params()
	bad.AVF = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero AVF accepted")
	}
	bad = PaperL1Params()
	bad.TotalBits = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative capacity accepted")
	}
}

// TestTable3Parity reproduces Table 3's one-dimensional parity rows:
// 4490 years (L1), 64 years (L2).
func TestTable3Parity(t *testing.T) {
	within(t, "parity L1", Parity1DMTTFYears(PaperL1Params()), 4490, 1.6)
	within(t, "parity L2", Parity1DMTTFYears(PaperL2Params()), 64, 1.6)
}

// TestTable3CPPC reproduces Table 3's CPPC rows: 8.02e21 years (L1),
// 8.07e15 years (L2), for the evaluated 8-parity-bit, one-pair CPPC.
func TestTable3CPPC(t *testing.T) {
	domains := CPPCDomains(8, 1)
	within(t, "CPPC L1", DoubleFaultMTTFYears(PaperL1Params(), domains), 8.02e21, 3)
	within(t, "CPPC L2", DoubleFaultMTTFYears(PaperL2Params(), domains), 8.07e15, 3)
}

// TestTable3SECDED reproduces Table 3's SECDED rows: 6.2e23 years (L1,
// per-word codewords), 1.1e19 years (L2, per-block codewords).
func TestTable3SECDED(t *testing.T) {
	l1 := PaperL1Params()
	within(t, "SECDED L1", DoubleFaultMTTFYears(l1, SECDEDDomains(l1, 64)), 6.2e23, 3)
	l2 := PaperL2Params()
	within(t, "SECDED L2", DoubleFaultMTTFYears(l2, SECDEDDomains(l2, 256)), 1.1e19, 3)
}

// TestSection47Aliasing reproduces the Sec. 4.7 number: the mean time to
// one aliasing miscorrection in the evaluated L2 is ~4.19e20 years.
func TestSection47Aliasing(t *testing.T) {
	got := AliasingMTTFYears(PaperL2Params(), AliasBitsForPairs(1))
	within(t, "aliasing L2", got, 4.19e20, 3)
	// And it is orders of magnitude above the CPPC DUE MTTF, as the paper
	// argues ("5 orders of magnitudes larger").
	due := DoubleFaultMTTFYears(PaperL2Params(), CPPCDomains(8, 1))
	if got < due*1e3 {
		t.Errorf("aliasing MTTF %.3g not far above DUE MTTF %.3g", got, due)
	}
}

// TestOrderings: the qualitative Table 3 story — SECDED > CPPC >> parity,
// and everything worsens from L1 to L2 (more dirty bits).
func TestOrderings(t *testing.T) {
	for _, p := range []Params{PaperL1Params(), PaperL2Params()} {
		par := Parity1DMTTFYears(p)
		cppc := DoubleFaultMTTFYears(p, CPPCDomains(8, 1))
		sec := DoubleFaultMTTFYears(p, SECDEDDomains(p, 64))
		if !(sec > cppc && cppc > par) {
			t.Errorf("ordering violated: secded %.3g cppc %.3g parity %.3g", sec, cppc, par)
		}
	}
	if Parity1DMTTFYears(PaperL2Params()) >= Parity1DMTTFYears(PaperL1Params()) {
		t.Error("L2 should be less reliable than L1 under parity")
	}
}

// TestScalingKnobs: Secs. 3.4 and 4.6 — more parity bits or more register
// pairs scale reliability up.
func TestScalingKnobs(t *testing.T) {
	p := PaperL1Params()
	base := DoubleFaultMTTFYears(p, CPPCDomains(8, 1))
	moreParity := DoubleFaultMTTFYears(p, CPPCDomains(64, 1))
	morePairs := DoubleFaultMTTFYears(p, CPPCDomains(8, 8))
	if moreParity <= base || morePairs <= base {
		t.Error("scaling up protection did not improve MTTF")
	}
	// Doubling domains halves the per-domain population: P2 per domain
	// drops 4x, total halves the failure probability -> MTTF doubles.
	d2 := DoubleFaultMTTFYears(p, CPPCDomains(8, 2))
	if math.Abs(d2/base-2) > 0.01 {
		t.Errorf("2x domains scaled MTTF by %.3f, want 2.0", d2/base)
	}
}

func TestAliasBitsForPairs(t *testing.T) {
	want := map[int]int{1: 7, 2: 3, 4: 1, 8: 0}
	for pairs, bits := range want {
		if got := AliasBitsForPairs(pairs); got != bits {
			t.Errorf("AliasBitsForPairs(%d) = %d, want %d", pairs, got, bits)
		}
	}
	if AliasingMTTFYears(PaperL1Params(), 0) != 0 {
		t.Error("eliminated hazard should report 0 (structurally impossible)")
	}
}

func TestDoubleFaultPanicsOnBadDomains(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero domains")
		}
	}()
	DoubleFaultMTTFYears(PaperL1Params(), 0)
}
