// Package reliability implements the analytical MTTF models of Sec. 6.3
// (derived from the PARMA model [22] the paper uses):
//
//   - one-dimensional parity fails on the first fault in dirty data;
//   - CPPC and SECDED fail when a second fault lands in the same
//     protection domain within the vulnerability interval Tavg (the mean
//     time between consecutive accesses to a dirty granule), before the
//     first fault has been detected and corrected;
//   - the Sec. 4.7 temporal-aliasing hazard needs a first fault anywhere
//     in dirty data followed, within Tavg, by a second fault in one of a
//     handful of specific aliasing bit positions.
//
// All rates assume SEUs arrive as a Poisson process at FITPerBit, and
// only faults that would affect program output count (the AVF factor).
package reliability

import "fmt"

// HoursPerYear converts MTTF hours to years (Julian year).
const HoursPerYear = 8766

// Params describes one cache's reliability inputs (Table 2 plus the
// Sec. 6.3 assumptions).
type Params struct {
	FITPerBit     float64 // SEU rate per bit; the paper assumes 0.001 FIT/bit
	AVF           float64 // architectural vulnerability factor; paper: 0.7
	TotalBits     int     // data capacity in bits
	DirtyFraction float64 // average fraction of dirty data (Table 2)
	TavgCycles    float64 // mean interval between accesses to a dirty granule
	FreqHz        float64 // clock, to convert Tavg to wall time
}

// Validate rejects nonsensical inputs.
func (p Params) Validate() error {
	switch {
	case p.FITPerBit <= 0, p.AVF <= 0 || p.AVF > 1,
		p.TotalBits <= 0, p.DirtyFraction < 0 || p.DirtyFraction > 1,
		p.TavgCycles < 0, p.FreqHz <= 0:
		return fmt.Errorf("reliability: invalid params %+v", p)
	}
	return nil
}

// PaperL1Params returns Table 2's L1 inputs: 32KB, 16% dirty, Tavg 1828
// cycles at 3 GHz.
func PaperL1Params() Params {
	return Params{
		FITPerBit: 0.001, AVF: 0.7,
		TotalBits: 32 * 1024 * 8, DirtyFraction: 0.16,
		TavgCycles: 1828, FreqHz: 3e9,
	}
}

// PaperL2Params returns Table 2's L2 inputs: 1MB, 35% dirty, Tavg 378997
// cycles.
func PaperL2Params() Params {
	return Params{
		FITPerBit: 0.001, AVF: 0.7,
		TotalBits: 1024 * 1024 * 8, DirtyFraction: 0.35,
		TavgCycles: 378997, FreqHz: 3e9,
	}
}

// lambda is the per-bit fault rate in 1/hour (1 FIT = 1e-9/hour).
func (p Params) lambda() float64 { return p.FITPerBit * 1e-9 }

// dirtyBits is the average vulnerable population.
func (p Params) dirtyBits() float64 { return float64(p.TotalBits) * p.DirtyFraction }

// tavgHours converts the vulnerability interval to hours.
func (p Params) tavgHours() float64 { return p.TavgCycles / p.FreqHz / 3600 }

// Parity1DMTTFYears: detection-only parity fails on the first fault in
// dirty data (clean faults are recovered by re-fetch), derated by AVF.
func Parity1DMTTFYears(p Params) float64 {
	rate := p.lambda() * p.dirtyBits() * p.AVF
	return 1 / rate / HoursPerYear
}

// DoubleFaultMTTFYears models CPPC and SECDED: the dirty data is split
// into `domains` protection domains; a failure needs two faults in one
// domain within one vulnerability interval Tavg. Per interval and domain,
// P2 = (lambda * Nd * Tavg)^2 / 2 (two Poisson arrivals); the expected
// number of intervals to failure is 1/(domains*P2), each lasting Tavg.
func DoubleFaultMTTFYears(p Params, domains int) float64 {
	if domains <= 0 {
		panic("reliability: domains must be positive")
	}
	nd := p.dirtyBits() / float64(domains)
	mu := p.lambda() * nd * p.tavgHours()
	perDomain := mu * mu / 2
	pFail := float64(domains) * perDomain
	return p.tavgHours() / (pFail * p.AVF) / HoursPerYear
}

// CPPCDomains is the number of protection domains a CPPC carves the dirty
// data into: one per parity stripe per register pair (Sec. 6.3: "a CPPC
// with eight parity bits in effect has eight protection domains whose
// size is 1/8 of the entire dirty data").
func CPPCDomains(parityDegree, registerPairs int) int {
	return parityDegree * registerPairs
}

// SECDEDDomains is the domain count for per-granule SECDED: one codeword
// per dirty granule.
func SECDEDDomains(p Params, codewordDataBits int) int {
	d := int(p.dirtyBits() / float64(codewordDataBits))
	if d < 1 {
		d = 1
	}
	return d
}

// AliasingMTTFYears is the Sec. 4.7 hazard: after a first fault anywhere
// in the dirty data, a second fault must hit one of `aliasBits` specific
// bit positions within Tavg for the locator to miscorrect (turning a
// 2-bit DUE into a 4-bit SDC). With one register pair there are 7 such
// positions; 2 pairs leave 3, 4 pairs 1, and 8 pairs none.
func AliasingMTTFYears(p Params, aliasBits int) float64 {
	if aliasBits <= 0 {
		return 0 // the hazard is structurally eliminated
	}
	rate := p.lambda() * p.dirtyBits() * // first fault
		float64(aliasBits) * p.lambda() * p.tavgHours() * // aliasing second fault in time
		p.AVF
	return 1 / rate / HoursPerYear
}

// AliasBitsForPairs maps the register-pair count to the number of
// aliasing-vulnerable positions per first fault (Sec. 4.7).
func AliasBitsForPairs(pairs int) int {
	switch pairs {
	case 1:
		return 7
	case 2:
		return 3
	case 4:
		return 1
	default:
		return 0
	}
}
