package cppc

import (
	"context"
	"testing"

	"cppc/internal/experiments"
)

// TestProtectedAccessPathAllocFree is the regression gate for the
// allocation-free hot path: a resident load and a resident store through
// the full CPPC controller stack (verify, R1/R2 fold, parity re-encode,
// dirty tracking) must not allocate. A single stray append or interface
// boxing on this path shows up here long before it shows up in a
// benchmark.
func TestProtectedAccessPathAllocFree(t *testing.T) {
	ctrl, _ := newBenchController()
	ctrl.Store(0x40, 1, 1) // make the block resident and dirty
	now := uint64(2)

	if avg := testing.AllocsPerRun(1000, func() {
		ctrl.Load(0x40, now)
		now++
	}); avg != 0 {
		t.Errorf("protected load hit allocates %.1f objects per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		ctrl.Store(0x40, now, now)
		now++
	}); avg != 0 {
		t.Errorf("protected store hit allocates %.1f objects per op, want 0", avg)
	}
}

// TestFieldMCCellAllocBound gates the campaign arena work: a 4-trial
// field-mix cell runs on a pooled worker arena (campaign shell reseeded
// in place, shadow map cleared, cache arrays recycled through Release),
// so its steady-state cost is a few dozen allocations — the pre-arena
// code paid ~260. The bound has headroom over the measured ~90 so GC
// timing noise cannot flake it, while still catching any return to
// per-trial construction (which costs hundreds).
func TestFieldMCCellAllocBound(t *testing.T) {
	pt := experiments.FieldPoint{Footprint: "word", Lifetime: "stuck", Rate: "x1"}
	run := func() {
		if _, err := experiments.FieldMCCellCtx(context.Background(), "cppc", pt, 4, 1); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena and construction pools
	if avg := testing.AllocsPerRun(10, run); avg > 130 {
		t.Errorf("field-mix cell allocates %.0f objects per 4-trial run, want <= 130", avg)
	}
}
