package cppc

import "testing"

// TestProtectedAccessPathAllocFree is the regression gate for the
// allocation-free hot path: a resident load and a resident store through
// the full CPPC controller stack (verify, R1/R2 fold, parity re-encode,
// dirty tracking) must not allocate. A single stray append or interface
// boxing on this path shows up here long before it shows up in a
// benchmark.
func TestProtectedAccessPathAllocFree(t *testing.T) {
	ctrl, _ := newBenchController()
	ctrl.Store(0x40, 1, 1) // make the block resident and dirty
	now := uint64(2)

	if avg := testing.AllocsPerRun(1000, func() {
		ctrl.Load(0x40, now)
		now++
	}); avg != 0 {
		t.Errorf("protected load hit allocates %.1f objects per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		ctrl.Store(0x40, now, now)
		now++
	}); avg != 0 {
		t.Errorf("protected store hit allocates %.1f objects per op, want 0", avg)
	}
}
