package cppc_test

import (
	"fmt"
	"math"

	"cppc"
)

// The basic CPPC story: parity detects a fault in dirty data, the XOR
// register pair reconstructs it.
func Example() {
	mem := cppc.NewMemory(32, 200)
	l1 := cppc.NewCache(cppc.L1DConfig())
	scheme, _ := cppc.NewCPPC(l1, cppc.DefaultL1Engine())
	ctrl := cppc.NewController(l1, scheme, mem)

	ctrl.Store(0x1000, 0xdeadbeef, 1) // dirty data: no copy anywhere else

	set, way := l1.Probe(0x1000)
	l1.FlipBits(set, way, 0, 1<<17) // particle strike

	res := ctrl.Load(0x1000, 2)
	fmt.Printf("value=%#x fault=%v\n", res.Value, res.Fault)
	// Output: value=0xdeadbeef fault=corrected-dirty
}

// Faults in clean data need no registers at all: the controller re-fetches
// from the next level (Sec. 3.2).
func ExampleController_Load() {
	mem := cppc.NewMemory(32, 200)
	mem.WriteWord(0x2000, 0x1234)
	l1 := cppc.NewCache(cppc.L1DConfig())
	scheme, _ := cppc.NewCPPC(l1, cppc.DefaultL1Engine())
	ctrl := cppc.NewController(l1, scheme, mem)

	ctrl.Load(0x2000, 1) // bring it in clean
	set, way := l1.Probe(0x2000)
	l1.FlipBits(set, way, 0, 1<<5)

	res := ctrl.Load(0x2000, 2)
	fmt.Printf("value=%#x fault=%v\n", res.Value, res.Fault)
	// Output: value=0x1234 fault=corrected-clean
}

// The register invariant R1 ^ R2 == XOR of all dirty words is observable
// through the engine.
func ExampleEngineOf() {
	mem := cppc.NewMemory(32, 200)
	l1 := cppc.NewCache(cppc.L1DConfig())
	// Basic CPPC (no byte shifting) so the register contents are the
	// plain XOR of the dirty words.
	scheme, _ := cppc.NewCPPC(l1, cppc.EngineConfig{ParityDegree: 8, RegisterPairs: 1})
	ctrl := cppc.NewController(l1, scheme, mem)

	ctrl.Store(0x40, 0x00ff, 1)
	ctrl.Store(0x48, 0xff00, 2)

	eng, _ := cppc.EngineOf(scheme)
	x := eng.DirtyXor(0)
	fmt.Printf("R1^R2 = %#x, invariant: %v\n", x[0], eng.CheckInvariant() == nil)
	// Output: R1^R2 = 0xffff, invariant: true
}

// The analytical Table 3 models are exposed directly.
func ExampleDoubleFaultMTTFYears() {
	p := cppc.PaperL1Params() // 32KB, 16% dirty, Tavg 1828 cycles
	mttf := cppc.DoubleFaultMTTFYears(p, cppc.CPPCDomains(8, 1))
	fmt.Printf("CPPC L1 MTTF ~ 1e%d years\n", int(math.Floor(math.Log10(mttf))))
	// Output: CPPC L1 MTTF ~ 1e21 years
}
